//! Seeded fault injection: throttling and transient server errors.
//!
//! Real cloud-storage frontends answer bursts with `429 Retry-After` and
//! occasionally fail with transient `5xx`. Upload sessions must retry with
//! backoff and resume the part sequence. The fault plan draws from the
//! simulation PRNG so fault patterns are reproducible per seed.

use netsim::time::SimTime;
use rand::rngs::SmallRng;
use rand::Rng;

/// Fault model for a provider frontend.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Probability a part upload is answered `429`.
    pub throttle_prob: f64,
    /// Server-mandated pause after a `429`.
    pub retry_after: SimTime,
    /// Probability a part upload fails with a transient `5xx`.
    pub transient_prob: f64,
    /// Give up after this many consecutive retries of one part.
    pub max_retries: u32,
    /// Base backoff for `5xx` retries (doubles per attempt).
    pub backoff_base: SimTime,
}

impl FaultPlan {
    /// No faults at all (the default for throughput experiments, matching
    /// the paper's healthy-API assumption).
    pub fn none() -> Self {
        FaultPlan {
            throttle_prob: 0.0,
            retry_after: SimTime::from_secs(1),
            transient_prob: 0.0,
            max_retries: 5,
            backoff_base: SimTime::from_millis(500),
        }
    }

    /// A mildly unreliable frontend (failure-injection tests).
    pub fn flaky() -> Self {
        FaultPlan {
            throttle_prob: 0.05,
            retry_after: SimTime::from_secs(2),
            transient_prob: 0.05,
            max_retries: 5,
            backoff_base: SimTime::from_millis(500),
        }
    }

    /// Does this plan ever inject a fault? Fault-free plans let transfer
    /// paths skip their fault rolls entirely, so enabling the resilience
    /// layer draws nothing extra from the shared simulation PRNG and
    /// healthy-path timings stay byte-identical.
    pub fn is_active(&self) -> bool {
        self.throttle_prob > 0.0 || self.transient_prob > 0.0
    }

    /// What happens to this request?
    pub fn roll(&self, rng: &mut SmallRng) -> FaultOutcome {
        let x: f64 = rng.gen();
        if x < self.throttle_prob {
            FaultOutcome::Throttled {
                wait: self.retry_after,
            }
        } else if x < self.throttle_prob + self.transient_prob {
            FaultOutcome::TransientError
        } else {
            FaultOutcome::Ok
        }
    }

    /// Backoff before retry attempt `attempt` (1-based) of a `5xx`: the
    /// first retry waits `backoff_base`, doubling per attempt and
    /// saturating after eight doublings.
    pub fn backoff(&self, attempt: u32) -> SimTime {
        let factor = 1u64 << attempt.saturating_sub(1).min(8);
        self.backoff_base * factor
    }
}

/// Result of a fault roll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Request succeeds.
    Ok,
    /// `429`: wait `wait`, then retry. Does not count against the per-part
    /// `max_retries` (the server explicitly asked us to come back), but
    /// does charge the session-wide retry *budget*
    /// ([`crate::resilience::RetryPolicy`]) so a permanently throttling
    /// frontend terminates instead of spinning forever.
    Throttled {
        /// Server-mandated pause.
        wait: SimTime,
    },
    /// `5xx`: back off and retry; counts against `max_retries`.
    TransientError,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn none_never_faults() {
        let plan = FaultPlan::none();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert_eq!(plan.roll(&mut rng), FaultOutcome::Ok);
        }
    }

    #[test]
    fn flaky_faults_at_roughly_configured_rate() {
        let plan = FaultPlan::flaky();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut throttles = 0;
        let mut transients = 0;
        let n = 20_000;
        for _ in 0..n {
            match plan.roll(&mut rng) {
                FaultOutcome::Throttled { .. } => throttles += 1,
                FaultOutcome::TransientError => transients += 1,
                FaultOutcome::Ok => {}
            }
        }
        let t_rate = throttles as f64 / n as f64;
        let e_rate = transients as f64 / n as f64;
        assert!((0.04..0.06).contains(&t_rate), "throttle rate {t_rate}");
        assert!((0.04..0.06).contains(&e_rate), "transient rate {e_rate}");
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let plan = FaultPlan::flaky();
        // First retry waits exactly the base (500 ms for flaky), doubling
        // from there.
        assert_eq!(plan.backoff(1), SimTime::from_millis(500));
        assert_eq!(plan.backoff(2), SimTime::from_secs(1));
        assert_eq!(plan.backoff(3), SimTime::from_secs(2));
        // Saturates at 2^8 over the base.
        assert_eq!(plan.backoff(100), plan.backoff(9));
        assert_eq!(plan.backoff(9), plan.backoff_base * 256);
    }

    #[test]
    fn activity_reflects_probabilities() {
        assert!(!FaultPlan::none().is_active());
        assert!(FaultPlan::flaky().is_active());
        let mut throttler = FaultPlan::none();
        throttler.throttle_prob = 1.0;
        assert!(throttler.is_active());
    }

    #[test]
    fn deterministic_per_seed() {
        let plan = FaultPlan::flaky();
        let seq = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..50).map(|_| plan.roll(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(seq(7), seq(7));
        assert_ne!(seq(7), seq(8));
    }
}
