//! # cloudstore — simulated personal cloud-storage providers
//!
//! The paper uploads through the RESTful APIs of Google Drive, Dropbox and
//! Microsoft OneDrive (OAuth2-authenticated, chunked/resumable sessions,
//! official or community Java client libraries). This crate models that
//! entire stack over the [`netsim`] substrate:
//!
//! * [`protocol`] — per-provider chunk protocols with era-accurate (2015)
//!   parameters: Drive's resumable 8 MiB chunks (256 KiB alignment),
//!   Dropbox's 4 MiB `upload_session/append` parts, OneDrive's 10 MiB
//!   fragments (320 KiB alignment).
//! * [`oauth`] — the OAuth2 token dance: grant, expiring bearer tokens,
//!   refresh. First runs pay it; warm runs reuse a cached token (one of the
//!   reasons the paper discards the first runs of each batch).
//! * [`provider`] — a provider: kind, points of presence, auth endpoint,
//!   ingest rate and fault model, with nearest-POP selection.
//! * [`faults`] — seeded fault injection: `429 Retry-After` throttling and
//!   transient `5xx`, with bounded exponential backoff.
//! * [`resilience`] — the shared resilience plane: retry budgets shared by
//!   throttles and transient errors, deterministically-jittered backoff,
//!   hard deadlines in sim time, and per-frontend circuit breakers.
//! * [`session`] — the upload state machine (token → init → chunks →
//!   finish), including resume-after-failure semantics.
//! * [`download`] — the symmetric chunked download path (the paper measures
//!   uploads only; downloads are our extension).
//! * [`report`] — structured transfer reports (elapsed, RPC count, retries,
//!   wire bytes).

pub mod batch;
pub mod download;
pub mod faults;
pub mod oauth;
pub mod protocol;
pub mod provider;
pub mod report;
pub mod resilience;
pub mod session;

pub use batch::{plan_batches, upload_batched, BatchItem, BatchPolicy, BatchReport};
pub use download::{download, DownloadSession};
pub use faults::FaultPlan;
pub use oauth::{AuthConfig, TokenPolicy};
pub use protocol::{ChunkProtocol, ProviderKind};
pub use provider::Provider;
pub use report::TransferStats;
pub use resilience::{
    BreakerRegistry, BreakerTransition, CircuitBreaker, RetryPolicy, RetryState, TripBoard,
};
pub use session::{upload, upload_traced, UploadOptions, UploadSession};
