//! Chunked-upload protocols, parameterized per provider.
//!
//! All three services split large uploads into serially-acknowledged parts;
//! what differs is the part size, alignment rule, framing overhead and the
//! number of control round trips. Those differences — multiplied by path
//! RTT — are what make small-file transfer latency-bound and large-file
//! transfer bandwidth-bound, producing the file-size-dependent crossovers in
//! the paper's Figures 8 and 9.

use netsim::time::SimTime;
use netsim::units::{Bandwidth, KIB, MIB};

/// Which cloud-storage service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProviderKind {
    /// Google Drive (`www.googleapis.com` resumable uploads).
    GoogleDrive,
    /// Dropbox (`upload_session` API).
    Dropbox,
    /// Microsoft OneDrive (`createUploadSession` fragments).
    OneDrive,
}

impl ProviderKind {
    /// Display name as used in the paper's tables.
    pub fn display_name(&self) -> &'static str {
        match self {
            ProviderKind::GoogleDrive => "Google Drive",
            ProviderKind::Dropbox => "Dropbox",
            ProviderKind::OneDrive => "OneDrive",
        }
    }

    /// All three providers, in the paper's column order.
    pub fn all() -> [ProviderKind; 3] {
        [
            ProviderKind::GoogleDrive,
            ProviderKind::Dropbox,
            ProviderKind::OneDrive,
        ]
    }
}

impl std::fmt::Display for ProviderKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.display_name())
    }
}

/// Wire-level parameters of one provider's upload protocol.
#[derive(Debug, Clone, Copy)]
pub struct ChunkProtocol {
    /// Preferred part size in bytes.
    pub chunk_bytes: u64,
    /// Parts (except the last) must be a multiple of this.
    pub alignment: u64,
    /// HTTP framing per part upload (request headers etc.).
    pub per_chunk_header: u64,
    /// Server response per part.
    pub per_chunk_response: u64,
    /// Fixed server-side processing per part, in addition to ingest time.
    pub per_chunk_server_time: SimTime,
    /// Session-initiation request/response bytes.
    pub init_bytes: (u64, u64),
    /// Session-initiation server time.
    pub init_server_time: SimTime,
    /// Finalization request/response bytes (0,0 when finalize is implicit in
    /// the last part, as for Drive and OneDrive).
    pub finish_bytes: (u64, u64),
    /// Finalization server time (commit).
    pub finish_server_time: SimTime,
    /// Server-side ingest rate: each part also costs `part/ingest` of server
    /// time (storage pipeline, replication ack).
    pub ingest: Bandwidth,
}

impl ChunkProtocol {
    /// Google Drive resumable upload, 2015-era client defaults.
    pub fn google_drive() -> Self {
        ChunkProtocol {
            chunk_bytes: 8 * MIB,
            alignment: 256 * KIB,
            per_chunk_header: 700,
            per_chunk_response: 350,
            per_chunk_server_time: SimTime::from_millis(25),
            init_bytes: (850, 500),
            init_server_time: SimTime::from_millis(60),
            finish_bytes: (0, 0),
            finish_server_time: SimTime::ZERO,
            ingest: Bandwidth::from_mbps(480.0),
        }
    }

    /// Dropbox `upload_session` start/append/finish.
    pub fn dropbox() -> Self {
        ChunkProtocol {
            chunk_bytes: 4 * MIB,
            alignment: 4 * MIB,
            per_chunk_header: 600,
            per_chunk_response: 300,
            per_chunk_server_time: SimTime::from_millis(30),
            init_bytes: (450, 350),
            init_server_time: SimTime::from_millis(40),
            finish_bytes: (550, 450),
            finish_server_time: SimTime::from_millis(120),
            ingest: Bandwidth::from_mbps(400.0),
        }
    }

    /// OneDrive `createUploadSession` fragments.
    pub fn onedrive() -> Self {
        ChunkProtocol {
            chunk_bytes: 10 * MIB,
            alignment: 320 * KIB,
            per_chunk_header: 800,
            per_chunk_response: 450,
            per_chunk_server_time: SimTime::from_millis(45),
            init_bytes: (650, 750),
            init_server_time: SimTime::from_millis(80),
            finish_bytes: (0, 0),
            finish_server_time: SimTime::ZERO,
            ingest: Bandwidth::from_mbps(300.0),
        }
    }

    /// The protocol for a provider kind.
    pub fn for_kind(kind: ProviderKind) -> Self {
        match kind {
            ProviderKind::GoogleDrive => Self::google_drive(),
            ProviderKind::Dropbox => Self::dropbox(),
            ProviderKind::OneDrive => Self::onedrive(),
        }
    }

    /// Split a file into aligned part sizes (the last part may be any size).
    ///
    /// ```
    /// use cloudstore::ChunkProtocol;
    /// let parts = ChunkProtocol::dropbox().parts(10_000_000);
    /// assert_eq!(parts.len(), 3); // 2 × 4 MiB + remainder
    /// assert_eq!(parts.iter().sum::<u64>(), 10_000_000);
    /// ```
    pub fn parts(&self, file_bytes: u64) -> Vec<u64> {
        assert!(self.chunk_bytes > 0 && self.alignment > 0);
        debug_assert_eq!(
            self.chunk_bytes % self.alignment,
            0,
            "chunk size must respect alignment"
        );
        if file_bytes == 0 {
            return Vec::new();
        }
        let mut parts = Vec::with_capacity((file_bytes / self.chunk_bytes + 1) as usize);
        let mut left = file_bytes;
        while left > self.chunk_bytes {
            parts.push(self.chunk_bytes);
            left -= self.chunk_bytes;
        }
        parts.push(left);
        parts
    }

    /// Server think time for one part: fixed overhead plus ingest.
    pub fn server_time_for_part(&self, part_bytes: u64) -> SimTime {
        self.per_chunk_server_time + self.ingest.time_for(part_bytes)
    }

    /// Whether finalization is a separate RPC.
    pub fn has_finish_rpc(&self) -> bool {
        self.finish_bytes != (0, 0)
    }

    /// Total control-plane round trips for a file of this size (init +
    /// finish, not counting per-part exchanges).
    pub fn control_rpcs(&self) -> u32 {
        1 + u32::from(self.has_finish_rpc())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::units::MB;

    #[test]
    fn parts_cover_file_exactly() {
        for kind in ProviderKind::all() {
            let p = ChunkProtocol::for_kind(kind);
            for size in [
                1u64,
                100,
                10 * MB,
                100 * MB,
                p.chunk_bytes,
                p.chunk_bytes + 1,
            ] {
                let parts = p.parts(size);
                assert_eq!(parts.iter().sum::<u64>(), size, "{kind}: size {size}");
                assert!(!parts.is_empty());
                // All but the last are exactly chunk_bytes.
                for &part in &parts[..parts.len() - 1] {
                    assert_eq!(part, p.chunk_bytes);
                }
            }
        }
    }

    #[test]
    fn zero_file_has_no_parts() {
        assert!(ChunkProtocol::dropbox().parts(0).is_empty());
    }

    #[test]
    fn alignment_invariants() {
        let g = ChunkProtocol::google_drive();
        assert_eq!(g.chunk_bytes % g.alignment, 0);
        let o = ChunkProtocol::onedrive();
        assert_eq!(o.chunk_bytes % o.alignment, 0);
        let d = ChunkProtocol::dropbox();
        assert_eq!(d.chunk_bytes % d.alignment, 0);
    }

    #[test]
    fn protocol_shapes_match_providers() {
        assert!(ChunkProtocol::dropbox().has_finish_rpc());
        assert!(!ChunkProtocol::google_drive().has_finish_rpc());
        assert!(!ChunkProtocol::onedrive().has_finish_rpc());
        assert_eq!(ChunkProtocol::dropbox().control_rpcs(), 2);
        assert_eq!(ChunkProtocol::google_drive().control_rpcs(), 1);
    }

    #[test]
    fn server_time_grows_with_part_size() {
        let p = ChunkProtocol::onedrive();
        assert!(p.server_time_for_part(10 * MB) > p.server_time_for_part(MB));
        assert!(p.server_time_for_part(1) >= p.per_chunk_server_time);
    }

    #[test]
    fn display_names() {
        assert_eq!(ProviderKind::GoogleDrive.to_string(), "Google Drive");
        assert_eq!(ProviderKind::all().len(), 3);
    }

    #[test]
    fn chunk_counts_for_paper_sizes() {
        // 100 MB: Drive 8 MiB parts -> 12 parts; Dropbox 4 MiB -> 24;
        // OneDrive 10 MiB -> 10.
        assert_eq!(ChunkProtocol::google_drive().parts(100 * MB).len(), 12);
        assert_eq!(ChunkProtocol::dropbox().parts(100 * MB).len(), 24);
        assert_eq!(ChunkProtocol::onedrive().parts(100 * MB).len(), 10);
    }
}
