//! A provider instance: kind, points of presence, auth endpoint and faults.
//!
//! The paper notes that "many cloud-storage providers have multiple
//! points-of-presence (POPs) ... to improve throughput for their clients",
//! and geolocates the POPs its traffic actually reached (Drive: Mountain
//! View; Dropbox: Ashburn; OneDrive: Seattle). A [`Provider`] carries one or
//! more POP nodes and selects the geographically nearest one per client,
//! which is how the 2015 DNS-based steering behaved to a first
//! approximation.

use crate::faults::FaultPlan;
use crate::oauth::AuthConfig;
use crate::protocol::{ChunkProtocol, ProviderKind};
use netsim::topology::{NodeId, Topology};

/// One cloud-storage service as visible to clients.
#[derive(Debug, Clone)]
pub struct Provider {
    /// Which service.
    pub kind: ProviderKind,
    /// Frontend points of presence (at least one).
    pub pops: Vec<NodeId>,
    /// Upload protocol parameters.
    pub protocol: ChunkProtocol,
    /// OAuth2 endpoint configuration.
    pub auth: AuthConfig,
    /// Fault model applied to part uploads.
    pub faults: FaultPlan,
}

impl Provider {
    /// A provider with a single POP, standard protocol and no faults.
    pub fn new(kind: ProviderKind, pop: NodeId) -> Self {
        Provider {
            kind,
            pops: vec![pop],
            protocol: ChunkProtocol::for_kind(kind),
            auth: AuthConfig::standard(pop),
            faults: FaultPlan::none(),
        }
    }

    /// Add another POP.
    pub fn with_pop(mut self, pop: NodeId) -> Self {
        self.pops.push(pop);
        self
    }

    /// Replace the fault model.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The POP a client is steered to: geographically nearest, ties broken
    /// by node id (deterministic).
    pub fn frontend_for(&self, topo: &Topology, client: NodeId) -> NodeId {
        assert!(!self.pops.is_empty(), "provider has no POPs");
        let from = topo.node(client).location;
        *self
            .pops
            .iter()
            .min_by(|&&a, &&b| {
                let da = from.distance_km(&topo.node(a).location);
                let db = from.distance_km(&topo.node(b).location);
                da.partial_cmp(&db).unwrap().then(a.cmp(&b))
            })
            .expect("nonempty pops")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::geo::{places, GeoPoint};
    use netsim::prelude::*;

    fn topo_with_pops() -> (Topology, NodeId, NodeId, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let client_west = b.host("client-west", places::UBC);
        let client_east = b.host("client-east", places::PURDUE);
        let pop_west = b.datacenter("pop-west", places::SEATTLE);
        let pop_east = b.datacenter("pop-east", places::ASHBURN);
        // Links irrelevant for POP selection.
        let p = LinkParams::new(Bandwidth::from_mbps(10.0), SimTime::from_millis(1));
        b.duplex(client_west, pop_west, p);
        b.duplex(client_east, pop_east, p);
        (b.build(), client_west, client_east, pop_west, pop_east)
    }

    #[test]
    fn nearest_pop_selected() {
        let (t, cw, ce, pw, pe) = topo_with_pops();
        let p = Provider::new(ProviderKind::OneDrive, pw).with_pop(pe);
        assert_eq!(p.frontend_for(&t, cw), pw);
        assert_eq!(p.frontend_for(&t, ce), pe);
    }

    #[test]
    fn single_pop_always_wins() {
        let (t, cw, ce, pw, _) = topo_with_pops();
        let p = Provider::new(ProviderKind::Dropbox, pw);
        assert_eq!(p.frontend_for(&t, cw), pw);
        assert_eq!(p.frontend_for(&t, ce), pw);
    }

    #[test]
    fn tie_broken_by_node_id() {
        let mut b = TopologyBuilder::new();
        let c = b.host("c", GeoPoint::new(0.0, 0.0));
        let p1 = b.datacenter("p1", GeoPoint::new(1.0, 0.0));
        let p2 = b.datacenter("p2", GeoPoint::new(-1.0, 0.0)); // same distance
        let link = LinkParams::new(Bandwidth::from_mbps(1.0), SimTime::from_millis(1));
        b.duplex(c, p1, link);
        b.duplex(c, p2, link);
        let t = b.build();
        let p = Provider::new(ProviderKind::GoogleDrive, p2).with_pop(p1);
        assert_eq!(p.frontend_for(&t, c), p1.min(p2));
    }

    #[test]
    fn defaults_are_faultless() {
        let (_, _, _, pw, _) = topo_with_pops();
        let p = Provider::new(ProviderKind::GoogleDrive, pw);
        assert_eq!(p.faults.throttle_prob, 0.0);
        assert_eq!(p.auth.server, pw);
    }
}
