//! Small-file batching (bundling), as real sync clients do.
//!
//! Per-object overhead — session init, per-part round trips, commit — is
//! what makes thousands of small files slow even on fat links (and detours
//! double it). The classic client-side fix is to bundle small files into
//! one archive object and upload that. [`plan_batches`] produces the
//! bundling plan (tar-style: 512-byte header per member, 512-byte
//! alignment); [`upload_batched`] plays a whole file set through one
//! simulator session.

use crate::oauth::TokenPolicy;
use crate::provider::Provider;
use crate::report::TransferStats;
use crate::session::{upload, UploadOptions};
use netsim::engine::Sim;
use netsim::error::NetError;
use netsim::time::SimTime;
use netsim::topology::NodeId;

/// Bundling policy.
#[derive(Debug, Clone, Copy)]
pub struct BatchPolicy {
    /// Files strictly smaller than this are eligible for bundling.
    pub small_threshold: u64,
    /// Flush a bundle once it reaches this size.
    pub bundle_target: u64,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            small_threshold: 4 * 1024 * 1024,
            bundle_target: 32 * 1024 * 1024,
        }
    }
}

/// One object to upload: a file passed through, or a bundle of small ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchItem {
    /// A file uploaded as-is (its size).
    Single(u64),
    /// A tar-style bundle: member sizes; wire size adds per-member framing.
    Bundle(Vec<u64>),
}

impl BatchItem {
    /// Bytes this object puts on the wire (tar framing for bundles:
    /// 512-byte header per member, members padded to 512, 1 KiB trailer).
    pub fn wire_bytes(&self) -> u64 {
        match self {
            BatchItem::Single(b) => *b,
            BatchItem::Bundle(members) => {
                let body: u64 = members.iter().map(|m| 512 + m.div_ceil(512) * 512).sum();
                body + 1024
            }
        }
    }

    /// Payload bytes (excluding framing).
    pub fn payload_bytes(&self) -> u64 {
        match self {
            BatchItem::Single(b) => *b,
            BatchItem::Bundle(members) => members.iter().sum(),
        }
    }
}

/// Group a file set into upload objects under `policy`. Order is
/// preserved: large files stay in place, consecutive small files coalesce.
pub fn plan_batches(files: &[u64], policy: BatchPolicy) -> Vec<BatchItem> {
    assert!(policy.small_threshold >= 1 && policy.bundle_target >= policy.small_threshold);
    let mut out = Vec::new();
    let mut pending: Vec<u64> = Vec::new();
    let mut pending_bytes = 0u64;
    let flush = |pending: &mut Vec<u64>, pending_bytes: &mut u64, out: &mut Vec<BatchItem>| {
        match pending.len() {
            0 => {}
            1 => out.push(BatchItem::Single(pending[0])),
            _ => out.push(BatchItem::Bundle(std::mem::take(pending))),
        }
        pending.clear();
        *pending_bytes = 0;
    };
    for &f in files {
        assert!(f > 0, "zero-byte file in batch plan");
        if f < policy.small_threshold {
            pending.push(f);
            pending_bytes += f;
            if pending_bytes >= policy.bundle_target {
                flush(&mut pending, &mut pending_bytes, &mut out);
            }
        } else {
            flush(&mut pending, &mut pending_bytes, &mut out);
            out.push(BatchItem::Single(f));
        }
    }
    flush(&mut pending, &mut pending_bytes, &mut out);
    out
}

/// Summary of a batched (or unbatched) session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchReport {
    /// Total session duration.
    pub elapsed: SimTime,
    /// Objects uploaded (sessions opened).
    pub objects: u64,
    /// Total RPC exchanges.
    pub rpcs: u64,
    /// Payload bytes.
    pub payload_bytes: u64,
    /// Wire bytes (payload + bundle framing + protocol framing).
    pub wire_bytes: u64,
}

/// Upload a planned file set sequentially through one simulation. The
/// first object pays the OAuth grant; the rest reuse the token.
pub fn upload_batched(
    sim: &mut Sim,
    client: NodeId,
    provider: &Provider,
    items: &[BatchItem],
    class: netsim::flow::FlowClass,
) -> Result<BatchReport, NetError> {
    assert!(!items.is_empty(), "nothing to upload");
    let mut elapsed = SimTime::ZERO;
    let mut rpcs = 0;
    let mut wire = 0;
    let mut payload = 0;
    for (i, item) in items.iter().enumerate() {
        let token = if i == 0 {
            TokenPolicy::Fresh
        } else {
            TokenPolicy::Cached
        };
        let opts = UploadOptions {
            token,
            class,
            ..UploadOptions::default()
        };
        let stats: TransferStats = upload(sim, client, provider, item.wire_bytes(), opts)?;
        elapsed += stats.elapsed;
        rpcs += stats.rpcs;
        wire += stats.wire_bytes;
        payload += item.payload_bytes();
    }
    Ok(BatchReport {
        elapsed,
        objects: items.len() as u64,
        rpcs,
        payload_bytes: payload,
        wire_bytes: wire,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ProviderKind;
    use netsim::flow::FlowClass;
    use netsim::geo::GeoPoint;
    use netsim::prelude::*;
    use netsim::units::{KB, MB};

    #[test]
    fn plan_preserves_every_file() {
        let files = vec![100 * KB, 200 * KB, 50 * MB, 300 * KB, 300 * KB, 10 * KB];
        let plan = plan_batches(&files, BatchPolicy::default());
        let total: u64 = plan.iter().map(|i| i.payload_bytes()).sum();
        assert_eq!(total, files.iter().sum::<u64>());
        // Large file stays single; smalls around it bundle.
        assert!(plan.contains(&BatchItem::Single(50 * MB)));
        assert!(plan.iter().any(|i| matches!(i, BatchItem::Bundle(_))));
    }

    #[test]
    fn bundles_flush_at_target() {
        let files = vec![3 * MB; 30]; // all small, 90 MB total
        let policy = BatchPolicy {
            small_threshold: 4 * MB,
            bundle_target: 30 * MB,
        };
        let plan = plan_batches(&files, policy);
        // 30 MB target → bundles of 10 members each.
        assert_eq!(plan.len(), 3);
        for item in &plan {
            match item {
                BatchItem::Bundle(m) => assert_eq!(m.len(), 10),
                _ => panic!("expected bundles"),
            }
        }
    }

    #[test]
    fn framing_overhead_is_modest() {
        let b = BatchItem::Bundle(vec![100 * KB; 50]);
        let overhead = b.wire_bytes() as f64 / b.payload_bytes() as f64 - 1.0;
        assert!(overhead < 0.02, "tar overhead {overhead}");
    }

    #[test]
    fn singleton_pending_stays_single() {
        let plan = plan_batches(&[100 * KB], BatchPolicy::default());
        assert_eq!(plan, vec![BatchItem::Single(100 * KB)]);
    }

    fn world() -> (Sim, NodeId, Provider) {
        let mut b = TopologyBuilder::new();
        let client = b.host("client", GeoPoint::new(49.0, -123.0));
        let pop = b.datacenter("pop", GeoPoint::new(39.0, -77.0));
        // High-RTT, decent bandwidth: per-object overhead dominates smalls.
        b.duplex(
            client,
            pop,
            LinkParams::new(Bandwidth::from_mbps(100.0), SimTime::from_millis(50)),
        );
        (
            Sim::new(b.build(), 1),
            client,
            Provider::new(ProviderKind::GoogleDrive, pop),
        )
    }

    #[test]
    fn bundling_beats_file_by_file_for_small_files() {
        let files = vec![500 * KB; 40]; // 20 MB across 40 objects
        let (mut sim, client, provider) = world();
        let unbatched: Vec<BatchItem> = files.iter().map(|&f| BatchItem::Single(f)).collect();
        let a = upload_batched(
            &mut sim,
            client,
            &provider,
            &unbatched,
            FlowClass::Commodity,
        )
        .unwrap();
        let (mut sim, client, provider) = world();
        let plan = plan_batches(&files, BatchPolicy::default());
        let b = upload_batched(&mut sim, client, &provider, &plan, FlowClass::Commodity).unwrap();
        assert!(b.objects < a.objects);
        assert!(b.rpcs < a.rpcs);
        assert!(
            b.elapsed.as_secs_f64() < a.elapsed.as_secs_f64() / 2.0,
            "bundled {} vs per-file {}",
            b.elapsed,
            a.elapsed
        );
    }

    #[test]
    #[should_panic(expected = "zero-byte")]
    fn zero_byte_file_rejected() {
        plan_batches(&[0], BatchPolicy::default());
    }
}
