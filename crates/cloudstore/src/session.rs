//! The upload session state machine.
//!
//! Token (grant/refresh as needed) → session init → part uploads →
//! finalize. Exactly the sequence the providers' 2015 client libraries
//! perform, including:
//!
//! * per-part fault handling (`429` waits don't count as retries; `5xx`
//!   retries back off exponentially and re-query the session offset before
//!   resending),
//! * mid-session token refresh when a long transfer outlives its bearer
//!   token,
//! * connection reuse: only the very first exchange pays TCP/TLS setup,
//! * **optional part parallelism** (our extension; the 2015 clients were
//!   strictly serial, which [`UploadOptions::parallelism`] = 1 reproduces):
//!   up to `k` part RPCs are kept in flight, which hides per-part round
//!   trips on long paths.

use crate::faults::FaultOutcome;
use crate::oauth::{TokenPolicy, TokenState};
use crate::provider::Provider;
use crate::report::TransferStats;
use crate::resilience::{RetryPolicy, RetryState};
use netsim::engine::{Ctx, Event, Process, ProcessId, Value};
use netsim::error::NetError;
use netsim::flow::FlowClass;
use netsim::rpc::{Rpc, RpcSpec};
use netsim::time::SimTime;
use netsim::topology::NodeId;
use obs::{Category, SpanId};
use std::collections::{HashMap, VecDeque};

/// Options for one upload.
#[derive(Debug, Clone, Copy)]
pub struct UploadOptions {
    /// Token situation at session start.
    pub token: TokenPolicy,
    /// Traffic class of all session flows (matches source-host policy).
    pub class: FlowClass,
    /// Maximum concurrent part uploads. The paper-era clients use 1; larger
    /// values are our pipelining extension.
    pub parallelism: u32,
    /// Resilience policy override. `None` derives one from the provider's
    /// fault plan via [`RetryPolicy::from_plan`].
    pub retry: Option<RetryPolicy>,
}

impl Default for UploadOptions {
    fn default() -> Self {
        UploadOptions {
            token: TokenPolicy::Cached,
            class: FlowClass::Commodity,
            parallelism: 1,
            retry: None,
        }
    }
}

impl UploadOptions {
    /// Cold-start options: full OAuth grant before the first byte.
    pub fn cold(class: FlowClass) -> Self {
        UploadOptions {
            token: TokenPolicy::Fresh,
            class,
            ..UploadOptions::default()
        }
    }

    /// Warm options: token cached and valid.
    pub fn warm(class: FlowClass) -> Self {
        UploadOptions {
            token: TokenPolicy::Cached,
            class,
            ..UploadOptions::default()
        }
    }

    /// Allow up to `k` concurrent part uploads (k ≥ 1).
    pub fn with_parallelism(mut self, k: u32) -> Self {
        assert!(k >= 1, "parallelism must be at least 1");
        self.parallelism = k;
        self
    }

    /// Use an explicit resilience policy (budget, backoff, deadline).
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }
}

/// What a control-plane child RPC was for.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ControlKind {
    Auth,
    Refresh,
    Init,
    Finish,
}

/// A part waiting to be (re)sent.
#[derive(Debug, Clone, Copy)]
struct PartTask {
    idx: usize,
    attempts: u32,
}

/// An in-flight part RPC.
#[derive(Debug, Clone, Copy)]
struct PartAttempt {
    task: PartTask,
    outcome: FaultOutcome,
}

const TIMER_THROTTLE: u64 = 1;
/// Per-part backoff timers: tag = TIMER_BACKOFF_BASE + part index, with the
/// part's attempt count carried in the upper 32 bits of the payload so a
/// lost bookkeeping entry can never silently reset a retry streak.
const TIMER_BACKOFF_BASE: u64 = 0x1000;
/// Bit offset of the attempt count inside a backoff timer tag.
const TIMER_ATTEMPT_SHIFT: u32 = 32;

/// Upload one file to a provider. Finishes with a packed
/// [`TransferStats`] value, or [`Value::Error`] on unrecoverable failure.
pub struct UploadSession {
    client: NodeId,
    provider: Provider,
    bytes: u64,
    opts: UploadOptions,

    frontend: NodeId,
    /// Shared retry budget / deadline accounting across throttles and
    /// transient errors.
    retry: RetryState,
    parts: Vec<u64>,
    queue: VecDeque<PartTask>,
    inflight: HashMap<ProcessId, PartAttempt>,
    offset_queries: HashMap<ProcessId, PartTask>,
    /// Per-part attempt counters awaiting their backoff timer.
    queue_retry_attempts: HashMap<usize, u32>,
    control: Option<(ProcessId, ControlKind)>,
    completed: usize,
    token: Option<TokenState>,
    initialized: bool,
    finishing: bool,
    waiting_throttle: bool,
    first_exchange: bool,

    started: SimTime,
    rpcs: u64,
    retries: u64,
    throttles: u64,
    token_refreshes: u64,
    wire_bytes: u64,

    /// Telemetry span covering the whole session.
    span: SpanId,
    /// Requested parent for the session span (set by the job layer).
    parent_span: SpanId,
    /// Per-part chunk spans, opened at first launch, closed on success.
    chunk_spans: Vec<SpanId>,
}

impl UploadSession {
    /// Build a session (spawn it or run it via [`upload`]).
    pub fn new(client: NodeId, provider: Provider, bytes: u64, opts: UploadOptions) -> Self {
        assert!(opts.parallelism >= 1);
        let policy = opts
            .retry
            .unwrap_or_else(|| RetryPolicy::from_plan(&provider.faults));
        UploadSession {
            client,
            provider,
            bytes,
            opts,
            frontend: NodeId(u32::MAX),
            retry: RetryState::start(policy, SimTime::ZERO),
            parts: Vec::new(),
            queue: VecDeque::new(),
            inflight: HashMap::new(),
            offset_queries: HashMap::new(),
            queue_retry_attempts: HashMap::new(),
            control: None,
            completed: 0,
            token: None,
            initialized: false,
            finishing: false,
            waiting_throttle: false,
            first_exchange: true,
            started: SimTime::ZERO,
            rpcs: 0,
            retries: 0,
            throttles: 0,
            token_refreshes: 0,
            wire_bytes: 0,
            span: SpanId::NONE,
            parent_span: SpanId::NONE,
            chunk_spans: Vec::new(),
        }
    }

    /// Nest this session's telemetry span under `parent` (e.g. a job span).
    pub fn with_parent_span(mut self, parent: SpanId) -> Self {
        self.parent_span = parent;
        self
    }

    #[allow(clippy::too_many_arguments)]
    fn spawn_rpc(
        &mut self,
        ctx: &mut Ctx<'_>,
        server: NodeId,
        req: u64,
        resp: u64,
        think: SimTime,
        span_name: &'static str,
        parent: SpanId,
    ) -> ProcessId {
        let mut spec = RpcSpec::control(self.client, server, self.opts.class)
            .with_payload(req, resp)
            .with_server_time(think)
            .traced(span_name, parent);
        if self.first_exchange {
            spec = spec.fresh();
            self.first_exchange = false;
        }
        self.rpcs += 1;
        self.wire_bytes += req;
        ctx.telemetry().counter_add("cloudstore.rpcs", 1);
        ctx.spawn(Box::new(Rpc::new(spec)))
    }

    fn begin_control(&mut self, ctx: &mut Ctx<'_>, kind: ControlKind) {
        debug_assert!(self.control.is_none(), "one control exchange at a time");
        let span_name = match kind {
            ControlKind::Auth => "rpc.auth",
            ControlKind::Refresh => "rpc.refresh",
            ControlKind::Init => "rpc.init",
            ControlKind::Finish => "rpc.finish",
        };
        let (server, (req, resp), think) = match kind {
            ControlKind::Auth => (
                self.provider.auth.server,
                self.provider.auth.grant_bytes,
                self.provider.auth.grant_server_time,
            ),
            ControlKind::Refresh => {
                self.token_refreshes += 1;
                ctx.telemetry().counter_add("cloudstore.token_refreshes", 1);
                let (t, span) = (ctx.now().as_nanos(), self.span);
                ctx.telemetry()
                    .event(t, Category::Session, "session.token_refresh", span, |_| {});
                (
                    self.provider.auth.server,
                    self.provider.auth.refresh_bytes,
                    self.provider.auth.refresh_server_time,
                )
            }
            ControlKind::Init => (
                self.frontend,
                self.provider.protocol.init_bytes,
                self.provider.protocol.init_server_time,
            ),
            ControlKind::Finish => (
                self.frontend,
                self.provider.protocol.finish_bytes,
                self.provider.protocol.finish_server_time,
            ),
        };
        let parent = self.span;
        let pid = self.spawn_rpc(ctx, server, req, resp, think, span_name, parent);
        self.control = Some((pid, kind));
    }

    fn token_ok(&self, now: SimTime) -> bool {
        self.token.map(|t| t.valid_at(now)).unwrap_or(false)
    }

    fn refresh_in_flight(&self) -> bool {
        matches!(
            self.control,
            Some((_, ControlKind::Refresh | ControlKind::Auth))
        )
    }

    /// Launch parts while there is budget; handle token expiry and
    /// throttling along the way.
    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        if self.waiting_throttle || !self.initialized {
            return;
        }
        while (self.inflight.len() as u32) < self.opts.parallelism && !self.queue.is_empty() {
            if !self.token_ok(ctx.now()) {
                if !self.refresh_in_flight() && self.control.is_none() {
                    self.begin_control(ctx, ControlKind::Refresh);
                }
                return;
            }
            let task = self.queue.pop_front().expect("queue nonempty");
            // One chunk span per part index, opened at first launch and
            // spanning every retry and throttle wait of that part.
            if !self.chunk_spans[task.idx].is_some() {
                let (t, parent) = (ctx.now().as_nanos(), self.span);
                let (idx, part_bytes) = (task.idx, self.parts[task.idx]);
                self.chunk_spans[task.idx] =
                    ctx.telemetry()
                        .span_begin_with(t, Category::Chunk, "part", parent, |a| {
                            a.set("index", idx).set("bytes", part_bytes);
                        });
            }
            let outcome = self.provider.faults.roll(ctx.rng());
            if let FaultOutcome::Throttled { wait } = outcome {
                self.throttles += 1;
                ctx.telemetry().counter_add("cloudstore.throttles", 1);
                let (t, span) = (ctx.now().as_nanos(), self.chunk_spans[task.idx]);
                let wait_ms = wait.as_millis_f64();
                ctx.telemetry()
                    .event(t, Category::Chunk, "chunk.throttled", span, |a| {
                        a.set("wait_ms", wait_ms);
                    });
                // Throttles charge the shared retry budget too — a frontend
                // answering 429 forever must terminate, not spin.
                if let Err(e) = self.retry.charge(self.frontend, ctx.now(), wait) {
                    self.finish_exhausted(ctx, e);
                    return;
                }
                self.waiting_throttle = true;
                self.queue.push_front(task);
                ctx.set_timer(wait, TIMER_THROTTLE);
                return;
            }
            let part = self.parts[task.idx];
            let p = &self.provider.protocol;
            let think = p.server_time_for_part(part);
            let req = part + p.per_chunk_header;
            let resp = p.per_chunk_response;
            let pid = self.spawn_rpc(
                ctx,
                self.frontend,
                req,
                resp,
                think,
                "rpc.part",
                self.chunk_spans[task.idx],
            );
            self.inflight.insert(pid, PartAttempt { task, outcome });
        }
        self.maybe_finish(ctx);
    }

    fn maybe_finish(&mut self, ctx: &mut Ctx<'_>) {
        if self.finishing
            || self.completed < self.parts.len()
            || !self.inflight.is_empty()
            || !self.offset_queries.is_empty()
        {
            return;
        }
        self.finishing = true;
        if self.provider.protocol.has_finish_rpc() {
            self.begin_control(ctx, ControlKind::Finish);
        } else {
            self.finish_ok(ctx);
        }
    }

    fn finish_ok(&mut self, ctx: &mut Ctx<'_>) {
        let stats = TransferStats {
            bytes: self.bytes,
            elapsed: ctx.now().saturating_sub(self.started),
            rpcs: self.rpcs,
            retries: self.retries,
            throttles: self.throttles,
            token_refreshes: self.token_refreshes,
            wire_bytes: self.wire_bytes,
        };
        let provider = self.provider.kind.display_name();
        let bytes = self.bytes;
        ctx.telemetry().counter_add_dyn(
            || format!("cloudstore.bytes.{}", obs::metric_segment(provider)),
            bytes,
        );
        let (t, span) = (ctx.now().as_nanos(), self.span);
        ctx.telemetry().span_end(t, span);
        ctx.finish(stats.to_value());
    }

    /// End the session span on an unrecoverable error before finishing.
    /// Queued and in-flight chunk spans are still open at this point; close
    /// them too so aborted sessions export balanced traces.
    fn finish_err(&mut self, ctx: &mut Ctx<'_>, e: NetError) {
        let (t, span) = (ctx.now().as_nanos(), self.span);
        ctx.telemetry()
            .event(t, Category::Session, "session.error", span, |a| {
                a.set("error", e.to_string());
            });
        for chunk in self.chunk_spans.iter_mut() {
            if chunk.is_some() {
                ctx.telemetry().span_end(t, *chunk);
                *chunk = SpanId::NONE;
            }
        }
        ctx.telemetry().span_end(t, span);
        ctx.finish(Value::Error(e));
    }

    /// Abort because the retry budget or deadline ran out.
    fn finish_exhausted(&mut self, ctx: &mut Ctx<'_>, e: NetError) {
        let counter = match e {
            NetError::DeadlineExceeded { .. } => "cloudstore.retry.deadline_exceeded",
            _ => "cloudstore.retry.budget_exhausted",
        };
        ctx.telemetry().counter_add(counter, 1);
        self.finish_err(ctx, e);
    }

    fn on_part_done(&mut self, ctx: &mut Ctx<'_>, attempt: PartAttempt) {
        match attempt.outcome {
            FaultOutcome::Ok => {
                self.completed += 1;
                let t = ctx.now().as_nanos();
                ctx.telemetry()
                    .span_end(t, self.chunk_spans[attempt.task.idx]);
                // Mark it closed so an abort later never double-ends it.
                self.chunk_spans[attempt.task.idx] = SpanId::NONE;
                self.pump(ctx);
            }
            FaultOutcome::TransientError => {
                self.retries += 1;
                ctx.telemetry().counter_add("cloudstore.retries", 1);
                let attempts = attempt.task.attempts + 1;
                if attempts > self.provider.faults.max_retries {
                    self.finish_err(
                        ctx,
                        NetError::Blocked {
                            at: self.frontend,
                            reason: "part upload exceeded max retries",
                        },
                    );
                    return;
                }
                let backoff = self.retry.policy().backoff(attempts, ctx.rng());
                if let Err(e) = self.retry.charge(self.frontend, ctx.now(), backoff) {
                    self.finish_exhausted(ctx, e);
                    return;
                }
                let (t, span) = (ctx.now().as_nanos(), self.chunk_spans[attempt.task.idx]);
                let backoff_ms = backoff.as_millis_f64();
                ctx.telemetry()
                    .event(t, Category::Chunk, "chunk.retry", span, |a| {
                        a.set("attempt", attempts).set("backoff_ms", backoff_ms);
                    });
                // The attempt count rides in the timer tag (authoritative);
                // the map stays as a consistency cross-check.
                let tag = TIMER_BACKOFF_BASE
                    + ((attempts as u64) << TIMER_ATTEMPT_SHIFT)
                    + attempt.task.idx as u64;
                ctx.set_timer(backoff, tag);
                self.queue_retry_attempts.insert(attempt.task.idx, attempts);
                self.pump(ctx);
            }
            FaultOutcome::Throttled { .. } => {
                unreachable!("throttled attempts never reach the wire")
            }
        }
    }

    fn begin_offset_query(&mut self, ctx: &mut Ctx<'_>, task: PartTask) {
        // Resumable protocols ask the server how much it holds before
        // resending (Drive: PUT with Content-Range */N; Dropbox/OneDrive
        // have equivalent status calls).
        let pid = self.spawn_rpc(
            ctx,
            self.frontend,
            400,
            300,
            SimTime::from_millis(15),
            "rpc.offset",
            self.chunk_spans[task.idx],
        );
        self.offset_queries.insert(pid, task);
    }
}

impl Process for UploadSession {
    fn poll(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Started => {
                self.started = ctx.now();
                self.frontend = self.provider.frontend_for(ctx.topology(), self.client);
                // Anchor the deadline (if any) to the real start instant.
                self.retry = RetryState::start(*self.retry.policy(), self.started);
                self.parts = self.provider.protocol.parts(self.bytes);
                let (t, parent) = (ctx.now().as_nanos(), self.parent_span);
                let (provider, bytes, parts, parallelism) = (
                    self.provider.kind.display_name(),
                    self.bytes,
                    self.parts.len(),
                    self.opts.parallelism,
                );
                let vantage = ctx.topology().node(self.client).name.clone();
                self.span = ctx.telemetry().span_begin_with(
                    t,
                    Category::Session,
                    "upload-session",
                    parent,
                    |a| {
                        a.set("provider", provider)
                            .set("bytes", bytes)
                            .set("parts", parts)
                            .set("parallelism", parallelism)
                            .set("vantage", vantage);
                    },
                );
                if self.parts.is_empty() {
                    self.finish_err(ctx, NetError::EmptyTransfer);
                    return;
                }
                self.chunk_spans = vec![SpanId::NONE; self.parts.len()];
                self.queue = (0..self.parts.len())
                    .map(|idx| PartTask { idx, attempts: 0 })
                    .collect();
                match self.opts.token {
                    TokenPolicy::Fresh => self.begin_control(ctx, ControlKind::Auth),
                    TokenPolicy::Expired => self.begin_control(ctx, ControlKind::Refresh),
                    TokenPolicy::Cached => {
                        self.token = Some(TokenState::issued(ctx.now(), &self.provider.auth));
                        self.begin_control(ctx, ControlKind::Init);
                    }
                }
            }
            Event::ChildDone { child, value } => {
                if let Value::Error(e) = value {
                    self.finish_err(ctx, e);
                    return;
                }
                if let Some((pid, kind)) = self.control {
                    if pid == child {
                        self.control = None;
                        match kind {
                            ControlKind::Auth | ControlKind::Refresh => {
                                self.token =
                                    Some(TokenState::issued(ctx.now(), &self.provider.auth));
                                if self.initialized {
                                    self.pump(ctx);
                                } else {
                                    self.begin_control(ctx, ControlKind::Init);
                                }
                            }
                            ControlKind::Init => {
                                self.initialized = true;
                                self.pump(ctx);
                            }
                            ControlKind::Finish => self.finish_ok(ctx),
                        }
                        return;
                    }
                }
                if let Some(attempt) = self.inflight.remove(&child) {
                    self.on_part_done(ctx, attempt);
                    return;
                }
                if let Some(task) = self.offset_queries.remove(&child) {
                    self.queue.push_front(task);
                    self.pump(ctx);
                }
            }
            Event::Timer {
                tag: TIMER_THROTTLE,
            } => {
                self.waiting_throttle = false;
                self.pump(ctx);
            }
            Event::Timer { tag } if tag >= TIMER_BACKOFF_BASE => {
                let payload = tag - TIMER_BACKOFF_BASE;
                let idx = (payload & ((1u64 << TIMER_ATTEMPT_SHIFT) - 1)) as usize;
                let attempts = (payload >> TIMER_ATTEMPT_SHIFT) as u32;
                // The timer-carried count is authoritative; losing the map
                // entry would silently restart the part's retry streak.
                let stored = self.queue_retry_attempts.remove(&idx);
                debug_assert_eq!(
                    stored,
                    Some(attempts),
                    "retry-attempt bookkeeping lost for part {idx}"
                );
                self.begin_offset_query(ctx, PartTask { idx, attempts });
            }
            _ => {}
        }
    }

    fn name(&self) -> &'static str {
        "upload-session"
    }

    fn abort(&mut self, ctx: &mut Ctx<'_>) {
        // Abandoned mid-transfer (e.g. the driver above us finished): close
        // every open chunk span and the session span so exported traces
        // stay balanced. In-flight RPC children clean up in their own
        // abort callbacks.
        let t = ctx.now().as_nanos();
        for chunk in self.chunk_spans.iter_mut() {
            if chunk.is_some() {
                ctx.telemetry().span_end(t, *chunk);
                *chunk = SpanId::NONE;
            }
        }
        ctx.telemetry().span_end(t, self.span);
    }
}

/// Run a complete upload on a simulator and return its stats.
pub fn upload(
    sim: &mut netsim::engine::Sim,
    client: NodeId,
    provider: &Provider,
    bytes: u64,
    opts: UploadOptions,
) -> Result<TransferStats, NetError> {
    upload_traced(sim, client, provider, bytes, opts, SpanId::NONE)
}

/// Like [`upload`], nesting the session's telemetry span under `parent`.
pub fn upload_traced(
    sim: &mut netsim::engine::Sim,
    client: NodeId,
    provider: &Provider,
    bytes: u64,
    opts: UploadOptions,
    parent: SpanId,
) -> Result<TransferStats, NetError> {
    let session =
        UploadSession::new(client, provider.clone(), bytes, opts).with_parent_span(parent);
    match sim.run_process(Box::new(session))? {
        Value::Error(e) => Err(e),
        v => Ok(TransferStats::from_value(&v)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use crate::protocol::ProviderKind;
    use netsim::geo::GeoPoint;
    use netsim::prelude::*;
    use netsim::units::MB;

    fn setup(mbps: f64) -> (Sim, NodeId, Provider) {
        let mut b = TopologyBuilder::new();
        let client = b.host("client", GeoPoint::new(49.0, -123.0));
        let pop = b.datacenter("pop", GeoPoint::new(37.0, -122.0));
        b.duplex(
            client,
            pop,
            LinkParams::new(Bandwidth::from_mbps(mbps), SimTime::from_millis(15)),
        );
        let provider = Provider::new(ProviderKind::GoogleDrive, pop);
        (Sim::new(b.build(), 1), client, provider)
    }

    #[test]
    fn upload_completes_with_sane_time() {
        let (mut sim, client, provider) = setup(80.0); // 10 MB/s
        let stats = upload(
            &mut sim,
            client,
            &provider,
            10 * MB,
            UploadOptions::warm(FlowClass::Commodity),
        )
        .unwrap();
        let s = stats.elapsed.as_secs_f64();
        // Fluid bound is 1 s; chunking and think time add some.
        assert!((1.0..3.0).contains(&s), "elapsed {s}");
        assert_eq!(stats.bytes, 10 * MB);
        // 10 MB / 8 MiB chunks = 2 parts + init.
        assert_eq!(stats.rpcs, 3);
        assert_eq!(stats.retries, 0);
    }

    #[test]
    fn cold_start_pays_oauth() {
        let (mut sim, client, provider) = setup(80.0);
        let warm = upload(
            &mut sim,
            client,
            &provider,
            10 * MB,
            UploadOptions::warm(FlowClass::Commodity),
        )
        .unwrap();
        let (mut sim2, client2, provider2) = setup(80.0);
        let cold = upload(
            &mut sim2,
            client2,
            &provider2,
            10 * MB,
            UploadOptions::cold(FlowClass::Commodity),
        )
        .unwrap();
        assert!(
            cold.elapsed > warm.elapsed,
            "cold {} warm {}",
            cold.elapsed,
            warm.elapsed
        );
        assert_eq!(cold.rpcs, warm.rpcs + 1);
    }

    #[test]
    fn small_files_dominated_by_round_trips() {
        let (mut sim, client, provider) = setup(800.0); // very fast link
        let stats = upload(
            &mut sim,
            client,
            &provider,
            MB,
            UploadOptions::warm(FlowClass::Commodity),
        )
        .unwrap();
        assert!(
            stats.elapsed > SimTime::from_millis(100),
            "elapsed {}",
            stats.elapsed
        );
    }

    #[test]
    fn flaky_provider_retries_and_succeeds() {
        let (mut sim, client, provider) = setup(80.0);
        let provider = provider.with_faults(FaultPlan::flaky());
        let stats = upload(
            &mut sim,
            client,
            &provider,
            100 * MB,
            UploadOptions::warm(FlowClass::Commodity),
        )
        .unwrap();
        assert_eq!(stats.bytes, 100 * MB);
        assert!(stats.retries + stats.throttles > 0, "no faults at all?");
        assert!(stats.wire_bytes > 100 * MB);
    }

    #[test]
    fn hopeless_provider_gives_up() {
        let (mut sim, client, provider) = setup(80.0);
        let mut faults = FaultPlan::flaky();
        faults.transient_prob = 1.0; // every part fails
        faults.throttle_prob = 0.0;
        let provider = provider.with_faults(faults);
        let err = upload(
            &mut sim,
            client,
            &provider,
            10 * MB,
            UploadOptions::warm(FlowClass::Commodity),
        )
        .unwrap_err();
        assert!(matches!(err, NetError::Blocked { .. }));
    }

    #[test]
    fn long_upload_refreshes_token() {
        // Slow link: 100 MB at 0.2 Mbps (25 KB/s) ≈ 4000 s > 3600 s token
        // lifetime, so the session must refresh mid-transfer.
        let (mut sim, client, provider) = setup(0.2);
        let stats = upload(
            &mut sim,
            client,
            &provider,
            100 * MB,
            UploadOptions::warm(FlowClass::Commodity),
        )
        .unwrap();
        assert!(stats.token_refreshes >= 1, "token never refreshed");
        assert_eq!(stats.bytes, 100 * MB);
    }

    #[test]
    fn zero_byte_upload_rejected() {
        let (mut sim, client, provider) = setup(10.0);
        let err = upload(&mut sim, client, &provider, 0, UploadOptions::default()).unwrap_err();
        assert_eq!(err, NetError::EmptyTransfer);
    }

    #[test]
    fn dropbox_finish_rpc_counted() {
        let mut b = TopologyBuilder::new();
        let client = b.host("client", GeoPoint::new(49.0, -123.0));
        let pop = b.datacenter("pop", GeoPoint::new(39.0, -77.0));
        b.duplex(
            client,
            pop,
            LinkParams::new(Bandwidth::from_mbps(80.0), SimTime::from_millis(30)),
        );
        let provider = Provider::new(ProviderKind::Dropbox, pop);
        let mut sim = Sim::new(b.build(), 1);
        let stats = upload(
            &mut sim,
            client,
            &provider,
            10 * MB,
            UploadOptions::warm(FlowClass::Commodity),
        )
        .unwrap();
        // 10 MB / 4 MiB = 3 parts + init + finish.
        assert_eq!(stats.rpcs, 5);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut b = TopologyBuilder::new();
            let client = b.host("client", GeoPoint::new(49.0, -123.0));
            let pop = b.datacenter("pop", GeoPoint::new(37.0, -122.0));
            b.duplex(
                client,
                pop,
                LinkParams::new(Bandwidth::from_mbps(40.0), SimTime::from_millis(20)),
            );
            // Dropbox's 4 MiB parts give 100 MB ≈ 24 fault rolls per run.
            let provider =
                Provider::new(ProviderKind::Dropbox, pop).with_faults(FaultPlan::flaky());
            let mut sim = Sim::new(b.build(), seed);
            upload(
                &mut sim,
                client,
                &provider,
                100 * MB,
                UploadOptions::warm(FlowClass::Commodity),
            )
            .unwrap()
        };
        assert_eq!(run(5), run(5));
        let distinct: std::collections::HashSet<_> = [run(5), run(6), run(7)]
            .iter()
            .map(|s| s.elapsed.as_nanos())
            .collect();
        assert!(distinct.len() > 1, "all seeds produced identical timings");
    }

    #[test]
    fn parallel_parts_hide_round_trips() {
        // High-RTT, high-bandwidth path: serial parts idle the pipe during
        // per-part think time + RTT; parallelism fills it.
        let mut b = TopologyBuilder::new();
        let client = b.host("client", GeoPoint::new(49.0, -123.0));
        let pop = b.datacenter("pop", GeoPoint::new(39.0, -77.0));
        b.duplex(
            client,
            pop,
            LinkParams::new(Bandwidth::from_mbps(400.0), SimTime::from_millis(60)),
        );
        let provider = Provider::new(ProviderKind::Dropbox, pop);
        let topo = b.build();
        let serial = upload(
            &mut Sim::new(topo.clone(), 1),
            client,
            &provider,
            100 * MB,
            UploadOptions::warm(FlowClass::Commodity),
        )
        .unwrap();
        let parallel = upload(
            &mut Sim::new(topo, 1),
            client,
            &provider,
            100 * MB,
            UploadOptions::warm(FlowClass::Commodity).with_parallelism(4),
        )
        .unwrap();
        assert!(
            parallel.elapsed < serial.elapsed,
            "parallel {} !< serial {}",
            parallel.elapsed,
            serial.elapsed
        );
        // Same parts, same control RPCs — only the overlap differs.
        assert_eq!(parallel.rpcs, serial.rpcs);
        assert_eq!(parallel.bytes, serial.bytes);
    }

    #[test]
    fn parallel_parts_with_faults_complete() {
        let (mut sim, client, provider) = setup(80.0);
        let provider = provider.with_faults(FaultPlan::flaky());
        let stats = upload(
            &mut sim,
            client,
            &provider,
            100 * MB,
            UploadOptions::warm(FlowClass::Commodity).with_parallelism(3),
        )
        .unwrap();
        assert_eq!(stats.bytes, 100 * MB);
        assert!(stats.retries + stats.throttles > 0);
    }

    #[test]
    #[should_panic(expected = "parallelism")]
    fn zero_parallelism_rejected() {
        UploadOptions::default().with_parallelism(0);
    }
}
