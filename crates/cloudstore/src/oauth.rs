//! OAuth2 authorization (RFC 6749), as the three providers use it.
//!
//! The simulation models the parts that cost wall-clock time: the initial
//! grant exchange (two round trips to the auth endpoint: authorization +
//! token), bearer-token expiry, and the refresh exchange (one round trip).
//! Campaigns that reuse a process-wide token cache skip the grant on warm
//! runs — one reason the paper's protocol discards the first runs.

use netsim::time::SimTime;
use netsim::topology::NodeId;

/// Authorization-endpoint configuration for one provider.
#[derive(Debug, Clone, Copy)]
pub struct AuthConfig {
    /// Node hosting the token endpoint (usually the provider frontend).
    pub server: NodeId,
    /// Lifetime of issued access tokens (3600 s for all three providers).
    pub token_lifetime: SimTime,
    /// Server processing time for a grant.
    pub grant_server_time: SimTime,
    /// Server processing time for a refresh.
    pub refresh_server_time: SimTime,
    /// Request/response sizes of the grant exchange.
    pub grant_bytes: (u64, u64),
    /// Request/response sizes of the refresh exchange.
    pub refresh_bytes: (u64, u64),
}

impl AuthConfig {
    /// Standard configuration pointing at `server`.
    pub fn standard(server: NodeId) -> Self {
        AuthConfig {
            server,
            token_lifetime: SimTime::from_secs(3600),
            grant_server_time: SimTime::from_millis(120),
            refresh_server_time: SimTime::from_millis(60),
            grant_bytes: (900, 1200),
            refresh_bytes: (600, 900),
        }
    }
}

/// How a session obtains its bearer token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenPolicy {
    /// No cached token: perform the full grant (cold first run).
    Fresh,
    /// A previously-issued token is cached and still valid: no auth traffic.
    Cached,
    /// A cached token that has expired: perform a refresh exchange.
    Expired,
}

/// Bearer-token state tracked by a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenState {
    /// When the token stops being accepted.
    pub expires_at: SimTime,
}

impl TokenState {
    /// A token issued at `now` under `cfg`.
    pub fn issued(now: SimTime, cfg: &AuthConfig) -> Self {
        TokenState {
            expires_at: now + cfg.token_lifetime,
        }
    }

    /// Is the token still valid at `now`, with a safety margin so that a
    /// request signed now does not expire in flight?
    pub fn valid_at(&self, now: SimTime) -> bool {
        now + SimTime::from_secs(5) < self.expires_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_lifecycle() {
        let cfg = AuthConfig::standard(NodeId(3));
        let t = TokenState::issued(SimTime::from_secs(10), &cfg);
        assert!(t.valid_at(SimTime::from_secs(10)));
        assert!(t.valid_at(SimTime::from_secs(3000)));
        assert!(!t.valid_at(SimTime::from_secs(3606)));
        assert!(!t.valid_at(SimTime::from_secs(5000)));
    }

    #[test]
    fn safety_margin() {
        let cfg = AuthConfig::standard(NodeId(0));
        let t = TokenState::issued(SimTime::ZERO, &cfg);
        // Valid at lifetime - 6s, invalid at lifetime - 4s (5s margin).
        assert!(t.valid_at(SimTime::from_secs(3600 - 6)));
        assert!(!t.valid_at(SimTime::from_secs(3600 - 4)));
    }

    #[test]
    fn grant_is_heavier_than_refresh() {
        let cfg = AuthConfig::standard(NodeId(0));
        assert!(cfg.grant_server_time > cfg.refresh_server_time);
        assert!(cfg.grant_bytes.0 > cfg.refresh_bytes.0);
    }
}
