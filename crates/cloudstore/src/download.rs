//! Chunked downloads (ranged GETs).
//!
//! The paper's APIs support downloads through the same session machinery;
//! the paper only reports upload measurements, so this path is our
//! extension (exercised by tests and the `download` example scenario).

use crate::oauth::{TokenPolicy, TokenState};
use crate::provider::Provider;
use crate::report::TransferStats;
use crate::session::UploadOptions;
use netsim::engine::{Ctx, Event, Process, ProcessId, Value};
use netsim::error::NetError;
use netsim::rpc::{Rpc, RpcSpec};
use netsim::time::SimTime;
use netsim::topology::NodeId;

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Idle,
    Auth,
    Metadata,
    Fetching,
}

/// Download one file from a provider; finishes with packed
/// [`TransferStats`].
pub struct DownloadSession {
    client: NodeId,
    provider: Provider,
    bytes: u64,
    opts: UploadOptions,

    state: State,
    frontend: NodeId,
    parts: Vec<u64>,
    next_part: usize,
    token: Option<TokenState>,
    pending_child: Option<ProcessId>,
    first_exchange: bool,
    started: SimTime,
    rpcs: u64,
    wire_bytes: u64,
}

impl DownloadSession {
    /// Build a download session.
    pub fn new(client: NodeId, provider: Provider, bytes: u64, opts: UploadOptions) -> Self {
        DownloadSession {
            client,
            provider,
            bytes,
            opts,
            state: State::Idle,
            frontend: NodeId(u32::MAX),
            parts: Vec::new(),
            next_part: 0,
            token: None,
            pending_child: None,
            first_exchange: true,
            started: SimTime::ZERO,
            rpcs: 0,
            wire_bytes: 0,
        }
    }

    fn rpc(&mut self, ctx: &mut Ctx<'_>, req: u64, resp: u64, think: SimTime) {
        let mut spec = RpcSpec::control(self.client, self.frontend, self.opts.class)
            .with_payload(req, resp)
            .with_server_time(think);
        if self.first_exchange {
            spec = spec.fresh();
            self.first_exchange = false;
        }
        self.rpcs += 1;
        self.wire_bytes += resp;
        self.pending_child = Some(ctx.spawn(Box::new(Rpc::new(spec))));
    }

    fn fetch_next(&mut self, ctx: &mut Ctx<'_>) {
        if self.next_part >= self.parts.len() {
            let stats = TransferStats {
                bytes: self.bytes,
                elapsed: ctx.now().saturating_sub(self.started),
                rpcs: self.rpcs,
                retries: 0,
                throttles: 0,
                token_refreshes: 0,
                wire_bytes: self.wire_bytes,
            };
            ctx.finish(stats.to_value());
            return;
        }
        let part = self.parts[self.next_part];
        let p = &self.provider.protocol;
        self.state = State::Fetching;
        // Ranged GET: small request, part-sized response.
        self.rpc(
            ctx,
            500,
            part + p.per_chunk_response,
            p.per_chunk_server_time,
        );
    }
}

impl Process for DownloadSession {
    fn poll(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Started => {
                self.started = ctx.now();
                self.frontend = self.provider.frontend_for(ctx.topology(), self.client);
                self.parts = self.provider.protocol.parts(self.bytes);
                if self.parts.is_empty() {
                    ctx.finish(Value::Error(NetError::EmptyTransfer));
                    return;
                }
                match self.opts.token {
                    TokenPolicy::Cached => {
                        self.token = Some(TokenState::issued(ctx.now(), &self.provider.auth));
                        self.state = State::Metadata;
                        let (req, resp) = self.provider.protocol.init_bytes;
                        let think = self.provider.protocol.init_server_time;
                        self.rpc(ctx, req, resp, think);
                    }
                    _ => {
                        self.state = State::Auth;
                        let (req, resp) = self.provider.auth.grant_bytes;
                        let think = self.provider.auth.grant_server_time;
                        let server = self.provider.auth.server;
                        // Auth goes to the auth endpoint, not the POP.
                        let mut spec = RpcSpec::control(self.client, server, self.opts.class)
                            .with_payload(req, resp)
                            .with_server_time(think);
                        if self.first_exchange {
                            spec = spec.fresh();
                            self.first_exchange = false;
                        }
                        self.rpcs += 1;
                        self.pending_child = Some(ctx.spawn(Box::new(Rpc::new(spec))));
                    }
                }
            }
            Event::ChildDone { child, value } => {
                if Some(child) != self.pending_child {
                    return;
                }
                self.pending_child = None;
                if let Value::Error(e) = value {
                    ctx.finish(Value::Error(e));
                    return;
                }
                match self.state {
                    State::Auth => {
                        self.token = Some(TokenState::issued(ctx.now(), &self.provider.auth));
                        self.state = State::Metadata;
                        let (req, resp) = self.provider.protocol.init_bytes;
                        let think = self.provider.protocol.init_server_time;
                        self.rpc(ctx, req, resp, think);
                    }
                    State::Metadata => self.fetch_next(ctx),
                    State::Fetching => {
                        self.next_part += 1;
                        self.fetch_next(ctx);
                    }
                    State::Idle => {}
                }
            }
            _ => {}
        }
    }

    fn name(&self) -> &'static str {
        "download-session"
    }
}

/// Run a complete download on a simulator and return its stats.
pub fn download(
    sim: &mut netsim::engine::Sim,
    client: NodeId,
    provider: &Provider,
    bytes: u64,
    opts: UploadOptions,
) -> Result<TransferStats, NetError> {
    let session = DownloadSession::new(client, provider.clone(), bytes, opts);
    match sim.run_process(Box::new(session))? {
        Value::Error(e) => Err(e),
        v => Ok(TransferStats::from_value(&v)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ProviderKind;
    use netsim::flow::FlowClass;
    use netsim::geo::GeoPoint;
    use netsim::prelude::*;
    use netsim::units::MB;

    fn setup(up_mbps: f64, down_mbps: f64) -> (Sim, NodeId, Provider) {
        let mut b = TopologyBuilder::new();
        let client = b.host("client", GeoPoint::new(49.0, -123.0));
        let pop = b.datacenter("pop", GeoPoint::new(37.0, -122.0));
        b.duplex_asym(
            client,
            pop,
            LinkParams::new(Bandwidth::from_mbps(up_mbps), SimTime::from_millis(15)),
            LinkParams::new(Bandwidth::from_mbps(down_mbps), SimTime::from_millis(15)),
        );
        let provider = Provider::new(ProviderKind::GoogleDrive, pop);
        (Sim::new(b.build(), 1), client, provider)
    }

    #[test]
    fn download_completes() {
        let (mut sim, client, provider) = setup(10.0, 80.0);
        let stats = download(
            &mut sim,
            client,
            &provider,
            10 * MB,
            UploadOptions::warm(FlowClass::Commodity),
        )
        .unwrap();
        let s = stats.elapsed.as_secs_f64();
        assert!((1.0..3.0).contains(&s), "elapsed {s}");
    }

    #[test]
    fn download_uses_downlink_not_uplink() {
        // Uplink is a trickle; a fast download proves parts flow downstream.
        let (mut sim, client, provider) = setup(2.0, 160.0);
        let stats = download(
            &mut sim,
            client,
            &provider,
            20 * MB,
            UploadOptions::warm(FlowClass::Commodity),
        )
        .unwrap();
        assert!(
            stats.elapsed < SimTime::from_secs(4),
            "download throttled by uplink: {}",
            stats.elapsed
        );
    }

    #[test]
    fn cold_download_pays_auth() {
        let (mut sim, client, provider) = setup(10.0, 80.0);
        let warm = download(
            &mut sim,
            client,
            &provider,
            10 * MB,
            UploadOptions::warm(FlowClass::Commodity),
        )
        .unwrap();
        let (mut sim2, c2, p2) = setup(10.0, 80.0);
        let cold = download(
            &mut sim2,
            c2,
            &p2,
            10 * MB,
            UploadOptions::cold(FlowClass::Commodity),
        )
        .unwrap();
        assert_eq!(cold.rpcs, warm.rpcs + 1);
        assert!(cold.elapsed > warm.elapsed);
    }

    #[test]
    fn zero_byte_download_rejected() {
        let (mut sim, client, provider) = setup(10.0, 10.0);
        let err = download(&mut sim, client, &provider, 0, UploadOptions::default()).unwrap_err();
        assert_eq!(err, NetError::EmptyTransfer);
    }
}
