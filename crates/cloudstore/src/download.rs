//! Chunked downloads (ranged GETs).
//!
//! The paper's APIs support downloads through the same session machinery;
//! the paper only reports upload measurements, so this path is our
//! extension (exercised by tests and the `download` example scenario).
//!
//! Downloads share the provider's [`FaultPlan`](crate::faults::FaultPlan)
//! and the resilience plane ([`crate::resilience`]): ranged GETs can be
//! throttled (`429`) or fail transiently (`5xx`), both of which charge the
//! session-wide retry budget and respect an optional deadline. Fault rolls
//! are gated on [`FaultPlan::is_active`](crate::faults::FaultPlan::is_active)
//! so fault-free downloads draw nothing from the shared simulation PRNG.

use crate::faults::FaultOutcome;
use crate::oauth::{TokenPolicy, TokenState};
use crate::provider::Provider;
use crate::report::TransferStats;
use crate::resilience::{RetryPolicy, RetryState};
use crate::session::UploadOptions;
use netsim::engine::{Ctx, Event, Process, ProcessId, Value};
use netsim::error::NetError;
use netsim::rpc::{Rpc, RpcSpec};
use netsim::time::SimTime;
use netsim::topology::NodeId;

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Idle,
    Auth,
    Metadata,
    Fetching,
}

const TIMER_THROTTLE: u64 = 1;
const TIMER_BACKOFF: u64 = 2;

/// Download one file from a provider; finishes with packed
/// [`TransferStats`].
pub struct DownloadSession {
    client: NodeId,
    provider: Provider,
    bytes: u64,
    opts: UploadOptions,

    state: State,
    frontend: NodeId,
    parts: Vec<u64>,
    next_part: usize,
    token: Option<TokenState>,
    pending_child: Option<ProcessId>,
    pending_outcome: FaultOutcome,
    attempts: u32,
    retry: RetryState,
    first_exchange: bool,
    started: SimTime,
    rpcs: u64,
    retries: u64,
    throttles: u64,
    wire_bytes: u64,
}

impl DownloadSession {
    /// Build a download session.
    pub fn new(client: NodeId, provider: Provider, bytes: u64, opts: UploadOptions) -> Self {
        let policy = opts
            .retry
            .unwrap_or_else(|| RetryPolicy::from_plan(&provider.faults));
        DownloadSession {
            client,
            provider,
            bytes,
            opts,
            state: State::Idle,
            frontend: NodeId(u32::MAX),
            parts: Vec::new(),
            next_part: 0,
            token: None,
            pending_child: None,
            pending_outcome: FaultOutcome::Ok,
            attempts: 0,
            retry: RetryState::start(policy, SimTime::ZERO),
            first_exchange: true,
            started: SimTime::ZERO,
            rpcs: 0,
            retries: 0,
            throttles: 0,
            wire_bytes: 0,
        }
    }

    fn rpc(&mut self, ctx: &mut Ctx<'_>, req: u64, resp: u64, think: SimTime) {
        let mut spec = RpcSpec::control(self.client, self.frontend, self.opts.class)
            .with_payload(req, resp)
            .with_server_time(think);
        if self.first_exchange {
            spec = spec.fresh();
            self.first_exchange = false;
        }
        self.rpcs += 1;
        self.wire_bytes += resp;
        self.pending_child = Some(ctx.spawn(Box::new(Rpc::new(spec))));
    }

    fn finish_exhausted(&mut self, ctx: &mut Ctx<'_>, e: NetError) {
        let counter = match e {
            NetError::DeadlineExceeded { .. } => "cloudstore.retry.deadline_exceeded",
            _ => "cloudstore.retry.budget_exhausted",
        };
        ctx.telemetry().counter_add(counter, 1);
        ctx.finish(Value::Error(e));
    }

    /// Advance to the next part (or finish), resetting the per-part retry
    /// streak.
    fn fetch_next(&mut self, ctx: &mut Ctx<'_>) {
        if self.next_part >= self.parts.len() {
            let stats = TransferStats {
                bytes: self.bytes,
                elapsed: ctx.now().saturating_sub(self.started),
                rpcs: self.rpcs,
                retries: self.retries,
                throttles: self.throttles,
                token_refreshes: 0,
                wire_bytes: self.wire_bytes,
            };
            ctx.finish(stats.to_value());
            return;
        }
        self.attempts = 0;
        self.fetch_current(ctx);
    }

    /// (Re-)issue the ranged GET for the current part, rolling the fault
    /// plan first. Throttles never reach the wire: they charge the budget
    /// and arm a `Retry-After` timer.
    fn fetch_current(&mut self, ctx: &mut Ctx<'_>) {
        let part = self.parts[self.next_part];
        self.state = State::Fetching;
        self.pending_outcome = if self.provider.faults.is_active() {
            self.provider.faults.roll(ctx.rng())
        } else {
            FaultOutcome::Ok
        };
        if let FaultOutcome::Throttled { wait } = self.pending_outcome {
            self.throttles += 1;
            ctx.telemetry().counter_add("cloudstore.throttles", 1);
            if let Err(e) = self.retry.charge(self.frontend, ctx.now(), wait) {
                self.finish_exhausted(ctx, e);
                return;
            }
            ctx.set_timer(wait, TIMER_THROTTLE);
            return;
        }
        let per_chunk_response = self.provider.protocol.per_chunk_response;
        let per_chunk_server_time = self.provider.protocol.per_chunk_server_time;
        // Ranged GET: small request, part-sized response.
        self.rpc(ctx, 500, part + per_chunk_response, per_chunk_server_time);
    }

    fn on_part_done(&mut self, ctx: &mut Ctx<'_>) {
        match self.pending_outcome {
            FaultOutcome::Ok => {
                self.next_part += 1;
                self.fetch_next(ctx);
            }
            FaultOutcome::TransientError => {
                self.retries += 1;
                ctx.telemetry().counter_add("cloudstore.retries", 1);
                self.attempts += 1;
                if self.attempts > self.provider.faults.max_retries {
                    ctx.finish(Value::Error(NetError::Blocked {
                        at: self.frontend,
                        reason: "part download exceeded max retries",
                    }));
                    return;
                }
                let backoff = self.retry.policy().backoff(self.attempts, ctx.rng());
                if let Err(e) = self.retry.charge(self.frontend, ctx.now(), backoff) {
                    self.finish_exhausted(ctx, e);
                    return;
                }
                ctx.set_timer(backoff, TIMER_BACKOFF);
            }
            FaultOutcome::Throttled { .. } => {
                unreachable!("throttled GETs never reach the wire")
            }
        }
    }
}

impl Process for DownloadSession {
    fn poll(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Started => {
                self.started = ctx.now();
                self.frontend = self.provider.frontend_for(ctx.topology(), self.client);
                // Anchor the deadline (if any) to the real start instant.
                self.retry = RetryState::start(*self.retry.policy(), self.started);
                self.parts = self.provider.protocol.parts(self.bytes);
                if self.parts.is_empty() {
                    ctx.finish(Value::Error(NetError::EmptyTransfer));
                    return;
                }
                match self.opts.token {
                    TokenPolicy::Cached => {
                        self.token = Some(TokenState::issued(ctx.now(), &self.provider.auth));
                        self.state = State::Metadata;
                        let (req, resp) = self.provider.protocol.init_bytes;
                        let think = self.provider.protocol.init_server_time;
                        self.rpc(ctx, req, resp, think);
                    }
                    _ => {
                        self.state = State::Auth;
                        let (req, resp) = self.provider.auth.grant_bytes;
                        let think = self.provider.auth.grant_server_time;
                        let server = self.provider.auth.server;
                        // Auth goes to the auth endpoint, not the POP.
                        let mut spec = RpcSpec::control(self.client, server, self.opts.class)
                            .with_payload(req, resp)
                            .with_server_time(think);
                        if self.first_exchange {
                            spec = spec.fresh();
                            self.first_exchange = false;
                        }
                        self.rpcs += 1;
                        self.pending_child = Some(ctx.spawn(Box::new(Rpc::new(spec))));
                    }
                }
            }
            Event::ChildDone { child, value } => {
                if Some(child) != self.pending_child {
                    return;
                }
                self.pending_child = None;
                if let Value::Error(e) = value {
                    ctx.finish(Value::Error(e));
                    return;
                }
                match self.state {
                    State::Auth => {
                        self.token = Some(TokenState::issued(ctx.now(), &self.provider.auth));
                        self.state = State::Metadata;
                        let (req, resp) = self.provider.protocol.init_bytes;
                        let think = self.provider.protocol.init_server_time;
                        self.rpc(ctx, req, resp, think);
                    }
                    State::Metadata => self.fetch_next(ctx),
                    State::Fetching => self.on_part_done(ctx),
                    State::Idle => {}
                }
            }
            Event::Timer { tag } if tag == TIMER_THROTTLE || tag == TIMER_BACKOFF => {
                self.fetch_current(ctx);
            }
            _ => {}
        }
    }

    fn name(&self) -> &'static str {
        "download-session"
    }
}

/// Run a complete download on a simulator and return its stats.
pub fn download(
    sim: &mut netsim::engine::Sim,
    client: NodeId,
    provider: &Provider,
    bytes: u64,
    opts: UploadOptions,
) -> Result<TransferStats, NetError> {
    let session = DownloadSession::new(client, provider.clone(), bytes, opts);
    match sim.run_process(Box::new(session))? {
        Value::Error(e) => Err(e),
        v => Ok(TransferStats::from_value(&v)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use crate::protocol::ProviderKind;
    use netsim::flow::FlowClass;
    use netsim::geo::GeoPoint;
    use netsim::prelude::*;
    use netsim::units::MB;

    fn setup(up_mbps: f64, down_mbps: f64) -> (Sim, NodeId, Provider) {
        let mut b = TopologyBuilder::new();
        let client = b.host("client", GeoPoint::new(49.0, -123.0));
        let pop = b.datacenter("pop", GeoPoint::new(37.0, -122.0));
        b.duplex_asym(
            client,
            pop,
            LinkParams::new(Bandwidth::from_mbps(up_mbps), SimTime::from_millis(15)),
            LinkParams::new(Bandwidth::from_mbps(down_mbps), SimTime::from_millis(15)),
        );
        let provider = Provider::new(ProviderKind::GoogleDrive, pop);
        (Sim::new(b.build(), 1), client, provider)
    }

    #[test]
    fn download_completes() {
        let (mut sim, client, provider) = setup(10.0, 80.0);
        let stats = download(
            &mut sim,
            client,
            &provider,
            10 * MB,
            UploadOptions::warm(FlowClass::Commodity),
        )
        .unwrap();
        let s = stats.elapsed.as_secs_f64();
        assert!((1.0..3.0).contains(&s), "elapsed {s}");
    }

    #[test]
    fn download_uses_downlink_not_uplink() {
        // Uplink is a trickle; a fast download proves parts flow downstream.
        let (mut sim, client, provider) = setup(2.0, 160.0);
        let stats = download(
            &mut sim,
            client,
            &provider,
            20 * MB,
            UploadOptions::warm(FlowClass::Commodity),
        )
        .unwrap();
        assert!(
            stats.elapsed < SimTime::from_secs(4),
            "download throttled by uplink: {}",
            stats.elapsed
        );
    }

    #[test]
    fn cold_download_pays_auth() {
        let (mut sim, client, provider) = setup(10.0, 80.0);
        let warm = download(
            &mut sim,
            client,
            &provider,
            10 * MB,
            UploadOptions::warm(FlowClass::Commodity),
        )
        .unwrap();
        let (mut sim2, c2, p2) = setup(10.0, 80.0);
        let cold = download(
            &mut sim2,
            c2,
            &p2,
            10 * MB,
            UploadOptions::cold(FlowClass::Commodity),
        )
        .unwrap();
        assert_eq!(cold.rpcs, warm.rpcs + 1);
        assert!(cold.elapsed > warm.elapsed);
    }

    #[test]
    fn zero_byte_download_rejected() {
        let (mut sim, client, provider) = setup(10.0, 10.0);
        let err = download(&mut sim, client, &provider, 0, UploadOptions::default()).unwrap_err();
        assert_eq!(err, NetError::EmptyTransfer);
    }

    #[test]
    fn flaky_download_retries_and_succeeds() {
        // Dropbox's 4 MiB parts give 100 MB ≈ 24 fault rolls per run.
        let (mut sim, client, mut provider) = setup(10.0, 80.0);
        provider =
            Provider::new(ProviderKind::Dropbox, provider.pops[0]).with_faults(FaultPlan::flaky());
        let flaky = download(
            &mut sim,
            client,
            &provider,
            100 * MB,
            UploadOptions::warm(FlowClass::Commodity),
        )
        .unwrap();
        let (mut sim2, c2, p2) = setup(10.0, 80.0);
        let p2 = Provider::new(ProviderKind::Dropbox, p2.pops[0]);
        let clean = download(
            &mut sim2,
            c2,
            &p2,
            100 * MB,
            UploadOptions::warm(FlowClass::Commodity),
        )
        .unwrap();
        assert_eq!(flaky.bytes, clean.bytes);
        assert!(
            flaky.retries + flaky.throttles > 0,
            "expected at least one injected fault over 40 MB"
        );
        assert!(flaky.elapsed >= clean.elapsed);
    }

    #[test]
    fn hopeless_throttling_download_terminates() {
        let (mut sim, client, mut provider) = setup(10.0, 80.0);
        provider.faults.throttle_prob = 1.0;
        let err = download(
            &mut sim,
            client,
            &provider,
            10 * MB,
            UploadOptions::warm(FlowClass::Commodity),
        )
        .unwrap_err();
        assert!(
            matches!(err, NetError::RetryBudgetExhausted { .. }),
            "expected budget exhaustion, got {err}"
        );
    }

    #[test]
    fn download_deadline_enforced() {
        let (mut sim, client, mut provider) = setup(10.0, 80.0);
        provider.faults = FaultPlan::flaky();
        provider.faults.throttle_prob = 0.5;
        let policy =
            RetryPolicy::from_plan(&provider.faults).with_deadline(SimTime::from_millis(200));
        let err = download(
            &mut sim,
            client,
            &provider,
            40 * MB,
            UploadOptions::warm(FlowClass::Commodity).with_retry(policy),
        )
        .unwrap_err();
        assert!(
            matches!(err, NetError::DeadlineExceeded { .. }),
            "expected deadline exceeded, got {err}"
        );
    }

    #[test]
    fn fault_free_download_unchanged_by_resilience_plumbing() {
        // FaultPlan::none() must draw nothing from the PRNG: two identical
        // sims, one nominally carrying a retry policy, time out identically.
        let (mut sim, client, provider) = setup(10.0, 80.0);
        let base = download(
            &mut sim,
            client,
            &provider,
            10 * MB,
            UploadOptions::warm(FlowClass::Commodity),
        )
        .unwrap();
        let (mut sim2, c2, p2) = setup(10.0, 80.0);
        let policy = RetryPolicy::from_plan(&p2.faults).with_deadline(SimTime::from_secs(3600));
        let with_policy = download(
            &mut sim2,
            c2,
            &p2,
            10 * MB,
            UploadOptions::warm(FlowClass::Commodity).with_retry(policy),
        )
        .unwrap();
        assert_eq!(base.elapsed, with_policy.elapsed);
        assert_eq!(base.rpcs, with_policy.rpcs);
    }
}
