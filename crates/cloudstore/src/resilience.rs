//! The shared resilience plane: retry budgets, deadlines, jittered
//! backoff, and per-frontend circuit breakers.
//!
//! Every transfer path (uploads, downloads, rsync legs, store-and-forward
//! relays, pipelined relays) retries injected faults through the same
//! [`RetryPolicy`]:
//!
//! * a session-wide retry **budget** shared by `429` throttles and `5xx`
//!   transient errors, so a hopeless endpoint terminates in bounded sim
//!   time instead of spinning forever (throttles used to be uncounted);
//! * exponential backoff with optional **deterministic jitter** drawn from
//!   the simulation PRNG — reproducible per seed, and never drawn on the
//!   fault-free path so healthy-run timings stay byte-identical;
//! * an optional hard **deadline** in sim time, checked before every
//!   retry wait is scheduled.
//!
//! [`CircuitBreaker`] adds endpoint health state on top: closed → open
//! after N consecutive failures → half-open probe after a cooldown — the
//! standard pattern (Nygard's *Release It!*), keyed per frontend node in a
//! [`BreakerRegistry`] that `core::failover` and `core::monitor` share so
//! campaigns skip dead routes instead of grinding through them.

use crate::faults::FaultPlan;
use netsim::error::NetError;
use netsim::time::SimTime;
use netsim::topology::NodeId;
use rand::rngs::SmallRng;
use rand::Rng;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Jitter applied to backoff waits, in percent of the nominal wait. The
/// default spreads retries over ±25% so synchronized clients don't
/// re-stampede a recovering frontend in lockstep.
pub const DEFAULT_JITTER_PCT: u32 = 25;

/// Budget multiplier over a plan's per-part `max_retries`: the session-wide
/// budget must be loose enough that a mildly flaky transfer with many parts
/// still completes, while a hopeless endpoint dies in bounded time.
const BUDGET_PER_MAX_RETRIES: u32 = 4;

/// How a transfer path retries under faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Session-wide retry budget shared by throttles and transient errors.
    /// Each injected fault charges one unit; at zero the transfer fails
    /// with [`NetError::RetryBudgetExhausted`].
    pub budget: u32,
    /// Base backoff before the first `5xx` retry; doubles per attempt.
    pub backoff_base: SimTime,
    /// Maximum doublings of `backoff_base` (saturation exponent).
    pub max_doublings: u32,
    /// Backoff jitter in percent of the nominal wait (0 = deterministic
    /// waits, no PRNG draw).
    pub jitter_pct: u32,
    /// Optional hard deadline, measured from transfer start in sim time.
    pub deadline: Option<SimTime>,
}

impl RetryPolicy {
    /// Derive the policy a provider's fault plan implies: budget is
    /// `max_retries × 4`, backoff parameters are the plan's, default
    /// jitter, no deadline.
    pub fn from_plan(plan: &FaultPlan) -> Self {
        RetryPolicy {
            budget: plan
                .max_retries
                .saturating_mul(BUDGET_PER_MAX_RETRIES)
                .max(1),
            backoff_base: plan.backoff_base,
            max_doublings: 8,
            jitter_pct: DEFAULT_JITTER_PCT,
            deadline: None,
        }
    }

    /// Override the retry budget.
    pub fn with_budget(mut self, budget: u32) -> Self {
        assert!(budget >= 1, "budget must be at least 1");
        self.budget = budget;
        self
    }

    /// Set a hard deadline measured from transfer start.
    pub fn with_deadline(mut self, deadline: SimTime) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Disable backoff jitter (bit-stable waits, no PRNG draws).
    pub fn without_jitter(mut self) -> Self {
        self.jitter_pct = 0;
        self
    }

    /// Backoff before retry `attempt` (1-based): `backoff_base` for the
    /// first retry, doubling per attempt up to `max_doublings`, then
    /// jittered by ±`jitter_pct`% with a draw from the sim PRNG. Only
    /// called on retry paths, so fault-free runs never reach the RNG.
    pub fn backoff(&self, attempt: u32, rng: &mut SmallRng) -> SimTime {
        let factor = 1u64 << attempt.saturating_sub(1).min(self.max_doublings);
        let nominal = self.backoff_base * factor;
        if self.jitter_pct == 0 {
            return nominal;
        }
        let j = self.jitter_pct as f64 / 100.0;
        let scale = 1.0 - j + 2.0 * j * rng.gen::<f64>();
        nominal.mul_f64(scale)
    }

    /// Absolute deadline instant for a transfer that started at `started`.
    pub fn deadline_at(&self, started: SimTime) -> Option<SimTime> {
        self.deadline.map(|d| started.saturating_add(d))
    }
}

/// Mutable per-transfer retry accounting against a [`RetryPolicy`].
#[derive(Debug, Clone, Copy)]
pub struct RetryState {
    policy: RetryPolicy,
    used: u32,
    deadline_at: Option<SimTime>,
}

impl RetryState {
    /// Start accounting for a transfer beginning at `started`.
    pub fn start(policy: RetryPolicy, started: SimTime) -> Self {
        RetryState {
            policy,
            used: 0,
            deadline_at: policy.deadline_at(started),
        }
    }

    /// The governing policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Budget units spent so far.
    pub fn used(&self) -> u32 {
        self.used
    }

    /// Charge one budget unit for a fault observed at `at` (node) and
    /// check that waiting `wait` from `now` stays inside the deadline.
    /// `Err` means the transfer must abort with the returned error.
    pub fn charge(&mut self, at: NodeId, now: SimTime, wait: SimTime) -> Result<(), NetError> {
        self.used += 1;
        if self.used > self.policy.budget {
            return Err(NetError::RetryBudgetExhausted {
                at,
                budget: self.policy.budget,
            });
        }
        if let Some(deadline) = self.deadline_at {
            if now.saturating_add(wait) > deadline {
                return Err(NetError::DeadlineExceeded { at });
            }
        }
        Ok(())
    }
}

/// What a success/failure record did to a breaker's state — returned so
/// instrumentation can emit trip/close events exactly at the transition
/// (the health plane's breaker timeline is built from these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerTransition {
    /// State unchanged.
    None,
    /// The breaker just opened (closed/half-open → open).
    Tripped,
    /// The breaker just closed (open/half-open → closed).
    Closed,
}

/// Circuit-breaker states: the classic three-state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    /// Healthy: all requests pass.
    Closed,
    /// Tripped: requests are rejected until the cooldown elapses.
    Open { until: SimTime },
    /// Cooldown elapsed: exactly one probe request is allowed through.
    HalfOpen,
}

/// Per-endpoint health state: closed → open after `threshold` consecutive
/// failures → half-open probe after `cooldown`.
#[derive(Debug, Clone, Copy)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: SimTime,
    consecutive_failures: u32,
    state: BreakerState,
}

impl CircuitBreaker {
    /// A closed breaker tripping after `threshold` consecutive failures,
    /// probing again `cooldown` after opening.
    pub fn new(threshold: u32, cooldown: SimTime) -> Self {
        assert!(threshold >= 1, "threshold must be at least 1");
        CircuitBreaker {
            threshold,
            cooldown,
            consecutive_failures: 0,
            state: BreakerState::Closed,
        }
    }

    /// May a request proceed at `now`? An open breaker whose cooldown has
    /// elapsed transitions to half-open and admits one probe.
    pub fn allow(&mut self, now: SimTime) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open { until } if now >= until => {
                self.state = BreakerState::HalfOpen;
                true
            }
            BreakerState::Open { .. } => false,
        }
    }

    /// Record a successful exchange: the breaker closes and the failure
    /// streak resets (a half-open probe that succeeds heals the endpoint).
    /// Returns [`BreakerTransition::Closed`] when this actually closed an
    /// open or half-open breaker.
    pub fn record_success(&mut self) -> BreakerTransition {
        self.consecutive_failures = 0;
        let was_closed = matches!(self.state, BreakerState::Closed);
        self.state = BreakerState::Closed;
        if was_closed {
            BreakerTransition::None
        } else {
            BreakerTransition::Closed
        }
    }

    /// Record a failed exchange at `now`: a half-open probe failure re-opens
    /// immediately; a closed breaker opens once the streak hits the
    /// threshold. Returns [`BreakerTransition::Tripped`] when this call
    /// transitioned the breaker from admitting requests to open.
    pub fn record_failure(&mut self, now: SimTime) -> BreakerTransition {
        self.consecutive_failures += 1;
        let trip = matches!(self.state, BreakerState::HalfOpen)
            || self.consecutive_failures >= self.threshold;
        if trip {
            let was_admitting = !matches!(self.state, BreakerState::Open { .. });
            self.state = BreakerState::Open {
                until: now.saturating_add(self.cooldown),
            };
            if was_admitting {
                return BreakerTransition::Tripped;
            }
        }
        BreakerTransition::None
    }

    /// Is the breaker currently rejecting requests (open, cooldown not
    /// elapsed)?
    pub fn is_open(&self, now: SimTime) -> bool {
        matches!(self.state, BreakerState::Open { until } if now < until)
    }

    /// Telemetry label for the current state.
    pub fn state_name(&self) -> &'static str {
        match self.state {
            BreakerState::Closed => "closed",
            BreakerState::Open { .. } => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// A `Sync` publication of breaker open-state, readable lock-free from
/// worker threads.
///
/// [`BreakerRegistry`] lives on the single-threaded simulation side
/// (`Rc<RefCell<…>>`); the route-intelligence plane serves lookups from
/// many threads and must demote detours through a tripped target within
/// one lookup. The board bridges the two: the registry publishes every
/// trip/close transition into per-node `open-until` atomics, and readers
/// ask `is_open(node, now)` with a single relaxed load. A node whose
/// cooldown deadline has passed reads as closed without any writer action,
/// mirroring [`CircuitBreaker::is_open`].
#[derive(Debug)]
pub struct TripBoard {
    /// Nanosecond deadline until which each node's breaker is open;
    /// 0 = closed. Indexed by `NodeId.0`.
    open_until_ns: Box<[AtomicU64]>,
}

impl TripBoard {
    /// A board covering nodes `0..n_nodes`, all closed.
    pub fn new(n_nodes: usize) -> Self {
        TripBoard {
            open_until_ns: (0..n_nodes).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of node slots.
    pub fn len(&self) -> usize {
        self.open_until_ns.len()
    }

    /// True when the board covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.open_until_ns.is_empty()
    }

    /// Publish a trip: `node` rejects requests until `until`. Out-of-range
    /// nodes are ignored (the board only covers the fleet's target set).
    pub fn trip(&self, node: NodeId, until: SimTime) {
        if let Some(slot) = self.open_until_ns.get(node.0 as usize) {
            slot.store(until.as_nanos().max(1), Ordering::Release);
        }
    }

    /// Publish a close: `node` admits requests again.
    pub fn close(&self, node: NodeId) {
        if let Some(slot) = self.open_until_ns.get(node.0 as usize) {
            slot.store(0, Ordering::Release);
        }
    }

    /// Is `node` rejecting requests at `now_ns`? Unknown nodes are closed.
    pub fn is_open(&self, node: NodeId, now_ns: u64) -> bool {
        self.open_until_ns
            .get(node.0 as usize)
            .map(|slot| now_ns < slot.load(Ordering::Acquire))
            .unwrap_or(false)
    }

    /// Nodes currently open at `now_ns`.
    pub fn open_count(&self, now_ns: u64) -> usize {
        self.open_until_ns
            .iter()
            .filter(|slot| now_ns < slot.load(Ordering::Acquire))
            .count()
    }
}

/// Default consecutive-failure threshold for registry breakers.
pub const DEFAULT_BREAKER_THRESHOLD: u32 = 3;
/// Default open-state cooldown for registry breakers.
pub const DEFAULT_BREAKER_COOLDOWN: SimTime = SimTime::from_secs(30);

/// A shareable map of per-endpoint circuit breakers, keyed by frontend (or
/// DTN) node. Cheap to clone — clones share state, which is what lets the
/// failover path and the route monitor feed the same health view.
/// Simulations are single-threaded (campaigns run one sim per thread), so
/// `Rc<RefCell<…>>` suffices.
#[derive(Clone)]
pub struct BreakerRegistry {
    inner: Rc<RefCell<HashMap<NodeId, CircuitBreaker>>>,
    threshold: u32,
    cooldown: SimTime,
    board: Option<Arc<TripBoard>>,
}

impl BreakerRegistry {
    /// A registry whose breakers trip after `threshold` consecutive
    /// failures and probe again after `cooldown`.
    pub fn new(threshold: u32, cooldown: SimTime) -> Self {
        assert!(threshold >= 1, "threshold must be at least 1");
        BreakerRegistry {
            inner: Rc::new(RefCell::new(HashMap::new())),
            threshold,
            cooldown,
            board: None,
        }
    }

    /// Publish every trip/close transition into `board`, making breaker
    /// state visible to `Sync` readers (the route plane's demotion path).
    pub fn with_board(mut self, board: Arc<TripBoard>) -> Self {
        self.board = Some(board);
        self
    }

    fn publish(&self, node: NodeId, transition: BreakerTransition) {
        if let Some(board) = &self.board {
            match transition {
                BreakerTransition::Tripped => {
                    let until = self
                        .inner
                        .borrow()
                        .get(&node)
                        .and_then(|b| match b.state {
                            BreakerState::Open { until } => Some(until),
                            _ => None,
                        })
                        .unwrap_or(SimTime::ZERO);
                    board.trip(node, until);
                }
                BreakerTransition::Closed => board.close(node),
                BreakerTransition::None => {}
            }
        }
    }

    /// May a request to `node` proceed at `now`?
    pub fn allow(&self, node: NodeId, now: SimTime) -> bool {
        self.inner
            .borrow_mut()
            .entry(node)
            .or_insert_with(|| CircuitBreaker::new(self.threshold, self.cooldown))
            .allow(now)
    }

    /// Record a successful exchange with `node`, reporting any state
    /// transition it caused.
    pub fn record_success(&self, node: NodeId) -> BreakerTransition {
        let transition = match self.inner.borrow_mut().get_mut(&node) {
            Some(b) => b.record_success(),
            None => BreakerTransition::None,
        };
        self.publish(node, transition);
        transition
    }

    /// Record a failed exchange with `node` at `now`, reporting any state
    /// transition it caused.
    pub fn record_failure(&self, node: NodeId, now: SimTime) -> BreakerTransition {
        let transition = self
            .inner
            .borrow_mut()
            .entry(node)
            .or_insert_with(|| CircuitBreaker::new(self.threshold, self.cooldown))
            .record_failure(now);
        self.publish(node, transition);
        transition
    }

    /// Is `node`'s breaker open at `now`? Nodes never seen are closed.
    pub fn is_open(&self, node: NodeId, now: SimTime) -> bool {
        self.inner
            .borrow()
            .get(&node)
            .map(|b| b.is_open(now))
            .unwrap_or(false)
    }

    /// Telemetry label for `node`'s breaker state.
    pub fn state_name(&self, node: NodeId) -> &'static str {
        self.inner
            .borrow()
            .get(&node)
            .map(|b| b.state_name())
            .unwrap_or("closed")
    }
}

impl Default for BreakerRegistry {
    fn default() -> Self {
        BreakerRegistry::new(DEFAULT_BREAKER_THRESHOLD, DEFAULT_BREAKER_COOLDOWN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn policy_from_plan_scales_budget() {
        let plan = FaultPlan::flaky(); // max_retries 5
        let p = RetryPolicy::from_plan(&plan);
        assert_eq!(p.budget, 20);
        assert_eq!(p.backoff_base, plan.backoff_base);
        assert!(p.deadline.is_none());
    }

    #[test]
    fn backoff_first_retry_waits_base() {
        let p = RetryPolicy::from_plan(&FaultPlan::flaky()).without_jitter();
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(p.backoff(1, &mut rng), p.backoff_base);
        assert_eq!(p.backoff(2, &mut rng), p.backoff_base * 2);
        assert_eq!(p.backoff(3, &mut rng), p.backoff_base * 4);
        // Saturates after max_doublings.
        assert_eq!(p.backoff(100, &mut rng), p.backoff_base * 256);
    }

    #[test]
    fn jittered_backoff_stays_in_band_and_is_seed_deterministic() {
        let p = RetryPolicy::from_plan(&FaultPlan::flaky()); // ±25%
        let lo = p.backoff_base.mul_f64(0.75);
        let hi = p.backoff_base.mul_f64(1.25);
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..200 {
            let w = p.backoff(1, &mut rng);
            assert!(w >= lo && w <= hi, "wait {w} outside [{lo}, {hi}]");
        }
        let seq = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            (1..20).map(|a| p.backoff(a, &mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(seq(5), seq(5));
        assert_ne!(seq(5), seq(6));
    }

    #[test]
    fn retry_state_charges_to_exhaustion() {
        let p = RetryPolicy::from_plan(&FaultPlan::none()).with_budget(3);
        let mut s = RetryState::start(p, SimTime::ZERO);
        let at = NodeId(7);
        for _ in 0..3 {
            s.charge(at, SimTime::ZERO, SimTime::from_secs(1)).unwrap();
        }
        let err = s
            .charge(at, SimTime::ZERO, SimTime::from_secs(1))
            .unwrap_err();
        assert_eq!(err, NetError::RetryBudgetExhausted { at, budget: 3 });
    }

    #[test]
    fn retry_state_enforces_deadline() {
        let p = RetryPolicy::from_plan(&FaultPlan::none())
            .with_budget(100)
            .with_deadline(SimTime::from_secs(10));
        let mut s = RetryState::start(p, SimTime::from_secs(5));
        let at = NodeId(1);
        // 5 + 9 + 1 = 15 == deadline_at: fine.
        s.charge(at, SimTime::from_secs(9), SimTime::from_secs(6))
            .unwrap();
        // Would land past 15 s: rejected.
        let err = s
            .charge(at, SimTime::from_secs(9), SimTime::from_secs(7))
            .unwrap_err();
        assert_eq!(err, NetError::DeadlineExceeded { at });
    }

    #[test]
    fn breaker_trips_after_threshold_and_probes_after_cooldown() {
        let mut b = CircuitBreaker::new(3, SimTime::from_secs(10));
        let t0 = SimTime::from_secs(1);
        assert!(b.allow(t0));
        b.record_failure(t0);
        b.record_failure(t0);
        assert!(b.allow(t0), "two failures below threshold keep it closed");
        b.record_failure(t0);
        assert!(b.is_open(t0));
        assert!(!b.allow(SimTime::from_secs(5)), "cooldown not elapsed");
        // Cooldown over: half-open admits one probe.
        assert!(b.allow(SimTime::from_secs(11)));
        assert_eq!(b.state_name(), "half-open");
        // Failed probe re-opens immediately (no need for a fresh streak).
        b.record_failure(SimTime::from_secs(11));
        assert!(b.is_open(SimTime::from_secs(12)));
        // Successful probe closes it.
        assert!(b.allow(SimTime::from_secs(22)));
        b.record_success();
        assert_eq!(b.state_name(), "closed");
        assert!(b.allow(SimTime::from_secs(22)));
    }

    #[test]
    fn success_resets_failure_streak() {
        let mut b = CircuitBreaker::new(3, SimTime::from_secs(10));
        let t = SimTime::ZERO;
        b.record_failure(t);
        b.record_failure(t);
        b.record_success();
        b.record_failure(t);
        b.record_failure(t);
        assert!(b.allow(t), "streak was reset; breaker must stay closed");
    }

    #[test]
    fn breaker_transitions_fire_exactly_at_state_changes() {
        let mut b = CircuitBreaker::new(2, SimTime::from_secs(10));
        let t = SimTime::from_secs(1);
        assert_eq!(b.record_success(), BreakerTransition::None);
        assert_eq!(b.record_failure(t), BreakerTransition::None);
        assert_eq!(b.record_failure(t), BreakerTransition::Tripped);
        // Already open: further failures are not new trips.
        assert_eq!(b.record_failure(t), BreakerTransition::None);
        assert_eq!(b.record_success(), BreakerTransition::Closed);
        assert_eq!(b.record_success(), BreakerTransition::None);
        // Half-open probe failure is a (re-)trip; its success is a close.
        b.record_failure(t);
        b.record_failure(t);
        assert!(b.allow(SimTime::from_secs(20)));
        assert_eq!(
            b.record_failure(SimTime::from_secs(20)),
            BreakerTransition::Tripped
        );
        assert!(b.allow(SimTime::from_secs(40)));
        assert_eq!(b.record_success(), BreakerTransition::Closed);

        let reg = BreakerRegistry::new(1, SimTime::from_secs(5));
        let n = NodeId(3);
        assert_eq!(reg.record_success(n), BreakerTransition::None);
        assert_eq!(reg.record_failure(n, t), BreakerTransition::Tripped);
        assert_eq!(reg.record_success(n), BreakerTransition::Closed);
    }

    #[test]
    fn trip_board_publishes_registry_transitions() {
        let board = Arc::new(TripBoard::new(8));
        let reg = BreakerRegistry::new(2, SimTime::from_secs(30)).with_board(Arc::clone(&board));
        let n = NodeId(5);
        let t = SimTime::from_secs(1);
        assert!(!board.is_open(n, t.as_nanos()));
        reg.record_failure(n, t);
        assert!(!board.is_open(n, t.as_nanos()), "below threshold");
        reg.record_failure(n, t);
        // Tripped: open until t + 30 s on both sides.
        assert!(board.is_open(n, t.as_nanos()));
        assert!(board.is_open(n, SimTime::from_secs(30).as_nanos()));
        // Cooldown deadline passes: reads closed with no writer action.
        assert!(!board.is_open(n, SimTime::from_secs(32).as_nanos()));
        assert_eq!(board.open_count(t.as_nanos()), 1);
        // An explicit close (half-open probe succeeded) clears it.
        reg.record_failure(n, t);
        assert!(board.is_open(n, SimTime::from_secs(10).as_nanos()));
        reg.record_success(n);
        assert!(!board.is_open(n, SimTime::from_secs(10).as_nanos()));
        // Out-of-range nodes are ignored, not a panic.
        board.trip(NodeId(100), SimTime::from_secs(5));
        assert!(!board.is_open(NodeId(100), 0));
    }

    #[test]
    fn registry_clones_share_state() {
        let reg = BreakerRegistry::new(2, SimTime::from_secs(30));
        let view = reg.clone();
        let n = NodeId(4);
        let t = SimTime::from_secs(1);
        reg.record_failure(n, t);
        reg.record_failure(n, t);
        assert!(view.is_open(n, t), "clone must see the tripped breaker");
        assert!(!view.allow(n, SimTime::from_secs(2)));
        assert!(view.allow(n, SimTime::from_secs(40)), "half-open probe");
        view.record_success(n);
        assert!(reg.allow(n, SimTime::from_secs(40)));
        assert_eq!(reg.state_name(n), "closed");
        // Unknown nodes are closed by definition.
        assert!(!reg.is_open(NodeId(99), t));
        assert_eq!(reg.state_name(NodeId(99)), "closed");
    }
}
