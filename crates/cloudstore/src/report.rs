//! Structured transfer reports.

use netsim::engine::Value;
use netsim::time::SimTime;
use netsim::units::Bandwidth;
use std::fmt;

/// Everything a completed upload/download session reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferStats {
    /// Payload size.
    pub bytes: u64,
    /// Wall-clock duration, request to last acknowledgement.
    pub elapsed: SimTime,
    /// RPC exchanges performed (auth + init + parts + finish + retries).
    pub rpcs: u64,
    /// Part retries due to transient errors.
    pub retries: u64,
    /// `429` throttle pauses served.
    pub throttles: u64,
    /// Token refresh exchanges performed mid-session.
    pub token_refreshes: u64,
    /// Total bytes put on the wire toward the provider (payload + framing +
    /// wasted retry payloads).
    pub wire_bytes: u64,
}

impl TransferStats {
    /// Achieved goodput (payload over elapsed).
    pub fn goodput(&self) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(self.bytes as f64 / self.elapsed.as_secs_f64().max(1e-12))
    }

    /// Pack into a [`Value`] (how session processes return it).
    pub fn to_value(&self) -> Value {
        Value::List(vec![
            Value::U64(self.bytes),
            Value::Time(self.elapsed),
            Value::U64(self.rpcs),
            Value::U64(self.retries),
            Value::U64(self.throttles),
            Value::U64(self.token_refreshes),
            Value::U64(self.wire_bytes),
        ])
    }

    /// Unpack from a [`Value`]; panics on shape mismatch (programming error).
    pub fn from_value(v: &Value) -> Self {
        let items = v.expect_list();
        assert_eq!(items.len(), 7, "malformed TransferStats value");
        TransferStats {
            bytes: items[0].expect_u64(),
            elapsed: items[1].expect_time(),
            rpcs: items[2].expect_u64(),
            retries: items[3].expect_u64(),
            throttles: items[4].expect_u64(),
            token_refreshes: items[5].expect_u64(),
            wire_bytes: items[6].expect_u64(),
        }
    }
}

impl fmt::Display for TransferStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} in {} ({}, {} rpcs, {} retries, {} throttles)",
            netsim::units::format_bytes(self.bytes),
            self.elapsed,
            self.goodput(),
            self.rpcs,
            self.retries,
            self.throttles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TransferStats {
        TransferStats {
            bytes: 10_000_000,
            elapsed: SimTime::from_secs(10),
            rpcs: 5,
            retries: 1,
            throttles: 2,
            token_refreshes: 0,
            wire_bytes: 10_010_000,
        }
    }

    #[test]
    fn value_round_trip() {
        let s = sample();
        assert_eq!(TransferStats::from_value(&s.to_value()), s);
    }

    #[test]
    fn goodput() {
        let s = sample();
        assert!((s.goodput().bytes_per_sec() - 1_000_000.0).abs() < 1.0);
    }

    #[test]
    fn display() {
        let text = sample().to_string();
        assert!(text.contains("10 MB"));
        assert!(text.contains("5 rpcs"));
    }

    #[test]
    #[should_panic(expected = "malformed")]
    fn malformed_value_panics() {
        TransferStats::from_value(&Value::List(vec![Value::U64(1)]));
    }
}
