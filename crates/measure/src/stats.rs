//! Summary statistics, the paper's overlap analysis, and Welch's t-test.

use std::fmt;

/// Mean / standard deviation / extremes of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator, as the paper's error
    /// bars imply).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Stats {
    /// Compute from samples. Panics on an empty slice.
    ///
    /// ```
    /// use measure::Stats;
    /// let s = Stats::from_samples(&[17.0, 18.0, 19.0, 18.0, 18.0]);
    /// assert_eq!(s.mean, 18.0);
    /// assert_eq!(s.n, 5);
    /// assert!(s.std_dev > 0.0);
    /// ```
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "no samples");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Stats {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }

    /// Two-sided 95% confidence interval of the mean, `(lo, hi)`, using the
    /// Student-t critical value for `n−1` degrees of freedom. For `n = 1`
    /// the interval collapses to the point estimate.
    pub fn ci95(&self) -> (f64, f64) {
        if self.n < 2 {
            return (self.mean, self.mean);
        }
        let crit = t_critical_5pct(self.n - 1);
        let half = crit * self.std_dev / (self.n as f64).sqrt();
        (self.mean - half, self.mean + half)
    }

    /// Coefficient of variation (σ/μ).
    pub fn cv(&self) -> f64 {
        if self.mean.abs() < 1e-12 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }

    /// Relative difference of this mean versus a baseline mean, as the
    /// paper's tables print it: negative = faster than baseline.
    pub fn relative_to(&self, baseline: &Stats) -> f64 {
        (self.mean - baseline.mean) / baseline.mean * 100.0
    }

    /// The paper's §III-B test: do the mean±1σ intervals of two routes
    /// overlap? If they do, the paper declines to prefer the "faster" route.
    pub fn overlap_1sigma(&self, other: &Stats) -> OverlapVerdict {
        let self_hi = self.mean + self.std_dev;
        let self_lo = self.mean - self.std_dev;
        let other_hi = other.mean + other.std_dev;
        let other_lo = other.mean - other.std_dev;
        if self_lo <= other_hi && other_lo <= self_hi {
            OverlapVerdict::Overlapping
        } else {
            OverlapVerdict::Separated
        }
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} ± {:.2} (n={})", self.mean, self.std_dev, self.n)
    }
}

/// Result of the paper's ±1σ interval comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverlapVerdict {
    /// Error bars overlap: "we may not choose to rely on any detours in
    /// these types of scenarios" (paper, §III-B).
    Overlapping,
    /// Intervals are separated: the faster route is trustworthy.
    Separated,
}

/// Welch's unequal-variance t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WelchT {
    /// The t statistic (sign: positive when `a` has the larger mean).
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub df: f64,
}

impl WelchT {
    /// Compare two samples' means.
    pub fn compare(a: &Stats, b: &Stats) -> WelchT {
        assert!(a.n > 1 && b.n > 1, "need at least two samples per side");
        let va = a.std_dev.powi(2) / a.n as f64;
        let vb = b.std_dev.powi(2) / b.n as f64;
        let se = (va + vb).sqrt();
        let t = if se < 1e-12 {
            0.0
        } else {
            (a.mean - b.mean) / se
        };
        let df = if va + vb < 1e-24 {
            (a.n + b.n - 2) as f64
        } else {
            (va + vb).powi(2) / (va.powi(2) / (a.n as f64 - 1.0) + vb.powi(2) / (b.n as f64 - 1.0))
        };
        WelchT { t, df }
    }

    /// Conservative significance check: |t| above the two-sided 5% critical
    /// value for the (floored) degrees of freedom.
    pub fn significant_at_5pct(&self) -> bool {
        self.t.abs() > t_critical_5pct(self.df.floor() as usize)
    }
}

/// Nearest-rank percentile: the smallest sample such that at least `p`
/// percent of the data is at or below it. `p` is clamped to `(0, 100]`;
/// `p = 50` is the median, `p = 100` the maximum. Panics on an empty slice,
/// like [`Stats::from_samples`].
///
/// NaN samples are tolerated rather than a panic: ordering uses IEEE 754
/// `totalOrder` ([`f64::total_cmp`]), which places NaN above `+inf` (and
/// -NaN below `-inf`), so a NaN in the input surfaces as the value of the
/// top percentiles instead of aborting a report mid-run (sparklines were
/// hardened the same way).
///
/// ```
/// use measure::percentile;
/// let xs = [9.0, 1.0, 7.0, 3.0, 5.0];
/// assert_eq!(percentile(&xs, 50.0), 5.0);
/// assert_eq!(percentile(&xs, 100.0), 9.0);
/// ```
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    assert!(!samples.is_empty(), "no samples");
    assert!(p.is_finite(), "percentile must be finite");
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let p = p.clamp(0.0, 100.0);
    // Nearest-rank: ceil(p/100 * n), 1-based; rank 1 for p = 0.
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank - 1]
}

/// Two-sided 5% Student-t critical value for `df` degrees of freedom
/// (tabulated to 30, normal approximation beyond).
pub fn t_critical_5pct(df: usize) -> f64 {
    const CRIT: [f64; 31] = [
        f64::INFINITY, // df 0: unusable
        12.706,
        4.303,
        3.182,
        2.776,
        2.571,
        2.447,
        2.365,
        2.306,
        2.262,
        2.228,
        2.201,
        2.179,
        2.160,
        2.145,
        2.131,
        2.120,
        2.110,
        2.101,
        2.093,
        2.086,
        2.080,
        2.074,
        2.069,
        2.064,
        2.060,
        2.056,
        2.052,
        2.048,
        2.045,
        2.042,
    ];
    if df >= CRIT.len() {
        1.96
    } else {
        CRIT[df]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let s = Stats::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std dev with n-1: sqrt(32/7) ≈ 2.138
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.n, 8);
    }

    #[test]
    fn single_sample() {
        let s = Stats::from_samples(&[3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_panics() {
        Stats::from_samples(&[]);
    }

    #[test]
    fn all_equal_samples_have_zero_spread() {
        // Degenerate but legal: every run took exactly the same time.
        let s = Stats::from_samples(&[4.2; 7]);
        assert_eq!(s.n, 7);
        assert_eq!(s.mean, 4.2);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!((s.min, s.max), (4.2, 4.2));
        assert_eq!(s.cv(), 4.2 / 4.2 * 0.0);
        assert!(s.mean.is_finite() && s.std_dev.is_finite(), "no NaN leaks");
        // ci95 stays a point interval when σ = 0.
        assert_eq!(s.ci95(), (4.2, 4.2));
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [15.0, 20.0, 35.0, 40.0, 50.0];
        // Canonical nearest-rank example (Wikipedia): p30 of this set is 20.
        assert_eq!(percentile(&xs, 30.0), 20.0);
        assert_eq!(percentile(&xs, 40.0), 20.0);
        assert_eq!(percentile(&xs, 50.0), 35.0);
        assert_eq!(percentile(&xs, 100.0), 50.0);
        // Unsorted input is handled.
        assert_eq!(percentile(&[9.0, 1.0, 5.0], 50.0), 5.0);
        // Out-of-range p clamps instead of panicking.
        assert_eq!(percentile(&xs, -10.0), 15.0);
        assert_eq!(percentile(&xs, 250.0), 50.0);
    }

    #[test]
    fn percentile_single_sample_and_all_equal() {
        // One sample: every percentile is that sample, never NaN.
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile(&[7.25], p), 7.25);
        }
        // All-equal: p50 == p99 == the value.
        let xs = [3.0; 9];
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 99.0), 3.0);
        assert_eq!(percentile(&xs, 50.0), percentile(&xs, 99.0));
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    fn percentile_tolerates_nan_samples() {
        // A NaN sample (e.g. a 0/0 from an empty measurement window) must
        // not abort the whole report. total_cmp sorts NaN above +inf, so it
        // only surfaces in the top percentiles.
        let xs = [3.0, f64::NAN, 1.0, 2.0];
        assert_eq!(percentile(&xs, 50.0), 2.0);
        assert_eq!(percentile(&xs, 75.0), 3.0);
        assert!(percentile(&xs, 100.0).is_nan());
        // Negative NaN sorts below -inf and everything else.
        let lo = [-f64::NAN, 4.0, 5.0];
        assert_eq!(percentile(&lo, 100.0), 5.0);
        assert!(percentile(&lo, 0.0).is_nan());
    }

    #[test]
    fn relative_to_matches_paper_table2() {
        // Paper Table II, 10 MB row: direct 9.46 s, via UAlberta 6.47 s
        // -> -31.52%.
        let direct = Stats {
            n: 5,
            mean: 9.46,
            std_dev: 0.0,
            min: 9.46,
            max: 9.46,
        };
        let detour = Stats {
            n: 5,
            mean: 6.47,
            std_dev: 0.0,
            min: 6.47,
            max: 6.47,
        };
        let rel = detour.relative_to(&direct);
        assert!((rel - -31.607).abs() < 0.2, "rel {rel}");
    }

    #[test]
    fn overlap_analysis_matches_paper_table4() {
        // Paper §III-B worked example: Dropbox 100 MB from Purdue.
        // Direct 177.89 ± 36.03, via UAlberta 237.78 ± 56.1: intervals
        // [141.86, 213.92] and [181.68, 293.88] overlap.
        let direct = Stats {
            n: 5,
            mean: 177.89,
            std_dev: 36.03,
            min: 0.0,
            max: 0.0,
        };
        let ua = Stats {
            n: 5,
            mean: 237.78,
            std_dev: 56.1,
            min: 0.0,
            max: 0.0,
        };
        assert_eq!(direct.overlap_1sigma(&ua), OverlapVerdict::Overlapping);

        // Clearly separated case: Purdue->Drive direct 748.03 vs detour
        // 195.88 (Table III) with modest spreads.
        let slow = Stats {
            n: 5,
            mean: 748.03,
            std_dev: 60.0,
            min: 0.0,
            max: 0.0,
        };
        let fast = Stats {
            n: 5,
            mean: 195.88,
            std_dev: 30.0,
            min: 0.0,
            max: 0.0,
        };
        assert_eq!(slow.overlap_1sigma(&fast), OverlapVerdict::Separated);
    }

    #[test]
    fn overlap_is_symmetric() {
        let a = Stats {
            n: 5,
            mean: 10.0,
            std_dev: 2.0,
            min: 0.0,
            max: 0.0,
        };
        let b = Stats {
            n: 5,
            mean: 13.0,
            std_dev: 2.0,
            min: 0.0,
            max: 0.0,
        };
        assert_eq!(a.overlap_1sigma(&b), b.overlap_1sigma(&a));
    }

    #[test]
    fn welch_t_separated_samples() {
        let a = Stats::from_samples(&[10.0, 11.0, 9.0, 10.5, 9.5]);
        let b = Stats::from_samples(&[20.0, 21.0, 19.0, 20.5, 19.5]);
        let w = WelchT::compare(&b, &a);
        assert!(w.t > 5.0, "t = {}", w.t);
        assert!(w.significant_at_5pct());
    }

    #[test]
    fn welch_t_identical_samples() {
        let a = Stats::from_samples(&[5.0, 5.1, 4.9, 5.0]);
        let w = WelchT::compare(&a, &a);
        assert!(w.t.abs() < 1e-9);
        assert!(!w.significant_at_5pct());
    }

    #[test]
    fn welch_t_zero_variance() {
        let a = Stats::from_samples(&[5.0, 5.0, 5.0]);
        let b = Stats::from_samples(&[5.0, 5.0, 5.0]);
        let w = WelchT::compare(&a, &b);
        assert_eq!(w.t, 0.0);
        assert!(!w.significant_at_5pct());
    }

    #[test]
    fn ci95_behaviour() {
        // n=5, σ=1: half-width = 2.776 / sqrt(5) ≈ 1.2415.
        let s = Stats {
            n: 5,
            mean: 10.0,
            std_dev: 1.0,
            min: 0.0,
            max: 0.0,
        };
        let (lo, hi) = s.ci95();
        assert!((hi - 10.0 - 2.776 / 5.0f64.sqrt()).abs() < 1e-9);
        assert!((10.0 - lo - 2.776 / 5.0f64.sqrt()).abs() < 1e-9);
        // Degenerate cases.
        let one = Stats {
            n: 1,
            mean: 7.0,
            std_dev: 0.0,
            min: 7.0,
            max: 7.0,
        };
        assert_eq!(one.ci95(), (7.0, 7.0));
        // More samples shrink the interval.
        let s50 = Stats {
            n: 50,
            mean: 10.0,
            std_dev: 1.0,
            min: 0.0,
            max: 0.0,
        };
        assert!(s50.ci95().1 - s50.ci95().0 < hi - lo);
    }

    #[test]
    fn t_critical_table() {
        assert_eq!(t_critical_5pct(0), f64::INFINITY);
        assert!((t_critical_5pct(4) - 2.776).abs() < 1e-9);
        assert_eq!(t_critical_5pct(1000), 1.96);
    }

    #[test]
    fn cv() {
        let s = Stats {
            n: 5,
            mean: 100.0,
            std_dev: 10.0,
            min: 0.0,
            max: 0.0,
        };
        assert!((s.cv() - 0.1).abs() < 1e-12);
        let z = Stats {
            n: 5,
            mean: 0.0,
            std_dev: 10.0,
            min: 0.0,
            max: 0.0,
        };
        assert_eq!(z.cv(), 0.0);
    }

    #[test]
    fn display() {
        let s = Stats {
            n: 5,
            mean: 177.89,
            std_dev: 36.03,
            min: 0.0,
            max: 0.0,
        };
        assert_eq!(s.to_string(), "177.89 ± 36.03 (n=5)");
    }
}
