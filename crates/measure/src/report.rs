//! Telemetry report rendering: metrics snapshots as [`Table`]s.
//!
//! The `obs` crate produces a flat [`obs::MetricsSnapshot`]; this module
//! turns it into the same column-aligned text / CSV tables the `repro`
//! harness uses for the paper's figures, so a run's metrics print alongside
//! its timing tables with one code path.

use crate::table::Table;
use obs::MetricsSnapshot;

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(v) if v == v.trunc() && v.abs() < 1e15 => format!("{}", v as i64),
        Some(v) => format!("{v:.3}"),
        None => "-".to_string(),
    }
}

/// Render a metrics snapshot as a [`Table`] (render as text with
/// [`Table::render`] or CSV with [`Table::to_csv`]).
pub fn metrics_table(snapshot: &MetricsSnapshot, title: &str) -> Table {
    let mut t = Table::new(
        title,
        &[
            "metric", "kind", "value", "p50", "p99", "min", "max", "samples",
        ],
    );
    for r in &snapshot.rows {
        t.row(vec![
            r.name.clone(),
            r.kind.to_string(),
            fmt_opt(Some(r.value)),
            fmt_opt(r.p50),
            fmt_opt(r.p99),
            fmt_opt(r.min),
            fmt_opt(r.max),
            format!("{}", r.samples),
        ]);
    }
    t
}

/// One-call text rendering of a recording's metrics.
pub fn metrics_text(recording: &obs::Recording, title: &str) -> String {
    metrics_table(&recording.metrics.snapshot(), title).render()
}

/// One-call CSV rendering of a recording's metrics.
pub fn metrics_csv(recording: &obs::Recording) -> String {
    metrics_table(&recording.metrics.snapshot(), "").to_csv()
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::MetricsRegistry;

    fn registry() -> MetricsRegistry {
        let mut m = MetricsRegistry::default();
        m.counter_add("cloudstore.retries", 3);
        m.gauge_set("relay.staging_bytes", 1048576.0);
        m.hist_record("netsim.realloc_wall_ns", 1500);
        m.hist_record("netsim.realloc_wall_ns", 2500);
        m
    }

    #[test]
    fn table_carries_every_metric() {
        let t = metrics_table(&registry().snapshot(), "metrics");
        assert_eq!(t.len(), 3);
        let text = t.render();
        assert!(text.contains("cloudstore.retries"), "{text}");
        assert!(text.contains("histogram"), "{text}");
        // Counters have no percentiles — rendered as '-'.
        let counter_line = text
            .lines()
            .find(|l| l.contains("cloudstore.retries"))
            .unwrap();
        assert!(counter_line.contains('-'), "{counter_line}");
    }

    #[test]
    fn csv_is_machine_readable() {
        let csv = metrics_table(&registry().snapshot(), "").to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "metric,kind,value,p50,p99,min,max,samples"
        );
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.contains("relay.staging_bytes,gauge,1048576"));
    }

    #[test]
    fn empty_snapshot_renders_headers_only() {
        let t = metrics_table(&MetricsRegistry::default().snapshot(), "empty");
        assert!(t.is_empty());
        assert!(t.render().contains("metric"));
    }
}
