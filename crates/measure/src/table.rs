//! Text and CSV table rendering for the `repro` harness.
//!
//! The tables printed by the benchmark harness mirror the paper's layout:
//! a file-size column, then one column per route with the mean time and the
//! percentage gain/loss relative to the direct route in brackets (the
//! paper's Tables II and III).

use crate::stats::Stats;
use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header arity.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Paper-style cell: `"17.40 [-52.8%]"` — a mean and its gain/loss
    /// versus the direct route.
    pub fn timing_cell(stats: &Stats, baseline: Option<&Stats>) -> String {
        match baseline {
            Some(b) => {
                let rel = stats.relative_to(b);
                format!(
                    "{:.2} [{}{:.2}%]",
                    stats.mean,
                    if rel >= 0.0 { "+" } else { "" },
                    rel
                )
            }
            None => format!("{:.2}", stats.mean),
        }
    }

    /// Cell with mean and standard deviation (the paper's Table IV).
    pub fn mean_std_cell(stats: &Stats) -> String {
        format!("{:.2} ± {:.2}", stats.mean, stats.std_dev)
    }

    /// Render as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let line = |out: &mut String, cells: &[String]| {
            let mut first = true;
            for (w, cell) in widths.iter().zip(cells) {
                if !first {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<w$}");
                first = false;
            }
            // Trim per-line trailing spaces from the last padded cell.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(&mut out, &sep);
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Render as CSV (RFC 4180 quoting for cells containing commas/quotes).
    pub fn to_csv(&self) -> String {
        let esc = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(mean: f64, sd: f64) -> Stats {
        Stats {
            n: 5,
            mean,
            std_dev: sd,
            min: mean,
            max: mean,
        }
    }

    #[test]
    fn timing_cell_matches_paper_format() {
        // Paper Table II, 40 MB row: direct 36.86, via UAlberta 17.4 [-52.8%].
        let direct = stats(36.86, 0.0);
        let ua = stats(17.4, 0.0);
        let cell = Table::timing_cell(&ua, Some(&direct));
        assert!(cell.starts_with("17.40 [-52.7"), "cell {cell}");
        assert_eq!(Table::timing_cell(&direct, None), "36.86");
        // Slowdowns get an explicit plus sign.
        let umich = stats(51.87, 0.0);
        let cell = Table::timing_cell(&umich, Some(&direct));
        assert!(cell.contains("[+40.7"), "cell {cell}");
    }

    #[test]
    fn mean_std_cell() {
        assert_eq!(
            Table::mean_std_cell(&stats(177.89, 36.03)),
            "177.89 ± 36.03"
        );
    }

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["size", "direct", "detour"]);
        t.row(vec!["10".into(), "9.46".into(), "6.47".into()]);
        t.row(vec!["100".into(), "86.92".into(), "35.79".into()]);
        let text = t.render();
        assert!(text.contains("== demo =="));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5); // title, header, sep, 2 rows
                                    // Columns align: "direct" starts at the same offset on every line.
        let off = lines[1].find("direct").unwrap();
        assert_eq!(lines[3].find("9.46").unwrap(), off);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(vec!["1,5".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().nth(1).unwrap(), "\"1,5\",\"say \"\"hi\"\"\"");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        Table::new("", &["a", "b"]).row(vec!["1".into()]);
    }

    #[test]
    fn empty_table() {
        let t = Table::new("empty", &["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.render().contains('x'));
    }
}
