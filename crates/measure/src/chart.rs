//! ASCII bar charts, so the paper's *figures* render as figures in a
//! terminal, not just as tables of numbers.
//!
//! The figure shape matches the paper's plots: grouped bars per file size,
//! one bar per route, with a `±σ` whisker rendered numerically.

use std::fmt::Write as _;

/// One bar: label, value, standard deviation.
#[derive(Debug, Clone)]
pub struct Bar {
    /// Series label ("Direct", "via UAlberta").
    pub label: String,
    /// Bar value (seconds in our use).
    pub value: f64,
    /// One standard deviation, drawn numerically after the bar.
    pub std_dev: f64,
}

/// A grouped bar chart: one group per x-value (file size), several bars per
/// group (routes).
#[derive(Debug, Clone, Default)]
pub struct GroupedBarChart {
    title: String,
    unit: String,
    groups: Vec<(String, Vec<Bar>)>,
}

impl GroupedBarChart {
    /// New chart with a title and a value unit ("s").
    pub fn new(title: &str, unit: &str) -> Self {
        GroupedBarChart {
            title: title.to_string(),
            unit: unit.to_string(),
            groups: Vec::new(),
        }
    }

    /// Append a group.
    pub fn group(&mut self, x_label: &str, bars: Vec<Bar>) -> &mut Self {
        assert!(!bars.is_empty(), "empty bar group");
        self.groups.push((x_label.to_string(), bars));
        self
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Is the chart empty?
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Render with bars scaled to `width` columns for the maximum value.
    pub fn render(&self, width: usize) -> String {
        assert!(width >= 8, "chart too narrow");
        let max = self
            .groups
            .iter()
            .flat_map(|(_, bars)| bars.iter())
            .map(|b| b.value + b.std_dev)
            .fold(0.0f64, f64::max)
            .max(1e-12);
        let label_w = self
            .groups
            .iter()
            .flat_map(|(_, bars)| bars.iter())
            .map(|b| b.label.len())
            .max()
            .unwrap_or(0);
        let x_w = self.groups.iter().map(|(x, _)| x.len()).max().unwrap_or(0);

        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        for (x, bars) in &self.groups {
            for (i, bar) in bars.iter().enumerate() {
                let x_cell = if i == 0 { x.as_str() } else { "" };
                let filled = ((bar.value / max) * width as f64).round() as usize;
                let _ = writeln!(
                    out,
                    "{x_cell:>x_w$}  {:<label_w$}  {}{} {:.2}{} ±{:.2}",
                    bar.label,
                    "█".repeat(filled),
                    if filled == 0 { "▏" } else { "" },
                    bar.value,
                    self.unit,
                    bar.std_dev,
                );
            }
            out.push('\n');
        }
        out
    }
}

/// Render a series as a unicode sparkline (`▁▂▃▄▅▆▇█`), scaled to the
/// series' own maximum. Useful for rate-over-time timelines.
///
/// Degenerate series are safe: an empty slice renders as an empty string, a
/// constant or all-zero series as a flat line, and non-finite or negative
/// samples as the lowest tick — never a panic or a division by zero.
pub fn sparkline(values: &[f64]) -> String {
    const TICKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .fold(0.0f64, f64::max);
    if max <= 0.0 {
        return TICKS[0].to_string().repeat(values.len());
    }
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                return TICKS[if v == f64::INFINITY { 7 } else { 0 }];
            }
            let idx = ((v / max) * 7.0).round().clamp(0.0, 7.0) as usize;
            TICKS[idx]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_scales() {
        let s = sparkline(&[0.0, 1.0, 2.0, 4.0, 8.0]);
        assert_eq!(s.chars().count(), 5);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
    }

    #[test]
    fn sparkline_all_zero() {
        assert_eq!(sparkline(&[0.0, 0.0, 0.0]), "▁▁▁");
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn sparkline_constant_series_is_flat() {
        // Positive constants scale to their own max: a full flat line.
        assert_eq!(sparkline(&[3.5, 3.5, 3.5]), "███");
        // Negative constants clamp to the bottom tick.
        assert_eq!(sparkline(&[-1.0, -1.0]), "▁▁");
    }

    #[test]
    fn sparkline_tolerates_non_finite_samples() {
        let s = sparkline(&[1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 2.0]);
        assert_eq!(s.chars().count(), 5);
        assert_eq!(
            s.chars().nth(1),
            Some('▁'),
            "NaN draws the bottom tick: {s}"
        );
        assert_eq!(s.chars().nth(2), Some('█'), "+inf draws the top tick: {s}");
        assert_eq!(
            s.chars().nth(3),
            Some('▁'),
            "-inf draws the bottom tick: {s}"
        );
        // An all-NaN series must not divide by zero.
        assert_eq!(sparkline(&[f64::NAN, f64::NAN]), "▁▁");
    }

    fn chart() -> GroupedBarChart {
        let mut c = GroupedBarChart::new("demo", "s");
        c.group(
            "10MB",
            vec![
                Bar {
                    label: "Direct".into(),
                    value: 9.0,
                    std_dev: 0.2,
                },
                Bar {
                    label: "via UAlberta".into(),
                    value: 4.2,
                    std_dev: 0.1,
                },
            ],
        );
        c.group(
            "100MB",
            vec![
                Bar {
                    label: "Direct".into(),
                    value: 88.0,
                    std_dev: 2.3,
                },
                Bar {
                    label: "via UAlberta".into(),
                    value: 38.0,
                    std_dev: 0.8,
                },
            ],
        );
        c
    }

    #[test]
    fn renders_scaled_bars() {
        let text = chart().render(40);
        assert!(text.contains("== demo =="));
        // The largest bar is the longest run of blocks.
        let longest = text
            .lines()
            .map(|l| l.chars().filter(|&c| c == '█').count())
            .max()
            .unwrap();
        assert_eq!(longest, 39); // 88 / 90.3 * 40 ≈ 39
                                 // Values and sigmas are printed.
        assert!(text.contains("88.00s ±2.30"));
        assert!(text.contains("4.20s ±0.10"));
    }

    #[test]
    fn group_labels_once() {
        let text = chart().render(20);
        assert_eq!(text.matches("10MB").count(), 1);
        assert_eq!(text.matches("100MB").count(), 1);
    }

    #[test]
    fn tiny_values_get_a_tick() {
        let mut c = GroupedBarChart::new("", "s");
        c.group(
            "x",
            vec![
                Bar {
                    label: "big".into(),
                    value: 1000.0,
                    std_dev: 0.0,
                },
                Bar {
                    label: "tiny".into(),
                    value: 0.5,
                    std_dev: 0.0,
                },
            ],
        );
        let text = c.render(30);
        assert!(text.contains('▏'), "zero-width bar needs a tick: {text}");
    }

    #[test]
    #[should_panic(expected = "empty bar group")]
    fn empty_group_rejected() {
        GroupedBarChart::new("", "").group("x", vec![]);
    }

    #[test]
    fn len_and_empty() {
        assert!(GroupedBarChart::new("", "").is_empty());
        assert_eq!(chart().len(), 2);
    }
}
