//! # measure — measurement protocol, statistics and tables
//!
//! The paper's protocol: *"For each of the measurements, we take the mean of
//! the last five runs among a total of seven runs. One standard deviation
//! has been shown as the error-bar in the figures."* This crate implements
//! that protocol, the summary statistics behind the paper's tables, the
//! mean±σ overlap analysis of §III-B (Table IV), Welch's t-test as a more
//! principled companion, and text/CSV table rendering used by the `repro`
//! harness.

pub mod chart;
pub mod protocol;
pub mod report;
pub mod stats;
pub mod table;
pub mod validate;

pub use chart::{Bar, GroupedBarChart};
pub use protocol::{ProtocolError, RunProtocol};
pub use report::{metrics_csv, metrics_table, metrics_text};
pub use stats::{percentile, OverlapVerdict, Stats, WelchT};
pub use table::Table;
pub use validate::{pearson, RatioStats};
