//! Quantitative reproduction validation: how close is a reproduced series
//! to the paper's published one?
//!
//! Two complementary views:
//! * **Pearson correlation** across the series (does the reproduction rise
//!   and fall where the paper's does?), and
//! * **ratio statistics** (geometric-mean and worst-case multiplicative
//!   error), which are the right error measure for quantities spanning an
//!   order of magnitude.

/// Pearson correlation coefficient of two equal-length series.
///
/// Returns `None` for degenerate inputs (length < 2 or zero variance).
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "series length mismatch");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx).powi(2);
        syy += (y - my).powi(2);
    }
    if sxx < 1e-24 || syy < 1e-24 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Multiplicative-error summary of `reproduced` against `reference`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatioStats {
    /// Geometric mean of reproduced/reference (1.0 = unbiased).
    pub geo_mean_ratio: f64,
    /// Largest |log-ratio| as a factor (1.5 = within 1.5× everywhere).
    pub worst_factor: f64,
}

impl RatioStats {
    /// Compute over paired positive values.
    pub fn compute(reproduced: &[f64], reference: &[f64]) -> Self {
        assert_eq!(reproduced.len(), reference.len(), "series length mismatch");
        assert!(!reproduced.is_empty(), "empty series");
        let mut log_sum = 0.0;
        let mut worst: f64 = 0.0;
        for (&a, &b) in reproduced.iter().zip(reference) {
            assert!(a > 0.0 && b > 0.0, "ratio stats need positive values");
            let lr = (a / b).ln();
            log_sum += lr;
            worst = worst.max(lr.abs());
        }
        RatioStats {
            geo_mean_ratio: (log_sum / reproduced.len() as f64).exp(),
            worst_factor: worst.exp(),
        }
    }

    /// "Within `f`× of the reference everywhere, with ≤`bias` mean bias."
    pub fn within(&self, factor: f64, bias: f64) -> bool {
        self.worst_factor <= factor
            && self.geo_mean_ratio <= 1.0 + bias
            && self.geo_mean_ratio >= 1.0 / (1.0 + bias)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_is_near_zero() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let ys = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        // Exact value for this pairing is -4/sqrt(336) ≈ -0.218.
        assert!(pearson(&xs, &ys).unwrap().abs() < 0.25);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), None);
    }

    #[test]
    fn ratio_stats_identity() {
        let r = RatioStats::compute(&[1.0, 10.0, 100.0], &[1.0, 10.0, 100.0]);
        assert!((r.geo_mean_ratio - 1.0).abs() < 1e-12);
        assert!((r.worst_factor - 1.0).abs() < 1e-12);
        assert!(r.within(1.01, 0.01));
    }

    #[test]
    fn ratio_stats_detect_bias_and_outliers() {
        // Uniform 2x bias.
        let r = RatioStats::compute(&[2.0, 20.0], &[1.0, 10.0]);
        assert!((r.geo_mean_ratio - 2.0).abs() < 1e-12);
        assert!(!r.within(3.0, 0.5));
        // One bad cell.
        let r = RatioStats::compute(&[1.0, 30.0], &[1.0, 10.0]);
        assert!(r.worst_factor > 2.9);
    }

    #[test]
    fn table2_reproduction_is_tight() {
        // Our Table II means vs the paper's (direct route).
        let ours = [9.01, 17.67, 27.02, 35.75, 43.95, 53.31, 87.65];
        let paper = [9.46, 18.61, 28.66, 36.86, 42.26, 51.11, 86.92];
        let corr = pearson(&ours, &paper).unwrap();
        assert!(corr > 0.998, "corr {corr}");
        let r = RatioStats::compute(&ours, &paper);
        assert!(r.within(1.1, 0.06), "{r:?}");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        pearson(&[1.0], &[1.0, 2.0]);
    }
}
