//! The paper's run protocol: seven runs, keep the last five.
//!
//! The first runs of a batch are systematically slower (cold TCP state,
//! OAuth grants, DNS caches); the paper handles that by discarding them.
//! [`RunProtocol`] encodes the batch shape and turns a per-run closure into
//! [`Stats`] over the kept runs.

use crate::stats::Stats;

/// Why a [`RunProtocol`] shape is invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolError {
    /// `total_runs == 0`: the batch would measure nothing.
    NoRuns,
    /// `discard >= total_runs`: every run would be thrown away as warm-up.
    DiscardsEverything {
        /// Requested batch size.
        total_runs: usize,
        /// Requested warm-up count.
        discard: usize,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::NoRuns => write!(f, "protocol performs no runs"),
            ProtocolError::DiscardsEverything {
                total_runs,
                discard,
            } => write!(
                f,
                "protocol discards everything: {discard} warm-ups of {total_runs} run(s)"
            ),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// A measurement batch description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunProtocol {
    /// Total runs performed.
    pub total_runs: usize,
    /// Leading runs discarded as warm-up.
    pub discard: usize,
}

impl RunProtocol {
    /// The paper's protocol: mean of the last five of seven runs.
    pub fn paper() -> Self {
        RunProtocol {
            total_runs: 7,
            discard: 2,
        }
    }

    /// A quicker protocol for smoke tests. Four kept runs is the minimum
    /// that makes the variance assertions in the integration suite
    /// meaningful; two samples can land arbitrarily close by seed luck.
    pub fn quick() -> Self {
        RunProtocol {
            total_runs: 5,
            discard: 1,
        }
    }

    /// Validated constructor: every batch must keep at least one run.
    ///
    /// ```
    /// use measure::{ProtocolError, RunProtocol};
    /// assert!(RunProtocol::checked(7, 2).is_ok());
    /// assert_eq!(
    ///     RunProtocol::checked(2, 2),
    ///     Err(ProtocolError::DiscardsEverything { total_runs: 2, discard: 2 })
    /// );
    /// ```
    pub fn checked(total_runs: usize, discard: usize) -> Result<Self, ProtocolError> {
        if total_runs == 0 {
            return Err(ProtocolError::NoRuns);
        }
        if discard >= total_runs {
            return Err(ProtocolError::DiscardsEverything {
                total_runs,
                discard,
            });
        }
        Ok(RunProtocol {
            total_runs,
            discard,
        })
    }

    /// Runs kept for statistics.
    pub fn kept(&self) -> usize {
        self.total_runs - self.discard
    }

    /// Execute the batch. The closure receives the run index
    /// (`0..total_runs`) and whether the run is a warm-up, and returns the
    /// measured value (seconds, in the paper's usage).
    ///
    /// ```
    /// use measure::RunProtocol;
    /// // Warm-up runs are slow and discarded, exactly as in the paper.
    /// let stats = RunProtocol::paper().run(|_, warmup| if warmup { 99.0 } else { 17.0 });
    /// assert_eq!(stats.n, 5);
    /// assert_eq!(stats.mean, 17.0);
    /// ```
    pub fn run<F>(&self, mut f: F) -> Stats
    where
        F: FnMut(usize, bool) -> f64,
    {
        assert!(
            self.discard < self.total_runs,
            "protocol discards everything"
        );
        let mut kept = Vec::with_capacity(self.kept());
        for i in 0..self.total_runs {
            let warmup = i < self.discard;
            let v = f(i, warmup);
            assert!(v.is_finite(), "run {i} produced a non-finite measurement");
            if !warmup {
                kept.push(v);
            }
        }
        Stats::from_samples(&kept)
    }

    /// Derive a deterministic per-run seed from an experiment label and run
    /// index (FNV-1a), so campaigns are reproducible yet runs differ.
    pub fn run_seed(label: &str, run: usize) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in label.bytes().chain((run as u64).to_le_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_last_five_of_seven() {
        let p = RunProtocol::paper();
        assert_eq!(p.kept(), 5);
        // Warm-up runs return garbage; kept runs return 10.0.
        let stats = p.run(|i, warmup| {
            assert_eq!(warmup, i < 2);
            if warmup {
                1000.0
            } else {
                10.0
            }
        });
        assert_eq!(stats.n, 5);
        assert!((stats.mean - 10.0).abs() < 1e-12);
        assert_eq!(stats.std_dev, 0.0);
    }

    #[test]
    fn runs_in_order() {
        let mut seen = Vec::new();
        RunProtocol::paper().run(|i, _| {
            seen.push(i);
            1.0
        });
        assert_eq!(seen, (0..7).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "discards everything")]
    fn degenerate_protocol_panics() {
        RunProtocol {
            total_runs: 2,
            discard: 2,
        }
        .run(|_, _| 1.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_measurement_panics() {
        RunProtocol::quick().run(|_, _| f64::NAN);
    }

    #[test]
    fn checked_accepts_boundary_and_rejects_degenerate() {
        // Boundary: keep exactly one run.
        let p = RunProtocol::checked(1, 0).unwrap();
        assert_eq!(p.kept(), 1);
        let stats = p.run(|_, warmup| {
            assert!(!warmup);
            3.5
        });
        assert_eq!((stats.n, stats.mean), (1, 3.5));

        // Boundary: discard all but one.
        assert_eq!(RunProtocol::checked(7, 6).unwrap().kept(), 1);

        // Degenerate shapes come back as typed errors, not panics.
        assert_eq!(RunProtocol::checked(0, 0), Err(ProtocolError::NoRuns));
        assert_eq!(
            RunProtocol::checked(3, 3),
            Err(ProtocolError::DiscardsEverything {
                total_runs: 3,
                discard: 3
            })
        );
        assert_eq!(
            RunProtocol::checked(3, 4),
            Err(ProtocolError::DiscardsEverything {
                total_runs: 3,
                discard: 4
            })
        );
        // The canonical shapes pass validation.
        assert_eq!(RunProtocol::checked(7, 2), Ok(RunProtocol::paper()));
        assert_eq!(RunProtocol::checked(5, 1), Ok(RunProtocol::quick()));
    }

    #[test]
    fn protocol_error_displays() {
        assert!(ProtocolError::NoRuns.to_string().contains("no runs"));
        let e = ProtocolError::DiscardsEverything {
            total_runs: 2,
            discard: 5,
        };
        assert!(e.to_string().contains("5 warm-ups of 2 run(s)"), "{e}");
    }

    #[test]
    fn seeds_stable_and_distinct() {
        let a = RunProtocol::run_seed("fig2/ubc/gdrive/10MB", 0);
        let b = RunProtocol::run_seed("fig2/ubc/gdrive/10MB", 1);
        let c = RunProtocol::run_seed("fig2/ubc/gdrive/20MB", 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, RunProtocol::run_seed("fig2/ubc/gdrive/10MB", 0));
    }

    #[test]
    fn variance_computed_over_kept_runs() {
        let values = [99.0, 99.0, 10.0, 12.0, 14.0, 16.0, 18.0];
        let stats = RunProtocol::paper().run(|i, _| values[i]);
        assert!((stats.mean - 14.0).abs() < 1e-12);
        assert!(stats.std_dev > 2.0 && stats.std_dev < 4.0);
    }
}
