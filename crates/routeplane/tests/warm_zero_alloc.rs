//! Proves the plane's warm-path guarantee: once a key is cached at the
//! current generation, `RoutePlane::lookup` performs zero heap allocation
//! — admitted, shed, and breaker-demoted lookups alike.
//!
//! Lives in its own test binary because the counting `#[global_allocator]`
//! is process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cloudstore::TripBoard;
use netsim::time::SimTime;
use routeplane::{
    AdmissionConfig, DecisionKey, DecisionSource, Lookup, PlaneConfig, RoutePlane, ServeStatus,
    SyntheticSource, DIRECT_ROUTE,
};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static A: Counting = Counting;

#[test]
fn warm_lookups_are_allocation_free() {
    let board = Arc::new(TripBoard::new(256));
    let plane = RoutePlane::new(PlaneConfig {
        vantages: 64,
        // The whole run happens in ~2µs of virtual time: quota must come
        // from burst depth, not refill.
        admission: AdmissionConfig {
            tokens_per_sec: 10_000,
            burst: 10_000,
        },
        ..PlaneConfig::default()
    })
    .with_trip_board(Arc::clone(&board));
    let source = SyntheticSource::new(11, 4, 256);
    let keys: Vec<DecisionKey> = (0..64u32)
        .map(|v| DecisionKey {
            vantage: v,
            provider: (v % 3) as u16,
            size_class: (v % 3) as u8,
        })
        .collect();

    // Warm: populate every key (cold path allocates map entries) and trip
    // one detour's gate so the demotion branch is exercised warm too.
    for &k in &keys {
        plane.lookup(0, k, 0, &source);
    }
    let tripped = keys
        .iter()
        .find(|&&k| source.compute(k, 0).best.route_idx != DIRECT_ROUTE)
        .copied()
        .expect("some key picks a detour");
    board.trip(
        source.compute(tripped, 0).best.target,
        SimTime::from_secs(3600),
    );

    let before = ALLOCS.load(Ordering::Relaxed);
    let mut demoted = 0u64;
    for now in 1..2_000u64 {
        let k = keys[(now as usize * 7) % keys.len()];
        match plane.lookup(0, k, now, &source) {
            Lookup::Served { status, .. } => {
                assert!(matches!(status, ServeStatus::Warm | ServeStatus::Demoted));
                if status == ServeStatus::Demoted {
                    demoted += 1;
                }
            }
            Lookup::Shed => panic!("quota sized for the workload"),
        }
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "warm plane lookups allocated {} times",
        after - before
    );
    assert!(demoted > 0, "demotion branch never taken warm");
}

#[test]
fn shed_lookups_are_allocation_free() {
    let plane = RoutePlane::new(PlaneConfig {
        admission: AdmissionConfig {
            tokens_per_sec: 1,
            burst: 1,
        },
        ..PlaneConfig::default()
    });
    let source = SyntheticSource::new(3, 4, 64);
    let key = DecisionKey {
        vantage: 1,
        provider: 1,
        size_class: 0,
    };
    // Spend the single-token burst (cold path may allocate).
    plane.lookup(0, key, 0, &source);
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..1_000 {
        assert_eq!(plane.lookup(0, key, 0, &source), Lookup::Shed);
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "shedding must not allocate under overload"
    );
}
