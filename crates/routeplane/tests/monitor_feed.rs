//! Monitors feed plane invalidation: a `RouteMonitor` epoch observer bumps
//! the generation range its probes cover, and exactly the cached decisions
//! in that range recompute on their next lookup.

use detour_core::{MonitorConfig, ProbeLeg, RouteMonitor};
use netsim::flow::FlowClass;
use netsim::geo::GeoPoint;
use netsim::prelude::*;
use netsim::units::MB;
use routeplane::{DecisionKey, Lookup, PlaneConfig, RoutePlane, ServeStatus, SyntheticSource};
use std::sync::Arc;

#[test]
fn epoch_changes_invalidate_the_monitored_range() {
    // A two-route world where congestion makes the winner flip across
    // epochs, so the observer sees at least one `changed` epoch.
    let mut b = TopologyBuilder::new();
    let user = b.host("user", GeoPoint::new(49.0, -123.0));
    let ra = b.router("ra", GeoPoint::new(50.0, -120.0));
    let rb = b.host("dtn-b", GeoPoint::new(53.5, -113.5));
    let pop = b.datacenter("pop", GeoPoint::new(37.4, -122.1));
    let fat = LinkParams::new(Bandwidth::from_mbps(400.0), SimTime::from_millis(3));
    let thin = LinkParams::new(Bandwidth::from_mbps(30.0), SimTime::from_millis(8));
    b.duplex(user, ra, fat);
    b.duplex(ra, pop, thin);
    b.duplex(user, rb, thin);
    b.duplex(rb, pop, thin);
    let mut sim = Sim::new(b.build(), 5);
    let cfg = MonitorConfig {
        routes: vec![
            vec![ProbeLeg {
                src: user,
                dst: pop,
                class: FlowClass::Commodity,
            }],
            vec![
                ProbeLeg {
                    src: user,
                    dst: rb,
                    class: FlowClass::Commodity,
                },
                ProbeLeg {
                    src: rb,
                    dst: pop,
                    class: FlowClass::Commodity,
                },
            ],
        ],
        probe_bytes: MB,
        reference_bytes: 50 * MB,
        interval: SimTime::from_secs(20),
        epochs: 5,
        alpha: 0.6,
    };

    // This monitor watches provider 0 for vantages [8, 15]; the plane has
    // other providers and vantages that must stay warm through the churn.
    let plane = Arc::new(RoutePlane::new(PlaneConfig {
        vantage_bucket_shift: 0,
        ..PlaneConfig::default()
    }));
    let source = SyntheticSource::new(9, 4, 64);
    let covered = DecisionKey {
        vantage: 12,
        provider: 0,
        size_class: 1,
    };
    let outside = DecisionKey {
        vantage: 200,
        provider: 0,
        size_class: 1,
    };
    let other_provider = DecisionKey {
        vantage: 12,
        provider: 1,
        size_class: 1,
    };
    for k in [covered, outside, other_provider] {
        plane.lookup(0, k, 0, &source);
    }

    let feed = Arc::clone(&plane);
    let mut changes = 0u64;
    let monitor = RouteMonitor::new(cfg).with_observer(move |obs| {
        if obs.changed {
            feed.invalidate_vantage_range(0, 8, 15);
        }
    });
    // Count changed epochs independently to know how many bumps happened.
    let v = sim.run_process(Box::new(monitor)).unwrap();
    let choices = RouteMonitor::decode_choices(&v);
    for (i, &c) in choices.iter().enumerate() {
        if i == 0 || c != choices[i - 1] {
            changes += 1;
        }
    }
    assert!(changes >= 1, "epoch 0 always counts as a change");

    let serve = |k| match plane.lookup(0, k, 1, &source) {
        Lookup::Served { decision, status } => (decision, status),
        Lookup::Shed => panic!("unexpected shed"),
    };
    let (d, status) = serve(covered);
    assert_eq!(status, ServeStatus::Refreshed, "covered key must recompute");
    assert_eq!(d.generation, changes, "one generation per changed epoch");
    assert_eq!(serve(outside).1, ServeStatus::Warm);
    assert_eq!(serve(other_provider).1, ServeStatus::Warm);
    assert_eq!(plane.stats().stale_refreshes, 1);
}
