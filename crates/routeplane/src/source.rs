//! Decision sources: where scored routes come from.
//!
//! [`SyntheticSource`] is a pure hash-derived scorer for fleet drivers,
//! benches and the coherence oracle — cheap, `Sync`, and *generation-
//! sensitive*, so serving a stale-generation decision produces detectably
//! wrong bits. [`ProbeSource`] scores through the real
//! [`detour_core::ProbeSelector`] against a live simulator, which is what
//! the cache actually amortizes in production-shaped runs; it is
//! thread-local (`RefCell<Sim>`), which the plane's lookup-takes-a-source
//! design exists to accommodate.

use crate::cache::{DecisionSource, RouteScore, ScoredEntry, DIRECT_ROUTE};
use crate::key::DecisionKey;
use cloudstore::Provider;
use detour_core::{ProbeSelector, Route};
use netsim::engine::Sim;
use netsim::flow::FlowClass;
use netsim::topology::NodeId;
use std::cell::RefCell;

/// SplitMix64: the standard 64-bit finalizer used to derive independent
/// deterministic streams from a key. Public because the fleet driver and
/// simcheck derive their schedules from it too.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A pure, hash-derived decision source: `compute(key, gen)` is a
/// deterministic function of `(seed, key, gen)` and nothing else, so two
/// instances with the same seed are bit-identical across threads and
/// processes. Scores shift when the generation does — a monitor bump
/// *means* "conditions changed" — which is what lets the coherence oracle
/// catch a cache serving old generations.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticSource {
    seed: u64,
    detours: u32,
    nodes: u32,
}

impl SyntheticSource {
    /// A source with `detours` detour candidates per key (plus the direct
    /// route) over a world of `nodes` nodes.
    pub fn new(seed: u64, detours: u32, nodes: u32) -> Self {
        assert!(detours > 0 && nodes > 1);
        SyntheticSource {
            seed,
            detours,
            nodes,
        }
    }

    /// Number of candidate routes per key (direct + detours).
    pub fn candidates(&self) -> u32 {
        self.detours + 1
    }

    fn score_of(&self, key: DecisionKey, generation: u64, route_idx: u32) -> RouteScore {
        let h = splitmix64(
            self.seed
                ^ splitmix64(key.pack())
                ^ splitmix64(generation.wrapping_mul(0xA24B_AED4_963E_E407))
                ^ (route_idx as u64) << 48,
        );
        // Map the hash to seconds in [base, base + spread): direct routes
        // sit around the paper's slow-path times, detours spread wider so
        // roughly 1 key in (detours+1) keeps the direct route as best.
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        let expected_secs = 20.0 + 180.0 * unit;
        let target = if route_idx == DIRECT_ROUTE {
            // The provider frontend gates the direct route.
            NodeId((splitmix64(self.seed ^ key.provider as u64) % self.nodes as u64) as u32)
        } else {
            // A detour is gated by its DTN node.
            NodeId((splitmix64(h ^ route_idx as u64) % self.nodes as u64) as u32)
        };
        RouteScore {
            route_idx,
            target,
            expected_secs,
        }
    }
}

impl DecisionSource for SyntheticSource {
    fn compute(&self, key: DecisionKey, generation: u64) -> ScoredEntry {
        let direct = self.score_of(key, generation, DIRECT_ROUTE);
        let mut best = direct;
        for idx in 1..=self.detours {
            let s = self.score_of(key, generation, idx);
            if s.expected_secs < best.expected_secs {
                best = s;
            }
        }
        ScoredEntry { best, direct }
    }
}

/// A decision source backed by a real simulator and the probe selector:
/// route predictions come from idle-path rate estimates over the actual
/// topology, exactly what `detour probe` computes per cell. Deterministic
/// for a fixed world (idle-path rates are a pure function of the
/// topology), but **not** generation-sensitive — generations only mark
/// freshness here. Not `Sync`: each worker thread builds its own.
pub struct ProbeSource {
    sim: RefCell<Sim>,
    selector: ProbeSelector,
    /// Vantage index → client node, cycled modulo its length.
    clients: Vec<(NodeId, FlowClass)>,
    /// Provider index → provider, cycled modulo its length.
    providers: Vec<Provider>,
    /// Candidate routes; index 0 must be [`Route::Direct`].
    routes: Vec<Route>,
    /// Size class → representative transfer bytes.
    class_bytes: [u64; 3],
}

impl ProbeSource {
    /// Wrap a simulator and a candidate world. `routes[0]` must be the
    /// direct route (the plane's demotion fallback).
    pub fn new(
        sim: Sim,
        clients: Vec<(NodeId, FlowClass)>,
        providers: Vec<Provider>,
        routes: Vec<Route>,
        class_bytes: [u64; 3],
    ) -> Self {
        assert!(!clients.is_empty() && !providers.is_empty());
        assert!(
            matches!(routes.first(), Some(Route::Direct)),
            "route 0 must be Direct"
        );
        ProbeSource {
            sim: RefCell::new(sim),
            selector: ProbeSelector::default(),
            clients,
            providers,
            routes,
            class_bytes,
        }
    }

    /// Number of candidate routes.
    pub fn candidates(&self) -> u32 {
        self.routes.len() as u32
    }

    fn gate_node(
        &self,
        sim: &mut Sim,
        provider: &Provider,
        client: NodeId,
        route: &Route,
    ) -> NodeId {
        match route {
            Route::Direct => provider.frontend_for(sim.core().topology(), client),
            Route::Via(hops) => hops[0].node,
        }
    }
}

impl DecisionSource for ProbeSource {
    fn compute(&self, key: DecisionKey, _generation: u64) -> ScoredEntry {
        let mut sim = self.sim.borrow_mut();
        let (client, class) = self.clients[key.vantage as usize % self.clients.len()];
        let provider = &self.providers[key.provider as usize % self.providers.len()];
        let bytes = self.class_bytes[key.size_class as usize % 3];
        let mut direct: Option<RouteScore> = None;
        let mut best: Option<RouteScore> = None;
        for (idx, route) in self.routes.iter().enumerate() {
            let secs = self
                .selector
                .predict(&mut sim, client, class, provider, route, bytes)
                .expect("probe prediction over a connected world");
            let score = RouteScore {
                route_idx: idx as u32,
                target: self.gate_node(&mut sim, provider, client, route),
                expected_secs: secs,
            };
            if idx as u32 == DIRECT_ROUTE {
                direct = Some(score);
            }
            if best.map(|b| secs < b.expected_secs).unwrap_or(true) {
                best = Some(score);
            }
        }
        ScoredEntry {
            best: best.expect("nonempty routes"),
            direct: direct.expect("route 0 is direct"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_is_pure_and_generation_sensitive() {
        let a = SyntheticSource::new(42, 4, 64);
        let b = SyntheticSource::new(42, 4, 64);
        let key = DecisionKey {
            vantage: 17,
            provider: 1,
            size_class: 2,
        };
        assert_eq!(a.compute(key, 5), b.compute(key, 5), "same seed, same bits");
        assert_ne!(
            a.compute(key, 5).best.bits(),
            a.compute(key, 6).best.bits(),
            "a generation bump must change the decision bits"
        );
        assert_ne!(
            a.compute(key, 5),
            SyntheticSource::new(43, 4, 64).compute(key, 5),
            "different seeds disagree"
        );
    }

    #[test]
    fn synthetic_direct_fallback_is_really_direct() {
        let s = SyntheticSource::new(7, 4, 64);
        let mut detours = 0;
        for v in 0..100u32 {
            let key = DecisionKey {
                vantage: v,
                provider: (v % 3) as u16,
                size_class: (v % 3) as u8,
            };
            let e = s.compute(key, 0);
            assert_eq!(e.direct.route_idx, DIRECT_ROUTE);
            assert!(e.best.expected_secs <= e.direct.expected_secs);
            if e.best.route_idx != DIRECT_ROUTE {
                detours += 1;
            }
        }
        // 4 detour candidates vs 1 direct: detours win most keys.
        assert!(detours > 50, "only {detours}/100 keys chose a detour");
    }
}
