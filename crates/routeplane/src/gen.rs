//! Key-range generation counters: how monitors invalidate cached
//! decisions without sweeping the cache.
//!
//! Every decision key maps to one (provider, vantage-bucket) generation
//! slot. A monitor that observes a route change bumps the slots covering
//! the affected key range; cached entries stamped with an older generation
//! are recomputed lazily the next time they are looked up. Invalidation
//! cost is proportional to the buckets bumped, never to the number of
//! cached entries, and the hot path pays exactly one relaxed atomic load.

use crate::key::DecisionKey;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-(provider, vantage-bucket) generation counters.
#[derive(Debug)]
pub struct GenTable {
    /// `providers × buckets_per_provider` counters, provider-major.
    slots: Box<[AtomicU64]>,
    buckets_per_provider: usize,
    providers: u16,
    /// Vantages per bucket = `1 << shift`.
    shift: u32,
}

impl GenTable {
    /// A table covering `providers × vantages` keys, grouping `1 << shift`
    /// consecutive vantages per invalidation bucket. `shift = 0` gives
    /// per-vantage granularity; larger shifts trade invalidation precision
    /// for memory (a 1M-vantage, 4-provider table at shift 6 is 62.5k
    /// counters).
    pub fn new(providers: u16, vantages: u32, shift: u32) -> Self {
        assert!(providers > 0 && vantages > 0);
        assert!(shift < 32);
        let buckets = ((vantages - 1) >> shift) as usize + 1;
        let n = buckets * providers as usize;
        GenTable {
            slots: (0..n).map(|_| AtomicU64::new(0)).collect(),
            buckets_per_provider: buckets,
            providers,
            shift,
        }
    }

    fn slot(&self, provider: u16, vantage: u32) -> &AtomicU64 {
        let bucket = (vantage >> self.shift) as usize % self.buckets_per_provider;
        let p = provider as usize % self.providers as usize;
        &self.slots[p * self.buckets_per_provider + bucket]
    }

    /// Current generation governing `key`. One relaxed load.
    pub fn current(&self, key: DecisionKey) -> u64 {
        self.slot(key.provider, key.vantage).load(Ordering::Relaxed)
    }

    /// Invalidate the inclusive vantage range `[lo, hi]` for `provider`:
    /// every bucket overlapping the range is bumped, and only those —
    /// keys in other buckets (or other providers) stay warm. Returns the
    /// number of buckets bumped.
    pub fn bump_vantage_range(&self, provider: u16, lo: u32, hi: u32) -> usize {
        assert!(lo <= hi);
        let lo_b = (lo >> self.shift) as usize;
        let hi_b = ((hi >> self.shift) as usize).min(self.buckets_per_provider - 1);
        let p = provider as usize % self.providers as usize;
        for b in lo_b..=hi_b {
            self.slots[p * self.buckets_per_provider + b].fetch_add(1, Ordering::Relaxed);
        }
        hi_b - lo_b + 1
    }

    /// Invalidate every key targeting `provider`.
    pub fn bump_provider(&self, provider: u16) -> usize {
        let p = provider as usize % self.providers as usize;
        for b in 0..self.buckets_per_provider {
            self.slots[p * self.buckets_per_provider + b].fetch_add(1, Ordering::Relaxed);
        }
        self.buckets_per_provider
    }

    /// Vantages per invalidation bucket.
    pub fn bucket_width(&self) -> u32 {
        1 << self.shift
    }

    /// Total generation slots (providers × buckets).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Sum of all generation counters (a cheap churn fingerprint).
    pub fn total_bumps(&self) -> u64 {
        self.slots.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(provider: u16, vantage: u32) -> DecisionKey {
        DecisionKey {
            vantage,
            provider,
            size_class: 0,
        }
    }

    #[test]
    fn bump_invalidates_exactly_the_covered_buckets() {
        // Shift 2: buckets of 4 vantages. Bump [5, 9] → buckets 1 and 2
        // (vantages 4..=11); vantages 0..=3 and 12..=15 stay at gen 0.
        let t = GenTable::new(2, 16, 2);
        assert_eq!(t.bump_vantage_range(1, 5, 9), 2);
        for v in 0..16 {
            let expect = if (4..=11).contains(&v) { 1 } else { 0 };
            assert_eq!(t.current(key(1, v)), expect, "vantage {v}");
            assert_eq!(t.current(key(0, v)), 0, "other provider, vantage {v}");
        }
    }

    #[test]
    fn per_vantage_granularity_at_shift_zero() {
        let t = GenTable::new(1, 8, 0);
        t.bump_vantage_range(0, 3, 3);
        for v in 0..8 {
            assert_eq!(t.current(key(0, v)), u64::from(v == 3), "vantage {v}");
        }
    }

    #[test]
    fn provider_bump_covers_all_buckets() {
        let t = GenTable::new(3, 100, 4);
        let buckets = t.bump_provider(2);
        assert_eq!(buckets, 100 / 16 + 1);
        assert_eq!(t.current(key(2, 0)), 1);
        assert_eq!(t.current(key(2, 99)), 1);
        assert_eq!(t.current(key(0, 50)), 0);
        assert_eq!(t.total_bumps(), buckets as u64);
    }

    #[test]
    fn range_past_the_end_is_clamped() {
        let t = GenTable::new(1, 10, 1);
        // 10 vantages at width 2 → 5 buckets; hi = 1000 clamps to the last.
        assert_eq!(t.bump_vantage_range(0, 8, 1000), 1);
        assert_eq!(t.current(key(0, 9)), 1);
        assert_eq!(t.current(key(0, 7)), 0);
    }
}
