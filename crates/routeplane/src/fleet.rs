//! Fleet driver: millions of simulated clients hammering one plane.
//!
//! Clients draw keys from a zipf-skewed popularity distribution (a few
//! vantage/provider cells dominate, the long tail stays cold, like real
//! client populations). Time is *virtual*: lookup `seq` happens at
//! `seq * ns_per_lookup`, driven by one global sequence counter, so
//! admission refills, breaker cooldowns and staleness are measured in
//! deterministic nanoseconds regardless of host speed. Monitor churn and
//! breaker trips fire at fixed sequence boundaries — exactly one event per
//! boundary even when several threads race past it, because the thread
//! that drew the boundary sequence number owns its event.

use crate::cache::{Lookup, PlaneConfig, PlaneStats, RoutePlane, ServeStatus};
use crate::key::DecisionKey;
use crate::source::{splitmix64, SyntheticSource};
use cloudstore::TripBoard;
use netsim::time::SimTime;
use obs::QuantileSketch;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Fleet-run shape.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Distinct simulated clients (the zipf population).
    pub clients: u64,
    /// Total route decisions to serve.
    pub lookups: u64,
    /// Worker threads (1 = fully deterministic).
    pub threads: usize,
    /// Seed for the key/churn/trip schedules.
    pub seed: u64,
    /// Zipf skew exponent (1.0 ≈ classic web popularity; larger = hotter).
    pub zipf_s: f64,
    /// Bump a random vantage range every N lookups (0 = no churn).
    pub churn_every: u64,
    /// Vantages per churn bump.
    pub churn_width: u32,
    /// Trip a random node's breaker every N lookups (0 = no trips).
    pub trip_every: u64,
    /// How long a tripped breaker stays open, virtual ns.
    pub trip_cooldown_ns: u64,
    /// Virtual nanoseconds per lookup (the fleet-wide arrival rate).
    pub ns_per_lookup: u64,
    /// Nodes in the world (trip targets).
    pub nodes: u32,
    /// Detour candidates per key in the synthetic source.
    pub detours: u32,
    /// Plane shape and quotas.
    pub plane: PlaneConfig,
}

impl FleetConfig {
    /// Virtual nanoseconds for one full churn sweep over every (provider,
    /// vantage-window) cell — the hard upper bound on served-decision
    /// staleness. `None` when churn is off.
    pub fn churn_period_ns(&self) -> Option<u64> {
        if self.churn_every == 0 {
            return None;
        }
        let windows = (self.plane.vantages as u64).div_ceil(self.churn_width.max(1) as u64);
        Some(self.churn_every * windows * self.plane.providers as u64 * self.ns_per_lookup)
    }
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            clients: 1_000_000,
            lookups: 2_000_000,
            threads: 1,
            seed: 7,
            zipf_s: 1.05,
            churn_every: 10_000,
            churn_width: 32,
            trip_every: 50_000,
            trip_cooldown_ns: 200_000_000,
            ns_per_lookup: 1_000,
            nodes: 4096,
            detours: 4,
            plane: PlaneConfig::default(),
        }
    }
}

/// What a fleet run measured.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Lookups issued (served + shed).
    pub lookups: u64,
    /// Wall-clock seconds the run took.
    pub elapsed_secs: f64,
    /// Decisions per wall-clock second (served + shed — sheds are answers).
    pub qps: f64,
    /// Plane counter snapshot.
    pub stats: PlaneStats,
    /// Generation buckets bumped by churn.
    pub churn_bumps: u64,
    /// Breakers tripped.
    pub trips: u64,
    /// Decision staleness (now − computed_at), virtual ns, over every
    /// served decision.
    pub staleness: QuantileSketch,
    /// Order-insensitive fold of every outcome: same seed + one thread →
    /// same digest, which is what the determinism tests pin.
    pub digest: u64,
}

impl FleetReport {
    /// Staleness quantile in virtual nanoseconds.
    pub fn staleness_ns(&self, q: f64) -> u64 {
        self.staleness.quantile(q).unwrap_or(0)
    }

    /// One-line human summary.
    pub fn to_line(&self) -> String {
        format!(
            "{} lookups in {:.2}s = {:.0}/s | hit {} miss {} stale {} demote {} shed {} | staleness p50 {}ns p99 {}ns | digest {:016x}",
            self.lookups,
            self.elapsed_secs,
            self.qps,
            self.stats.hits,
            self.stats.misses,
            self.stats.stale_refreshes,
            self.stats.demotions,
            self.stats.sheds,
            self.staleness_ns(0.50),
            self.staleness_ns(0.99),
            self.digest,
        )
    }
}

/// Inverse-CDF zipf(s) sample over ranks `1..=n` from a uniform `u` in
/// [0, 1). Approximate (continuous relaxation) but monotone and cheap —
/// popularity shaping, not exact zipf moments, is what the fleet needs.
fn zipf_rank(u: f64, n: u64, s: f64) -> u64 {
    debug_assert!((0.0..1.0).contains(&u));
    if (s - 1.0).abs() < 1e-9 {
        // s = 1: CDF ∝ ln(k), invert with exp.
        let rank = ((n as f64).ln() * u).exp();
        return (rank as u64).clamp(1, n);
    }
    let e = 1.0 - s;
    let top = (n as f64).powf(e) - 1.0;
    let rank = (top * u + 1.0).powf(1.0 / e);
    (rank as u64).clamp(1, n)
}

/// The key a client hits: popular clients concentrate on few cells.
fn key_for_client(client: u64, cfg: &FleetConfig) -> DecisionKey {
    let h = splitmix64(client ^ 0xC1EA_7001);
    DecisionKey {
        vantage: (h % cfg.plane.vantages as u64) as u32,
        provider: ((h >> 32) % cfg.plane.providers as u64) as u16,
        size_class: ((h >> 56) % 3) as u8,
    }
}

struct WorkerOut {
    staleness: QuantileSketch,
    digest: u64,
    churn_bumps: u64,
    trips: u64,
}

fn status_tag(status: ServeStatus) -> u64 {
    match status {
        ServeStatus::Warm => 1,
        ServeStatus::Computed => 2,
        ServeStatus::Refreshed => 3,
        ServeStatus::Demoted => 4,
    }
}

fn run_worker(
    plane: &RoutePlane,
    board: &TripBoard,
    seq: &AtomicU64,
    cfg: &FleetConfig,
) -> WorkerOut {
    let source = SyntheticSource::new(cfg.seed, cfg.detours, cfg.nodes);
    let mut out = WorkerOut {
        staleness: QuantileSketch::new(),
        digest: 0,
        churn_bumps: 0,
        trips: 0,
    };
    loop {
        let i = seq.fetch_add(1, Ordering::Relaxed);
        if i >= cfg.lookups {
            return out;
        }
        let now_ns = i * cfg.ns_per_lookup;
        // The thread that drew a boundary sequence owns its event, so each
        // fires exactly once no matter the thread count.
        //
        // Churn sweeps (provider, vantage-window) cells round-robin, like a
        // monitor walking its probe schedule. The sweep is what bounds
        // staleness: every bucket is re-bumped every `churn_period_ns()`,
        // and a warm entry's generation became current no earlier than its
        // bucket's last bump, so no served decision is ever older than one
        // sweep period.
        if cfg.churn_every > 0 && i.is_multiple_of(cfg.churn_every) {
            let j = i / cfg.churn_every;
            let windows = (cfg.plane.vantages as u64).div_ceil(cfg.churn_width.max(1) as u64);
            let provider = ((j / windows) % cfg.plane.providers as u64) as u16;
            let lo = ((j % windows) * cfg.churn_width as u64) as u32;
            let hi = lo.saturating_add(cfg.churn_width.saturating_sub(1));
            out.churn_bumps += plane.invalidate_vantage_range(provider, lo, hi) as u64;
        }
        if cfg.trip_every > 0 && i.is_multiple_of(cfg.trip_every) {
            let h = splitmix64(cfg.seed ^ i ^ 0x7219);
            let node = netsim::topology::NodeId((h % cfg.nodes as u64) as u32);
            board.trip(node, SimTime::from_nanos(now_ns + cfg.trip_cooldown_ns));
            out.trips += 1;
        }
        // Draw a client by zipf popularity; its cell and tenant follow.
        let u = (splitmix64(cfg.seed ^ i) >> 11) as f64 / (1u64 << 53) as f64;
        let client = zipf_rank(u, cfg.clients, cfg.zipf_s) - 1;
        let key = key_for_client(client, cfg);
        let tenant = (client % cfg.plane.tenants as u64) as u32;
        let fold = match plane.lookup(tenant, key, now_ns, &source) {
            Lookup::Shed => splitmix64(i ^ 0x5EED),
            Lookup::Served { decision, status } => {
                // Saturating: a threaded run can serve an entry another
                // worker stamped with a later virtual time than this seq.
                out.staleness
                    .record(now_ns.saturating_sub(decision.computed_at_ns));
                splitmix64(
                    i ^ decision.score.bits() ^ decision.generation ^ status_tag(status) << 60,
                )
            }
        };
        out.digest = out.digest.wrapping_add(fold);
    }
}

/// Run a fleet against a fresh plane and report. One thread replays
/// exactly for a seed; more threads trade that for throughput (the digest
/// then depends on interleaving, but every decision still passes the
/// coherence oracle).
pub fn run_fleet(cfg: &FleetConfig) -> FleetReport {
    assert!(cfg.threads >= 1 && cfg.lookups > 0 && cfg.clients > 0);
    let board = Arc::new(TripBoard::new(cfg.nodes as usize));
    let plane = RoutePlane::new(cfg.plane).with_trip_board(Arc::clone(&board));
    let distinct = (cfg.plane.vantages as usize)
        .saturating_mul(cfg.plane.providers as usize)
        .saturating_mul(3)
        .min(cfg.clients as usize);
    plane.reserve(distinct);
    let seq = AtomicU64::new(0);
    let start = Instant::now();
    let outs: Vec<WorkerOut> = if cfg.threads == 1 {
        vec![run_worker(&plane, &board, &seq, cfg)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..cfg.threads)
                .map(|_| scope.spawn(|| run_worker(&plane, &board, &seq, cfg)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
    };
    let elapsed = start.elapsed().as_secs_f64();
    let staleness = QuantileSketch::merge_all(outs.iter().map(|o| &o.staleness));
    FleetReport {
        lookups: cfg.lookups,
        elapsed_secs: elapsed,
        qps: cfg.lookups as f64 / elapsed.max(1e-9),
        stats: plane.stats(),
        churn_bumps: outs.iter().map(|o| o.churn_bumps).sum(),
        trips: outs.iter().map(|o| o.trips).sum(),
        staleness,
        digest: outs.iter().fold(0u64, |d, o| d.wrapping_add(o.digest)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FleetConfig {
        FleetConfig {
            clients: 50_000,
            lookups: 60_000,
            churn_every: 2_000,
            trip_every: 7_000,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn single_thread_runs_are_bit_identical() {
        let a = run_fleet(&small());
        let b = run_fleet(&small());
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.staleness_ns(0.99), b.staleness_ns(0.99));
        let mut other_seed = small();
        other_seed.seed = 8;
        assert_ne!(run_fleet(&other_seed).digest, a.digest);
    }

    #[test]
    fn fleet_exercises_every_path() {
        let r = run_fleet(&small());
        assert_eq!(r.stats.served() + r.stats.sheds, r.lookups);
        assert!(
            r.stats.hits > r.stats.misses,
            "zipf skew must produce warm hits"
        );
        assert!(r.stats.stale_refreshes > 0, "churn must stale some entries");
        assert!(r.stats.demotions > 0, "trips must demote some decisions");
        assert!(r.trips > 0 && r.churn_bumps > 0);
        assert_eq!(r.staleness.count(), r.stats.served());
    }

    #[test]
    fn staleness_is_bounded_by_the_churn_sweep() {
        let cfg = FleetConfig {
            churn_every: 250,
            churn_width: 64,
            ..small()
        };
        // 1024 vantages / 64 per window × 3 providers × 250 lookups ×
        // 1µs/lookup = a 12ms sweep; run spans 60ms, so the bound bites.
        let period = cfg.churn_period_ns().unwrap();
        assert_eq!(period, 12_000_000);
        assert!(period < cfg.lookups * cfg.ns_per_lookup / 4);
        let r = run_fleet(&cfg);
        let max = r.staleness.max().unwrap();
        assert!(
            max <= period,
            "staleness max {max}ns exceeds the sweep period {period}ns"
        );
        assert!(r.staleness_ns(0.99) <= period);
        assert!(r.staleness_ns(0.99) > 0);
    }

    #[test]
    fn threaded_fleet_matches_counters() {
        let cfg = FleetConfig {
            threads: 4,
            ..small()
        };
        let r = run_fleet(&cfg);
        assert_eq!(r.stats.served() + r.stats.sheds, r.lookups);
        assert_eq!(r.staleness.count(), r.stats.served());
        assert_eq!(
            r.trips,
            (cfg.lookups.saturating_sub(1) / cfg.trip_every) + 1
        );
    }

    #[test]
    fn zipf_is_monotone_and_in_range() {
        for &s in &[0.8, 1.0, 1.2] {
            let mut prev = 1;
            for i in 0..100 {
                let u = i as f64 / 100.0;
                let r = zipf_rank(u, 1000, s);
                assert!((1..=1000).contains(&r));
                assert!(r >= prev, "inverse CDF must be monotone");
                prev = r;
            }
        }
    }
}
