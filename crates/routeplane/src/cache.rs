//! The sharded, generation-stamped decision cache and the plane that
//! serves lookups from it.
//!
//! Warm path: admission check (one per-tenant mutex), one relaxed
//! generation load, one shard mutex, one hash-map probe, one optional
//! trip-board load — no global lock, no allocation, everything returned
//! by value as `Copy` structs. Cold and stale paths compute through a
//! [`DecisionSource`] while holding the shard lock, so each (key,
//! generation) pair is computed and published exactly once even under
//! concurrent misses.

use crate::admission::{Admission, AdmissionConfig};
use crate::gen::GenTable;
use crate::key::{DecisionKey, PackedKeyBuild};
use cloudstore::TripBoard;
use netsim::topology::NodeId;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Route index of the direct route in every candidate set.
pub const DIRECT_ROUTE: u32 = 0;

/// One scored route: which candidate won, the node whose breaker gates it,
/// and the predicted transfer time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteScore {
    /// Candidate index; [`DIRECT_ROUTE`] is the direct route.
    pub route_idx: u32,
    /// Gating node: the DTN for a detour, the provider frontend for direct.
    pub target: NodeId,
    /// Predicted seconds for the reference transfer.
    pub expected_secs: f64,
}

impl RouteScore {
    /// Fold the score into a digest-friendly `u64` (exact bits, no
    /// rounding) — the coherence oracle compares these.
    pub fn bits(&self) -> u64 {
        let mut h = crate::key::PackedKeyHasher::default();
        h.write_u64(self.route_idx as u64);
        h.write_u64(self.target.0 as u64);
        h.write_u64(self.expected_secs.to_bits());
        h.finish()
    }
}

/// What the cold path computes and the cache stores per key: the best
/// decision plus its direct-route fallback, so breaker demotion needs no
/// recompute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredEntry {
    /// The winning route.
    pub best: RouteScore,
    /// The direct route's score (`route_idx == DIRECT_ROUTE`).
    pub direct: RouteScore,
}

/// Computes a scored decision for a key at a generation. Implementations
/// must be *pure*: the same `(key, generation)` must always produce
/// bit-identical scores, across calls and across instances constructed the
/// same way — that is what makes cached decisions checkable against fresh
/// ones (simcheck's `PlaneDivergence` oracle) and cold-path publication
/// race-free.
pub trait DecisionSource {
    /// Score every candidate route for `key` as observed at `generation`.
    fn compute(&self, key: DecisionKey, generation: u64) -> ScoredEntry;
}

impl<S: DecisionSource + ?Sized> DecisionSource for &S {
    fn compute(&self, key: DecisionKey, generation: u64) -> ScoredEntry {
        (**self).compute(key, generation)
    }
}

/// A served decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// The route to use (already demoted to direct if a breaker is open).
    pub score: RouteScore,
    /// Generation the decision is current for.
    pub generation: u64,
    /// Virtual time the underlying entry was computed at; `now -
    /// computed_at_ns` is the decision's staleness (age).
    pub computed_at_ns: u64,
}

/// How a lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeStatus {
    /// Warm hit at the current generation.
    Warm,
    /// First computation for this key (cold miss).
    Computed,
    /// Entry existed but its generation was stale; recomputed lazily.
    Refreshed,
    /// Served the direct fallback because the best route's breaker is open.
    /// The underlying entry may have been warm or recomputed.
    Demoted,
}

/// Lookup outcome: a decision, or deterministic shedding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Lookup {
    /// Admission control rejected the request (tenant over quota).
    Shed,
    /// A decision was served.
    Served {
        /// The decision.
        decision: Decision,
        /// How it was satisfied.
        status: ServeStatus,
    },
}

/// Plane shape and quotas.
#[derive(Debug, Clone, Copy)]
pub struct PlaneConfig {
    /// Cache shards (rounded up to a power of two).
    pub shards: usize,
    /// Providers served.
    pub providers: u16,
    /// Vantages served.
    pub vantages: u32,
    /// Generation-bucket width is `1 << vantage_bucket_shift` vantages.
    pub vantage_bucket_shift: u32,
    /// Tenants sharing the plane.
    pub tenants: u32,
    /// Per-tenant admission quota.
    pub admission: AdmissionConfig,
}

impl Default for PlaneConfig {
    fn default() -> Self {
        PlaneConfig {
            shards: 64,
            providers: 3,
            vantages: 1024,
            vantage_bucket_shift: 4,
            tenants: 8,
            admission: AdmissionConfig::default(),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct CacheSlot {
    entry: ScoredEntry,
    generation: u64,
    computed_at_ns: u64,
}

/// Monotonic counters the plane keeps; all relaxed atomics, exportable as
/// dotted `obs` metrics.
#[derive(Debug, Default)]
pub struct PlaneCounters {
    /// Warm hits at the current generation.
    pub hits: AtomicU64,
    /// Cold misses (first computation for the key).
    pub misses: AtomicU64,
    /// Lazy recomputations of generation-stale entries.
    pub stale_refreshes: AtomicU64,
    /// Decisions demoted to direct by an open breaker.
    pub demotions: AtomicU64,
    /// Requests shed by admission control.
    pub sheds: AtomicU64,
}

/// A point-in-time copy of [`PlaneCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlaneStats {
    /// Warm hits.
    pub hits: u64,
    /// Cold misses.
    pub misses: u64,
    /// Stale refreshes.
    pub stale_refreshes: u64,
    /// Breaker demotions.
    pub demotions: u64,
    /// Shed requests.
    pub sheds: u64,
}

impl PlaneStats {
    /// Decisions served (everything but sheds).
    pub fn served(&self) -> u64 {
        self.hits + self.misses + self.stale_refreshes
    }
}

/// The multi-tenant route-decision service. See the crate docs for the
/// design; construction wires the cache, generation table and admission
/// controller, [`RoutePlane::with_trip_board`] attaches breaker state.
///
/// The plane owns no [`DecisionSource`]: lookups take one, so worker
/// threads can keep thread-local (non-`Sync`, e.g. simulator-backed)
/// sources while sharing one plane.
pub struct RoutePlane {
    cfg: PlaneConfig,
    shards: Box<[Mutex<HashMap<u64, CacheSlot, PackedKeyBuild>>]>,
    shard_mask: usize,
    gens: GenTable,
    admission: Admission,
    trips: Option<Arc<TripBoard>>,
    counters: PlaneCounters,
}

impl RoutePlane {
    /// Build a plane.
    pub fn new(cfg: PlaneConfig) -> Self {
        let shards = cfg.shards.next_power_of_two().max(1);
        RoutePlane {
            shards: (0..shards)
                .map(|_| Mutex::new(HashMap::with_hasher(PackedKeyBuild::default())))
                .collect(),
            shard_mask: shards - 1,
            gens: GenTable::new(cfg.providers, cfg.vantages, cfg.vantage_bucket_shift),
            admission: Admission::new(cfg.tenants, cfg.admission),
            trips: None,
            counters: PlaneCounters::default(),
            cfg,
        }
    }

    /// Attach breaker state: decisions whose best route's target is open
    /// demote to the cached direct fallback within the same lookup.
    pub fn with_trip_board(mut self, board: Arc<TripBoard>) -> Self {
        self.trips = Some(board);
        self
    }

    /// The configuration in force.
    pub fn config(&self) -> &PlaneConfig {
        &self.cfg
    }

    /// The attached trip board, if any.
    pub fn trip_board(&self) -> Option<&Arc<TripBoard>> {
        self.trips.as_ref()
    }

    fn shard_of(&self, packed: u64) -> &Mutex<HashMap<u64, CacheSlot, PackedKeyBuild>> {
        let h = PackedKeyBuild::default().hash_one(packed);
        &self.shards[(h as usize) & self.shard_mask]
    }

    /// Serve one route decision for `tenant` at virtual time `now_ns`,
    /// computing through `source` on cold or stale keys.
    pub fn lookup<S: DecisionSource>(
        &self,
        tenant: u32,
        key: DecisionKey,
        now_ns: u64,
        source: &S,
    ) -> Lookup {
        if !self.admission.try_admit(tenant, now_ns) {
            self.counters.sheds.fetch_add(1, Ordering::Relaxed);
            return Lookup::Shed;
        }
        let generation = self.gens.current(key);
        let packed = key.pack();
        let mut map = self.shard_of(packed).lock().expect("shard lock poisoned");
        let (slot, mut status) = match map.entry(packed) {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                if o.get().generation == generation {
                    self.counters.hits.fetch_add(1, Ordering::Relaxed);
                    (*o.get(), ServeStatus::Warm)
                } else {
                    self.counters
                        .stale_refreshes
                        .fetch_add(1, Ordering::Relaxed);
                    let fresh = CacheSlot {
                        entry: source.compute(key, generation),
                        generation,
                        computed_at_ns: now_ns,
                    };
                    o.insert(fresh);
                    (fresh, ServeStatus::Refreshed)
                }
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                let fresh = CacheSlot {
                    entry: source.compute(key, generation),
                    generation,
                    computed_at_ns: now_ns,
                };
                v.insert(fresh);
                (fresh, ServeStatus::Computed)
            }
        };
        drop(map);
        let mut score = slot.entry.best;
        if score.route_idx != DIRECT_ROUTE {
            if let Some(board) = &self.trips {
                if board.is_open(score.target, now_ns) {
                    self.counters.demotions.fetch_add(1, Ordering::Relaxed);
                    score = slot.entry.direct;
                    status = ServeStatus::Demoted;
                }
            }
        }
        Lookup::Served {
            decision: Decision {
                score,
                generation: slot.generation,
                computed_at_ns: slot.computed_at_ns,
            },
            status,
        }
    }

    /// Monitor-fed invalidation: bump the generation of every bucket
    /// overlapping vantages `[lo, hi]` for `provider`. Affected entries
    /// recompute lazily on their next lookup.
    pub fn invalidate_vantage_range(&self, provider: u16, lo: u32, hi: u32) -> usize {
        self.gens.bump_vantage_range(provider, lo, hi)
    }

    /// Invalidate every decision targeting `provider`.
    pub fn invalidate_provider(&self, provider: u16) -> usize {
        self.gens.bump_provider(provider)
    }

    /// The generation table (read-side, e.g. for coherence checks).
    pub fn generations(&self) -> &GenTable {
        &self.gens
    }

    /// Cached entries across all shards (walks every shard lock; not for
    /// the hot path).
    pub fn cached_entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard lock poisoned").len())
            .sum()
    }

    /// Pre-size every shard for `keys` total keys, so a steady-state
    /// workload's inserts never rehash (the zero-allocation warm-path test
    /// relies on reaching steady state first, not on this, but fleets use
    /// it to avoid rehash stalls mid-run).
    pub fn reserve(&self, keys: usize) {
        let per_shard = keys / self.shards.len() + 1;
        for s in self.shards.iter() {
            s.lock().expect("shard lock poisoned").reserve(per_shard);
        }
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> PlaneStats {
        PlaneStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            stale_refreshes: self.counters.stale_refreshes.load(Ordering::Relaxed),
            demotions: self.counters.demotions.load(Ordering::Relaxed),
            sheds: self.counters.sheds.load(Ordering::Relaxed),
        }
    }

    /// Export the counters into a telemetry sink under `routeplane.*`
    /// dotted names.
    pub fn export_metrics(&self, tele: &mut obs::Telemetry) {
        let s = self.stats();
        for (name, v) in [
            ("routeplane.cache.hits", s.hits),
            ("routeplane.cache.misses", s.misses),
            ("routeplane.cache.stale_refreshes", s.stale_refreshes),
            ("routeplane.breaker.demotions", s.demotions),
            ("routeplane.admission.sheds", s.sheds),
        ] {
            if v > 0 {
                tele.counter_add(name, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SyntheticSource;
    use cloudstore::TripBoard;
    use netsim::time::SimTime;

    fn plane(cfg: PlaneConfig) -> (RoutePlane, SyntheticSource) {
        (RoutePlane::new(cfg), SyntheticSource::new(77, 4, 64))
    }

    fn served(l: Lookup) -> (Decision, ServeStatus) {
        match l {
            Lookup::Served { decision, status } => (decision, status),
            Lookup::Shed => panic!("unexpected shed"),
        }
    }

    #[test]
    fn cold_then_warm_then_stale() {
        let (p, src) = plane(PlaneConfig::default());
        let key = DecisionKey {
            vantage: 9,
            provider: 1,
            size_class: 1,
        };
        let (d0, s0) = served(p.lookup(0, key, 1_000, &src));
        assert_eq!(s0, ServeStatus::Computed);
        let (d1, s1) = served(p.lookup(0, key, 2_000, &src));
        assert_eq!(s1, ServeStatus::Warm);
        assert_eq!(d1, d0, "warm hit must serve the cached decision");
        assert_eq!(d1.computed_at_ns, 1_000);

        p.invalidate_vantage_range(1, 0, 20);
        let (d2, s2) = served(p.lookup(0, key, 3_000, &src));
        assert_eq!(s2, ServeStatus::Refreshed);
        assert_eq!(d2.generation, d0.generation + 1);
        assert_eq!(d2.computed_at_ns, 3_000);

        let st = p.stats();
        assert_eq!((st.hits, st.misses, st.stale_refreshes), (1, 1, 1));
        assert_eq!(
            p.cached_entries(),
            1,
            "stale entries are replaced, not leaked"
        );
    }

    #[test]
    fn invalidation_only_touches_the_bumped_range() {
        let (p, src) = plane(PlaneConfig {
            vantage_bucket_shift: 2,
            ..PlaneConfig::default()
        });
        let inside = DecisionKey {
            vantage: 5,
            provider: 0,
            size_class: 0,
        };
        let outside = DecisionKey {
            vantage: 40,
            provider: 0,
            size_class: 0,
        };
        let other_provider = DecisionKey {
            vantage: 5,
            provider: 2,
            size_class: 0,
        };
        for k in [inside, outside, other_provider] {
            served(p.lookup(0, k, 0, &src));
        }
        p.invalidate_vantage_range(0, 4, 7);
        assert_eq!(
            served(p.lookup(0, inside, 10, &src)).1,
            ServeStatus::Refreshed
        );
        assert_eq!(served(p.lookup(0, outside, 10, &src)).1, ServeStatus::Warm);
        assert_eq!(
            served(p.lookup(0, other_provider, 10, &src)).1,
            ServeStatus::Warm
        );
    }

    #[test]
    fn breaker_trip_demotes_within_one_lookup() {
        let board = Arc::new(TripBoard::new(4096));
        let (p, src) = plane(PlaneConfig::default());
        let p = p.with_trip_board(Arc::clone(&board));
        // Find a key whose best route is a detour.
        let key = (0..200u32)
            .map(|v| DecisionKey {
                vantage: v,
                provider: 0,
                size_class: 0,
            })
            .find(|&k| src.compute(k, 0).best.route_idx != DIRECT_ROUTE)
            .expect("synthetic source must pick some detours");
        let (d0, _) = served(p.lookup(0, key, 0, &src));
        assert_ne!(d0.score.route_idx, DIRECT_ROUTE);
        // Trip the detour's gating node: the very next lookup is demoted.
        board.trip(d0.score.target, SimTime::from_secs(30));
        let (d1, s1) = served(p.lookup(0, key, 100, &src));
        assert_eq!(s1, ServeStatus::Demoted);
        assert_eq!(d1.score.route_idx, DIRECT_ROUTE);
        assert_eq!(d1.generation, d0.generation, "demotion is not a recompute");
        // Cooldown passes (board clock) → the cached best is served again.
        let (d2, s2) = served(p.lookup(0, key, SimTime::from_secs(31).as_nanos(), &src));
        assert_eq!(s2, ServeStatus::Warm);
        assert_eq!(d2.score, d0.score);
        assert_eq!(p.stats().demotions, 1);
    }

    #[test]
    fn shedding_is_counted_and_deterministic() {
        let cfg = PlaneConfig {
            tenants: 2,
            admission: AdmissionConfig {
                tokens_per_sec: 1000,
                burst: 2,
            },
            ..PlaneConfig::default()
        };
        let run = || {
            let (p, src) = plane(cfg);
            let mut shed = Vec::new();
            for i in 0..50u64 {
                let key = DecisionKey {
                    vantage: (i % 7) as u32,
                    provider: 0,
                    size_class: 0,
                };
                if p.lookup((i % 2) as u32, key, i * 50_000, &src) == Lookup::Shed {
                    shed.push(i);
                }
            }
            (shed, p.stats().sheds)
        };
        let (shed_a, count_a) = run();
        let (shed_b, count_b) = run();
        assert!(!shed_a.is_empty());
        assert_eq!(shed_a, shed_b, "same seed, same shed set");
        assert_eq!(count_a, count_b);
        assert_eq!(shed_a.len() as u64, count_a);
    }

    #[test]
    fn cached_decisions_match_fresh_computation() {
        let (p, src) = plane(PlaneConfig::default());
        for v in 0..50u32 {
            let key = DecisionKey {
                vantage: v,
                provider: (v % 3) as u16,
                size_class: (v % 3) as u8,
            };
            served(p.lookup(0, key, 0, &src));
            if v % 2 == 0 {
                p.invalidate_vantage_range((v % 3) as u16, v / 2, v + 3);
            }
            let (d, _) = served(p.lookup(0, key, 1, &src));
            let fresh = src.compute(key, d.generation);
            assert_eq!(d.score.bits(), fresh.best.bits(), "vantage {v}");
        }
    }
}
