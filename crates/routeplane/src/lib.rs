//! The route-intelligence plane: detour-as-a-service at fleet scale.
//!
//! The paper identifies the best detour per (vantage, provider, file size)
//! by measuring; `core::select` automates that decision per campaign cell.
//! This crate is the *service* version of the decision path: millions of
//! simulated clients ask "which route should I use right now?" and must get
//! an answer in nanoseconds, not the milliseconds a fresh selector pass
//! costs. The design:
//!
//! * **Sharded decision cache** ([`RoutePlane`]) — scored decisions keyed
//!   by [`DecisionKey`] `(vantage, provider, size_class)` live in
//!   power-of-two mutex shards. Warm lookups are allocation-free and touch
//!   one shard lock plus two atomics; there is no global lock anywhere.
//! * **Generation-stamped freshness** ([`GenTable`]) — monitors invalidate
//!   by bumping a per-(provider, vantage-bucket) generation atomic. Stale
//!   entries are recomputed lazily on their next lookup and *never* swept:
//!   invalidation is O(buckets touched), independent of cache population.
//! * **Breaker demotion** ([`cloudstore::TripBoard`]) — every cache entry
//!   stores the best decision *and* its direct-route fallback, computed
//!   together on the cold path. A breaker trip published to the trip board
//!   therefore demotes affected detours to direct within one lookup, with
//!   no recompute and no allocation.
//! * **Token-bucket admission** ([`Admission`]) — per-tenant quotas refill
//!   in virtual (sim) time, so overload sheds deterministically: the same
//!   seed produces the same shed set.
//! * **Fleet driver** ([`fleet::run_fleet`]) — 1M+ zipf-skewed clients,
//!   churning monitor invalidations and breaker trips, on one thread
//!   (deterministic) or several (throughput), reporting QPS, hit/stale/
//!   shed/demotion counts and a p99 decision-staleness sketch.
//!
//! Decisions are bit-identity-checkable: a cached decision at generation
//! `g` must equal a fresh [`DecisionSource::compute`] at `g` exactly —
//! `simcheck` runs that coherence oracle as a differential execution per
//! case (`Violation::PlaneDivergence`).

pub mod admission;
pub mod cache;
pub mod fleet;
pub mod gen;
pub mod key;
pub mod source;

pub use admission::{Admission, AdmissionConfig};
pub use cache::{
    Decision, DecisionSource, Lookup, PlaneConfig, PlaneCounters, PlaneStats, RoutePlane,
    RouteScore, ScoredEntry, ServeStatus, DIRECT_ROUTE,
};
pub use fleet::{run_fleet, FleetConfig, FleetReport};
pub use gen::GenTable;
pub use key::DecisionKey;
pub use source::{splitmix64, ProbeSource, SyntheticSource};
