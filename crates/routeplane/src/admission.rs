//! Deterministic token-bucket admission control with per-tenant quotas.
//!
//! Buckets refill in *virtual* time (the fleet driver's lookup clock, or
//! sim time), not wall time, so overload sheds the same requests for the
//! same seed — shed sets are replayable, which is what lets tests assert
//! exact quota behaviour and simcheck fold shedding into digests.
//!
//! Each tenant owns an independent bucket behind its own mutex: admitting
//! one tenant never contends with another, and same-tenant admissions are
//! serialized, which is exactly the quota semantics.

use std::sync::Mutex;

/// Micro-tokens per token (integer refill arithmetic, no float drift).
const MICRO: u64 = 1_000_000;

/// Per-tenant quota knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Sustained decisions per second each tenant may draw.
    pub tokens_per_sec: u64,
    /// Burst capacity (bucket depth), in tokens.
    pub burst: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            tokens_per_sec: 10_000,
            burst: 1_000,
        }
    }
}

#[derive(Debug)]
struct Bucket {
    micro_tokens: u64,
    updated_ns: u64,
}

/// The admission controller: one token bucket per tenant.
#[derive(Debug)]
pub struct Admission {
    cfg: AdmissionConfig,
    tenants: Box<[Mutex<Bucket>]>,
}

impl Admission {
    /// Buckets for `tenants` tenants, all starting full at time zero.
    pub fn new(tenants: u32, cfg: AdmissionConfig) -> Self {
        assert!(tenants > 0);
        assert!(cfg.tokens_per_sec > 0 && cfg.burst > 0);
        Admission {
            cfg,
            tenants: (0..tenants)
                .map(|_| {
                    Mutex::new(Bucket {
                        micro_tokens: cfg.burst * MICRO,
                        updated_ns: 0,
                    })
                })
                .collect(),
        }
    }

    /// Number of tenants.
    pub fn tenants(&self) -> u32 {
        self.tenants.len() as u32
    }

    /// The quota in force.
    pub fn config(&self) -> AdmissionConfig {
        self.cfg
    }

    /// Try to admit one decision for `tenant` at virtual time `now_ns`.
    /// Refills lazily from the bucket's last update, caps at the burst
    /// depth, then charges one token; `false` means shed. Time running
    /// backwards (shard interleavings) just skips the refill — tokens are
    /// never destroyed retroactively, so single-threaded runs are exactly
    /// reproducible and threaded runs shed conservatively.
    pub fn try_admit(&self, tenant: u32, now_ns: u64) -> bool {
        let idx = tenant as usize % self.tenants.len();
        let mut b = self.tenants[idx].lock().expect("admission lock poisoned");
        if now_ns > b.updated_ns {
            let dt = now_ns - b.updated_ns;
            // tokens/sec → micro-tokens/ns = tokens_per_sec / 1000.
            let refill = (dt as u128 * self.cfg.tokens_per_sec as u128 / 1000) as u64;
            b.micro_tokens = (b.micro_tokens.saturating_add(refill)).min(self.cfg.burst * MICRO);
            b.updated_ns = now_ns;
        }
        if b.micro_tokens >= MICRO {
            b.micro_tokens -= MICRO;
            true
        } else {
            false
        }
    }

    /// Whole tokens currently available to `tenant` (for tests/telemetry).
    pub fn available(&self, tenant: u32) -> u64 {
        let idx = tenant as usize % self.tenants.len();
        self.tenants[idx]
            .lock()
            .expect("admission lock poisoned")
            .micro_tokens
            / MICRO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_shed_then_refill() {
        let a = Admission::new(
            1,
            AdmissionConfig {
                tokens_per_sec: 1000,
                burst: 3,
            },
        );
        // Full bucket admits exactly the burst back-to-back.
        assert!(a.try_admit(0, 0));
        assert!(a.try_admit(0, 0));
        assert!(a.try_admit(0, 0));
        assert!(!a.try_admit(0, 0), "burst exhausted");
        // 1000 tokens/sec = 1 per ms: 2 ms later, 2 tokens.
        assert!(a.try_admit(0, 2_000_000));
        assert!(a.try_admit(0, 2_000_000));
        assert!(!a.try_admit(0, 2_000_000));
        // A long idle period caps at the burst, not unbounded credit.
        assert!(a.try_admit(0, 3_600_000_000_000));
        assert_eq!(a.available(0), 2);
    }

    #[test]
    fn tenants_are_isolated() {
        let a = Admission::new(
            2,
            AdmissionConfig {
                tokens_per_sec: 10,
                burst: 1,
            },
        );
        assert!(a.try_admit(0, 0));
        assert!(!a.try_admit(0, 0), "tenant 0 spent its burst");
        assert!(a.try_admit(1, 0), "tenant 1 unaffected");
    }

    #[test]
    fn time_regression_is_harmless() {
        let a = Admission::new(
            1,
            AdmissionConfig {
                tokens_per_sec: 1000,
                burst: 2,
            },
        );
        assert!(a.try_admit(0, 5_000_000));
        // An earlier timestamp neither refills nor destroys tokens.
        assert!(a.try_admit(0, 1_000_000));
        assert!(!a.try_admit(0, 1_000_000));
    }

    #[test]
    fn shed_sequence_is_deterministic() {
        let run = || {
            let a = Admission::new(
                3,
                AdmissionConfig {
                    tokens_per_sec: 2000,
                    burst: 5,
                },
            );
            let mut shed = Vec::new();
            for i in 0..200u64 {
                let tenant = (i % 3) as u32;
                if !a.try_admit(tenant, i * 100_000) {
                    shed.push(i);
                }
            }
            shed
        };
        let first = run();
        assert!(!first.is_empty(), "workload must overload the quota");
        assert_eq!(first, run());
    }
}
