//! Decision keys: what a route decision is cached by.

use std::hash::{BuildHasherDefault, Hasher};

/// Size-class boundaries, matching `obs::health::size_class`: transfers
/// under 16 MB are "small", under 256 MB "medium", the rest "large".
pub const SIZE_CLASS_SMALL: u8 = 0;
/// Medium size class (16–256 MB).
pub const SIZE_CLASS_MEDIUM: u8 = 1;
/// Large size class (≥ 256 MB).
pub const SIZE_CLASS_LARGE: u8 = 2;
/// Number of size classes.
pub const SIZE_CLASSES: u8 = 3;

/// The cache key for one scored decision: which vantage is asking, which
/// provider it targets, and the transfer's size class. `Copy` and packable
/// into a `u64`, so the hot path never hashes strings or clones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DecisionKey {
    /// Vantage (client aggregation point) index, `0..vantages`.
    pub vantage: u32,
    /// Provider index, `0..providers`.
    pub provider: u16,
    /// Size class, `0..SIZE_CLASSES` (see [`DecisionKey::size_class_of`]).
    pub size_class: u8,
}

impl DecisionKey {
    /// Build a key, classifying `bytes` into its size class.
    pub fn for_transfer(vantage: u32, provider: u16, bytes: u64) -> Self {
        DecisionKey {
            vantage,
            provider,
            size_class: Self::size_class_of(bytes),
        }
    }

    /// The size class of a transfer, with the same boundaries the health
    /// plane uses for its (vantage, provider, size) cells.
    pub fn size_class_of(bytes: u64) -> u8 {
        if bytes < 16 * 1024 * 1024 {
            SIZE_CLASS_SMALL
        } else if bytes < 256 * 1024 * 1024 {
            SIZE_CLASS_MEDIUM
        } else {
            SIZE_CLASS_LARGE
        }
    }

    /// Pack into a single `u64` (vantage high, then provider, then class).
    pub fn pack(self) -> u64 {
        ((self.vantage as u64) << 24) | ((self.provider as u64) << 8) | self.size_class as u64
    }

    /// Inverse of [`DecisionKey::pack`].
    pub fn unpack(packed: u64) -> Self {
        DecisionKey {
            vantage: (packed >> 24) as u32,
            provider: (packed >> 8) as u16,
            size_class: packed as u8,
        }
    }
}

/// A tiny multiply-xor hasher for packed keys: one multiplication per
/// `u64`, no per-call allocation, no random state. The default SipHash
/// would dominate a warm lookup's cost; packed decision keys don't need
/// DoS resistance.
#[derive(Debug, Default, Clone, Copy)]
pub struct PackedKeyHasher(u64);

impl Hasher for PackedKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    fn write_u64(&mut self, v: u64) {
        // Fibonacci-style mix: multiply by the 64-bit golden ratio and
        // fold the high bits back so nearby keys land in distinct shards.
        let x = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = x ^ (x >> 29);
    }
}

/// `BuildHasher` for [`PackedKeyHasher`].
pub type PackedKeyBuild = BuildHasherDefault<PackedKeyHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrips() {
        for key in [
            DecisionKey {
                vantage: 0,
                provider: 0,
                size_class: 0,
            },
            DecisionKey {
                vantage: 1_048_575,
                provider: 999,
                size_class: 2,
            },
            DecisionKey {
                vantage: u32::MAX >> 24,
                provider: u16::MAX,
                size_class: SIZE_CLASSES - 1,
            },
        ] {
            assert_eq!(DecisionKey::unpack(key.pack()), key);
        }
    }

    #[test]
    fn size_classes_match_the_health_plane() {
        const MIB: u64 = 1024 * 1024;
        for (bytes, class, name) in [
            (MIB, SIZE_CLASS_SMALL, "small"),
            (16 * MIB - 1, SIZE_CLASS_SMALL, "small"),
            (16 * MIB, SIZE_CLASS_MEDIUM, "medium"),
            (255 * MIB, SIZE_CLASS_MEDIUM, "medium"),
            (256 * MIB, SIZE_CLASS_LARGE, "large"),
            (10_000 * MIB, SIZE_CLASS_LARGE, "large"),
        ] {
            assert_eq!(DecisionKey::size_class_of(bytes), class, "{bytes}");
            assert_eq!(obs::size_class(bytes), name, "{bytes}");
        }
    }

    #[test]
    fn hasher_spreads_adjacent_keys() {
        use std::hash::BuildHasher;
        let build = PackedKeyBuild::default();
        let mut shards = std::collections::HashSet::new();
        for v in 0..64u32 {
            let key = DecisionKey {
                vantage: v,
                provider: 1,
                size_class: 0,
            };
            shards.insert((build.hash_one(key.pack()) as usize) & 15);
        }
        assert!(shards.len() >= 12, "adjacent keys clumped: {shards:?}");
    }
}
