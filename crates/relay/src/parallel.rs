//! GridFTP-style parallel TCP streams.
//!
//! Data-transfer nodes classically open several TCP connections and stripe
//! the file across them. On a *per-flow policed* path (like the paper's
//! pacificwave hand-off) `k` streams get `k ×` the policed rate; on a path
//! whose bottleneck is a shared link capacity, extra streams only take
//! bandwidth from each other. Ablation A5 contrasts the two — and shows
//! that parallel streams are an alternative (if TCP-unfriendly) mitigation
//! for exactly the pathology the paper routes around.

use netsim::engine::{Ctx, Event, Process, Value};
use netsim::error::NetError;
use netsim::flow::{FlowClass, FlowSpec};
use netsim::time::SimTime;
use netsim::topology::NodeId;

/// Transfer `bytes` from `src` to `dst` striped over `streams` concurrent
/// flows. Finishes with `Value::Time(elapsed)` when the last stripe lands.
pub struct ParallelStreams {
    src: NodeId,
    dst: NodeId,
    bytes: u64,
    streams: u32,
    class: FlowClass,
    started: SimTime,
    remaining: u32,
}

impl ParallelStreams {
    /// Build a striped transfer. `streams` must be ≥ 1.
    pub fn new(src: NodeId, dst: NodeId, bytes: u64, streams: u32, class: FlowClass) -> Self {
        assert!(streams >= 1, "at least one stream");
        assert!(bytes >= streams as u64, "stripes must be nonempty");
        ParallelStreams {
            src,
            dst,
            bytes,
            streams,
            class,
            started: SimTime::ZERO,
            remaining: 0,
        }
    }
}

impl Process for ParallelStreams {
    fn poll(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Started => {
                self.started = ctx.now();
                let base = self.bytes / self.streams as u64;
                let mut left = self.bytes;
                for i in 0..self.streams {
                    let stripe = if i + 1 == self.streams { left } else { base };
                    left -= stripe;
                    match ctx.start_flow(FlowSpec::new(self.src, self.dst, stripe, self.class)) {
                        Ok(_) => self.remaining += 1,
                        Err(e) => {
                            ctx.finish(Value::Error(e));
                            return;
                        }
                    }
                }
            }
            Event::FlowCompleted { .. } => {
                self.remaining -= 1;
                if self.remaining == 0 {
                    ctx.finish(Value::Time(ctx.now().saturating_sub(self.started)));
                }
            }
            Event::FlowFailed { error, .. } => ctx.finish(Value::Error(error)),
            _ => {}
        }
    }

    fn name(&self) -> &'static str {
        "parallel-streams"
    }
}

/// Run a striped transfer to completion.
pub fn parallel_transfer(
    sim: &mut netsim::engine::Sim,
    src: NodeId,
    dst: NodeId,
    bytes: u64,
    streams: u32,
    class: FlowClass,
) -> Result<SimTime, NetError> {
    match sim.run_process(Box::new(ParallelStreams::new(
        src, dst, bytes, streams, class,
    )))? {
        Value::Time(t) => Ok(t),
        Value::Error(e) => Err(e),
        other => panic!("unexpected result {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::geo::GeoPoint;
    use netsim::middlebox::Policer;
    use netsim::prelude::*;
    use netsim::units::MB;

    fn policed_world() -> (Sim, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let a = b.host("a", GeoPoint::new(49.0, -123.0));
        let c = b.host("c", GeoPoint::new(37.0, -122.0));
        b.duplex(
            a,
            c,
            LinkParams::new(Bandwidth::from_mbps(200.0), SimTime::from_millis(10)),
        );
        let mut sim = Sim::new(b.build(), 1);
        sim.add_policer(Policer::per_flow(
            "per-flow-police",
            LinkId(0),
            FlowClass::PlanetLab,
            Bandwidth::from_mbps(10.0),
        ));
        (sim, a, c)
    }

    #[test]
    fn parallel_streams_defeat_per_flow_policing() {
        // 1 stream: 10 Mbps. 4 streams: ~40 Mbps aggregate.
        let (mut sim, a, c) = policed_world();
        let one = parallel_transfer(&mut sim, a, c, 40 * MB, 1, FlowClass::PlanetLab).unwrap();
        let (mut sim, a, c) = policed_world();
        let four = parallel_transfer(&mut sim, a, c, 40 * MB, 4, FlowClass::PlanetLab).unwrap();
        let speedup = one.as_secs_f64() / four.as_secs_f64();
        assert!((3.0..4.5).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn parallel_streams_useless_on_capacity_bottleneck() {
        let build = || {
            let mut b = TopologyBuilder::new();
            let a = b.host("a", GeoPoint::new(0.0, 0.0));
            let c = b.host("c", GeoPoint::new(1.0, 1.0));
            b.duplex(
                a,
                c,
                LinkParams::new(Bandwidth::from_mbps(40.0), SimTime::from_millis(10)),
            );
            (Sim::new(b.build(), 1), a, c)
        };
        let (mut sim, a, c) = build();
        let one = parallel_transfer(&mut sim, a, c, 40 * MB, 1, FlowClass::Commodity).unwrap();
        let (mut sim, a, c) = build();
        let eight = parallel_transfer(&mut sim, a, c, 40 * MB, 8, FlowClass::Commodity).unwrap();
        let speedup = one.as_secs_f64() / eight.as_secs_f64();
        assert!(speedup < 1.15, "no policer, no win: speedup {speedup}");
    }

    #[test]
    fn stripes_cover_all_bytes() {
        // Odd sizes: last stripe absorbs the remainder.
        let (mut sim, a, c) = policed_world();
        let t = parallel_transfer(&mut sim, a, c, 10 * MB + 37, 3, FlowClass::PlanetLab).unwrap();
        assert!(t > SimTime::ZERO);
        assert_eq!(sim.stats().bytes_delivered, 10 * MB + 37);
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn zero_streams_rejected() {
        ParallelStreams::new(NodeId(0), NodeId(1), MB, 0, FlowClass::Commodity);
    }
}
