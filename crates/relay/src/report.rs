//! Detour transfer reports with per-leg breakdowns.

use cloudstore::TransferStats;
use netsim::engine::Value;
use netsim::time::SimTime;
use netsim::units::Bandwidth;
use std::fmt;

/// Timing breakdown of a detoured upload.
#[derive(Debug, Clone, PartialEq)]
pub struct RelayReport {
    /// Payload size.
    pub bytes: u64,
    /// End-to-end duration (request at the user machine to provider ack).
    pub total: SimTime,
    /// Durations of each rsync leg, in hop order.
    pub leg_times: Vec<SimTime>,
    /// Stats of the final cloud upload.
    pub upload: TransferStats,
}

impl RelayReport {
    /// End-to-end goodput.
    pub fn goodput(&self) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(self.bytes as f64 / self.total.as_secs_f64().max(1e-12))
    }

    /// Overhead of relaying versus the sum of the parts (zero for pure
    /// store-and-forward, negative when legs overlap under pipelining).
    pub fn overlap_savings(&self) -> f64 {
        let parts: SimTime = self.leg_times.iter().copied().sum::<SimTime>() + self.upload.elapsed;
        parts.as_secs_f64() - self.total.as_secs_f64()
    }

    /// Pack into a [`Value`].
    pub fn to_value(&self) -> Value {
        let mut items = vec![
            Value::U64(self.bytes),
            Value::Time(self.total),
            self.upload.to_value(),
            Value::U64(self.leg_times.len() as u64),
        ];
        items.extend(self.leg_times.iter().map(|&t| Value::Time(t)));
        Value::List(items)
    }

    /// Unpack from a [`Value`].
    pub fn from_value(v: &Value) -> Self {
        let items = v.expect_list();
        assert!(items.len() >= 4, "malformed RelayReport value");
        let n_legs = items[3].expect_u64() as usize;
        RelayReport {
            bytes: items[0].expect_u64(),
            total: items[1].expect_time(),
            upload: TransferStats::from_value(&items[2]),
            leg_times: items[4..4 + n_legs]
                .iter()
                .map(|v| v.expect_time())
                .collect(),
        }
    }
}

impl fmt::Display for RelayReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} via {} leg(s) in {} (legs:",
            netsim::units::format_bytes(self.bytes),
            self.leg_times.len(),
            self.total
        )?;
        for t in &self.leg_times {
            write!(f, " {t}")?;
        }
        write!(f, "; upload: {})", self.upload.elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RelayReport {
        RelayReport {
            bytes: 100,
            total: SimTime::from_secs(36),
            leg_times: vec![SimTime::from_secs(19)],
            upload: TransferStats {
                bytes: 100,
                elapsed: SimTime::from_secs(17),
                rpcs: 14,
                retries: 0,
                throttles: 0,
                token_refreshes: 0,
                wire_bytes: 110,
            },
        }
    }

    #[test]
    fn value_round_trip() {
        let r = sample();
        assert_eq!(RelayReport::from_value(&r.to_value()), r);
    }

    #[test]
    fn store_forward_has_no_overlap() {
        // The paper's example: 19 s + 17 s = 36 s total.
        let r = sample();
        assert!(r.overlap_savings().abs() < 1e-9);
    }

    #[test]
    fn pipelining_shows_positive_savings() {
        let mut r = sample();
        r.total = SimTime::from_secs(22);
        assert!((r.overlap_savings() - 14.0).abs() < 1e-9);
    }

    #[test]
    fn display() {
        let text = sample().to_string();
        assert!(text.contains("via 1 leg(s)"));
        assert!(text.contains("36.000s"));
    }
}
