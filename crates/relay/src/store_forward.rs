//! Store-and-forward relaying: the paper's detour mechanism.
//!
//! The file is rsync'ed to the first intermediate node, hop by hop if there
//! are several, and only then uploaded to the provider from the last one.
//! Total time is the sum of the legs — which is why a detour only wins when
//! the sum of two good legs beats one bad direct path (the paper's central
//! arithmetic: UBC→UAlberta 19 s + UAlberta→Drive 17 s = 36 s < 87 s
//! direct).

use crate::chunkstore::ChunkStore;
use crate::report::RelayReport;
use crate::rsync_leg::RsyncLeg;
use cloudstore::{FaultPlan, Provider, TransferStats, UploadOptions, UploadSession};
use netsim::engine::{Ctx, Event, Process, ProcessId, Value};
use netsim::error::NetError;
use netsim::flow::FlowClass;
use netsim::time::SimTime;
use netsim::topology::NodeId;
use obs::{Category, SpanId};
use std::cell::RefCell;
use std::rc::Rc;
use transfer::{ChunkManifest, RsyncWirePlan};

/// Delta-sync context for a relay: the rsync wire plan for the content
/// (basis-aware, computed by the caller from real bytes), the target's chunk
/// manifest, and one chunk store per DTN hop. Every rsync leg then ships
/// `min(delta, manifest + missing chunks)` instead of the full file; the
/// upload leg still carries the full content — provider APIs accept neither
/// deltas nor manifests.
#[derive(Clone)]
pub struct SyncAttachment {
    /// Exact rsync plan for this (basis, target) pair. Each DTN kept the
    /// previous round's copy, so the same plan applies on every hop.
    pub plan: RsyncWirePlan,
    /// Chunk manifest of the target content.
    pub manifest: ChunkManifest,
    /// One store per intermediate hop (`hops.len() - 1` of them).
    pub stores: Vec<Rc<RefCell<ChunkStore>>>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Idle,
    Leg(usize),
    Upload,
}

/// The detour process: rsync legs in series, then a cloud upload.
pub struct StoreForwardRelay {
    /// Hop sequence: user machine first, then each intermediate node.
    hops: Vec<NodeId>,
    provider: Provider,
    bytes: u64,
    opts: UploadOptions,
    /// Traffic class per leg: the class of the *sending* node.
    leg_classes: Vec<FlowClass>,
    /// Fault plan injected on every rsync leg (the upload leg keeps the
    /// provider's own plan).
    leg_faults: Option<FaultPlan>,
    /// Delta-sync context: basis-aware wire plan plus per-DTN chunk stores.
    sync: Option<SyncAttachment>,

    state: State,
    started: SimTime,
    leg_times: Vec<SimTime>,
    pending: Option<ProcessId>,
    span: SpanId,
    parent_span: SpanId,
}

impl StoreForwardRelay {
    /// A single-detour relay (the only shape the paper evaluates).
    ///
    /// `classes` gives the traffic class of each sending hop; its length
    /// must equal `hops.len()` (the last entry classifies the upload leg).
    pub fn new(
        hops: Vec<NodeId>,
        classes: Vec<FlowClass>,
        provider: Provider,
        bytes: u64,
        opts: UploadOptions,
    ) -> Self {
        assert!(
            hops.len() >= 2,
            "a relay needs a source and at least one DTN"
        );
        assert_eq!(hops.len(), classes.len(), "one class per hop");
        StoreForwardRelay {
            hops,
            provider,
            bytes,
            opts,
            leg_classes: classes,
            leg_faults: None,
            sync: None,
            state: State::Idle,
            started: SimTime::ZERO,
            leg_times: Vec::new(),
            pending: None,
            span: SpanId::NONE,
            parent_span: SpanId::NONE,
        }
    }

    /// Nest this relay's telemetry span under `parent` (e.g. a job span).
    pub fn with_parent_span(mut self, parent: SpanId) -> Self {
        self.parent_span = parent;
        self
    }

    /// Inject `faults` on every rsync leg. The upload leg is unaffected —
    /// it already carries the provider's own [`FaultPlan`].
    pub fn with_leg_faults(mut self, faults: FaultPlan) -> Self {
        self.leg_faults = Some(faults);
        self
    }

    /// Attach a delta-sync context: every rsync leg uses the attachment's
    /// exact wire plan and consults that hop's chunk store.
    pub fn with_sync(mut self, sync: SyncAttachment) -> Self {
        assert_eq!(
            sync.stores.len(),
            self.hops.len() - 1,
            "one chunk store per DTN hop"
        );
        self.sync = Some(sync);
        self
    }

    fn begin_leg(&mut self, ctx: &mut Ctx<'_>, i: usize) {
        let mut leg = match &self.sync {
            None => RsyncLeg::fresh(
                self.hops[i],
                self.hops[i + 1],
                self.bytes,
                self.leg_classes[i],
            ),
            Some(sync) => RsyncLeg::new(
                self.hops[i],
                self.hops[i + 1],
                sync.plan,
                self.leg_classes[i],
            )
            .with_chunk_cache(Rc::clone(&sync.stores[i]), sync.manifest.clone()),
        }
        .with_parent_span(self.span);
        if let Some(faults) = self.leg_faults {
            leg = leg.with_faults(faults);
        }
        self.state = State::Leg(i);
        self.pending = Some(ctx.spawn(Box::new(leg)));
    }

    fn begin_upload(&mut self, ctx: &mut Ctx<'_>) {
        let dtn = *self.hops.last().expect("nonempty hops");
        let mut opts = self.opts;
        opts.class = *self.leg_classes.last().expect("nonempty classes");
        let session = UploadSession::new(dtn, self.provider.clone(), self.bytes, opts)
            .with_parent_span(self.span);
        self.state = State::Upload;
        self.pending = Some(ctx.spawn(Box::new(session)));
    }
}

impl Process for StoreForwardRelay {
    fn poll(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Started => {
                self.started = ctx.now();
                let (t, parent) = (ctx.now().as_nanos(), self.parent_span);
                let (bytes, hops) = (self.bytes, self.hops.len());
                self.span = ctx.telemetry().span_begin_with(
                    t,
                    Category::Relay,
                    "store-forward",
                    parent,
                    |a| {
                        a.set("bytes", bytes).set("hops", hops);
                    },
                );
                self.begin_leg(ctx, 0);
            }
            Event::ChildDone { child, value } => {
                if Some(child) != self.pending {
                    return;
                }
                self.pending = None;
                if let Value::Error(e) = value {
                    let t = ctx.now().as_nanos();
                    ctx.telemetry().span_end(t, self.span);
                    ctx.finish(Value::Error(e));
                    return;
                }
                match self.state {
                    State::Leg(i) => {
                        self.leg_times.push(value.expect_time());
                        // The whole file now sits in the staging buffer of
                        // hop i+1 until the next leg (or upload) drains it.
                        let (t, span, bytes) = (ctx.now().as_nanos(), self.span, self.bytes);
                        ctx.telemetry()
                            .gauge_set("relay.staging_bytes", bytes as f64);
                        ctx.telemetry()
                            .event(t, Category::Relay, "relay.staged", span, |a| {
                                a.set("hop", i + 1).set("bytes", bytes);
                            });
                        if i + 2 < self.hops.len() {
                            self.begin_leg(ctx, i + 1);
                        } else {
                            self.begin_upload(ctx);
                        }
                    }
                    State::Upload => {
                        let upload = TransferStats::from_value(&value);
                        let report = RelayReport {
                            bytes: self.bytes,
                            total: ctx.now().saturating_sub(self.started),
                            leg_times: std::mem::take(&mut self.leg_times),
                            upload,
                        };
                        ctx.telemetry().gauge_set("relay.staging_bytes", 0.0);
                        let t = ctx.now().as_nanos();
                        ctx.telemetry().span_end(t, self.span);
                        ctx.finish(report.to_value());
                    }
                    State::Idle => {}
                }
            }
            _ => {}
        }
    }

    fn name(&self) -> &'static str {
        "store-forward-relay"
    }

    fn abort(&mut self, ctx: &mut Ctx<'_>) {
        // Abandoned with the relay span still open: close it so traces
        // stay balanced (no-op when telemetry is disabled).
        let t = ctx.now().as_nanos();
        ctx.telemetry().span_end(t, self.span);
    }
}

/// Run a detoured upload end to end and return its breakdown.
pub fn detour_upload(
    sim: &mut netsim::engine::Sim,
    hops: Vec<NodeId>,
    classes: Vec<FlowClass>,
    provider: &Provider,
    bytes: u64,
    opts: UploadOptions,
) -> Result<RelayReport, NetError> {
    detour_upload_traced(sim, hops, classes, provider, bytes, opts, SpanId::NONE)
}

/// Like [`detour_upload`], with a delta-sync attachment: every rsync leg
/// ships the attachment's exact wire plan deduplicated against that hop's
/// chunk store, and admits the manifest's chunks once the leg lands.
pub fn detour_upload_sync(
    sim: &mut netsim::engine::Sim,
    hops: Vec<NodeId>,
    classes: Vec<FlowClass>,
    provider: &Provider,
    bytes: u64,
    opts: UploadOptions,
    sync: SyncAttachment,
) -> Result<RelayReport, NetError> {
    let relay =
        StoreForwardRelay::new(hops, classes, provider.clone(), bytes, opts).with_sync(sync);
    match sim.run_process(Box::new(relay))? {
        Value::Error(e) => Err(e),
        v => Ok(RelayReport::from_value(&v)),
    }
}

/// Like [`detour_upload`], nesting the relay's telemetry span under `parent`.
pub fn detour_upload_traced(
    sim: &mut netsim::engine::Sim,
    hops: Vec<NodeId>,
    classes: Vec<FlowClass>,
    provider: &Provider,
    bytes: u64,
    opts: UploadOptions,
    parent: SpanId,
) -> Result<RelayReport, NetError> {
    let relay = StoreForwardRelay::new(hops, classes, provider.clone(), bytes, opts)
        .with_parent_span(parent);
    match sim.run_process(Box::new(relay))? {
        Value::Error(e) => Err(e),
        v => Ok(RelayReport::from_value(&v)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudstore::ProviderKind;
    use netsim::geo::GeoPoint;
    use netsim::prelude::*;
    use netsim::units::MB;

    /// user --(slow 8 Mbps)--> pop, user --(fast 40)--> dtn --(fast 48)--> pop
    fn detour_wins_topo() -> (Sim, NodeId, NodeId, Provider) {
        let mut b = TopologyBuilder::new();
        let user = b.host("user", GeoPoint::new(49.26, -123.25));
        let dtn = b.host("dtn", GeoPoint::new(53.52, -113.53));
        let pop = b.datacenter("pop", GeoPoint::new(37.39, -122.08));
        b.duplex(
            user,
            pop,
            LinkParams::new(Bandwidth::from_mbps(8.0), SimTime::from_millis(15)),
        );
        b.duplex(
            user,
            dtn,
            LinkParams::new(Bandwidth::from_mbps(40.0), SimTime::from_millis(8)),
        );
        b.duplex(
            dtn,
            pop,
            LinkParams::new(Bandwidth::from_mbps(48.0), SimTime::from_millis(14)),
        );
        let provider = Provider::new(ProviderKind::GoogleDrive, pop);
        (Sim::new(b.build(), 1), user, dtn, provider)
    }

    #[test]
    fn detour_beats_slow_direct() {
        let (mut sim, user, _dtn, provider) = detour_wins_topo();
        let direct = cloudstore::upload(
            &mut sim,
            user,
            &provider,
            50 * MB,
            UploadOptions::warm(FlowClass::PlanetLab),
        )
        .unwrap();
        let (mut sim2, user2, dtn2, provider2) = detour_wins_topo();
        let detour = detour_upload(
            &mut sim2,
            vec![user2, dtn2],
            vec![FlowClass::PlanetLab, FlowClass::Research],
            &provider2,
            50 * MB,
            UploadOptions::warm(FlowClass::Research),
        )
        .unwrap();
        assert!(
            detour.total < direct.elapsed,
            "detour {} should beat direct {}",
            detour.total,
            direct.elapsed
        );
        assert_eq!(detour.leg_times.len(), 1);
    }

    #[test]
    fn total_is_sum_of_parts() {
        let (mut sim, user, dtn, provider) = detour_wins_topo();
        let r = detour_upload(
            &mut sim,
            vec![user, dtn],
            vec![FlowClass::PlanetLab, FlowClass::Research],
            &provider,
            30 * MB,
            UploadOptions::warm(FlowClass::Research),
        )
        .unwrap();
        // Store-and-forward: no overlap between legs.
        assert!(
            r.overlap_savings().abs() < 1e-6,
            "unexpected overlap {}",
            r.overlap_savings()
        );
        assert_eq!(r.total, r.leg_times[0] + r.upload.elapsed);
    }

    #[test]
    fn multi_hop_detour() {
        let mut b = TopologyBuilder::new();
        let user = b.host("user", GeoPoint::new(49.0, -123.0));
        let d1 = b.host("d1", GeoPoint::new(51.0, -114.0));
        let d2 = b.host("d2", GeoPoint::new(53.5, -113.5));
        let pop = b.datacenter("pop", GeoPoint::new(37.4, -122.1));
        let fast = LinkParams::new(Bandwidth::from_mbps(80.0), SimTime::from_millis(5));
        b.duplex(user, d1, fast);
        b.duplex(d1, d2, fast);
        b.duplex(d2, pop, fast);
        let provider = Provider::new(ProviderKind::Dropbox, pop);
        let mut sim = Sim::new(b.build(), 1);
        let r = detour_upload(
            &mut sim,
            vec![user, d1, d2],
            vec![FlowClass::Research; 3],
            &provider,
            20 * MB,
            UploadOptions::warm(FlowClass::Research),
        )
        .unwrap();
        assert_eq!(r.leg_times.len(), 2);
        assert_eq!(r.total, r.leg_times[0] + r.leg_times[1] + r.upload.elapsed);
    }

    #[test]
    fn sync_attachment_dedups_repeat_relay() {
        use crate::chunkstore::ChunkStore;
        use std::cell::RefCell;
        use std::rc::Rc;
        use transfer::{ChunkManifest, FileGen, DEFAULT_CHUNK_SIZE};

        let data = FileGen::new(21).random_file(4 * MB as usize);
        let sync = SyncAttachment {
            plan: transfer::RsyncWirePlan::fresh(data.len() as u64),
            manifest: ChunkManifest::of(&data, DEFAULT_CHUNK_SIZE),
            stores: vec![Rc::new(RefCell::new(ChunkStore::new(64 * MB)))],
        };
        let run = |sync: SyncAttachment| {
            let (mut sim, user, dtn, provider) = detour_wins_topo();
            let relay = StoreForwardRelay::new(
                vec![user, dtn],
                vec![FlowClass::PlanetLab, FlowClass::Research],
                provider,
                4 * MB,
                UploadOptions::warm(FlowClass::Research),
            )
            .with_sync(sync);
            let v = sim.run_process(Box::new(relay)).unwrap();
            RelayReport::from_value(&v)
        };
        let cold = run(sync.clone());
        // A second tenant relays identical content through the same DTN:
        // the rsync leg shrinks to the manifest, only the upload leg pays.
        let warm = run(sync.clone());
        assert!(
            warm.leg_times[0].as_nanos() * 5 < cold.leg_times[0].as_nanos(),
            "warm leg {} vs cold leg {}",
            warm.leg_times[0],
            cold.leg_times[0]
        );
        // The upload leg is NOT deduplicated: providers take full bytes.
        assert_eq!(warm.upload.bytes, cold.upload.bytes);
        let st = sync.stores[0].borrow().stats();
        assert!(st.hits > 0 && st.admitted > 0);
    }

    #[test]
    #[should_panic(expected = "one chunk store per DTN hop")]
    fn sync_attachment_store_count_checked() {
        let (_, user, dtn, provider) = detour_wins_topo();
        let sync = SyncAttachment {
            plan: transfer::RsyncWirePlan::fresh(MB),
            manifest: transfer::ChunkManifest::of(&[], 1024),
            stores: vec![],
        };
        StoreForwardRelay::new(
            vec![user, dtn],
            vec![FlowClass::Research; 2],
            provider,
            MB,
            UploadOptions::default(),
        )
        .with_sync(sync);
    }

    #[test]
    #[should_panic(expected = "at least one DTN")]
    fn relay_needs_two_hops() {
        let (_, user, _, provider) = detour_wins_topo();
        StoreForwardRelay::new(
            vec![user],
            vec![FlowClass::Research],
            provider,
            MB,
            UploadOptions::default(),
        );
    }

    #[test]
    fn flaky_legs_still_relay() {
        let (mut sim, user, dtn, provider) = detour_wins_topo();
        let relay = StoreForwardRelay::new(
            vec![user, dtn],
            vec![FlowClass::PlanetLab, FlowClass::Research],
            provider.with_faults(FaultPlan::flaky()),
            50 * MB,
            UploadOptions::warm(FlowClass::Research),
        )
        .with_leg_faults(FaultPlan::flaky());
        let v = sim.run_process(Box::new(relay)).unwrap();
        let r = RelayReport::from_value(&v);
        assert_eq!(r.bytes, 50 * MB);
        assert_eq!(r.total, r.leg_times[0] + r.upload.elapsed);
    }

    #[test]
    fn hopeless_leg_throttling_terminates_relay() {
        let (mut sim, user, dtn, provider) = detour_wins_topo();
        let mut storm = FaultPlan::none();
        storm.throttle_prob = 1.0;
        let relay = StoreForwardRelay::new(
            vec![user, dtn],
            vec![FlowClass::PlanetLab, FlowClass::Research],
            provider,
            MB,
            UploadOptions::warm(FlowClass::Research),
        )
        .with_leg_faults(storm);
        let v = sim.run_process(Box::new(relay)).unwrap();
        assert!(
            matches!(v, Value::Error(NetError::RetryBudgetExhausted { .. })),
            "expected budget exhaustion, got {v:?}"
        );
    }

    #[test]
    fn unreachable_dtn_errors() {
        let mut b = TopologyBuilder::new();
        let user = b.host("user", GeoPoint::new(0.0, 0.0));
        let dtn = b.host("dtn", GeoPoint::new(1.0, 1.0));
        let pop = b.datacenter("pop", GeoPoint::new(2.0, 2.0));
        // user can reach pop but NOT dtn (dtn only has an outbound link).
        b.duplex(
            user,
            pop,
            LinkParams::new(Bandwidth::from_mbps(10.0), SimTime::from_millis(5)),
        );
        b.simplex(
            dtn,
            pop,
            LinkParams::new(Bandwidth::from_mbps(10.0), SimTime::from_millis(5)),
        );
        let provider = Provider::new(ProviderKind::GoogleDrive, pop);
        let mut sim = Sim::new(b.build(), 1);
        let err = detour_upload(
            &mut sim,
            vec![user, dtn],
            vec![FlowClass::Commodity; 2],
            &provider,
            MB,
            UploadOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, NetError::NoRoute { .. }));
    }
}
