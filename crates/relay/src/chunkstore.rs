//! Content-addressed chunk store at a DTN relay.
//!
//! A relay that has seen a chunk — from *any* user — never needs it shipped
//! again: senders present a [`ChunkManifest`] and only the chunks the store
//! is missing cross the forward leg. This turns detour relays from pure
//! store-and-forward hops into shared caches, deduplicating content across
//! tenants and rounds.
//!
//! The store is capacity-bounded with deterministic FIFO eviction (oldest
//! admission evicted first), so identically-seeded simulations — sequential,
//! sharded, replayed — agree byte-for-byte on its state. [`digest`] folds
//! that state into the simulation checker's chained digest.
//!
//! [`digest`]: ChunkStore::digest

use netsim::audit::Digest;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use transfer::chunk::{ChunkManifest, CHUNK_FRAME_WIRE_BYTES};

/// Cumulative counters for one store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChunkStats {
    /// Chunk lookups performed by `plan`.
    pub probes: u64,
    /// Lookups that found the chunk resident.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Payload bytes the hits avoided shipping.
    pub hit_bytes: u64,
    /// Payload bytes the misses must still ship.
    pub miss_bytes: u64,
    /// Chunks admitted.
    pub admitted: u64,
    /// Chunks evicted to stay under capacity.
    pub evicted: u64,
}

impl ChunkStats {
    /// Hit rate over all probes so far (0 when nothing was probed).
    pub fn hit_rate(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.hits as f64 / self.probes as f64
        }
    }
}

/// The forward-leg cost of shipping one manifest through a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DedupPlan {
    /// Bytes the forward leg must carry: the manifest itself plus payload +
    /// framing for every missing chunk.
    pub wire_bytes: u64,
    /// Chunks described by the manifest.
    pub total_chunks: u64,
    /// Chunks already resident at the relay.
    pub hit_chunks: u64,
    /// Payload bytes the cache made unnecessary.
    pub hit_bytes: u64,
    /// Payload bytes that must still be shipped.
    pub miss_bytes: u64,
}

impl DedupPlan {
    /// Chunks that must be shipped.
    pub fn miss_chunks(&self) -> u64 {
        self.total_chunks - self.hit_chunks
    }
}

/// Capacity-bounded content-addressed chunk cache with FIFO eviction.
#[derive(Debug, Clone)]
pub struct ChunkStore {
    cap_bytes: u64,
    used_bytes: u64,
    /// hash → chunk length for resident chunks.
    resident: HashMap<[u8; 16], u32>,
    /// Admission order: front is the eviction candidate.
    fifo: VecDeque<[u8; 16]>,
    stats: ChunkStats,
}

impl ChunkStore {
    /// A store holding at most `cap_bytes` of chunk payload.
    pub fn new(cap_bytes: u64) -> Self {
        ChunkStore {
            cap_bytes,
            used_bytes: 0,
            resident: HashMap::new(),
            fifo: VecDeque::new(),
            stats: ChunkStats::default(),
        }
    }

    /// Capacity in payload bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.cap_bytes
    }

    /// Payload bytes currently resident.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Resident chunk count.
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> ChunkStats {
        self.stats
    }

    /// True when the chunk is resident (no stats side effect).
    pub fn contains(&self, hash: &[u8; 16]) -> bool {
        self.resident.contains_key(hash)
    }

    /// Probe every chunk of `manifest` and price the forward leg: manifest
    /// overhead plus payload + framing for the missing chunks only. Updates
    /// probe/hit/miss counters; residency is unchanged (admission happens
    /// when the transfer *succeeds*, via [`admit`](Self::admit)).
    ///
    /// Duplicate chunks within one manifest count as hits after the first
    /// miss: the first occurrence ships the payload, the rest ride on it.
    pub fn plan(&mut self, manifest: &ChunkManifest) -> DedupPlan {
        let mut hit_chunks = 0u64;
        let mut hit_bytes = 0u64;
        let mut miss_bytes = 0u64;
        let mut shipped: HashMap<[u8; 16], ()> = HashMap::new();
        for c in &manifest.chunks {
            self.stats.probes += 1;
            if self.resident.contains_key(&c.hash) || shipped.contains_key(&c.hash) {
                self.stats.hits += 1;
                self.stats.hit_bytes += c.len as u64;
                hit_chunks += 1;
                hit_bytes += c.len as u64;
            } else {
                self.stats.misses += 1;
                self.stats.miss_bytes += c.len as u64;
                miss_bytes += c.len as u64;
                shipped.insert(c.hash, ());
            }
        }
        let miss_chunks = manifest.chunks.len() as u64 - hit_chunks;
        DedupPlan {
            wire_bytes: manifest.wire_bytes() + miss_bytes + miss_chunks * CHUNK_FRAME_WIRE_BYTES,
            total_chunks: manifest.chunks.len() as u64,
            hit_chunks,
            hit_bytes,
            miss_bytes,
        }
    }

    /// Admit every chunk of `manifest` (called once the bytes actually
    /// arrived), evicting oldest admissions while over capacity. Chunks
    /// larger than the whole store are never admitted; re-admission of a
    /// resident chunk does not refresh its eviction position.
    pub fn admit(&mut self, manifest: &ChunkManifest) {
        for c in &manifest.chunks {
            if c.len as u64 > self.cap_bytes {
                continue;
            }
            if let Entry::Vacant(slot) = self.resident.entry(c.hash) {
                slot.insert(c.len);
                self.fifo.push_back(c.hash);
                self.used_bytes += c.len as u64;
                self.stats.admitted += 1;
            }
        }
        while self.used_bytes > self.cap_bytes {
            let hash = self.fifo.pop_front().expect("used > 0 implies residents");
            let len = self
                .resident
                .remove(&hash)
                .expect("fifo entries are resident");
            self.used_bytes -= len as u64;
            self.stats.evicted += 1;
        }
    }

    /// Fold the store's observable state — capacity, residency in admission
    /// order, and counters — into one digest word. Identical across any two
    /// executions that saw the same admissions in the same order.
    pub fn digest(&self) -> u64 {
        let mut d = Digest::new();
        d.write_u64(self.cap_bytes);
        d.write_u64(self.used_bytes);
        d.write_u64(self.fifo.len() as u64);
        for hash in &self.fifo {
            d.write_bytes(hash);
            d.write_u64(self.resident[hash] as u64);
        }
        d.write_u64(self.stats.probes);
        d.write_u64(self.stats.hits);
        d.write_u64(self.stats.admitted);
        d.write_u64(self.stats.evicted);
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transfer::FileGen;

    const CS: usize = 1024;

    fn manifest(seed: u64, len: usize) -> ChunkManifest {
        ChunkManifest::of(&FileGen::new(seed).random_file(len), CS)
    }

    #[test]
    fn cold_store_misses_everything() {
        let mut s = ChunkStore::new(1 << 20);
        let m = manifest(1, 4 * CS);
        let p = s.plan(&m);
        assert_eq!(p.hit_chunks, 0);
        assert_eq!(p.miss_bytes, 4 * CS as u64);
        assert_eq!(
            p.wire_bytes,
            m.wire_bytes() + 4 * CS as u64 + 4 * CHUNK_FRAME_WIRE_BYTES
        );
    }

    #[test]
    fn warm_store_hits_everything() {
        let mut s = ChunkStore::new(1 << 20);
        let m = manifest(1, 4 * CS);
        s.plan(&m);
        s.admit(&m);
        let p = s.plan(&m);
        assert_eq!(p.hit_chunks, 4);
        assert_eq!(p.miss_bytes, 0);
        assert_eq!(p.wire_bytes, m.wire_bytes());
        assert!(s.stats().hit_rate() > 0.49 && s.stats().hit_rate() < 0.51);
    }

    #[test]
    fn cross_user_dedup() {
        // Two "users" with identical content: the second pays manifest
        // overhead only.
        let mut s = ChunkStore::new(1 << 20);
        let m_user_a = manifest(7, 8 * CS);
        let m_user_b = manifest(7, 8 * CS);
        s.admit(&m_user_a);
        let p = s.plan(&m_user_b);
        assert_eq!(p.hit_chunks, 8);
        assert_eq!(p.wire_bytes, m_user_b.wire_bytes());
    }

    #[test]
    fn duplicate_chunks_within_manifest_ship_once() {
        let block = FileGen::new(3).random_file(CS);
        let mut data = block.clone();
        data.extend_from_slice(&block);
        data.extend_from_slice(&block);
        let m = ChunkManifest::of(&data, CS);
        let mut s = ChunkStore::new(1 << 20);
        let p = s.plan(&m);
        assert_eq!(p.total_chunks, 3);
        assert_eq!(p.hit_chunks, 2, "payload ships once, two ride along");
        assert_eq!(p.miss_bytes, CS as u64);
    }

    #[test]
    fn fifo_eviction_is_deterministic() {
        let mut s = ChunkStore::new(2 * CS as u64);
        // FileGen seeds the stream with `seed | 1`, so pick odd seeds to
        // guarantee distinct content.
        let m1 = manifest(11, CS);
        let m2 = manifest(23, CS);
        let m3 = manifest(35, CS);
        s.admit(&m1);
        s.admit(&m2);
        assert_eq!(s.used_bytes(), 2 * CS as u64);
        s.admit(&m3); // evicts m1's chunk, the oldest admission
        assert_eq!(s.used_bytes(), 2 * CS as u64);
        assert!(!s.contains(&m1.chunks[0].hash));
        assert!(s.contains(&m2.chunks[0].hash));
        assert!(s.contains(&m3.chunks[0].hash));
        assert_eq!(s.stats().evicted, 1);
    }

    #[test]
    fn oversized_chunk_never_admitted() {
        let mut s = ChunkStore::new(10);
        let m = manifest(1, CS);
        s.admit(&m);
        assert!(s.is_empty());
        assert_eq!(s.stats().admitted, 0);
    }

    #[test]
    fn digest_tracks_state_and_order() {
        let mut a = ChunkStore::new(1 << 20);
        let mut b = ChunkStore::new(1 << 20);
        let m1 = manifest(1, 2 * CS);
        let m2 = manifest(2, 2 * CS);
        a.admit(&m1);
        a.admit(&m2);
        b.admit(&m1);
        b.admit(&m2);
        assert_eq!(a.digest(), b.digest());
        // Admission order is part of the state.
        let mut c = ChunkStore::new(1 << 20);
        c.admit(&m2);
        c.admit(&m1);
        assert_ne!(a.digest(), c.digest());
        // Probes are observable too (they drive wire bytes downstream).
        let mut d = a.clone();
        d.plan(&m1);
        assert_ne!(a.digest(), d.digest());
    }

    #[test]
    fn empty_manifest_is_free() {
        let mut s = ChunkStore::new(1 << 20);
        let m = ChunkManifest::of(&[], CS);
        let p = s.plan(&m);
        assert_eq!(p.total_chunks, 0);
        assert_eq!(p.wire_bytes, m.wire_bytes());
        s.admit(&m);
        assert!(s.is_empty());
    }
}
