//! Pipelined (cut-through) relaying — the paper's future-work direction.
//!
//! Store-and-forward pays `t1 + t2`. A DTN that begins uploading chunk *i*
//! while receiving chunk *i+1* pays roughly `max(t1, t2)` plus one chunk of
//! latency. This module implements that overlap at chunk granularity:
//! a *send lane* (user → DTN flows) and an *upload lane* (DTN → provider
//! part RPCs) run concurrently, coupled by the DTN's received-chunk buffer.
//!
//! The ablation benchmark `ablation-pipeline` compares the two modes on the
//! paper's winning detours.

use crate::chunkstore::ChunkStore;
use crate::report::RelayReport;
use cloudstore::faults::FaultOutcome;
use cloudstore::resilience::{RetryPolicy, RetryState};
use cloudstore::{Provider, TransferStats};
use netsim::engine::{Ctx, Event, Process, ProcessId, Value};
use netsim::error::NetError;
use netsim::flow::{FlowClass, FlowSpec};
use netsim::rpc::{Rpc, RpcSpec};
use netsim::time::SimTime;
use netsim::topology::NodeId;
use std::cell::RefCell;
use std::rc::Rc;
use transfer::ChunkManifest;

/// Default relay chunk: big enough to amortize round trips, small enough to
/// overlap well.
pub const DEFAULT_RELAY_CHUNK: u64 = 8 * 1024 * 1024;

/// Upload-lane retry timer (throttle wait or transient backoff).
const TIMER_RETRY: u64 = 1;

/// Cut-through relay through one DTN. Finishes with a packed
/// [`RelayReport`].
///
/// Assumes a warm (cached) token at the DTN; cold-start pipelining would
/// only add a constant to both compared modes.
pub struct PipelinedRelay {
    user: NodeId,
    dtn: NodeId,
    provider: Provider,
    bytes: u64,
    chunk: u64,
    send_class: FlowClass,
    upload_class: FlowClass,

    chunks: Vec<u64>,
    /// Send-lane (user → DTN) bytes per chunk. Equal to `chunks` unless a
    /// chunk cache shrank the forward leg, in which case the deduplicated
    /// wire bytes are spread over the same chunk count so the cut-through
    /// coupling (chunk received → part uploadable) is preserved.
    send_chunks: Vec<u64>,
    /// DTN-side chunk cache plus the manifest of this relay's content.
    cache: Option<(Rc<RefCell<ChunkStore>>, ChunkManifest)>,
    /// Maximum chunks the DTN may hold that are received but not yet
    /// uploaded (its staging buffer). `u32::MAX` = unbounded.
    max_buffered: u32,
    sent: usize,
    received: usize,
    uploaded: usize,
    send_in_flight: bool,
    frontend: NodeId,
    handshake_pid: Option<ProcessId>,
    init_pid: Option<ProcessId>,
    upload_pid: Option<ProcessId>,
    finish_pid: Option<ProcessId>,
    init_done: bool,
    handshake_done: bool,
    started: SimTime,
    last_received_at: SimTime,
    rpcs: u64,
    wire_bytes: u64,
    first_send: bool,

    /// Upload-lane fault handling (the provider's [`cloudstore::FaultPlan`]
    /// applies to part uploads, exactly as in [`cloudstore::UploadSession`]).
    policy: RetryPolicy,
    retry: RetryState,
    pending_outcome: FaultOutcome,
    upload_attempts: u32,
    /// While a throttle/backoff timer is armed the upload lane must not
    /// issue anything, even if new chunks arrive.
    upload_stalled: bool,
    retries: u64,
    throttles: u64,
}

impl PipelinedRelay {
    /// Build a pipelined relay with the default chunk size.
    pub fn new(
        user: NodeId,
        dtn: NodeId,
        provider: Provider,
        bytes: u64,
        send_class: FlowClass,
        upload_class: FlowClass,
    ) -> Self {
        Self::with_chunk(
            user,
            dtn,
            provider,
            bytes,
            send_class,
            upload_class,
            DEFAULT_RELAY_CHUNK,
        )
    }

    /// Build with an explicit relay chunk size.
    pub fn with_chunk(
        user: NodeId,
        dtn: NodeId,
        provider: Provider,
        bytes: u64,
        send_class: FlowClass,
        upload_class: FlowClass,
        chunk: u64,
    ) -> Self {
        assert!(chunk > 0, "chunk must be positive");
        let policy = RetryPolicy::from_plan(&provider.faults);
        PipelinedRelay {
            user,
            dtn,
            provider,
            bytes,
            chunk,
            send_class,
            upload_class,
            max_buffered: u32::MAX,
            chunks: Vec::new(),
            send_chunks: Vec::new(),
            cache: None,
            sent: 0,
            received: 0,
            uploaded: 0,
            send_in_flight: false,
            frontend: NodeId(u32::MAX),
            handshake_pid: None,
            init_pid: None,
            upload_pid: None,
            finish_pid: None,
            init_done: false,
            handshake_done: false,
            started: SimTime::ZERO,
            last_received_at: SimTime::ZERO,
            rpcs: 0,
            wire_bytes: 0,
            first_send: true,
            policy,
            retry: RetryState::start(policy, SimTime::ZERO),
            pending_outcome: FaultOutcome::Ok,
            upload_attempts: 0,
            upload_stalled: false,
            retries: 0,
            throttles: 0,
        }
    }

    /// Override the upload lane's retry policy (budget, backoff, deadline).
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Consult the DTN's content-addressed chunk store: the send lane ships
    /// only the manifest plus missing chunks (spread over the same chunk
    /// count), while the upload lane still carries the full content. Chunks
    /// are admitted once the relay completes.
    pub fn with_chunk_cache(mut self, store: Rc<RefCell<ChunkStore>>, m: ChunkManifest) -> Self {
        self.cache = Some((store, m));
        self
    }

    fn split(&self) -> Vec<u64> {
        let mut parts = Vec::new();
        let mut left = self.bytes;
        while left > self.chunk {
            parts.push(self.chunk);
            left -= self.chunk;
        }
        if left > 0 {
            parts.push(left);
        }
        parts
    }

    /// Bound the DTN's staging buffer to `chunks` received-but-unuploaded
    /// chunks; the sender stalls when it is full (backpressure).
    pub fn with_buffer_limit(mut self, chunks: u32) -> Self {
        assert!(chunks >= 1, "buffer must hold at least one chunk");
        self.max_buffered = chunks;
        self
    }

    /// Spread `wire` bytes over `n` send-lane chunks (remainder on the
    /// last), at least one byte each so every flow exists.
    fn spread(wire: u64, n: usize) -> Vec<u64> {
        let n64 = n as u64;
        let base = (wire / n64).max(1);
        let mut parts = vec![base; n];
        if wire > base * n64 {
            parts[n - 1] += wire - base * n64;
        }
        parts
    }

    fn send_next(&mut self, ctx: &mut Ctx<'_>) {
        if self.send_in_flight || self.sent >= self.chunks.len() {
            return;
        }
        // Backpressure: in-flight + staged chunks must fit the buffer.
        let staged_after_send = (self.sent - self.uploaded) as u32;
        if staged_after_send >= self.max_buffered {
            return;
        }
        let mut spec = FlowSpec::new(
            self.user,
            self.dtn,
            self.send_chunks[self.sent] + 64,
            self.send_class,
        );
        if !self.first_send {
            spec = spec.reuse_connection();
        }
        self.first_send = false;
        match ctx.start_flow(spec) {
            Ok(_) => {
                self.sent += 1;
                self.send_in_flight = true;
            }
            Err(e) => ctx.finish(Value::Error(e)),
        }
    }

    fn finish_exhausted(&mut self, ctx: &mut Ctx<'_>, e: NetError) {
        let counter = match e {
            NetError::DeadlineExceeded { .. } => "relay.retry.deadline_exceeded",
            _ => "relay.retry.budget_exhausted",
        };
        ctx.telemetry().counter_add(counter, 1);
        ctx.finish(Value::Error(e));
    }

    fn maybe_upload(&mut self, ctx: &mut Ctx<'_>) {
        if !self.init_done
            || self.upload_stalled
            || self.upload_pid.is_some()
            || self.uploaded >= self.received
        {
            return;
        }
        self.pending_outcome = if self.provider.faults.is_active() {
            self.provider.faults.roll(ctx.rng())
        } else {
            FaultOutcome::Ok
        };
        if let FaultOutcome::Throttled { wait } = self.pending_outcome {
            self.throttles += 1;
            ctx.telemetry().counter_add("relay.pipeline.throttles", 1);
            if let Err(e) = self.retry.charge(self.frontend, ctx.now(), wait) {
                self.finish_exhausted(ctx, e);
                return;
            }
            self.upload_stalled = true;
            ctx.set_timer(wait, TIMER_RETRY);
            return;
        }
        let part = self.chunks[self.uploaded];
        let p = &self.provider.protocol;
        let spec = RpcSpec::control(self.dtn, self.frontend, self.upload_class)
            .with_payload(part + p.per_chunk_header, p.per_chunk_response)
            .with_server_time(p.server_time_for_part(part));
        self.rpcs += 1;
        self.wire_bytes += part + p.per_chunk_header;
        self.upload_pid = Some(ctx.spawn(Box::new(Rpc::new(spec))));
    }

    fn maybe_finish(&mut self, ctx: &mut Ctx<'_>) {
        if self.uploaded < self.chunks.len() || self.finish_pid.is_some() {
            return;
        }
        let p = &self.provider.protocol;
        if p.has_finish_rpc() {
            let (req, resp) = p.finish_bytes;
            let spec = RpcSpec::control(self.dtn, self.frontend, self.upload_class)
                .with_payload(req, resp)
                .with_server_time(p.finish_server_time);
            self.rpcs += 1;
            self.finish_pid = Some(ctx.spawn(Box::new(Rpc::new(spec))));
        } else {
            self.report(ctx);
        }
    }

    fn report(&mut self, ctx: &mut Ctx<'_>) {
        // Everything arrived and uploaded: the DTN keeps the chunks.
        if let Some((store, manifest)) = &self.cache {
            store.borrow_mut().admit(manifest);
        }
        let total = ctx.now().saturating_sub(self.started);
        let report = RelayReport {
            bytes: self.bytes,
            total,
            leg_times: vec![self.last_received_at.saturating_sub(self.started)],
            upload: TransferStats {
                bytes: self.bytes,
                elapsed: total,
                rpcs: self.rpcs,
                retries: self.retries,
                throttles: self.throttles,
                token_refreshes: 0,
                wire_bytes: self.wire_bytes,
            },
        };
        ctx.finish(report.to_value());
    }
}

impl Process for PipelinedRelay {
    fn poll(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Started => {
                self.started = ctx.now();
                self.frontend = self.provider.frontend_for(ctx.topology(), self.user);
                // Anchor the deadline (if any) to the real start instant.
                self.retry = RetryState::start(self.policy, self.started);
                self.chunks = self.split();
                if self.chunks.is_empty() {
                    ctx.finish(Value::Error(NetError::EmptyTransfer));
                    return;
                }
                self.send_chunks = match &self.cache {
                    None => self.chunks.clone(),
                    Some((store, manifest)) => {
                        let dedup = store.borrow_mut().plan(manifest);
                        ctx.telemetry()
                            .counter_add("relay.chunk.hits", dedup.hit_chunks);
                        ctx.telemetry()
                            .counter_add("relay.chunk.misses", dedup.miss_chunks());
                        if dedup.wire_bytes < self.bytes {
                            ctx.telemetry().counter_add(
                                "relay.chunk.saved_bytes",
                                self.bytes - dedup.wire_bytes,
                            );
                            Self::spread(dedup.wire_bytes, self.chunks.len())
                        } else {
                            self.chunks.clone()
                        }
                    }
                };
                // Leg-1 handshake and leg-2 session init run concurrently.
                let hs = RpcSpec::control(self.user, self.dtn, self.send_class)
                    .with_payload(512, 256)
                    .with_server_time(SimTime::from_millis(10))
                    .fresh();
                self.handshake_pid = Some(ctx.spawn(Box::new(Rpc::new(hs))));
                let (req, resp) = self.provider.protocol.init_bytes;
                let init = RpcSpec::control(self.dtn, self.frontend, self.upload_class)
                    .with_payload(req, resp)
                    .with_server_time(self.provider.protocol.init_server_time)
                    .fresh();
                self.rpcs += 1;
                self.init_pid = Some(ctx.spawn(Box::new(Rpc::new(init))));
            }
            Event::ChildDone { child, value } => {
                if let Value::Error(e) = value {
                    ctx.finish(Value::Error(e));
                    return;
                }
                if Some(child) == self.handshake_pid {
                    self.handshake_pid = None;
                    self.handshake_done = true;
                    self.send_next(ctx);
                } else if Some(child) == self.init_pid {
                    self.init_pid = None;
                    self.init_done = true;
                    self.maybe_upload(ctx);
                } else if Some(child) == self.upload_pid {
                    self.upload_pid = None;
                    match self.pending_outcome {
                        FaultOutcome::Ok => {
                            self.upload_attempts = 0;
                            self.uploaded += 1;
                            self.maybe_upload(ctx);
                            // An upload freed buffer space: the sender may
                            // resume.
                            if self.handshake_done {
                                self.send_next(ctx);
                            }
                            self.maybe_finish(ctx);
                        }
                        FaultOutcome::TransientError => {
                            self.retries += 1;
                            ctx.telemetry().counter_add("relay.pipeline.retries", 1);
                            self.upload_attempts += 1;
                            if self.upload_attempts > self.provider.faults.max_retries {
                                ctx.finish(Value::Error(NetError::Blocked {
                                    at: self.frontend,
                                    reason: "part upload exceeded max retries",
                                }));
                                return;
                            }
                            let backoff = self.policy.backoff(self.upload_attempts, ctx.rng());
                            if let Err(e) = self.retry.charge(self.frontend, ctx.now(), backoff) {
                                self.finish_exhausted(ctx, e);
                                return;
                            }
                            self.upload_stalled = true;
                            ctx.set_timer(backoff, TIMER_RETRY);
                        }
                        FaultOutcome::Throttled { .. } => {
                            unreachable!("throttled parts never reach the wire")
                        }
                    }
                } else if Some(child) == self.finish_pid {
                    self.finish_pid = None;
                    self.report(ctx);
                }
            }
            Event::FlowCompleted { .. } => {
                // A chunk arrived at the DTN.
                self.send_in_flight = false;
                self.received += 1;
                self.last_received_at = ctx.now();
                self.send_next(ctx);
                self.maybe_upload(ctx);
            }
            Event::Timer { tag: TIMER_RETRY } => {
                self.upload_stalled = false;
                self.maybe_upload(ctx);
            }
            Event::FlowFailed { error, .. } => ctx.finish(Value::Error(error)),
            _ => {}
        }
    }

    fn name(&self) -> &'static str {
        "pipelined-relay"
    }
}

/// Run a pipelined detour upload end to end.
pub fn pipelined_upload(
    sim: &mut netsim::engine::Sim,
    user: NodeId,
    dtn: NodeId,
    provider: &Provider,
    bytes: u64,
    send_class: FlowClass,
    upload_class: FlowClass,
) -> Result<RelayReport, NetError> {
    let relay = PipelinedRelay::new(user, dtn, provider.clone(), bytes, send_class, upload_class);
    match sim.run_process(Box::new(relay))? {
        Value::Error(e) => Err(e),
        v => Ok(RelayReport::from_value(&v)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store_forward::detour_upload;
    use cloudstore::ProviderKind;
    use netsim::geo::GeoPoint;
    use netsim::prelude::*;
    use netsim::units::MB;

    fn topo() -> (Sim, NodeId, NodeId, Provider) {
        let mut b = TopologyBuilder::new();
        let user = b.host("user", GeoPoint::new(49.26, -123.25));
        let dtn = b.host("dtn", GeoPoint::new(53.52, -113.53));
        let pop = b.datacenter("pop", GeoPoint::new(37.39, -122.08));
        b.duplex(
            user,
            dtn,
            LinkParams::new(Bandwidth::from_mbps(40.0), SimTime::from_millis(8)),
        );
        b.duplex(
            dtn,
            pop,
            LinkParams::new(Bandwidth::from_mbps(48.0), SimTime::from_millis(14)),
        );
        let provider = Provider::new(ProviderKind::GoogleDrive, pop);
        (Sim::new(b.build(), 1), user, dtn, provider)
    }

    #[test]
    fn pipelining_beats_store_and_forward() {
        let (mut sim, user, dtn, provider) = topo();
        let sf = detour_upload(
            &mut sim,
            vec![user, dtn],
            vec![FlowClass::Research; 2],
            &provider,
            60 * MB,
            cloudstore::UploadOptions::warm(FlowClass::Research),
        )
        .unwrap();
        let (mut sim2, user2, dtn2, provider2) = topo();
        let pl = pipelined_upload(
            &mut sim2,
            user2,
            dtn2,
            &provider2,
            60 * MB,
            FlowClass::Research,
            FlowClass::Research,
        )
        .unwrap();
        assert!(
            pl.total < sf.total,
            "pipelined {} should beat store-and-forward {}",
            pl.total,
            sf.total
        );
        // The win should approach the smaller leg's duration.
        assert!(pl.overlap_savings() > 0.0);
    }

    #[test]
    fn pipelined_total_close_to_max_leg() {
        let (mut sim, user, dtn, provider) = topo();
        let pl = pipelined_upload(
            &mut sim,
            user,
            dtn,
            &provider,
            60 * MB,
            FlowClass::Research,
            FlowClass::Research,
        )
        .unwrap();
        // Bottleneck leg is 40 Mbps (5 MB/s): fluid bound 12 s for 60 MB.
        // Pipelining should land within ~2.5x of that bound, far below the
        // ~25 s a store-and-forward sum would need.
        let total = pl.total.as_secs_f64();
        assert!((12.0..22.0).contains(&total), "total {total}");
    }

    #[test]
    fn buffer_limit_trades_overlap_for_memory() {
        // Unbounded, W=4 and W=1 buffers: smaller buffers mean less overlap
        // (more stalling), monotonically; even W=1 must not exceed
        // store-and-forward by much.
        let run = |limit: Option<u32>| {
            let (mut sim, user, dtn, provider) = topo();
            let mut relay = PipelinedRelay::new(
                user,
                dtn,
                provider,
                60 * MB,
                FlowClass::Research,
                FlowClass::Research,
            );
            if let Some(w) = limit {
                relay = relay.with_buffer_limit(w);
            }
            let v = sim.run_process(Box::new(relay)).unwrap();
            RelayReport::from_value(&v).total
        };
        let unbounded = run(None);
        let w4 = run(Some(4));
        let w1 = run(Some(1));
        assert!(unbounded <= w4, "unbounded {unbounded} vs W=4 {w4}");
        assert!(w4 <= w1, "W=4 {w4} vs W=1 {w1}");
        assert!(w1 > unbounded, "buffer limit should cost something");
        // And even W=1 pipelining interleaves better than full
        // store-and-forward would (~25 s here).
        assert!(w1 < SimTime::from_secs(27), "W=1 total {w1}");
    }

    #[test]
    fn chunk_cache_shrinks_send_lane_only() {
        use crate::chunkstore::ChunkStore;
        use std::cell::RefCell;
        use std::rc::Rc;
        use transfer::{ChunkManifest, FileGen, DEFAULT_CHUNK_SIZE};

        let data = FileGen::new(33).random_file(10 * MB as usize);
        let manifest = ChunkManifest::of(&data, DEFAULT_CHUNK_SIZE);
        let store = Rc::new(RefCell::new(ChunkStore::new(64 * MB)));
        let run = || {
            let (mut sim, user, dtn, provider) = topo();
            let relay = PipelinedRelay::with_chunk(
                user,
                dtn,
                provider,
                10 * MB,
                FlowClass::Research,
                FlowClass::Research,
                MB,
            )
            .with_chunk_cache(Rc::clone(&store), manifest.clone());
            let v = sim.run_process(Box::new(relay)).unwrap();
            RelayReport::from_value(&v)
        };
        let cold = run();
        let warm = run();
        assert!(
            warm.total < cold.total,
            "warm {} vs cold {}",
            warm.total,
            cold.total
        );
        // The upload lane always ships the full content to the provider.
        assert_eq!(warm.upload.wire_bytes, cold.upload.wire_bytes);
        assert_eq!(
            store.borrow().stats().admitted,
            manifest.chunk_count() as u64
        );
    }

    #[test]
    #[should_panic(expected = "at least one chunk")]
    fn zero_buffer_rejected() {
        let (_, user, dtn, provider) = topo();
        let _ = PipelinedRelay::new(
            user,
            dtn,
            provider,
            MB,
            FlowClass::Research,
            FlowClass::Research,
        )
        .with_buffer_limit(0);
    }

    #[test]
    fn small_file_single_chunk_works() {
        let (mut sim, user, dtn, provider) = topo();
        let pl = pipelined_upload(
            &mut sim,
            user,
            dtn,
            &provider,
            MB,
            FlowClass::Research,
            FlowClass::Research,
        )
        .unwrap();
        assert_eq!(pl.bytes, MB);
        assert!(pl.total > SimTime::ZERO);
    }

    #[test]
    fn zero_bytes_rejected() {
        let (mut sim, user, dtn, provider) = topo();
        let err = pipelined_upload(
            &mut sim,
            user,
            dtn,
            &provider,
            0,
            FlowClass::Research,
            FlowClass::Research,
        )
        .unwrap_err();
        assert_eq!(err, NetError::EmptyTransfer);
    }

    #[test]
    fn flaky_pipeline_retries_and_succeeds() {
        let (mut sim, user, dtn, provider) = topo();
        let pl = pipelined_upload(
            &mut sim,
            user,
            dtn,
            &provider.clone().with_faults(cloudstore::FaultPlan::flaky()),
            60 * MB,
            FlowClass::Research,
            FlowClass::Research,
        )
        .unwrap();
        let (mut sim2, user2, dtn2, provider2) = topo();
        let clean = pipelined_upload(
            &mut sim2,
            user2,
            dtn2,
            &provider2,
            60 * MB,
            FlowClass::Research,
            FlowClass::Research,
        )
        .unwrap();
        assert_eq!(pl.bytes, clean.bytes);
        assert!(pl.total >= clean.total, "faults cannot speed a relay up");
    }

    #[test]
    fn hopeless_throttling_pipeline_terminates() {
        let (mut sim, user, dtn, mut provider) = topo();
        provider.faults.throttle_prob = 1.0;
        let err = pipelined_upload(
            &mut sim,
            user,
            dtn,
            &provider,
            10 * MB,
            FlowClass::Research,
            FlowClass::Research,
        )
        .unwrap_err();
        assert!(
            matches!(err, NetError::RetryBudgetExhausted { .. }),
            "expected budget exhaustion, got {err}"
        );
    }

    #[test]
    fn custom_chunk_sizes_are_respected() {
        let (mut sim, user, dtn, provider) = topo();
        let relay = PipelinedRelay::with_chunk(
            user,
            dtn,
            provider.clone(),
            10 * MB,
            FlowClass::Research,
            FlowClass::Research,
            MB,
        );
        let v = sim.run_process(Box::new(relay)).unwrap();
        let r = RelayReport::from_value(&v);
        // 10 chunks uploaded, plus init.
        assert_eq!(r.upload.rpcs, 11);
    }
}
