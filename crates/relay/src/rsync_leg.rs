//! One rsync hop between two hosts on the simulated WAN.
//!
//! Wire behaviour follows the real protocol: a handshake exchange whose
//! response carries the receiver's block signatures, a forward flow carrying
//! the delta (for the paper's deleted-before-each-run workload this is the
//! whole file plus ~50 bytes), and a final acknowledgement.
//!
//! Legs participate in the resilience plane ([`cloudstore::resilience`]):
//! an optional [`FaultPlan`] injects per-stage throttles (receiver busy —
//! wait and come back) and transient failures (stage retried with
//! deterministically-jittered backoff), all charged against one
//! session-wide retry budget with an optional hard deadline. Fault rolls
//! are gated on [`FaultPlan::is_active`] so fault-free legs draw nothing
//! from the shared simulation PRNG.

use crate::chunkstore::ChunkStore;
use cloudstore::faults::{FaultOutcome, FaultPlan};
use cloudstore::resilience::{RetryPolicy, RetryState};
use netsim::engine::{Ctx, Event, Process, ProcessId, Value};
use netsim::error::NetError;
use netsim::flow::{FlowClass, FlowSpec};
use netsim::rpc::{Rpc, RpcSpec};
use netsim::time::SimTime;
use netsim::topology::NodeId;
use obs::{Category, SpanId};
use std::cell::RefCell;
use std::rc::Rc;
use transfer::{ChunkManifest, RsyncWirePlan};

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Idle,
    Handshake,
    Delta,
    Ack,
}

const TIMER_RETRY: u64 = 1;

/// A process performing one rsync transfer; finishes with
/// `Value::Time(elapsed)`.
pub struct RsyncLeg {
    src: NodeId,
    dst: NodeId,
    plan: RsyncWirePlan,
    class: FlowClass,
    faults: FaultPlan,
    policy: RetryPolicy,
    state: State,
    started: SimTime,
    pending: Option<ProcessId>,
    pending_outcome: FaultOutcome,
    attempts: u32,
    retry: RetryState,
    span: SpanId,
    parent_span: SpanId,
    /// Receiver-side chunk cache plus the manifest of the content this leg
    /// carries: when the deduplicated forward cost beats the delta, the
    /// forward flow shrinks to it.
    cache: Option<(Rc<RefCell<ChunkStore>>, ChunkManifest)>,
    /// Forward-leg bytes after consulting the cache (priced once, on the
    /// first delta attempt, so retries re-ship the same bytes).
    deduped_delta_bytes: Option<u64>,
}

impl RsyncLeg {
    /// A leg moving `plan` between two hosts.
    pub fn new(src: NodeId, dst: NodeId, plan: RsyncWirePlan, class: FlowClass) -> Self {
        let faults = FaultPlan::none();
        let policy = RetryPolicy::from_plan(&faults);
        RsyncLeg {
            src,
            dst,
            plan,
            class,
            faults,
            policy,
            state: State::Idle,
            started: SimTime::ZERO,
            pending: None,
            pending_outcome: FaultOutcome::Ok,
            attempts: 0,
            retry: RetryState::start(policy, SimTime::ZERO),
            span: SpanId::NONE,
            parent_span: SpanId::NONE,
            cache: None,
            deduped_delta_bytes: None,
        }
    }

    /// The paper's workload: the destination's copy was deleted, so the
    /// whole file crosses the wire.
    pub fn fresh(src: NodeId, dst: NodeId, bytes: u64, class: FlowClass) -> Self {
        Self::new(src, dst, RsyncWirePlan::fresh(bytes), class)
    }

    /// Inject faults on this leg; the retry policy defaults to
    /// [`RetryPolicy::from_plan`] unless [`with_retry`](Self::with_retry)
    /// follows.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self.policy = RetryPolicy::from_plan(&faults);
        self
    }

    /// Override the leg's retry policy (budget, backoff, deadline).
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Nest this leg's telemetry span under `parent` (e.g. a relay span).
    pub fn with_parent_span(mut self, parent: SpanId) -> Self {
        self.parent_span = parent;
        self
    }

    /// Consult the receiver's content-addressed chunk store: the forward
    /// leg ships `min(delta, manifest + missing chunks)` bytes, and the
    /// manifest's chunks are admitted to the store once the leg completes.
    pub fn with_chunk_cache(mut self, store: Rc<RefCell<ChunkStore>>, m: ChunkManifest) -> Self {
        self.cache = Some((store, m));
        self
    }

    /// Price the forward leg, consulting the chunk cache at most once per
    /// leg (retries re-ship the same bytes).
    fn forward_delta_bytes(&mut self, ctx: &mut Ctx<'_>) -> u64 {
        if let Some(done) = self.deduped_delta_bytes {
            return done;
        }
        let bytes = match &self.cache {
            None => self.plan.delta_bytes,
            Some((store, manifest)) => {
                let dedup = store.borrow_mut().plan(manifest);
                ctx.telemetry()
                    .counter_add("relay.chunk.hits", dedup.hit_chunks);
                ctx.telemetry()
                    .counter_add("relay.chunk.misses", dedup.miss_chunks());
                if dedup.wire_bytes < self.plan.delta_bytes {
                    ctx.telemetry().counter_add(
                        "relay.chunk.saved_bytes",
                        self.plan.delta_bytes - dedup.wire_bytes,
                    );
                    dedup.wire_bytes
                } else {
                    self.plan.delta_bytes
                }
            }
        };
        self.deduped_delta_bytes = Some(bytes);
        bytes
    }

    fn finish_traced(&mut self, ctx: &mut Ctx<'_>, v: Value) {
        let t = ctx.now().as_nanos();
        let dur = ctx.now().saturating_sub(self.started).as_nanos();
        ctx.telemetry()
            .window_record(t, "relay.leg.duration_ns", dur);
        ctx.telemetry().span_end(t, self.span);
        ctx.finish(v);
    }

    fn finish_exhausted(&mut self, ctx: &mut Ctx<'_>, e: NetError) {
        let counter = match e {
            NetError::DeadlineExceeded { .. } => "relay.retry.deadline_exceeded",
            _ => "relay.retry.budget_exhausted",
        };
        ctx.telemetry().counter_add(counter, 1);
        self.finish_traced(ctx, Value::Error(e));
    }

    /// Roll the fault plan for the stage about to be issued. Returns `true`
    /// when the caller must not issue it now — either a throttle timer was
    /// armed or the budget/deadline just expired.
    fn stage_gated(&mut self, ctx: &mut Ctx<'_>) -> bool {
        self.pending_outcome = if self.faults.is_active() {
            self.faults.roll(ctx.rng())
        } else {
            FaultOutcome::Ok
        };
        if let FaultOutcome::Throttled { wait } = self.pending_outcome {
            ctx.telemetry().counter_add("relay.leg.throttles", 1);
            if let Err(e) = self.retry.charge(self.dst, ctx.now(), wait) {
                self.finish_exhausted(ctx, e);
                return true;
            }
            ctx.set_timer(wait, TIMER_RETRY);
            return true;
        }
        false
    }

    /// Settle a finished stage. Returns `true` when the stage succeeded and
    /// the leg may advance; otherwise a retry timer was armed (or the leg
    /// finished with an error).
    fn stage_done(&mut self, ctx: &mut Ctx<'_>) -> bool {
        match self.pending_outcome {
            FaultOutcome::Ok => {
                self.attempts = 0;
                true
            }
            FaultOutcome::TransientError => {
                ctx.telemetry().counter_add("relay.leg.retries", 1);
                self.attempts += 1;
                if self.attempts > self.faults.max_retries {
                    self.finish_traced(
                        ctx,
                        Value::Error(NetError::Blocked {
                            at: self.dst,
                            reason: "rsync stage exceeded max retries",
                        }),
                    );
                    return false;
                }
                let backoff = self.policy.backoff(self.attempts, ctx.rng());
                if let Err(e) = self.retry.charge(self.dst, ctx.now(), backoff) {
                    self.finish_exhausted(ctx, e);
                    return false;
                }
                ctx.set_timer(backoff, TIMER_RETRY);
                false
            }
            FaultOutcome::Throttled { .. } => {
                unreachable!("throttled stages never reach the wire")
            }
        }
    }

    fn begin_handshake(&mut self, ctx: &mut Ctx<'_>) {
        self.state = State::Handshake;
        if self.stage_gated(ctx) {
            return;
        }
        // Handshake request; the response carries the signatures.
        let spec = RpcSpec::control(self.src, self.dst, self.class)
            .with_payload(self.plan.handshake_bytes, 256 + self.plan.signature_bytes)
            .with_server_time(SimTime::from_millis(10))
            .fresh()
            .traced("rpc.handshake", self.span);
        self.pending = Some(ctx.spawn(Box::new(Rpc::new(spec))));
    }

    fn begin_delta(&mut self, ctx: &mut Ctx<'_>) {
        self.state = State::Delta;
        if self.stage_gated(ctx) {
            return;
        }
        let delta_bytes = self.forward_delta_bytes(ctx);
        let spec = FlowSpec::new(self.src, self.dst, delta_bytes, self.class)
            .reuse_connection()
            .with_parent_span(self.span);
        if let Err(e) = ctx.start_flow(spec) {
            self.finish_traced(ctx, Value::Error(e));
        }
    }

    fn begin_ack(&mut self, ctx: &mut Ctx<'_>) {
        self.state = State::Ack;
        if self.stage_gated(ctx) {
            return;
        }
        let spec = RpcSpec::control(self.src, self.dst, self.class)
            .with_payload(64, self.plan.ack_bytes)
            .with_server_time(SimTime::from_millis(5))
            .traced("rpc.ack", self.span);
        self.pending = Some(ctx.spawn(Box::new(Rpc::new(spec))));
    }
}

impl Process for RsyncLeg {
    fn poll(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match (self.state, ev) {
            (State::Idle, Event::Started) => {
                self.started = ctx.now();
                // Anchor the deadline (if any) to the real start instant —
                // relay legs often begin mid-simulation.
                self.retry = RetryState::start(self.policy, self.started);
                if ctx.telemetry().is_enabled() {
                    let (t, parent) = (ctx.now().as_nanos(), self.parent_span);
                    let (delta, src, dst) = (self.plan.delta_bytes, self.src, self.dst);
                    let topo = ctx.topology();
                    let (src_name, dst_name) =
                        (topo.node(src).name.clone(), topo.node(dst).name.clone());
                    self.span = ctx.telemetry().span_begin_with(
                        t,
                        Category::Relay,
                        "rsync-leg",
                        parent,
                        |a| {
                            a.set("src", src_name)
                                .set("dst", dst_name)
                                .set("delta_bytes", delta);
                        },
                    );
                }
                self.begin_handshake(ctx);
            }
            (State::Handshake, Event::ChildDone { value, .. }) => {
                if let Value::Error(e) = value {
                    self.finish_traced(ctx, Value::Error(e));
                    return;
                }
                if self.stage_done(ctx) {
                    self.begin_delta(ctx);
                }
            }
            (State::Delta, Event::FlowCompleted { .. }) => {
                if !self.stage_done(ctx) {
                    return;
                }
                self.begin_ack(ctx);
            }
            (State::Ack, Event::ChildDone { value, .. }) => {
                if let Value::Error(e) = value {
                    self.finish_traced(ctx, Value::Error(e));
                    return;
                }
                if !self.stage_done(ctx) {
                    return;
                }
                // The content has fully arrived: the relay now owns these
                // chunks and will dedup them for every future sender.
                if let Some((store, manifest)) = &self.cache {
                    store.borrow_mut().admit(manifest);
                }
                let elapsed = ctx.now().saturating_sub(self.started);
                self.finish_traced(ctx, Value::Time(elapsed));
            }
            (_, Event::Timer { tag: TIMER_RETRY }) => match self.state {
                State::Handshake => self.begin_handshake(ctx),
                State::Delta => self.begin_delta(ctx),
                State::Ack => self.begin_ack(ctx),
                State::Idle => {}
            },
            (_, Event::FlowFailed { error, .. }) => self.finish_traced(ctx, Value::Error(error)),
            _ => {}
        }
    }

    fn name(&self) -> &'static str {
        "rsync-leg"
    }

    fn abort(&mut self, ctx: &mut Ctx<'_>) {
        // Abandoned by a failing relay above us: close the leg span so
        // traces stay balanced (no-op when telemetry is disabled).
        let t = ctx.now().as_nanos();
        ctx.telemetry().span_end(t, self.span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::geo::GeoPoint;
    use netsim::prelude::*;
    use netsim::units::MB;
    use transfer::FileGen;

    fn pair(mbps: f64) -> (Sim, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let a = b.host("user", GeoPoint::new(49.26, -123.25));
        let d = b.host("dtn", GeoPoint::new(53.52, -113.53));
        b.duplex(
            a,
            d,
            LinkParams::new(Bandwidth::from_mbps(mbps), SimTime::from_millis(8)),
        );
        (Sim::new(b.build(), 3), a, d)
    }

    #[test]
    fn fresh_leg_time_tracks_file_size() {
        let (mut sim, a, d) = pair(42.0); // ~5.25 MB/s: 100 MB ≈ 19 s (paper's UBC→UAlberta)
        let v = sim
            .run_process(Box::new(RsyncLeg::fresh(
                a,
                d,
                100 * MB,
                FlowClass::Research,
            )))
            .unwrap();
        let s = v.expect_time().as_secs_f64();
        assert!((19.0..22.0).contains(&s), "UBC→UAlberta-like leg took {s}");
    }

    #[test]
    fn delta_plan_is_faster_than_fresh() {
        let g = FileGen::new(1);
        let basis = g.random_file(20 * MB as usize);
        let target = g.similar_file(&basis, 4, 0);
        let delta_plan = RsyncWirePlan::exact(&basis, &target, 2048);
        let (mut sim, a, d) = pair(8.0);
        let with_delta = sim
            .run_process(Box::new(RsyncLeg::new(
                a,
                d,
                delta_plan,
                FlowClass::Research,
            )))
            .unwrap()
            .expect_time();
        let (mut sim2, a2, d2) = pair(8.0);
        let fresh = sim2
            .run_process(Box::new(RsyncLeg::fresh(
                a2,
                d2,
                target.len() as u64,
                FlowClass::Research,
            )))
            .unwrap()
            .expect_time();
        assert!(
            with_delta < fresh / 2,
            "delta {with_delta} should be far below fresh {fresh}"
        );
    }

    #[test]
    fn chunk_cache_shrinks_second_identical_leg() {
        use crate::chunkstore::ChunkStore;
        use transfer::{ChunkManifest, DEFAULT_CHUNK_SIZE};
        let data = FileGen::new(9).random_file(4 * MB as usize);
        let manifest = ChunkManifest::of(&data, DEFAULT_CHUNK_SIZE);
        let plan = RsyncWirePlan::fresh(data.len() as u64);
        let store = Rc::new(RefCell::new(ChunkStore::new(64 * MB)));

        // Cold: nothing resident, the whole file ships (and is admitted).
        let (mut sim, a, d) = pair(8.0);
        let cold = sim
            .run_process(Box::new(
                RsyncLeg::new(a, d, plan, FlowClass::Research)
                    .with_chunk_cache(Rc::clone(&store), manifest.clone()),
            ))
            .unwrap()
            .expect_time();

        // Warm: a different user uploads identical content through the same
        // relay — only the manifest crosses the forward leg.
        let (mut sim2, a2, d2) = pair(8.0);
        let warm = sim2
            .run_process(Box::new(
                RsyncLeg::new(a2, d2, plan, FlowClass::Research)
                    .with_chunk_cache(Rc::clone(&store), manifest.clone()),
            ))
            .unwrap()
            .expect_time();
        assert!(
            warm.as_nanos() * 10 < cold.as_nanos(),
            "warm {warm} should crush cold {cold}"
        );
        let st = store.borrow().stats();
        assert_eq!(st.admitted, manifest.chunk_count() as u64);
        assert_eq!(st.hits, manifest.chunk_count() as u64);
    }

    #[test]
    fn leg_error_propagates() {
        // No route: only reverse direction exists.
        let mut b = TopologyBuilder::new();
        let a = b.host("user", GeoPoint::new(0.0, 0.0));
        let d = b.host("dtn", GeoPoint::new(1.0, 1.0));
        b.simplex(
            d,
            a,
            LinkParams::new(Bandwidth::from_mbps(1.0), SimTime::from_millis(1)),
        );
        let mut sim = Sim::new(b.build(), 1);
        let v = sim
            .run_process(Box::new(RsyncLeg::fresh(a, d, MB, FlowClass::Research)))
            .unwrap();
        assert!(matches!(v, Value::Error(NetError::NoRoute { .. })));
    }

    #[test]
    fn flaky_leg_retries_and_succeeds() {
        let (mut sim, a, d) = pair(42.0);
        let v = sim
            .run_process(Box::new(
                RsyncLeg::fresh(a, d, 100 * MB, FlowClass::Research)
                    .with_faults(FaultPlan::flaky()),
            ))
            .unwrap();
        let flaky = v.expect_time().as_secs_f64();
        let (mut sim2, a2, d2) = pair(42.0);
        let clean = sim2
            .run_process(Box::new(RsyncLeg::fresh(
                a2,
                d2,
                100 * MB,
                FlowClass::Research,
            )))
            .unwrap()
            .expect_time()
            .as_secs_f64();
        // Faulty legs can only be slower, never faster, and still finish.
        assert!(flaky >= clean, "flaky {flaky} vs clean {clean}");
    }

    #[test]
    fn hopeless_throttling_leg_terminates() {
        let (mut sim, a, d) = pair(42.0);
        let mut faults = FaultPlan::none();
        faults.throttle_prob = 1.0;
        let v = sim
            .run_process(Box::new(
                RsyncLeg::fresh(a, d, MB, FlowClass::Research).with_faults(faults),
            ))
            .unwrap();
        assert!(
            matches!(v, Value::Error(NetError::RetryBudgetExhausted { .. })),
            "expected budget exhaustion, got {v:?}"
        );
    }

    #[test]
    fn hopeless_transient_leg_terminates() {
        let (mut sim, a, d) = pair(42.0);
        let mut faults = FaultPlan::none();
        faults.transient_prob = 1.0;
        let v = sim
            .run_process(Box::new(
                RsyncLeg::fresh(a, d, MB, FlowClass::Research).with_faults(faults),
            ))
            .unwrap();
        // Per-stage max_retries trips before the session budget.
        assert!(
            matches!(v, Value::Error(NetError::Blocked { .. })),
            "expected blocked after max retries, got {v:?}"
        );
    }

    #[test]
    fn leg_deadline_enforced() {
        let (mut sim, a, d) = pair(42.0);
        let faults = FaultPlan::flaky();
        let policy = RetryPolicy::from_plan(&faults).with_deadline(SimTime::from_millis(1));
        // 1 ms deadline: the first fault of any kind trips it; a fault-free
        // run (possible at 10%) completes instead, so force faults hard.
        let mut hard = faults;
        hard.transient_prob = 1.0;
        hard.throttle_prob = 0.0;
        let v = sim
            .run_process(Box::new(
                RsyncLeg::fresh(a, d, MB, FlowClass::Research)
                    .with_faults(hard)
                    .with_retry(policy),
            ))
            .unwrap();
        assert!(
            matches!(v, Value::Error(NetError::DeadlineExceeded { .. })),
            "expected deadline exceeded, got {v:?}"
        );
    }
}
