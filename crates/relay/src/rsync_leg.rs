//! One rsync hop between two hosts on the simulated WAN.
//!
//! Wire behaviour follows the real protocol: a handshake exchange whose
//! response carries the receiver's block signatures, a forward flow carrying
//! the delta (for the paper's deleted-before-each-run workload this is the
//! whole file plus ~50 bytes), and a final acknowledgement.

use netsim::engine::{Ctx, Event, Process, ProcessId, Value};
use netsim::flow::{FlowClass, FlowSpec};
use netsim::rpc::{Rpc, RpcSpec};
use netsim::time::SimTime;
use netsim::topology::NodeId;
use obs::{Category, SpanId};
use transfer::RsyncWirePlan;

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Idle,
    Handshake,
    Delta,
    Ack,
}

/// A process performing one rsync transfer; finishes with
/// `Value::Time(elapsed)`.
pub struct RsyncLeg {
    src: NodeId,
    dst: NodeId,
    plan: RsyncWirePlan,
    class: FlowClass,
    state: State,
    started: SimTime,
    pending: Option<ProcessId>,
    span: SpanId,
    parent_span: SpanId,
}

impl RsyncLeg {
    /// A leg moving `plan` between two hosts.
    pub fn new(src: NodeId, dst: NodeId, plan: RsyncWirePlan, class: FlowClass) -> Self {
        RsyncLeg {
            src,
            dst,
            plan,
            class,
            state: State::Idle,
            started: SimTime::ZERO,
            pending: None,
            span: SpanId::NONE,
            parent_span: SpanId::NONE,
        }
    }

    /// The paper's workload: the destination's copy was deleted, so the
    /// whole file crosses the wire.
    pub fn fresh(src: NodeId, dst: NodeId, bytes: u64, class: FlowClass) -> Self {
        Self::new(src, dst, RsyncWirePlan::fresh(bytes), class)
    }

    /// Nest this leg's telemetry span under `parent` (e.g. a relay span).
    pub fn with_parent_span(mut self, parent: SpanId) -> Self {
        self.parent_span = parent;
        self
    }

    fn finish_traced(&mut self, ctx: &mut Ctx<'_>, v: Value) {
        let t = ctx.now().as_nanos();
        ctx.telemetry().span_end(t, self.span);
        ctx.finish(v);
    }
}

impl Process for RsyncLeg {
    fn poll(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match (self.state, ev) {
            (State::Idle, Event::Started) => {
                self.started = ctx.now();
                if ctx.telemetry().is_enabled() {
                    let (t, parent) = (ctx.now().as_nanos(), self.parent_span);
                    let (delta, src, dst) = (self.plan.delta_bytes, self.src, self.dst);
                    let topo = ctx.topology();
                    let (src_name, dst_name) =
                        (topo.node(src).name.clone(), topo.node(dst).name.clone());
                    self.span = ctx.telemetry().span_begin_with(
                        t,
                        Category::Relay,
                        "rsync-leg",
                        parent,
                        |a| {
                            a.set("src", src_name)
                                .set("dst", dst_name)
                                .set("delta_bytes", delta);
                        },
                    );
                }
                // Handshake request; the response carries the signatures.
                let spec = RpcSpec::control(self.src, self.dst, self.class)
                    .with_payload(self.plan.handshake_bytes, 256 + self.plan.signature_bytes)
                    .with_server_time(SimTime::from_millis(10))
                    .fresh()
                    .traced("rpc.handshake", self.span);
                self.state = State::Handshake;
                self.pending = Some(ctx.spawn(Box::new(Rpc::new(spec))));
            }
            (State::Handshake, Event::ChildDone { value, .. }) => {
                if let Value::Error(e) = value {
                    self.finish_traced(ctx, Value::Error(e));
                    return;
                }
                let spec = FlowSpec::new(self.src, self.dst, self.plan.delta_bytes, self.class)
                    .reuse_connection()
                    .with_parent_span(self.span);
                match ctx.start_flow(spec) {
                    Ok(_) => self.state = State::Delta,
                    Err(e) => self.finish_traced(ctx, Value::Error(e)),
                }
            }
            (State::Delta, Event::FlowCompleted { .. }) => {
                let spec = RpcSpec::control(self.src, self.dst, self.class)
                    .with_payload(64, self.plan.ack_bytes)
                    .with_server_time(SimTime::from_millis(5))
                    .traced("rpc.ack", self.span);
                self.state = State::Ack;
                self.pending = Some(ctx.spawn(Box::new(Rpc::new(spec))));
            }
            (State::Ack, Event::ChildDone { value, .. }) => {
                if let Value::Error(e) = value {
                    self.finish_traced(ctx, Value::Error(e));
                    return;
                }
                let elapsed = ctx.now().saturating_sub(self.started);
                self.finish_traced(ctx, Value::Time(elapsed));
            }
            (_, Event::FlowFailed { error, .. }) => self.finish_traced(ctx, Value::Error(error)),
            _ => {}
        }
    }

    fn name(&self) -> &'static str {
        "rsync-leg"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::geo::GeoPoint;
    use netsim::prelude::*;
    use netsim::units::MB;
    use transfer::FileGen;

    fn pair(mbps: f64) -> (Sim, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let a = b.host("user", GeoPoint::new(49.26, -123.25));
        let d = b.host("dtn", GeoPoint::new(53.52, -113.53));
        b.duplex(
            a,
            d,
            LinkParams::new(Bandwidth::from_mbps(mbps), SimTime::from_millis(8)),
        );
        (Sim::new(b.build(), 3), a, d)
    }

    #[test]
    fn fresh_leg_time_tracks_file_size() {
        let (mut sim, a, d) = pair(42.0); // ~5.25 MB/s: 100 MB ≈ 19 s (paper's UBC→UAlberta)
        let v = sim
            .run_process(Box::new(RsyncLeg::fresh(
                a,
                d,
                100 * MB,
                FlowClass::Research,
            )))
            .unwrap();
        let s = v.expect_time().as_secs_f64();
        assert!((19.0..22.0).contains(&s), "UBC→UAlberta-like leg took {s}");
    }

    #[test]
    fn delta_plan_is_faster_than_fresh() {
        let g = FileGen::new(1);
        let basis = g.random_file(20 * MB as usize);
        let target = g.similar_file(&basis, 4, 0);
        let delta_plan = RsyncWirePlan::exact(&basis, &target, 2048);
        let (mut sim, a, d) = pair(8.0);
        let with_delta = sim
            .run_process(Box::new(RsyncLeg::new(
                a,
                d,
                delta_plan,
                FlowClass::Research,
            )))
            .unwrap()
            .expect_time();
        let (mut sim2, a2, d2) = pair(8.0);
        let fresh = sim2
            .run_process(Box::new(RsyncLeg::fresh(
                a2,
                d2,
                target.len() as u64,
                FlowClass::Research,
            )))
            .unwrap()
            .expect_time();
        assert!(
            with_delta < fresh / 2,
            "delta {with_delta} should be far below fresh {fresh}"
        );
    }

    #[test]
    fn leg_error_propagates() {
        // No route: only reverse direction exists.
        let mut b = TopologyBuilder::new();
        let a = b.host("user", GeoPoint::new(0.0, 0.0));
        let d = b.host("dtn", GeoPoint::new(1.0, 1.0));
        b.simplex(
            d,
            a,
            LinkParams::new(Bandwidth::from_mbps(1.0), SimTime::from_millis(1)),
        );
        let mut sim = Sim::new(b.build(), 1);
        let v = sim
            .run_process(Box::new(RsyncLeg::fresh(a, d, MB, FlowClass::Research)))
            .unwrap();
        assert!(matches!(v, Value::Error(NetError::NoRoute { .. })));
    }
}
