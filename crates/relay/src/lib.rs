//! # relay — data-transfer-node (DTN) relaying
//!
//! The paper's mechanism: `rsync` the file from the user machine to an
//! *intermediate node*, then upload from there with the provider's API. The
//! total detour time is the **sum** of the two legs (store-and-forward) —
//! the paper's Fig. 1 and the `36 s = 17 + 19` arithmetic in its
//! introduction.
//!
//! * [`rsync_leg`] — one rsync hop over the simulated WAN, moving exactly
//!   the bytes the real rsync algorithm would (handshake, signatures,
//!   delta, ack — see `transfer::wire`).
//! * [`store_forward`] — the paper's detour: N rsync legs in series, then a
//!   cloud upload from the last DTN.
//! * [`pipeline`] — our extension (the paper's future-work direction):
//!   cut-through relaying that overlaps the two legs chunk by chunk,
//!   turning `t1 + t2` into roughly `max(t1, t2)`.
//! * [`report`] — per-leg timing breakdowns.
//! * [`chunkstore`] — a content-addressed chunk cache at the DTN: chunks
//!   seen from *any* user are never re-fetched, so forward legs shrink to
//!   the chunks the relay is missing.

pub mod chunkstore;
pub mod parallel;
pub mod pipeline;
pub mod report;
pub mod rsync_leg;
pub mod store_forward;

pub use chunkstore::{ChunkStats, ChunkStore, DedupPlan};
pub use parallel::{parallel_transfer, ParallelStreams};
pub use pipeline::PipelinedRelay;
pub use report::RelayReport;
pub use rsync_leg::RsyncLeg;
pub use store_forward::{
    detour_upload, detour_upload_sync, detour_upload_traced, StoreForwardRelay, SyncAttachment,
};
