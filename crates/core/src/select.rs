//! Automatic detour selection — the paper's declared future work.
//!
//! *"At this time, our case study only identifies the best detour, but we
//! have not implemented an automatic detour selection algorithm."* (§III-B)
//!
//! We implement three, plus the paper's own decision rule:
//!
//! * [`OracleSelector`] — measure every route with the full protocol and
//!   pick the lowest mean. This is what the authors did by hand; it is the
//!   gold standard and the most expensive.
//! * [`ProbeSelector`] — estimate each leg's attainable rate with the
//!   simulator's idle-path oracle (standing in for a short bandwidth probe,
//!   e.g. 1 MB), predict each route's time, pick the predicted winner.
//! * [`AdaptiveSelector`] — ε-greedy over sequential transfers with an EWMA
//!   per route; converges to the best route while still noticing changes.
//! * [`DecisionRule`] — the §III-B overlap rule: only trust a detour whose
//!   mean±σ interval is separated from the direct route's.

use crate::campaign::{Campaign, ClientSpec, SimFactory};
use crate::route::Route;
use cloudstore::Provider;
use measure::{OverlapVerdict, RunProtocol, Stats};
use netsim::error::NetError;
use netsim::flow::FlowClass;
use netsim::topology::NodeId;
use rand::rngs::SmallRng;
use rand::Rng;
use std::borrow::Cow;

/// A selector's verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteChoice {
    /// Index into the candidate route list.
    pub route_idx: usize,
    /// Predicted or measured seconds for the reference transfer.
    pub expected_secs: f64,
}

/// Gold standard: measure everything (what the paper did by hand).
pub struct OracleSelector {
    /// Protocol used for the measurements.
    pub protocol: RunProtocol,
}

impl OracleSelector {
    /// Measure all `routes` for `bytes` and choose the lowest mean.
    /// Returns the choice and the per-route stats (for reporting).
    ///
    /// Client, provider and routes are borrowed into the campaign and the
    /// winning cell is moved out of the result, so repeated selection
    /// never deep-clones the caller's specs.
    #[allow(clippy::too_many_arguments)]
    pub fn choose(
        &self,
        factory: &dyn SimFactory,
        client: &ClientSpec,
        provider: &Provider,
        routes: &[Route],
        bytes: u64,
        label: &str,
        threads: usize,
    ) -> Result<(RouteChoice, Vec<Stats>), NetError> {
        let campaign = Campaign {
            factory,
            client: Cow::Borrowed(client),
            provider: Cow::Borrowed(provider),
            routes: Cow::Borrowed(routes),
            sizes: vec![bytes],
            protocol: self.protocol,
            label: format!("oracle/{label}"),
            threads,
        };
        let mut result = campaign.run()?;
        let best = result.best_route_for(0);
        let stats: Vec<Stats> = result.cells.swap_remove(0);
        Ok((
            RouteChoice {
                route_idx: best,
                expected_secs: stats[best].mean,
            },
            stats,
        ))
    }
}

/// Probe-based predictor: cheap, uses per-leg rate estimates.
pub struct ProbeSelector {
    /// Fixed per-leg protocol overhead added to each predicted leg
    /// (handshakes, chunk round trips), seconds.
    pub per_leg_overhead_secs: f64,
}

impl Default for ProbeSelector {
    fn default() -> Self {
        ProbeSelector {
            per_leg_overhead_secs: 1.0,
        }
    }
}

impl ProbeSelector {
    /// Predict each route's transfer time from idle-path rate estimates and
    /// pick the minimum. `client_class` classifies the first leg; hop
    /// classes come from the route.
    pub fn choose(
        &self,
        sim: &mut netsim::engine::Sim,
        client: NodeId,
        client_class: FlowClass,
        provider: &Provider,
        routes: &[Route],
        bytes: u64,
    ) -> Result<RouteChoice, NetError> {
        assert!(!routes.is_empty());
        let mut best: Option<RouteChoice> = None;
        for (idx, route) in routes.iter().enumerate() {
            let secs = self.predict(sim, client, client_class, provider, route, bytes)?;
            if sim.telemetry().is_enabled() {
                let (t, label) = (sim.now_ns(), route.label());
                sim.telemetry().event(
                    t,
                    obs::Category::Control,
                    "selector.predicted",
                    obs::SpanId::NONE,
                    |a| {
                        a.set("route", label).set("predicted_secs", secs);
                    },
                );
            }
            if best
                .as_ref()
                .map(|b| secs < b.expected_secs)
                .unwrap_or(true)
            {
                best = Some(RouteChoice {
                    route_idx: idx,
                    expected_secs: secs,
                });
            }
        }
        let choice = best.expect("nonempty routes");
        if sim.telemetry().is_enabled() {
            let (t, label) = (sim.now_ns(), routes[choice.route_idx].label());
            let secs = choice.expected_secs;
            sim.telemetry().event(
                t,
                obs::Category::Control,
                "selector.chosen",
                obs::SpanId::NONE,
                |a| {
                    a.set("route", label).set("predicted_secs", secs);
                },
            );
        }
        Ok(choice)
    }

    /// Predicted seconds for one route.
    pub fn predict(
        &self,
        sim: &mut netsim::engine::Sim,
        client: NodeId,
        client_class: FlowClass,
        provider: &Provider,
        route: &Route,
        bytes: u64,
    ) -> Result<f64, NetError> {
        let frontend = provider.frontend_for(sim.core().topology(), client);
        match route {
            Route::Direct => {
                let rate = sim.core().idle_path_rate(client, frontend, client_class)?;
                Ok(bytes as f64 / rate.bytes_per_sec() + self.per_leg_overhead_secs)
            }
            Route::Via(hops) => {
                let mut total = 0.0;
                let mut from = client;
                let mut class = client_class;
                for hop in hops {
                    let rate = sim.core().idle_path_rate(from, hop.node, class)?;
                    total += bytes as f64 / rate.bytes_per_sec() + self.per_leg_overhead_secs;
                    from = hop.node;
                    class = hop.class;
                }
                let dtn_frontend = provider.frontend_for(sim.core().topology(), from);
                let rate = sim.core().idle_path_rate(from, dtn_frontend, class)?;
                total += bytes as f64 / rate.bytes_per_sec() + self.per_leg_overhead_secs;
                Ok(total)
            }
        }
    }
}

/// ε-greedy adaptive selector with per-route EWMA.
#[derive(Debug, Clone)]
pub struct AdaptiveSelector {
    /// Exploration probability.
    pub epsilon: f64,
    /// EWMA smoothing factor in (0, 1]: weight of the newest observation.
    pub alpha: f64,
    estimates: Vec<Option<f64>>,
}

impl AdaptiveSelector {
    /// Selector over `n_routes` candidates.
    pub fn new(n_routes: usize, epsilon: f64, alpha: f64) -> Self {
        assert!(n_routes > 0);
        assert!((0.0..=1.0).contains(&epsilon));
        assert!(alpha > 0.0 && alpha <= 1.0);
        AdaptiveSelector {
            epsilon,
            alpha,
            estimates: vec![None; n_routes],
        }
    }

    /// Pick the next route to use: unexplored routes first, then ε-greedy.
    pub fn next_route(&self, rng: &mut SmallRng) -> usize {
        if let Some(i) = self.estimates.iter().position(|e| e.is_none()) {
            return i;
        }
        if rng.gen::<f64>() < self.epsilon {
            rng.gen_range(0..self.estimates.len())
        } else {
            self.best_route()
        }
    }

    /// Record an observation for a route.
    pub fn record(&mut self, route_idx: usize, secs: f64) {
        assert!(secs.is_finite() && secs >= 0.0);
        let e = &mut self.estimates[route_idx];
        *e = Some(match *e {
            Some(prev) => prev * (1.0 - self.alpha) + secs * self.alpha,
            None => secs,
        });
    }

    /// Current best route (lowest EWMA; unexplored routes lose ties).
    pub fn best_route(&self) -> usize {
        self.estimates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let a = a.unwrap_or(f64::INFINITY);
                let b = b.unwrap_or(f64::INFINITY);
                a.partial_cmp(&b).expect("finite estimates")
            })
            .map(|(i, _)| i)
            .expect("nonempty")
    }

    /// Current estimate for a route.
    pub fn estimate(&self, route_idx: usize) -> Option<f64> {
        self.estimates[route_idx]
    }
}

/// Whether to act on a measured detour advantage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionRule {
    /// Pick the lower mean, full stop.
    MeanOnly,
    /// The paper's §III-B rule: only pick a detour whose mean±σ interval is
    /// separated from the direct route's ("Because of this significant
    /// overlap, we may not choose to rely on any detours").
    OverlapAware,
}

impl DecisionRule {
    /// Decide between direct and the best detour.
    /// Returns `true` when the detour should be used.
    pub fn prefer_detour(&self, direct: &Stats, detour: &Stats) -> bool {
        if detour.mean >= direct.mean {
            return false;
        }
        match self {
            DecisionRule::MeanOnly => true,
            DecisionRule::OverlapAware => {
                direct.overlap_1sigma(detour) == OverlapVerdict::Separated
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn stats(mean: f64, sd: f64) -> Stats {
        Stats {
            n: 5,
            mean,
            std_dev: sd,
            min: mean,
            max: mean,
        }
    }

    #[test]
    fn decision_rule_matches_paper_examples() {
        // Table IV, Dropbox 100 MB: direct 177.89±36.03 vs UAlberta
        // 237.78±56.1 — detour slower, never preferred.
        let direct = stats(177.89, 36.03);
        let ua = stats(237.78, 56.1);
        assert!(!DecisionRule::OverlapAware.prefer_detour(&direct, &ua));
        assert!(!DecisionRule::MeanOnly.prefer_detour(&direct, &ua));

        // Table IV, OneDrive 100 MB: direct 387.66±117.81 vs UMich
        // 197.21±58.19 — intervals [269.9, 505.5] and [139.0, 255.4] are
        // separated, so even the cautious rule takes the detour (and indeed
        // Table I's footnote marks via-UMich fastest for this cell).
        let direct = stats(387.66, 117.81);
        let umich = stats(197.21, 58.19);
        assert!(DecisionRule::MeanOnly.prefer_detour(&direct, &umich));
        assert!(DecisionRule::OverlapAware.prefer_detour(&direct, &umich));

        // Table IV, Dropbox 60 MB: direct 212.66±74.92 vs UAlberta
        // 174.54±50.16 — intervals [137.7, 287.6] and [124.4, 224.7]
        // overlap: MeanOnly takes the detour, the paper's rule refuses.
        let direct = stats(212.66, 74.92);
        let ua60 = stats(174.54, 50.16);
        assert!(DecisionRule::MeanOnly.prefer_detour(&direct, &ua60));
        assert!(!DecisionRule::OverlapAware.prefer_detour(&direct, &ua60));

        // Table II, 100 MB: direct 86.92 vs UAlberta 35.79 with tight
        // spreads — both rules take the detour.
        let direct = stats(86.92, 4.0);
        let ua = stats(35.79, 3.0);
        assert!(DecisionRule::OverlapAware.prefer_detour(&direct, &ua));
    }

    #[test]
    fn adaptive_explores_then_exploits() {
        let mut sel = AdaptiveSelector::new(3, 0.0, 0.5);
        let mut rng = SmallRng::seed_from_u64(1);
        // Unexplored routes are tried first, in order.
        assert_eq!(sel.next_route(&mut rng), 0);
        sel.record(0, 10.0);
        assert_eq!(sel.next_route(&mut rng), 1);
        sel.record(1, 5.0);
        assert_eq!(sel.next_route(&mut rng), 2);
        sel.record(2, 20.0);
        // With ε = 0, always the best.
        for _ in 0..10 {
            assert_eq!(sel.next_route(&mut rng), 1);
        }
    }

    #[test]
    fn adaptive_tracks_change() {
        let mut sel = AdaptiveSelector::new(2, 0.0, 0.5);
        sel.record(0, 5.0);
        sel.record(1, 10.0);
        assert_eq!(sel.best_route(), 0);
        // Route 0 degrades (congestion moved): EWMA follows.
        for _ in 0..6 {
            sel.record(0, 30.0);
        }
        assert_eq!(sel.best_route(), 1);
        assert!(sel.estimate(0).unwrap() > 25.0);
    }

    #[test]
    fn adaptive_epsilon_explores() {
        let mut sel = AdaptiveSelector::new(2, 1.0, 0.5);
        sel.record(0, 1.0);
        sel.record(1, 100.0);
        let mut rng = SmallRng::seed_from_u64(3);
        // ε = 1: uniformly random; both routes appear.
        let picks: std::collections::HashSet<usize> =
            (0..50).map(|_| sel.next_route(&mut rng)).collect();
        assert_eq!(picks.len(), 2);
    }

    #[test]
    #[should_panic]
    fn adaptive_rejects_bad_alpha() {
        AdaptiveSelector::new(2, 0.1, 0.0);
    }
}
