//! Route failover: try routes in preference order, fall back on failure.
//!
//! A deployed detour service cannot assume its DTN is reachable (campus
//! firewalls, PlanetLab slice expiry, maintenance). `upload_with_fallback`
//! executes the first route that works, charging the failed attempts'
//! wall-clock time to the same simulation — failure is not free.

use crate::job::{run_job, JobReport};
use crate::route::Route;
use cloudstore::{Provider, UploadOptions};
use netsim::engine::Sim;
use netsim::error::NetError;
use netsim::flow::FlowClass;
use netsim::topology::NodeId;

/// Outcome of a fallback upload.
#[derive(Debug, Clone)]
pub struct FallbackReport {
    /// The report of the route that eventually succeeded.
    pub report: JobReport,
    /// Index (into the candidate list) of the successful route.
    pub route_used: usize,
    /// Errors from the routes tried before it, in order.
    pub failures: Vec<NetError>,
}

/// Try `routes` in order until one completes.
///
/// All attempts run in the same simulation, so simulated time (and any
/// server-side throttling state) accumulates across failures, exactly as it
/// would for a real client retrying.
pub fn upload_with_fallback(
    sim: &mut Sim,
    client: NodeId,
    client_class: FlowClass,
    provider: &Provider,
    bytes: u64,
    routes: &[Route],
    opts: UploadOptions,
) -> Result<FallbackReport, NetError> {
    assert!(!routes.is_empty(), "no candidate routes");
    let mut failures = Vec::new();
    for (idx, route) in routes.iter().enumerate() {
        match run_job(sim, client, client_class, provider, bytes, route, opts) {
            Ok(report) => {
                if !failures.is_empty() {
                    let t = sim.now_ns();
                    let label = route.label();
                    let attempts = failures.len();
                    sim.telemetry().event(
                        t,
                        obs::Category::Control,
                        "failover.switched",
                        obs::SpanId::NONE,
                        |a| {
                            a.set("route", label).set("failed_attempts", attempts);
                        },
                    );
                    sim.telemetry().counter_add("core.failovers", 1);
                }
                return Ok(FallbackReport {
                    report,
                    route_used: idx,
                    failures,
                });
            }
            Err(e) => {
                let t = sim.now_ns();
                let label = route.label();
                let msg = e.to_string();
                sim.telemetry().event(
                    t,
                    obs::Category::Control,
                    "failover.route_failed",
                    obs::SpanId::NONE,
                    |a| {
                        a.set("route", label).set("error", msg);
                    },
                );
                failures.push(e)
            }
        }
    }
    Err(failures.pop().expect("at least one attempt failed"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::Hop;
    use cloudstore::ProviderKind;
    use netsim::geo::GeoPoint;
    use netsim::middlebox::FirewallRule;
    use netsim::prelude::*;
    use netsim::units::MB;

    /// user—pop works; user—dtn is firewalled for research-class traffic.
    fn world() -> (Sim, NodeId, NodeId, Provider) {
        let mut b = TopologyBuilder::new();
        let user = b.host("user", GeoPoint::new(49.0, -123.0));
        let dtn = b.host("dtn", GeoPoint::new(53.5, -113.5));
        let pop = b.datacenter("pop", GeoPoint::new(37.4, -122.1));
        let (fw_link, _) = b.duplex(
            user,
            dtn,
            LinkParams::new(Bandwidth::from_mbps(50.0), SimTime::from_millis(8)),
        );
        b.duplex(
            user,
            pop,
            LinkParams::new(Bandwidth::from_mbps(10.0), SimTime::from_millis(12)),
        );
        b.duplex(
            dtn,
            pop,
            LinkParams::new(Bandwidth::from_mbps(50.0), SimTime::from_millis(14)),
        );
        let mut sim = Sim::new(b.build(), 1);
        sim.add_firewall(FirewallRule::drop_class(
            "campus-fw",
            fw_link,
            FlowClass::Research,
        ));
        (
            sim,
            user,
            dtn,
            Provider::new(ProviderKind::GoogleDrive, pop),
        )
    }

    #[test]
    fn falls_back_to_direct_when_dtn_unreachable() {
        let (mut sim, user, dtn, provider) = world();
        let routes = vec![
            Route::via(Hop::new(dtn, FlowClass::Research, "DTN")),
            Route::Direct,
        ];
        let out = upload_with_fallback(
            &mut sim,
            user,
            FlowClass::Research,
            &provider,
            10 * MB,
            &routes,
            UploadOptions::warm(FlowClass::Research),
        )
        .expect("fallback works");
        assert_eq!(out.route_used, 1);
        assert_eq!(out.failures.len(), 1);
        assert!(matches!(out.failures[0], NetError::Blocked { .. }));
    }

    #[test]
    fn first_route_used_when_healthy() {
        let (mut sim, user, dtn, provider) = world();
        // Commodity-class traffic passes the firewall.
        let routes = vec![
            Route::via(Hop::new(dtn, FlowClass::Commodity, "DTN")),
            Route::Direct,
        ];
        let out = upload_with_fallback(
            &mut sim,
            user,
            FlowClass::Commodity,
            &provider,
            10 * MB,
            &routes,
            UploadOptions::warm(FlowClass::Commodity),
        )
        .expect("detour works");
        assert_eq!(out.route_used, 0);
        assert!(out.failures.is_empty());
    }

    #[test]
    fn all_routes_failing_reports_last_error() {
        let (mut sim, user, dtn, provider) = world();
        let routes = vec![Route::via(Hop::new(dtn, FlowClass::Research, "DTN"))];
        let err = upload_with_fallback(
            &mut sim,
            user,
            FlowClass::Research,
            &provider,
            MB,
            &routes,
            UploadOptions::warm(FlowClass::Research),
        )
        .unwrap_err();
        assert!(matches!(err, NetError::Blocked { .. }));
    }

    #[test]
    #[should_panic(expected = "no candidate routes")]
    fn empty_route_list_rejected() {
        let (mut sim, user, _, provider) = world();
        let _ = upload_with_fallback(
            &mut sim,
            user,
            FlowClass::Commodity,
            &provider,
            MB,
            &[],
            UploadOptions::default(),
        );
    }
}
