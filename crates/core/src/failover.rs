//! Route failover: try routes in preference order, fall back on failure.
//!
//! A deployed detour service cannot assume its DTN is reachable (campus
//! firewalls, PlanetLab slice expiry, maintenance). `upload_with_fallback`
//! executes the first route that works, charging the failed attempts'
//! wall-clock time to the same simulation — failure is not free.

use crate::job::{run_job, JobReport};
use crate::route::Route;
use cloudstore::{BreakerRegistry, BreakerTransition, Provider, UploadOptions};
use netsim::engine::Sim;
use netsim::error::NetError;
use netsim::flow::FlowClass;
use netsim::topology::NodeId;

/// Shared identity of the attempt: who is uploading what to whom. Stamped
/// onto every root-parented failover/breaker event so the health plane can
/// attribute them to a (vantage, provider, size-class) cell without a
/// surrounding job span.
#[derive(Clone)]
struct AttemptTag {
    vantage: String,
    provider: &'static str,
    bytes: u64,
}

impl AttemptTag {
    fn new(sim: &mut Sim, client: NodeId, provider: &Provider, bytes: u64) -> Self {
        AttemptTag {
            vantage: sim.core().topology().node(client).name.clone(),
            provider: provider.kind.display_name(),
            bytes,
        }
    }

    fn stamp(&self, a: &mut obs::Args) {
        a.set("vantage", self.vantage.clone())
            .set("provider", self.provider)
            .set("bytes", self.bytes);
    }
}

/// Emit the breaker state-change event (and counter) for a transition
/// reported by the registry, if any.
fn note_breaker_transition(
    sim: &mut Sim,
    transition: BreakerTransition,
    key: NodeId,
    tag: &AttemptTag,
) {
    let (name, counter) = match transition {
        BreakerTransition::None => return,
        BreakerTransition::Tripped => ("breaker.trip", "core.breaker.trips"),
        BreakerTransition::Closed => ("breaker.close", "core.breaker.closes"),
    };
    let t = sim.now_ns();
    let target = key.to_string();
    let tag = tag.clone();
    sim.telemetry()
        .event(t, obs::Category::Control, name, obs::SpanId::NONE, |a| {
            a.set("target", target);
            tag.stamp(a);
        });
    sim.telemetry().counter_add(counter, 1);
}

/// Outcome of a fallback upload.
#[derive(Debug, Clone)]
pub struct FallbackReport {
    /// The report of the route that eventually succeeded.
    pub report: JobReport,
    /// Index (into the candidate list) of the successful route.
    pub route_used: usize,
    /// Errors from the routes tried before it, in order.
    pub failures: Vec<NetError>,
}

/// Try `routes` in order until one completes.
///
/// All attempts run in the same simulation, so simulated time (and any
/// server-side throttling state) accumulates across failures, exactly as it
/// would for a real client retrying.
pub fn upload_with_fallback(
    sim: &mut Sim,
    client: NodeId,
    client_class: FlowClass,
    provider: &Provider,
    bytes: u64,
    routes: &[Route],
    opts: UploadOptions,
) -> Result<FallbackReport, NetError> {
    assert!(!routes.is_empty(), "no candidate routes");
    let tag = AttemptTag::new(sim, client, provider, bytes);
    let mut failures = Vec::new();
    for (idx, route) in routes.iter().enumerate() {
        match run_job(sim, client, client_class, provider, bytes, route, opts) {
            Ok(report) => {
                if !failures.is_empty() {
                    let t = sim.now_ns();
                    let label = route.label();
                    let attempts = failures.len();
                    let tag = tag.clone();
                    sim.telemetry().event(
                        t,
                        obs::Category::Control,
                        "failover.switched",
                        obs::SpanId::NONE,
                        |a| {
                            a.set("route", label).set("failed_attempts", attempts);
                            tag.stamp(a);
                        },
                    );
                    sim.telemetry().counter_add("core.failover.switches", 1);
                }
                return Ok(FallbackReport {
                    report,
                    route_used: idx,
                    failures,
                });
            }
            Err(e) => {
                let t = sim.now_ns();
                let label = route.label();
                let msg = e.to_string();
                let tag = tag.clone();
                sim.telemetry().event(
                    t,
                    obs::Category::Control,
                    "failover.route_failed",
                    obs::SpanId::NONE,
                    |a| {
                        a.set("route", label).set("error", msg);
                        tag.stamp(a);
                    },
                );
                failures.push(e)
            }
        }
    }
    assert!(
        !failures.is_empty(),
        "at least one attempt must have failed"
    );
    Err(NetError::AllRoutesFailed { errors: failures })
}

/// The node whose health a route's circuit breaker tracks: the provider
/// frontend for a direct upload, the last DTN (the node that talks to the
/// provider) for a detour.
fn breaker_key(route: &Route, sim: &mut Sim, client: NodeId, provider: &Provider) -> NodeId {
    match route {
        Route::Direct => provider.frontend_for(sim.core().topology(), client),
        Route::Via(hops) => hops.last().expect("detours have hops").node,
    }
}

/// [`upload_with_fallback`] with per-target circuit breakers.
///
/// Routes whose breaker is open are skipped outright (recorded in
/// `failures` as [`NetError::Blocked`] without spending any simulated
/// time); each attempted route feeds its outcome back into the registry,
/// so repeated campaigns learn which targets are down and stop hammering
/// them until the cooldown expires.
#[allow(clippy::too_many_arguments)]
pub fn upload_with_fallback_breakers(
    sim: &mut Sim,
    client: NodeId,
    client_class: FlowClass,
    provider: &Provider,
    bytes: u64,
    routes: &[Route],
    opts: UploadOptions,
    breakers: &BreakerRegistry,
) -> Result<FallbackReport, NetError> {
    assert!(!routes.is_empty(), "no candidate routes");
    let tag = AttemptTag::new(sim, client, provider, bytes);
    let mut failures = Vec::new();
    for (idx, route) in routes.iter().enumerate() {
        let key = breaker_key(route, sim, client, provider);
        if !breakers.allow(key, sim.now()) {
            let t = sim.now_ns();
            let label = route.label();
            let tag_ev = tag.clone();
            sim.telemetry().event(
                t,
                obs::Category::Control,
                "failover.breaker_skip",
                obs::SpanId::NONE,
                |a| {
                    a.set("route", label).set("target", key.to_string());
                    tag_ev.stamp(a);
                },
            );
            sim.telemetry()
                .counter_add("core.failover.breaker_skips", 1);
            failures.push(NetError::Blocked {
                at: key,
                reason: "circuit breaker open",
            });
            continue;
        }
        match run_job(sim, client, client_class, provider, bytes, route, opts) {
            Ok(report) => {
                let transition = breakers.record_success(key);
                note_breaker_transition(sim, transition, key, &tag);
                if !failures.is_empty() {
                    let t = sim.now_ns();
                    let label = route.label();
                    let attempts = failures.len();
                    let tag_ev = tag.clone();
                    sim.telemetry().event(
                        t,
                        obs::Category::Control,
                        "failover.switched",
                        obs::SpanId::NONE,
                        |a| {
                            a.set("route", label).set("failed_attempts", attempts);
                            tag_ev.stamp(a);
                        },
                    );
                    sim.telemetry().counter_add("core.failover.switches", 1);
                }
                return Ok(FallbackReport {
                    report,
                    route_used: idx,
                    failures,
                });
            }
            Err(e) => {
                let transition = breakers.record_failure(key, sim.now());
                note_breaker_transition(sim, transition, key, &tag);
                let t = sim.now_ns();
                let label = route.label();
                let msg = e.to_string();
                let tag_ev = tag.clone();
                sim.telemetry().event(
                    t,
                    obs::Category::Control,
                    "failover.route_failed",
                    obs::SpanId::NONE,
                    |a| {
                        a.set("route", label).set("error", msg);
                        tag_ev.stamp(a);
                    },
                );
                failures.push(e)
            }
        }
    }
    assert!(
        !failures.is_empty(),
        "at least one attempt must have failed"
    );
    Err(NetError::AllRoutesFailed { errors: failures })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::Hop;
    use cloudstore::ProviderKind;
    use netsim::geo::GeoPoint;
    use netsim::middlebox::FirewallRule;
    use netsim::prelude::*;
    use netsim::units::MB;

    /// user—pop works; user—dtn is firewalled for research-class traffic.
    fn world() -> (Sim, NodeId, NodeId, Provider) {
        let mut b = TopologyBuilder::new();
        let user = b.host("user", GeoPoint::new(49.0, -123.0));
        let dtn = b.host("dtn", GeoPoint::new(53.5, -113.5));
        let pop = b.datacenter("pop", GeoPoint::new(37.4, -122.1));
        let (fw_link, _) = b.duplex(
            user,
            dtn,
            LinkParams::new(Bandwidth::from_mbps(50.0), SimTime::from_millis(8)),
        );
        b.duplex(
            user,
            pop,
            LinkParams::new(Bandwidth::from_mbps(10.0), SimTime::from_millis(12)),
        );
        b.duplex(
            dtn,
            pop,
            LinkParams::new(Bandwidth::from_mbps(50.0), SimTime::from_millis(14)),
        );
        let mut sim = Sim::new(b.build(), 1);
        sim.add_firewall(FirewallRule::drop_class(
            "campus-fw",
            fw_link,
            FlowClass::Research,
        ));
        (
            sim,
            user,
            dtn,
            Provider::new(ProviderKind::GoogleDrive, pop),
        )
    }

    #[test]
    fn falls_back_to_direct_when_dtn_unreachable() {
        let (mut sim, user, dtn, provider) = world();
        let routes = vec![
            Route::via(Hop::new(dtn, FlowClass::Research, "DTN")),
            Route::Direct,
        ];
        let out = upload_with_fallback(
            &mut sim,
            user,
            FlowClass::Research,
            &provider,
            10 * MB,
            &routes,
            UploadOptions::warm(FlowClass::Research),
        )
        .expect("fallback works");
        assert_eq!(out.route_used, 1);
        assert_eq!(out.failures.len(), 1);
        assert!(matches!(out.failures[0], NetError::Blocked { .. }));
    }

    #[test]
    fn first_route_used_when_healthy() {
        let (mut sim, user, dtn, provider) = world();
        // Commodity-class traffic passes the firewall.
        let routes = vec![
            Route::via(Hop::new(dtn, FlowClass::Commodity, "DTN")),
            Route::Direct,
        ];
        let out = upload_with_fallback(
            &mut sim,
            user,
            FlowClass::Commodity,
            &provider,
            10 * MB,
            &routes,
            UploadOptions::warm(FlowClass::Commodity),
        )
        .expect("detour works");
        assert_eq!(out.route_used, 0);
        assert!(out.failures.is_empty());
    }

    #[test]
    fn all_routes_failing_reports_every_error() {
        let (mut sim, user, dtn, provider) = world();
        // Two distinct detours through the same firewalled DTN: both fail,
        // and the caller should see both errors, not just the last one.
        let routes = vec![
            Route::via(Hop::new(dtn, FlowClass::Research, "DTN-a")),
            Route::via(Hop::new(dtn, FlowClass::Research, "DTN-b")),
        ];
        let err = upload_with_fallback(
            &mut sim,
            user,
            FlowClass::Research,
            &provider,
            MB,
            &routes,
            UploadOptions::warm(FlowClass::Research),
        )
        .unwrap_err();
        match err {
            NetError::AllRoutesFailed { errors } => {
                assert_eq!(errors.len(), 2, "one error per failed route");
                assert!(errors.iter().all(|e| matches!(e, NetError::Blocked { .. })));
            }
            other => panic!("expected AllRoutesFailed, got {other}"),
        }
    }

    #[test]
    fn open_breaker_skips_route_without_spending_time() {
        let (mut sim, user, dtn, provider) = world();
        let breakers = cloudstore::BreakerRegistry::default();
        let routes = vec![
            Route::via(Hop::new(dtn, FlowClass::Research, "DTN")),
            Route::Direct,
        ];
        // Trip the DTN's breaker: three straight failures.
        for _ in 0..3 {
            let _ = upload_with_fallback_breakers(
                &mut sim,
                user,
                FlowClass::Research,
                &provider,
                MB,
                &routes[..1],
                UploadOptions::warm(FlowClass::Research),
                &breakers,
            );
        }
        assert!(breakers.is_open(dtn, sim.now()), "breaker should be open");
        let before = sim.now();
        let out = upload_with_fallback_breakers(
            &mut sim,
            user,
            FlowClass::Research,
            &provider,
            10 * MB,
            &routes,
            UploadOptions::warm(FlowClass::Research),
            &breakers,
        )
        .expect("direct route still works");
        assert_eq!(out.route_used, 1);
        assert_eq!(out.failures.len(), 1);
        assert!(
            matches!(
                out.failures[0],
                NetError::Blocked {
                    reason: "circuit breaker open",
                    ..
                }
            ),
            "skip should be recorded as a breaker block: {:?}",
            out.failures[0]
        );
        // The skip itself must be free: only the direct upload spent time.
        assert_eq!(sim.now().saturating_sub(before), out.report.elapsed);
    }

    #[test]
    fn breaker_reprobes_after_cooldown() {
        let (sim, _user, dtn, _provider) = world();
        let breakers = cloudstore::BreakerRegistry::default();
        for _ in 0..3 {
            breakers.record_failure(dtn, sim.now());
        }
        assert!(!breakers.allow(dtn, sim.now()));
        // After the cooldown the breaker half-opens and allows one probe.
        let later = sim.now() + cloudstore::resilience::DEFAULT_BREAKER_COOLDOWN;
        assert!(breakers.allow(dtn, later), "half-open probe allowed");
        breakers.record_success(dtn);
        assert!(!breakers.is_open(dtn, later), "success closes the breaker");
    }

    #[test]
    #[should_panic(expected = "no candidate routes")]
    fn empty_route_list_rejected() {
        let (mut sim, user, _, provider) = world();
        let _ = upload_with_fallback(
            &mut sim,
            user,
            FlowClass::Commodity,
            &provider,
            MB,
            &[],
            UploadOptions::default(),
        );
    }
}
