//! Dynamic route monitoring — the paper's closing future-work item:
//! *"to monitor and bypass dynamic bottlenecks on the WAN"*.
//!
//! [`RouteMonitor`] is a simulation process that lives alongside real
//! traffic: every `interval` it sends a small probe down each leg of every
//! candidate route, converts the observed probe rates into a predicted
//! transfer time for a reference file size, smooths with an EWMA and
//! records which route currently wins. Because background congestion in the
//! simulator is bursty (Markov-modulated), the recorded choice timeline
//! shows the monitor switching routes as bottlenecks move — the behaviour a
//! deployed detour service would need.

use cloudstore::{BreakerRegistry, BreakerTransition};
use netsim::engine::{Ctx, Event, Process, Value};
use netsim::flow::{FlowClass, FlowSpec};
use netsim::time::SimTime;
use netsim::topology::NodeId;

/// One probe-able leg: src → dst with the sender's traffic class.
#[derive(Debug, Clone, Copy)]
pub struct ProbeLeg {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Sender's class (probes must receive the same policer treatment as
    /// real traffic from that host).
    pub class: FlowClass,
}

/// Monitor configuration.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Candidate routes, each a sequence of legs ending at the provider.
    pub routes: Vec<Vec<ProbeLeg>>,
    /// Probe size (small; the paper's probes would be ~1 MB).
    pub probe_bytes: u64,
    /// Reference file size used to turn rates into predicted times.
    pub reference_bytes: u64,
    /// Time between probing rounds.
    pub interval: SimTime,
    /// Number of probing rounds.
    pub epochs: usize,
    /// EWMA weight of the newest prediction.
    pub alpha: f64,
}

/// What the monitor saw at the end of one probing epoch, handed to an
/// [`EpochObserver`]. This is the invalidation feed for decision caches:
/// `changed` flags the epochs where serving yesterday's route would now be
/// wrong, which is exactly when a cache generation should be bumped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochObservation {
    /// Epoch index, `0..cfg.epochs`.
    pub epoch: usize,
    /// Winning route index this epoch.
    pub winner: usize,
    /// Whether the winner differs from the previous epoch's (the first
    /// epoch counts as changed: there was no prior winner to serve).
    pub changed: bool,
    /// The winner's EWMA-predicted seconds for the reference transfer.
    pub predicted_secs: f64,
    /// Simulation time the epoch completed.
    pub at: SimTime,
}

/// Callback invoked once per completed epoch.
pub type EpochObserver = Box<dyn FnMut(EpochObservation)>;

/// The monitoring process. Finishes with `Value::List` of the chosen route
/// index per epoch.
pub struct RouteMonitor {
    cfg: MonitorConfig,
    estimates: Vec<Option<f64>>,
    choices: Vec<u64>,
    route_idx: usize,
    leg_idx: usize,
    epoch_pred: f64,
    /// Shared circuit breakers plus one gating target per route (the DTN
    /// for a detour, the provider frontend for a direct route).
    breakers: Option<(BreakerRegistry, Vec<NodeId>)>,
    skipped_by_breaker: bool,
    observer: Option<EpochObserver>,
}

const EPOCH_TIMER: u64 = 0x4d4f4e; // "MON"

impl RouteMonitor {
    /// Build from a configuration.
    pub fn new(cfg: MonitorConfig) -> Self {
        assert!(!cfg.routes.is_empty(), "no routes to monitor");
        assert!(
            cfg.routes.iter().all(|r| !r.is_empty()),
            "route without legs"
        );
        assert!(cfg.epochs > 0 && cfg.probe_bytes > 0 && cfg.reference_bytes > 0);
        assert!(cfg.alpha > 0.0 && cfg.alpha <= 1.0);
        let n = cfg.routes.len();
        RouteMonitor {
            cfg,
            estimates: vec![None; n],
            choices: Vec::new(),
            route_idx: 0,
            leg_idx: 0,
            epoch_pred: 0.0,
            breakers: None,
            skipped_by_breaker: false,
            observer: None,
        }
    }

    /// Attach a per-epoch observer. Route caches hang their invalidation
    /// off this: bump the affected key range when `changed` is set.
    pub fn with_observer(mut self, f: impl FnMut(EpochObservation) + 'static) -> Self {
        self.observer = Some(Box::new(f));
        self
    }

    /// Share circuit breakers with the transfer plane: routes whose
    /// target's breaker is open are not probed (their estimate is poisoned
    /// for the epoch), and probe outcomes feed back into the registry —
    /// the monitor doubles as the half-open prober.
    ///
    /// `targets` gives the gating node per route and must be parallel to
    /// `cfg.routes`.
    pub fn with_breakers(mut self, registry: BreakerRegistry, targets: Vec<NodeId>) -> Self {
        assert_eq!(
            targets.len(),
            self.cfg.routes.len(),
            "one breaker target per route"
        );
        self.breakers = Some((registry, targets));
        self
    }

    fn probe_current_leg(&mut self, ctx: &mut Ctx<'_>) {
        if self.leg_idx == 0 {
            if let Some((reg, targets)) = self.breakers.clone() {
                let target = targets[self.route_idx];
                if !reg.allow(target, ctx.now()) {
                    ctx.telemetry().counter_add("core.monitor.breaker_skips", 1);
                    self.skipped_by_breaker = true;
                    self.epoch_pred = f64::INFINITY;
                    // Jump to the fold without probing any leg.
                    self.leg_idx = self.cfg.routes[self.route_idx].len() - 1;
                    self.advance(ctx, None);
                    return;
                }
            }
        }
        let leg = self.cfg.routes[self.route_idx][self.leg_idx];
        let spec = FlowSpec::new(leg.src, leg.dst, self.cfg.probe_bytes, leg.class);
        if ctx.start_flow(spec).is_err() {
            // Unroutable leg: poison this route's estimate and move on.
            self.epoch_pred = f64::INFINITY;
            self.advance(ctx, None);
        }
    }

    fn advance(&mut self, ctx: &mut Ctx<'_>, probe_elapsed: Option<SimTime>) {
        if let Some(elapsed) = probe_elapsed {
            let rate = self.cfg.probe_bytes as f64 / elapsed.as_secs_f64().max(1e-9);
            self.epoch_pred += self.cfg.reference_bytes as f64 / rate;
        }
        self.leg_idx += 1;
        if self.leg_idx < self.cfg.routes[self.route_idx].len() {
            self.probe_current_leg(ctx);
            return;
        }
        // Route finished: publish the observation so the health plane sees
        // probing activity even when no transfer is in flight.
        if !self.skipped_by_breaker {
            let t = ctx.now().as_nanos();
            let route = self.route_idx;
            let predicted = self.epoch_pred;
            ctx.telemetry().event(
                t,
                obs::Category::Control,
                "monitor.probe",
                obs::SpanId::NONE,
                |a| {
                    a.set("route", route).set("predicted_secs", predicted);
                },
            );
            ctx.telemetry().counter_add("core.monitor.probes", 1);
        }
        // Feed the outcome into the breaker (skips don't count — an open
        // breaker must not extend its own cooldown) and surface any state
        // change as a breaker.trip/close event.
        if let Some((reg, targets)) = self.breakers.clone() {
            let target = targets[self.route_idx];
            if !self.skipped_by_breaker {
                let transition = if self.epoch_pred.is_finite() {
                    reg.record_success(target)
                } else {
                    reg.record_failure(target, ctx.now())
                };
                let named = match transition {
                    BreakerTransition::None => None,
                    BreakerTransition::Tripped => Some(("breaker.trip", "core.breaker.trips")),
                    BreakerTransition::Closed => Some(("breaker.close", "core.breaker.closes")),
                };
                if let Some((event, counter)) = named {
                    let t = ctx.now().as_nanos();
                    ctx.telemetry().event(
                        t,
                        obs::Category::Control,
                        event,
                        obs::SpanId::NONE,
                        |a| {
                            a.set("target", target.to_string());
                        },
                    );
                    ctx.telemetry().counter_add(counter, 1);
                }
            }
        }
        self.skipped_by_breaker = false;
        // Fold into the EWMA.
        let e = &mut self.estimates[self.route_idx];
        *e = Some(match *e {
            Some(prev) if self.epoch_pred.is_finite() => {
                prev * (1.0 - self.cfg.alpha) + self.epoch_pred * self.cfg.alpha
            }
            _ => self.epoch_pred,
        });
        self.route_idx += 1;
        self.leg_idx = 0;
        self.epoch_pred = 0.0;
        if self.route_idx < self.cfg.routes.len() {
            self.probe_current_leg(ctx);
            return;
        }
        // Epoch complete: record the winner.
        let best = self
            .estimates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.unwrap_or(f64::INFINITY)
                    .partial_cmp(&b.unwrap_or(f64::INFINITY))
                    .expect("no NaN estimates")
            })
            .map(|(i, _)| i as u64)
            .expect("nonempty");
        let changed = self
            .choices
            .last()
            .map(|&prev| prev != best)
            .unwrap_or(true);
        self.choices.push(best);
        if let Some(observer) = &mut self.observer {
            observer(EpochObservation {
                epoch: self.choices.len() - 1,
                winner: best as usize,
                changed,
                predicted_secs: self.estimates[best as usize].unwrap_or(f64::INFINITY),
                at: ctx.now(),
            });
        }
        if self.choices.len() >= self.cfg.epochs {
            ctx.finish(Value::List(
                self.choices.iter().map(|&c| Value::U64(c)).collect(),
            ));
        } else {
            ctx.set_timer(self.cfg.interval, EPOCH_TIMER);
        }
    }

    /// Decode the monitor's result value into per-epoch choices.
    pub fn decode_choices(v: &Value) -> Vec<usize> {
        v.expect_list()
            .iter()
            .map(|x| x.expect_u64() as usize)
            .collect()
    }
}

impl Process for RouteMonitor {
    fn poll(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Started => {
                self.route_idx = 0;
                self.leg_idx = 0;
                self.epoch_pred = 0.0;
                self.probe_current_leg(ctx);
            }
            Event::FlowCompleted { elapsed, .. } => self.advance(ctx, Some(elapsed)),
            Event::FlowFailed { .. } => {
                self.epoch_pred = f64::INFINITY;
                self.advance(ctx, None);
            }
            Event::Timer { tag: EPOCH_TIMER } => {
                self.route_idx = 0;
                self.leg_idx = 0;
                self.epoch_pred = 0.0;
                self.probe_current_leg(ctx);
            }
            _ => {}
        }
    }

    fn name(&self) -> &'static str {
        "route-monitor"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::background::{BackgroundProfile, BackgroundTraffic};
    use netsim::geo::GeoPoint;
    use netsim::prelude::*;
    use netsim::units::MB;

    /// Two disjoint paths from user to pop; path A is congested by
    /// background traffic, path B is clean.
    fn world(seed: u64) -> (Sim, MonitorConfig) {
        let mut b = TopologyBuilder::new();
        let user = b.host("user", GeoPoint::new(49.0, -123.0));
        let ra = b.router("ra", GeoPoint::new(50.0, -120.0));
        let rb = b.host("dtn-b", GeoPoint::new(53.5, -113.5));
        let pop = b.datacenter("pop", GeoPoint::new(37.4, -122.1));
        let bg_src = b.host("bg-src", GeoPoint::new(50.1, -120.1));
        let bg_dst = b.host("bg-dst", GeoPoint::new(37.5, -122.0));
        let fat = LinkParams::new(Bandwidth::from_mbps(400.0), SimTime::from_millis(3));
        let thin = LinkParams::new(Bandwidth::from_mbps(30.0), SimTime::from_millis(8));
        b.duplex(user, ra, fat);
        b.duplex(ra, pop, thin); // path A bottleneck, shared with background
        b.duplex(user, rb, thin);
        b.duplex(rb, pop, thin);
        b.duplex(bg_src, ra, fat);
        b.duplex(pop, bg_dst, fat);
        let topo = b.build();
        let mut sim = Sim::new(topo, seed);
        sim.spawn_detached(Box::new(BackgroundTraffic::new(
            BackgroundProfile::heavy(bg_src, bg_dst).scaled(1.5),
        )));
        let cfg = MonitorConfig {
            routes: vec![
                vec![ProbeLeg {
                    src: user,
                    dst: pop,
                    class: FlowClass::Commodity,
                }],
                vec![
                    ProbeLeg {
                        src: user,
                        dst: rb,
                        class: FlowClass::Commodity,
                    },
                    ProbeLeg {
                        src: rb,
                        dst: pop,
                        class: FlowClass::Commodity,
                    },
                ],
            ],
            probe_bytes: MB,
            reference_bytes: 50 * MB,
            interval: SimTime::from_secs(20),
            epochs: 8,
            alpha: 0.6,
        };
        (sim, cfg)
    }

    #[test]
    fn monitor_produces_one_choice_per_epoch() {
        let (mut sim, cfg) = world(3);
        let epochs = cfg.epochs;
        let v = sim.run_process(Box::new(RouteMonitor::new(cfg))).unwrap();
        let choices = RouteMonitor::decode_choices(&v);
        assert_eq!(choices.len(), epochs);
        assert!(choices.iter().all(|&c| c < 2));
    }

    #[test]
    fn monitor_reacts_to_congestion() {
        // Across seeds, the congested direct path (route 0) should lose at
        // least sometimes — a monitor that always says "direct" is blind.
        let mut detour_votes = 0;
        let mut total = 0;
        for seed in 0..6 {
            let (mut sim, cfg) = world(seed);
            let v = sim.run_process(Box::new(RouteMonitor::new(cfg))).unwrap();
            for c in RouteMonitor::decode_choices(&v) {
                total += 1;
                if c == 1 {
                    detour_votes += 1;
                }
            }
        }
        assert!(
            detour_votes > 0,
            "monitor never noticed congestion ({detour_votes}/{total})"
        );
    }

    #[test]
    fn unroutable_route_never_chosen() {
        let mut b = TopologyBuilder::new();
        let user = b.host("user", GeoPoint::new(0.0, 0.0));
        let pop = b.host("pop", GeoPoint::new(1.0, 1.0));
        let island = b.host("island", GeoPoint::new(2.0, 2.0));
        b.duplex(
            user,
            pop,
            LinkParams::new(Bandwidth::from_mbps(10.0), SimTime::from_millis(2)),
        );
        let mut sim = Sim::new(b.build(), 1);
        let cfg = MonitorConfig {
            routes: vec![
                vec![ProbeLeg {
                    src: user,
                    dst: island,
                    class: FlowClass::Commodity,
                }],
                vec![ProbeLeg {
                    src: user,
                    dst: pop,
                    class: FlowClass::Commodity,
                }],
            ],
            probe_bytes: MB,
            reference_bytes: 10 * MB,
            interval: SimTime::from_secs(5),
            epochs: 3,
            alpha: 0.5,
        };
        let v = sim.run_process(Box::new(RouteMonitor::new(cfg))).unwrap();
        assert_eq!(RouteMonitor::decode_choices(&v), vec![1, 1, 1]);
    }

    #[test]
    fn open_breaker_blinds_route_until_reprobe() {
        // user→pop direct; user→rb→pop detour. Trip the direct route's
        // breaker: the monitor must pick the detour without probing direct.
        let mut b = TopologyBuilder::new();
        let user = b.host("user", GeoPoint::new(0.0, 0.0));
        let rb = b.host("dtn-b", GeoPoint::new(1.0, 1.0));
        let pop = b.host("pop", GeoPoint::new(2.0, 2.0));
        let fast = LinkParams::new(Bandwidth::from_mbps(100.0), SimTime::from_millis(2));
        let slow = LinkParams::new(Bandwidth::from_mbps(10.0), SimTime::from_millis(5));
        b.duplex(user, pop, fast); // direct would win if probed
        b.duplex(user, rb, slow);
        b.duplex(rb, pop, slow);
        let mut sim = Sim::new(b.build(), 1);
        let cfg = MonitorConfig {
            routes: vec![
                vec![ProbeLeg {
                    src: user,
                    dst: pop,
                    class: FlowClass::Commodity,
                }],
                vec![
                    ProbeLeg {
                        src: user,
                        dst: rb,
                        class: FlowClass::Commodity,
                    },
                    ProbeLeg {
                        src: rb,
                        dst: pop,
                        class: FlowClass::Commodity,
                    },
                ],
            ],
            probe_bytes: MB,
            reference_bytes: 10 * MB,
            interval: SimTime::from_secs(5),
            epochs: 3,
            alpha: 0.5,
        };
        let breakers = cloudstore::BreakerRegistry::default();
        for _ in 0..3 {
            breakers.record_failure(pop, sim.now());
        }
        let monitor = RouteMonitor::new(cfg).with_breakers(breakers.clone(), vec![pop, rb]);
        let v = sim.run_process(Box::new(monitor)).unwrap();
        // Cooldown (30 s) outlasts all three epochs (≤ ~15 s): the faster
        // direct route never wins because it is never even probed.
        assert_eq!(RouteMonitor::decode_choices(&v), vec![1, 1, 1]);
        // The detour's probes recorded successes, so rb's breaker is closed.
        assert!(!breakers.is_open(rb, SimTime::from_secs(100)));
    }

    #[test]
    fn monitor_reprobes_after_breaker_cooldown() {
        // Same world, but a long monitoring horizon: once the cooldown
        // lapses, the half-open probe succeeds and direct wins again.
        let mut b = TopologyBuilder::new();
        let user = b.host("user", GeoPoint::new(0.0, 0.0));
        let pop = b.host("pop", GeoPoint::new(2.0, 2.0));
        b.duplex(
            user,
            pop,
            LinkParams::new(Bandwidth::from_mbps(100.0), SimTime::from_millis(2)),
        );
        let mut sim = Sim::new(b.build(), 1);
        let cfg = MonitorConfig {
            routes: vec![vec![ProbeLeg {
                src: user,
                dst: pop,
                class: FlowClass::Commodity,
            }]],
            probe_bytes: MB,
            reference_bytes: 10 * MB,
            interval: SimTime::from_secs(20),
            epochs: 4,
            alpha: 0.5,
        };
        let breakers = cloudstore::BreakerRegistry::default();
        for _ in 0..3 {
            breakers.record_failure(pop, sim.now());
        }
        let monitor = RouteMonitor::new(cfg).with_breakers(breakers.clone(), vec![pop]);
        let v = sim.run_process(Box::new(monitor)).unwrap();
        assert_eq!(RouteMonitor::decode_choices(&v).len(), 4);
        // By the later epochs (t ≥ 40 s > 30 s cooldown) the monitor probed
        // the half-open breaker successfully and closed it.
        assert!(!breakers.is_open(pop, sim.now()));
    }

    #[test]
    fn observer_sees_every_epoch_and_flags_changes() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let (mut sim, cfg) = world(3);
        let epochs = cfg.epochs;
        let seen: Rc<RefCell<Vec<EpochObservation>>> = Rc::default();
        let sink = Rc::clone(&seen);
        let monitor = RouteMonitor::new(cfg).with_observer(move |obs| sink.borrow_mut().push(obs));
        let v = sim.run_process(Box::new(monitor)).unwrap();
        let choices = RouteMonitor::decode_choices(&v);
        let seen = seen.borrow();
        assert_eq!(seen.len(), epochs);
        for (i, obs) in seen.iter().enumerate() {
            assert_eq!(obs.epoch, i);
            assert_eq!(obs.winner, choices[i], "observer winner matches choices");
            let expect_changed = i == 0 || choices[i] != choices[i - 1];
            assert_eq!(obs.changed, expect_changed, "epoch {i}");
            assert!(obs.predicted_secs.is_finite() && obs.predicted_secs > 0.0);
            assert!(i == 0 || seen[i - 1].at < obs.at, "epochs advance in time");
        }
    }

    #[test]
    #[should_panic(expected = "no routes")]
    fn empty_config_rejected() {
        RouteMonitor::new(MonitorConfig {
            routes: vec![],
            probe_bytes: 1,
            reference_bytes: 1,
            interval: SimTime::from_secs(1),
            epochs: 1,
            alpha: 0.5,
        });
    }
}
