//! Measurement campaigns: (file sizes × routes × runs), in parallel.
//!
//! A campaign reproduces one of the paper's figures: it times every route
//! for every file size under the 7-run/keep-5 protocol. Every run is an
//! independent simulation (its own seed, its own background-traffic
//! realization), so runs parallelize perfectly across cores; we use
//! scoped threads with a shared atomic work index, per the data-parallel
//! idiom of the HPC guides.

use crate::job::run_job;
use crate::route::Route;
use cloudstore::{Provider, TokenPolicy, UploadOptions};
use measure::{RunProtocol, Stats, Table};
use netsim::engine::Sim;
use netsim::error::NetError;
use netsim::flow::FlowClass;
use netsim::topology::NodeId;
use std::borrow::Cow;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Builds a fresh simulator per run. Implemented by scenario crates.
pub trait SimFactory: Sync {
    /// Construct a simulator seeded with `seed` (background traffic and all
    /// other stochastic components derive from it).
    fn build(&self, seed: u64) -> Sim;
}

impl<F> SimFactory for F
where
    F: Fn(u64) -> Sim + Sync,
{
    fn build(&self, seed: u64) -> Sim {
        self(seed)
    }
}

/// The measuring client.
#[derive(Debug, Clone)]
pub struct ClientSpec {
    /// The user machine.
    pub node: NodeId,
    /// Its traffic class (PlanetLab slice, research cluster, ...).
    pub class: FlowClass,
    /// Name for labels ("UBC").
    pub name: String,
}

impl ClientSpec {
    /// Build a client spec.
    pub fn new(node: NodeId, class: FlowClass, name: &str) -> Self {
        ClientSpec {
            node,
            class,
            name: name.to_string(),
        }
    }
}

/// One campaign: a client, a provider, candidate routes, file sizes.
///
/// Client, provider and routes are [`Cow`]s so repeated-selection paths
/// (the oracle selector, the route plane's cold path) can borrow their
/// caller's values instead of deep-cloning `String`s and `Vec`s per call,
/// while scenario builders keep handing over owned temporaries.
pub struct Campaign<'a> {
    /// Simulator factory (one fresh sim per run).
    pub factory: &'a dyn SimFactory,
    /// The measuring client.
    pub client: Cow<'a, ClientSpec>,
    /// Target provider.
    pub provider: Cow<'a, Provider>,
    /// Candidate routes; by convention index 0 is [`Route::Direct`].
    pub routes: Cow<'a, [Route]>,
    /// File sizes in bytes (the paper: 10–100 MB).
    pub sizes: Vec<u64>,
    /// Run protocol (the paper: 7 runs, keep 5).
    pub protocol: RunProtocol,
    /// Label mixed into per-run seeds (e.g. "fig2").
    pub label: String,
    /// Worker threads (0 = all cores).
    pub threads: usize,
}

impl<'a> Campaign<'a> {
    /// Run the full campaign.
    pub fn run(&self) -> Result<CampaignResult, NetError> {
        assert!(!self.routes.is_empty() && !self.sizes.is_empty());
        let runs = self.protocol.total_runs;
        let n_jobs = self.sizes.len() * self.routes.len() * runs;
        let results: Vec<Mutex<Option<Result<f64, NetError>>>> =
            (0..n_jobs).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let threads = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            self.threads
        }
        .min(n_jobs.max(1));

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let j = next.fetch_add(1, Ordering::Relaxed);
                    if j >= n_jobs {
                        break;
                    }
                    let run = j % runs;
                    let route_idx = (j / runs) % self.routes.len();
                    let size_idx = j / (runs * self.routes.len());
                    let outcome = self.one_run(size_idx, route_idx, run);
                    *results[j].lock().expect("campaign worker panicked") = Some(outcome);
                });
            }
        });

        // Assemble per-cell statistics.
        let mut cells = Vec::with_capacity(self.sizes.len());
        for (size_idx, _) in self.sizes.iter().enumerate() {
            let mut row = Vec::with_capacity(self.routes.len());
            for (route_idx, _) in self.routes.iter().enumerate() {
                let mut samples = Vec::with_capacity(self.protocol.kept());
                for run in 0..runs {
                    let j = (size_idx * self.routes.len() + route_idx) * runs + run;
                    let outcome = results[j]
                        .lock()
                        .expect("campaign worker panicked")
                        .take()
                        .expect("every job slot filled");
                    let secs = outcome?;
                    if run >= self.protocol.discard {
                        samples.push(secs);
                    }
                }
                row.push(Stats::from_samples(&samples));
            }
            cells.push(row);
        }
        Ok(CampaignResult {
            client_name: self.client.name.clone(),
            provider_name: self.provider.kind.display_name().to_string(),
            routes: self.routes.to_vec(),
            sizes: self.sizes.clone(),
            cells,
        })
    }

    fn one_run(&self, size_idx: usize, route_idx: usize, run: usize) -> Result<f64, NetError> {
        self.run_inner(size_idx, route_idx, run, false)
            .map(|(secs, _)| secs)
    }

    /// Replay one (size, route, run) cell with telemetry enabled and return
    /// the elapsed seconds plus the recording. The seed matches the one
    /// [`Campaign::run`] uses for the same cell, so the trace reproduces the
    /// campaign sample exactly.
    pub fn trace_run(
        &self,
        size_idx: usize,
        route_idx: usize,
        run: usize,
    ) -> Result<(f64, obs::Recording), NetError> {
        let (secs, rec) = self.run_inner(size_idx, route_idx, run, true)?;
        Ok((secs, rec.expect("telemetry was enabled")))
    }

    fn run_inner(
        &self,
        size_idx: usize,
        route_idx: usize,
        run: usize,
        trace: bool,
    ) -> Result<(f64, Option<obs::Recording>), NetError> {
        let size = self.sizes[size_idx];
        let route = &self.routes[route_idx];
        let seed_label = format!(
            "{}/{}/{}/{}/{}",
            self.label,
            self.client.name,
            self.provider.kind.display_name(),
            route.label(),
            size
        );
        let seed = RunProtocol::run_seed(&seed_label, run);
        let mut sim = self.factory.build(seed);
        if trace {
            sim.enable_telemetry();
        }
        let token = if run < self.protocol.discard {
            TokenPolicy::Fresh
        } else {
            TokenPolicy::Cached
        };
        let opts = UploadOptions {
            token,
            class: self.client.class,
            ..UploadOptions::default()
        };
        let report = run_job(
            &mut sim,
            self.client.node,
            self.client.class,
            &self.provider,
            size,
            route,
            opts,
        )?;
        Ok((report.secs(), sim.take_telemetry()))
    }
}

/// Campaign output: a [`Stats`] per (size, route) cell.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Client label.
    pub client_name: String,
    /// Provider label.
    pub provider_name: String,
    /// Routes, column order.
    pub routes: Vec<Route>,
    /// Sizes, row order (bytes).
    pub sizes: Vec<u64>,
    /// `cells[size_idx][route_idx]`.
    pub cells: Vec<Vec<Stats>>,
}

impl CampaignResult {
    /// Stats for one cell.
    pub fn stats(&self, size_idx: usize, route_idx: usize) -> &Stats {
        &self.cells[size_idx][route_idx]
    }

    /// Index of the direct route, if present.
    pub fn direct_idx(&self) -> Option<usize> {
        self.routes.iter().position(|r| !r.is_detour())
    }

    /// Best (lowest mean) route for a size.
    pub fn best_route_for(&self, size_idx: usize) -> usize {
        self.cells[size_idx]
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.mean.partial_cmp(&b.mean).expect("finite means"))
            .map(|(i, _)| i)
            .expect("at least one route")
    }

    /// Route ranking by mean time averaged over all sizes (used for the
    /// paper's Table I fastest/slowest summary). Returns route indices,
    /// fastest first.
    pub fn ranking(&self) -> Vec<usize> {
        let mut avg: Vec<(usize, f64)> = (0..self.routes.len())
            .map(|r| {
                let a =
                    self.cells.iter().map(|row| row[r].mean).sum::<f64>() / self.cells.len() as f64;
                (r, a)
            })
            .collect();
        avg.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite means"));
        avg.into_iter().map(|(i, _)| i).collect()
    }

    /// A paper-style table: size rows, route columns; detour cells carry
    /// the percentage versus the direct route (Tables II/III).
    pub fn paper_table(&self, title: &str) -> Table {
        let mut headers: Vec<String> = vec!["File size (MB)".to_string()];
        headers.extend(self.routes.iter().map(|r| format!("{} (s)", r.label())));
        let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(title, &header_refs);
        let direct = self.direct_idx();
        for (si, &size) in self.sizes.iter().enumerate() {
            let mut row = vec![format!("{}", size / netsim::units::MB)];
            for ri in 0..self.routes.len() {
                let baseline = match direct {
                    Some(d) if d != ri => Some(&self.cells[si][d]),
                    _ => None,
                };
                row.push(Table::timing_cell(&self.cells[si][ri], baseline));
            }
            t.row(row);
        }
        t
    }

    /// Mean ± σ table (the paper's Table IV shape).
    pub fn mean_std_table(&self, title: &str) -> Table {
        let mut headers: Vec<String> = vec!["File size (MB)".to_string()];
        headers.extend(self.routes.iter().map(|r| r.label()));
        let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(title, &header_refs);
        for (si, &size) in self.sizes.iter().enumerate() {
            let mut row = vec![format!("{}", size / netsim::units::MB)];
            for ri in 0..self.routes.len() {
                row.push(Table::mean_std_cell(&self.cells[si][ri]));
            }
            t.row(row);
        }
        t
    }

    /// The per-size series for one route (plotting the paper's figures).
    pub fn series(&self, route_idx: usize) -> Vec<(u64, Stats)> {
        self.sizes
            .iter()
            .zip(self.cells.iter())
            .map(|(&s, row)| (s, row[route_idx]))
            .collect()
    }

    /// Render the campaign as a grouped ASCII bar chart (one group per file
    /// size, one bar per route) — the shape of the paper's figures.
    pub fn chart(&self, title: &str) -> measure::GroupedBarChart {
        let mut c = measure::GroupedBarChart::new(title, "s");
        for (si, &size) in self.sizes.iter().enumerate() {
            let bars = self
                .routes
                .iter()
                .enumerate()
                .map(|(ri, route)| measure::Bar {
                    label: route.label(),
                    value: self.cells[si][ri].mean,
                    std_dev: self.cells[si][ri].std_dev,
                })
                .collect();
            c.group(&format!("{} MB", size / netsim::units::MB), bars);
        }
        c
    }

    /// The mean-time series of one route as plain `f64`s, for validation
    /// against published values.
    pub fn mean_series(&self, route_idx: usize) -> Vec<f64> {
        self.cells.iter().map(|row| row[route_idx].mean).collect()
    }

    /// Append the campaign's per-cell measurements and winner decisions to
    /// a telemetry sink as post-hoc control events at timestamp `t_ns`
    /// (campaign runs execute on independent simulators, so no single
    /// simulated clock applies to the aggregate).
    pub fn record_decisions(&self, t_ns: u64, tele: &mut obs::Telemetry) {
        if !tele.is_enabled() {
            return;
        }
        for (si, &size) in self.sizes.iter().enumerate() {
            for (ri, route) in self.routes.iter().enumerate() {
                let (label, s) = (route.label(), &self.cells[si][ri]);
                tele.event(
                    t_ns,
                    obs::Category::Control,
                    "campaign.cell",
                    obs::SpanId::NONE,
                    |a| {
                        a.set("size_bytes", size)
                            .set("route", label)
                            .set("mean_secs", s.mean)
                            .set("std_dev_secs", s.std_dev);
                    },
                );
            }
            let best = self.best_route_for(si);
            let label = self.routes[best].label();
            tele.event(
                t_ns,
                obs::Category::Control,
                "campaign.best",
                obs::SpanId::NONE,
                |a| {
                    a.set("size_bytes", size).set("route", label);
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::Hop;
    use cloudstore::ProviderKind;
    use netsim::geo::GeoPoint;
    use netsim::prelude::*;
    use netsim::units::MB;

    struct TinyWorld;

    impl TinyWorld {
        fn topo() -> (netsim::topology::Topology, NodeId, NodeId, NodeId) {
            let mut b = TopologyBuilder::new();
            let user = b.host("user", GeoPoint::new(49.26, -123.25));
            let dtn = b.host("dtn", GeoPoint::new(53.52, -113.53));
            let pop = b.datacenter("pop", GeoPoint::new(37.39, -122.08));
            b.duplex(
                user,
                pop,
                LinkParams::new(Bandwidth::from_mbps(8.0), SimTime::from_millis(15)),
            );
            b.duplex(
                user,
                dtn,
                LinkParams::new(Bandwidth::from_mbps(40.0), SimTime::from_millis(8)),
            );
            b.duplex(
                dtn,
                pop,
                LinkParams::new(Bandwidth::from_mbps(48.0), SimTime::from_millis(14)),
            );
            (b.build(), user, dtn, pop)
        }
    }

    impl SimFactory for TinyWorld {
        fn build(&self, seed: u64) -> Sim {
            Sim::new(Self::topo().0, seed)
        }
    }

    fn campaign(world: &TinyWorld) -> Campaign<'_> {
        let (_, user, dtn, pop) = TinyWorld::topo();
        Campaign {
            factory: world,
            client: Cow::Owned(ClientSpec::new(user, FlowClass::PlanetLab, "UBC")),
            provider: Cow::Owned(Provider::new(ProviderKind::GoogleDrive, pop)),
            routes: Cow::Owned(vec![
                Route::Direct,
                Route::via(Hop::new(dtn, FlowClass::Research, "DTN")),
            ]),
            sizes: vec![10 * MB, 30 * MB],
            protocol: RunProtocol::quick(),
            label: "test".into(),
            threads: 2,
        }
    }

    #[test]
    fn campaign_produces_full_grid() {
        let world = TinyWorld;
        let result = campaign(&world).run().unwrap();
        assert_eq!(result.cells.len(), 2);
        assert_eq!(result.cells[0].len(), 2);
        for row in &result.cells {
            for s in row {
                assert_eq!(s.n, RunProtocol::quick().kept());
                assert!(s.mean > 0.0);
            }
        }
    }

    #[test]
    fn detour_wins_in_this_world() {
        let world = TinyWorld;
        let result = campaign(&world).run().unwrap();
        for si in 0..result.sizes.len() {
            assert_eq!(result.best_route_for(si), 1, "size idx {si}");
        }
        assert_eq!(result.ranking(), vec![1, 0]);
    }

    #[test]
    fn tables_render() {
        let world = TinyWorld;
        let result = campaign(&world).run().unwrap();
        let t = result.paper_table("demo");
        let text = t.render();
        assert!(text.contains("via DTN"), "{text}");
        assert!(text.contains('%'), "{text}");
        let ms = result.mean_std_table("demo2").render();
        assert!(ms.contains('±'), "{ms}");
    }

    #[test]
    fn deterministic_campaigns() {
        let world = TinyWorld;
        let a = campaign(&world).run().unwrap();
        let b = campaign(&world).run().unwrap();
        for (ra, rb) in a.cells.iter().zip(&b.cells) {
            for (sa, sb) in ra.iter().zip(rb) {
                assert_eq!(
                    sa.mean.to_bits(),
                    sb.mean.to_bits(),
                    "campaign not reproducible"
                );
            }
        }
    }

    #[test]
    fn series_extraction() {
        let world = TinyWorld;
        let r = campaign(&world).run().unwrap();
        let s = r.series(0);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].0, 10 * MB);
    }

    #[test]
    fn closure_factory_works() {
        let factory = |seed: u64| Sim::new(TinyWorld::topo().0, seed);
        let (_, user, _, pop) = TinyWorld::topo();
        let c = Campaign {
            factory: &factory,
            client: Cow::Owned(ClientSpec::new(user, FlowClass::Commodity, "X")),
            provider: Cow::Owned(Provider::new(ProviderKind::Dropbox, pop)),
            routes: Cow::Owned(vec![Route::Direct]),
            sizes: vec![MB],
            protocol: RunProtocol::quick(),
            label: "closure".into(),
            threads: 1,
        };
        assert_eq!(c.run().unwrap().cells.len(), 1);
    }
}
