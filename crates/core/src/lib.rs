//! # detour-core — routing detours for cloud-storage transfers
//!
//! The library a practitioner would use to reproduce — and then operate —
//! the system of *"Mitigating Routing Inefficiencies to Cloud-Storage
//! Providers: A Case Study"* (Sinha, Niu, Wang, Lu; 2016):
//!
//! * [`route`] — the route abstraction: a direct upload, or a detour through
//!   one or more data-transfer nodes.
//! * [`job`] — execute one transfer over one route and get a timing
//!   breakdown.
//! * [`campaign`] — the paper's measurement campaigns: (file sizes × routes
//!   × runs) with the 7-run/keep-5 protocol, parallelized across CPU cores
//!   with scoped threads (each run owns an independent simulator).
//! * [`select`] — automatic detour selection, the paper's declared future
//!   work: an oracle (measure everything, as the authors did by hand), a
//!   probe-based predictor, an adaptive ε-greedy learner, and the paper's
//!   §III-B overlap decision rule.
//! * [`monitor`] — dynamic route monitoring: an in-simulation process that
//!   re-probes candidate routes and switches when congestion moves.
//! * [`diagnose`] — traceroute comparison (where do two paths diverge?) and
//!   bottleneck attribution, reproducing the paper's pacificwave analysis.
//!
//! ## Quick start
//!
//! See `examples/quickstart.rs` in the workspace root, which builds the
//! paper's North-America scenario and reproduces the UBC→Google Drive
//! detour win.

pub mod campaign;
pub mod diagnose;
pub mod failover;
pub mod job;
pub mod monitor;
pub mod route;
pub mod select;

pub use campaign::{Campaign, CampaignResult, ClientSpec, SimFactory};
pub use diagnose::{compare_traceroutes, find_bandwidth_tivs, PathComparison, TivRecord};
pub use failover::{upload_with_fallback, upload_with_fallback_breakers, FallbackReport};
pub use job::{run_job, JobDetail, JobReport};
pub use monitor::{EpochObservation, EpochObserver, MonitorConfig, ProbeLeg, RouteMonitor};
pub use route::{Hop, Route};
pub use select::{AdaptiveSelector, DecisionRule, OracleSelector, ProbeSelector, RouteChoice};
