//! Routes: direct uploads and detours.

use netsim::flow::FlowClass;
use netsim::topology::NodeId;
use std::fmt;

/// One intermediate node in a detour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hop {
    /// The DTN.
    pub node: NodeId,
    /// Traffic class of flows *sent by* this node (its network's policy
    /// identity — UAlberta's cluster is research traffic, a PlanetLab slice
    /// is PlanetLab traffic).
    pub class: FlowClass,
    /// Human-readable name for tables ("UAlberta").
    pub name: String,
}

impl Hop {
    /// Build a hop.
    pub fn new(node: NodeId, class: FlowClass, name: &str) -> Self {
        Hop {
            node,
            class,
            name: name.to_string(),
        }
    }
}

/// How a file reaches the provider.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// Straight to the provider's frontend with its API.
    Direct,
    /// rsync through the given intermediate node(s), then upload from the
    /// last one. The paper evaluates exactly one hop; more are allowed.
    Via(Vec<Hop>),
}

impl Route {
    /// Single-detour convenience.
    pub fn via(hop: Hop) -> Route {
        Route::Via(vec![hop])
    }

    /// Table label: `"Direct"` or `"via UAlberta"` / `"via UAlberta+UMich"`.
    ///
    /// ```
    /// use detour_core::{Hop, Route};
    /// use netsim::{flow::FlowClass, topology::NodeId};
    /// let r = Route::via(Hop::new(NodeId(3), FlowClass::Research, "UAlberta"));
    /// assert_eq!(r.label(), "via UAlberta");
    /// assert!(r.is_detour());
    /// ```
    pub fn label(&self) -> String {
        match self {
            Route::Direct => "Direct".to_string(),
            Route::Via(hops) => {
                let names: Vec<&str> = hops.iter().map(|h| h.name.as_str()).collect();
                format!("via {}", names.join("+"))
            }
        }
    }

    /// Number of intermediate nodes.
    pub fn hop_count(&self) -> usize {
        match self {
            Route::Direct => 0,
            Route::Via(hops) => hops.len(),
        }
    }

    /// Is this a detour?
    pub fn is_detour(&self) -> bool {
        self.hop_count() > 0
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(Route::Direct.label(), "Direct");
        let ua = Hop::new(NodeId(3), FlowClass::Research, "UAlberta");
        assert_eq!(Route::via(ua.clone()).label(), "via UAlberta");
        let two = Route::Via(vec![ua, Hop::new(NodeId(4), FlowClass::PlanetLab, "UMich")]);
        assert_eq!(two.label(), "via UAlberta+UMich");
        assert_eq!(two.to_string(), two.label());
    }

    #[test]
    fn hop_counts() {
        assert_eq!(Route::Direct.hop_count(), 0);
        assert!(!Route::Direct.is_detour());
        let r = Route::via(Hop::new(NodeId(1), FlowClass::Research, "X"));
        assert_eq!(r.hop_count(), 1);
        assert!(r.is_detour());
    }
}
