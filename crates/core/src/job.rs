//! Execute one transfer over one route.

use crate::route::Route;
use cloudstore::{Provider, TransferStats, UploadOptions};
use netsim::engine::Sim;
use netsim::error::NetError;
use netsim::flow::FlowClass;
use netsim::time::SimTime;
use netsim::topology::NodeId;
use relay::{detour_upload_traced, RelayReport};

/// Per-mechanism detail of a completed job.
#[derive(Debug, Clone)]
pub enum JobDetail {
    /// Direct API upload.
    Direct(TransferStats),
    /// Store-and-forward detour.
    Detour(RelayReport),
}

/// Result of one transfer job.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// The route used.
    pub route: Route,
    /// Payload size.
    pub bytes: u64,
    /// End-to-end duration.
    pub elapsed: SimTime,
    /// Mechanism-specific breakdown.
    pub detail: JobDetail,
}

impl JobReport {
    /// Elapsed seconds (the paper's unit).
    pub fn secs(&self) -> f64 {
        self.elapsed.as_secs_f64()
    }
}

/// Run one upload job on a fresh simulator.
///
/// `client` is the user machine; `client_class` its traffic class;
/// `opts.token` selects cold/warm OAuth state (warm-up runs are cold).
pub fn run_job(
    sim: &mut Sim,
    client: NodeId,
    client_class: FlowClass,
    provider: &Provider,
    bytes: u64,
    route: &Route,
    opts: UploadOptions,
) -> Result<JobReport, NetError> {
    let t = sim.now_ns();
    let span = if sim.telemetry().is_enabled() {
        let label = route.label();
        let vantage = sim.core().topology().node(client).name.clone();
        let provider_name = provider.kind.display_name();
        sim.telemetry()
            .span_begin_with(t, obs::Category::Control, "job", obs::SpanId::NONE, |a| {
                a.set("route", label)
                    .set("bytes", bytes)
                    .set("vantage", vantage)
                    .set("provider", provider_name);
            })
    } else {
        obs::SpanId::NONE
    };
    let result = match route {
        Route::Direct => {
            let mut o = opts;
            o.class = client_class;
            cloudstore::upload_traced(sim, client, provider, bytes, o, span).map(|stats| {
                JobReport {
                    route: route.clone(),
                    bytes,
                    elapsed: stats.elapsed,
                    detail: JobDetail::Direct(stats),
                }
            })
        }
        Route::Via(hops) => {
            let mut nodes = Vec::with_capacity(hops.len() + 1);
            let mut classes = Vec::with_capacity(hops.len() + 1);
            nodes.push(client);
            classes.push(client_class);
            for h in hops {
                nodes.push(h.node);
                classes.push(h.class);
            }
            detour_upload_traced(sim, nodes, classes, provider, bytes, opts, span).map(|report| {
                JobReport {
                    route: route.clone(),
                    bytes,
                    elapsed: report.total,
                    detail: JobDetail::Detour(report),
                }
            })
        }
    };
    if span.is_some() {
        let t_end = sim.now_ns();
        match &result {
            Ok(_) => {
                let label = route.label();
                sim.telemetry().counter_add_dyn(
                    || format!("core.bytes.route.{}", obs::metric_segment(&label)),
                    bytes,
                );
            }
            Err(e) => {
                let msg = e.to_string();
                sim.telemetry()
                    .event(t_end, obs::Category::Control, "job.error", span, |a| {
                        a.set("error", msg);
                    });
            }
        }
        sim.telemetry().span_end(t_end, span);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::Hop;
    use cloudstore::ProviderKind;
    use netsim::geo::GeoPoint;
    use netsim::prelude::*;
    use netsim::units::MB;

    fn world() -> (Sim, NodeId, NodeId, Provider) {
        let mut b = TopologyBuilder::new();
        let user = b.host("user", GeoPoint::new(49.26, -123.25));
        let dtn = b.host("dtn", GeoPoint::new(53.52, -113.53));
        let pop = b.datacenter("pop", GeoPoint::new(37.39, -122.08));
        b.duplex(
            user,
            pop,
            LinkParams::new(Bandwidth::from_mbps(8.0), SimTime::from_millis(15)),
        );
        b.duplex(
            user,
            dtn,
            LinkParams::new(Bandwidth::from_mbps(40.0), SimTime::from_millis(8)),
        );
        b.duplex(
            dtn,
            pop,
            LinkParams::new(Bandwidth::from_mbps(48.0), SimTime::from_millis(14)),
        );
        (
            Sim::new(b.build(), 1),
            user,
            dtn,
            Provider::new(ProviderKind::GoogleDrive, pop),
        )
    }

    #[test]
    fn direct_job() {
        let (mut sim, user, _, provider) = world();
        let r = run_job(
            &mut sim,
            user,
            FlowClass::PlanetLab,
            &provider,
            10 * MB,
            &Route::Direct,
            UploadOptions::warm(FlowClass::PlanetLab),
        )
        .unwrap();
        assert!(matches!(r.detail, JobDetail::Direct(_)));
        assert!(r.secs() > 0.0);
        assert_eq!(r.bytes, 10 * MB);
    }

    #[test]
    fn detour_job_beats_direct_here() {
        let (mut sim, user, dtn, provider) = world();
        let direct = run_job(
            &mut sim,
            user,
            FlowClass::PlanetLab,
            &provider,
            30 * MB,
            &Route::Direct,
            UploadOptions::warm(FlowClass::PlanetLab),
        )
        .unwrap();
        let (mut sim2, user2, _, provider2) = world();
        let route = Route::via(Hop::new(dtn, FlowClass::Research, "DTN"));
        let detour = run_job(
            &mut sim2,
            user2,
            FlowClass::PlanetLab,
            &provider2,
            30 * MB,
            &route,
            UploadOptions::warm(FlowClass::Research),
        )
        .unwrap();
        assert!(detour.elapsed < direct.elapsed);
        match detour.detail {
            JobDetail::Detour(ref rr) => assert_eq!(rr.leg_times.len(), 1),
            _ => panic!("expected detour detail"),
        }
    }
}
