//! Path diagnosis: traceroute comparison and bottleneck attribution.
//!
//! The paper's §III-A diagnosis: traceroutes from UBC and UAlberta to the
//! same Google frontend both cross `vncv1rtr2.canarie.ca`, then diverge —
//! UBC's traffic is handed to the `pacificwave` link, UAlberta's is not,
//! and the UBC path is the slow one. [`compare_traceroutes`] automates
//! exactly that comparison, and [`find_bandwidth_tivs`] automates the
//! companion question: *which intermediate nodes violate the bandwidth
//! triangle inequality for this source/destination pair?*

use netsim::engine::Core;
use netsim::error::NetResult;
use netsim::flow::FlowClass;
use netsim::topology::NodeId;
use netsim::trace::Traceroute;
use netsim::units::Bandwidth;

/// Result of comparing two traceroutes toward the same destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathComparison {
    /// Hop names present in both paths (order of the first path).
    pub common_hops: Vec<String>,
    /// The last common hop before the paths diverge (the paper's
    /// `vncv1rtr2.canarie.ca`), if the paths share any prefix-relative hop.
    pub junction: Option<String>,
    /// Hops only in the first path after the junction.
    pub only_in_first: Vec<String>,
    /// Hops only in the second path after the junction.
    pub only_in_second: Vec<String>,
}

impl PathComparison {
    /// Do the two paths take different exits after a shared middlebox?
    /// (The paper's smoking gun.)
    pub fn diverges_after_junction(&self) -> bool {
        self.junction.is_some()
            && (!self.only_in_first.is_empty() || !self.only_in_second.is_empty())
    }
}

/// Compare two traceroutes (typically: two clients toward one provider).
pub fn compare_traceroutes(a: &Traceroute, b: &Traceroute) -> PathComparison {
    let names_a = a.hop_names();
    let names_b = b.hop_names();
    let set_b: std::collections::HashSet<&str> = names_b.iter().copied().collect();
    let set_a: std::collections::HashSet<&str> = names_a.iter().copied().collect();

    let common_hops: Vec<String> = names_a
        .iter()
        .filter(|n| set_b.contains(**n))
        .map(|n| n.to_string())
        .collect();

    // Junction: the last common hop that is not the destination itself.
    let junction = common_hops
        .iter()
        .rev()
        .find(|n| n.as_str() != a.target_name.as_str())
        .cloned();

    let after = |names: &[&str], junction: &Option<String>| -> Vec<String> {
        let start = match junction {
            Some(j) => names
                .iter()
                .position(|n| n == j)
                .map(|i| i + 1)
                .unwrap_or(0),
            None => 0,
        };
        names[start..]
            .iter()
            .filter(|n| !(set_a.contains(**n) && set_b.contains(**n)))
            .map(|n| n.to_string())
            .collect()
    };

    PathComparison {
        only_in_first: after(&names_a, &junction),
        only_in_second: after(&names_b, &junction),
        common_hops,
        junction,
    }
}

/// A bandwidth triangle-inequality violation: going `src → via → dst`
/// sustains a higher rate than `src → dst` directly.
///
/// The paper (§IV) positions its detours as *bandwidth* TIV exploitation,
/// in contrast to prior latency-TIV work: "we discover that due to routing
/// inefficiencies present in the Internet, we can improve the bandwidth of
/// a particular type of network traffic ... when exploiting TIV."
#[derive(Debug, Clone, PartialEq)]
pub struct TivRecord {
    /// Source host.
    pub src: NodeId,
    /// Intermediate node.
    pub via: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Attainable single-flow rate of the direct path.
    pub direct: Bandwidth,
    /// min(rate(src→via), rate(via→dst)) — the detour's sustained rate
    /// under pipelining (store-and-forward effective rate is the harmonic
    /// combination, still > direct when this ratio is large).
    pub detour: Bandwidth,
}

impl TivRecord {
    /// Detour-to-direct rate ratio (>1 = violation).
    pub fn ratio(&self) -> f64 {
        self.detour.bytes_per_sec() / self.direct.bytes_per_sec().max(1e-12)
    }

    /// Effective detour rate for a store-and-forward relay, which pays the
    /// legs *serially*: `1 / (1/r1 + 1/r2)`.
    pub fn store_forward_rate(src_via: Bandwidth, via_dst: Bandwidth) -> Bandwidth {
        let r1 = src_via.bytes_per_sec();
        let r2 = via_dst.bytes_per_sec();
        Bandwidth::from_bytes_per_sec(1.0 / (1.0 / r1 + 1.0 / r2))
    }
}

/// Propose via candidates for [`find_bandwidth_tivs`] straight from the
/// route oracle: the pivot nodes of the `k` cheapest distinct loop-free
/// alternatives to the direct `src → dst` route, in deterministic
/// (cost, via id) order. The paper picked its DTN candidates by hand from
/// four vantage points; at synthetic-globe scale this is the automated
/// replacement — `k_detours` ranks every node by
/// `dist(src→via) + dist(via→dst)` using two precomputed trees instead of
/// one Dijkstra per candidate.
pub fn detour_candidates(
    core: &mut Core,
    src: NodeId,
    dst: NodeId,
    k: usize,
) -> NetResult<Vec<NodeId>> {
    Ok(core
        .k_detours(src, dst, k)?
        .into_iter()
        .map(|d| d.via)
        .collect())
}

/// Scan candidate intermediate nodes for bandwidth TIVs on the
/// `src → dst` path. `class_via` gives each candidate's traffic class
/// (its own network identity). Returns violations sorted by decreasing
/// ratio; an empty result means the triangle inequality holds and no
/// detour can win.
pub fn find_bandwidth_tivs(
    core: &mut Core,
    src: NodeId,
    src_class: FlowClass,
    dst: NodeId,
    candidates: &[(NodeId, FlowClass)],
) -> NetResult<Vec<TivRecord>> {
    let direct = core.idle_path_rate(src, dst, src_class)?;
    let mut out = Vec::new();
    for &(via, via_class) in candidates {
        let leg1 = core.idle_path_rate(src, via, src_class)?;
        let leg2 = core.idle_path_rate(via, dst, via_class)?;
        // Store-and-forward is the paper's mechanism: use its serial rate
        // so a reported TIV is actionable with the paper's relay.
        let detour = TivRecord::store_forward_rate(leg1, leg2);
        if detour.bytes_per_sec() > direct.bytes_per_sec() {
            out.push(TivRecord {
                src,
                via,
                dst,
                direct,
                detour,
            });
        }
    }
    out.sort_by(|a, b| b.ratio().partial_cmp(&a.ratio()).expect("finite ratios"));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::geo::GeoPoint;
    use netsim::prelude::*;
    use netsim::trace::Traceroute;

    /// A miniature of the paper's Figure 5/6 situation: two sources reach
    /// the same destination through a shared CANARIE router; one is handed
    /// to pacificwave, the other goes direct.
    fn build() -> (Sim, NodeId, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let ubc = b.host("ubc.planetlab", GeoPoint::new(49.26, -123.25));
        let ualberta = b.host("cluster.ualberta", GeoPoint::new(53.52, -113.53));
        let canarie = b.router("vncv1rtr2.canarie.ca", GeoPoint::new(49.28, -123.12));
        let pacificwave = b.exchange("pacificwave.net", GeoPoint::new(47.61, -122.33));
        let google = b.datacenter("sea15s01-in-f138.1e100.net", GeoPoint::new(37.39, -122.08));
        let p = LinkParams::new(Bandwidth::from_mbps(100.0), SimTime::from_millis(4));
        b.duplex(ubc, canarie, p);
        b.duplex(ualberta, canarie, p);
        b.duplex(canarie, pacificwave, p);
        b.duplex(pacificwave, google, p);
        b.duplex(
            canarie,
            google,
            LinkParams::new(Bandwidth::from_mbps(100.0), SimTime::from_millis(9)),
        );
        let mut sim = Sim::new(b.build(), 5);
        // Pin UBC's route through pacificwave (the PlanetLab idiosyncrasy).
        sim.add_route_override(netsim::routing::RouteOverride::new(
            ubc,
            google,
            vec![ubc, canarie, pacificwave, google],
        ));
        (sim, ubc, ualberta, google)
    }

    #[test]
    fn reproduces_the_papers_divergence() {
        let (mut sim, ubc, ualberta, google) = build();
        let tr_ubc = Traceroute::run(sim.core(), ubc, google).unwrap();
        let tr_ua = Traceroute::run(sim.core(), ualberta, google).unwrap();
        let cmp = compare_traceroutes(&tr_ubc, &tr_ua);
        assert!(cmp
            .common_hops
            .contains(&"vncv1rtr2.canarie.ca".to_string()));
        assert_eq!(cmp.junction.as_deref(), Some("vncv1rtr2.canarie.ca"));
        assert_eq!(cmp.only_in_first, vec!["pacificwave.net".to_string()]);
        assert!(cmp.only_in_second.is_empty());
        assert!(cmp.diverges_after_junction());
    }

    #[test]
    fn identical_paths_do_not_diverge() {
        let (mut sim, _, ualberta, google) = build();
        let t1 = Traceroute::run(sim.core(), ualberta, google).unwrap();
        let t2 = Traceroute::run(sim.core(), ualberta, google).unwrap();
        let cmp = compare_traceroutes(&t1, &t2);
        assert!(!cmp.diverges_after_junction());
        assert!(cmp.only_in_first.is_empty() && cmp.only_in_second.is_empty());
    }

    #[test]
    fn bandwidth_tiv_detected_where_policer_bites() {
        // Direct path policed to 9 Mbps; detour legs at 40+ Mbps: a clear
        // bandwidth TIV, like UBC→UAlberta→Google in the paper.
        let mut b = TopologyBuilder::new();
        let src = b.host("src", GeoPoint::new(49.0, -123.0));
        let dtn = b.host("dtn", GeoPoint::new(53.5, -113.5));
        let bad_dtn = b.host("bad-dtn", GeoPoint::new(34.0, -118.0));
        let dst = b.host("dst", GeoPoint::new(37.4, -122.1));
        let (direct_link, _) = b.duplex(
            src,
            dst,
            LinkParams::new(Bandwidth::from_mbps(100.0), SimTime::from_millis(10)),
        );
        b.duplex(
            src,
            dtn,
            LinkParams::new(Bandwidth::from_mbps(40.0), SimTime::from_millis(8)),
        );
        b.duplex(
            dtn,
            dst,
            LinkParams::new(Bandwidth::from_mbps(48.0), SimTime::from_millis(12)),
        );
        b.duplex(
            src,
            bad_dtn,
            LinkParams::new(Bandwidth::from_mbps(2.0), SimTime::from_millis(9)),
        );
        b.duplex(
            bad_dtn,
            dst,
            LinkParams::new(Bandwidth::from_mbps(60.0), SimTime::from_millis(4)),
        );
        let mut sim = Sim::new(b.build(), 1);
        sim.add_policer(netsim::middlebox::Policer::per_flow(
            "policer",
            direct_link,
            FlowClass::PlanetLab,
            Bandwidth::from_mbps(9.0),
        ));
        let candidates = [(dtn, FlowClass::Research), (bad_dtn, FlowClass::Research)];
        let tivs =
            find_bandwidth_tivs(sim.core(), src, FlowClass::PlanetLab, dst, &candidates).unwrap();
        // Only the good DTN is a violation: 1/(1/40+1/48) ≈ 21.8 > 9, while
        // the bad DTN's serial rate ≈ 1.9 < 9.
        assert_eq!(tivs.len(), 1, "{tivs:?}");
        assert_eq!(tivs[0].via, dtn);
        assert!(tivs[0].ratio() > 2.0, "ratio {}", tivs[0].ratio());
        // For a research-class source the policer does not apply: no TIV.
        let none =
            find_bandwidth_tivs(sim.core(), src, FlowClass::Research, dst, &candidates).unwrap();
        assert!(none.is_empty(), "{none:?}");
    }

    #[test]
    fn oracle_proposes_the_papers_detour_candidates() {
        // Same map as the TIV test: both DTNs pivot off the direct path,
        // ranked by joined cost then node id — exactly the candidate list
        // find_bandwidth_tivs wants, no hand-picking.
        let mut b = TopologyBuilder::new();
        let src = b.host("src", GeoPoint::new(49.0, -123.0));
        let dtn = b.host("dtn", GeoPoint::new(53.5, -113.5));
        let bad_dtn = b.host("bad-dtn", GeoPoint::new(34.0, -118.0));
        let dst = b.host("dst", GeoPoint::new(37.4, -122.1));
        let p = |mbps| LinkParams::new(Bandwidth::from_mbps(mbps), SimTime::from_millis(5));
        b.duplex(src, dst, p(100.0));
        b.duplex(src, dtn, p(40.0));
        b.duplex(dtn, dst, p(48.0));
        b.duplex(src, bad_dtn, p(2.0));
        b.duplex(bad_dtn, dst, p(60.0));
        let mut sim = Sim::new(b.build(), 1);
        let vias = detour_candidates(sim.core(), src, dst, 8).unwrap();
        assert_eq!(vias, vec![dtn, bad_dtn]);
        let one = detour_candidates(sim.core(), src, dst, 1).unwrap();
        assert_eq!(one, vec![dtn]);
    }

    #[test]
    fn store_forward_rate_is_harmonic() {
        let r =
            TivRecord::store_forward_rate(Bandwidth::from_mbps(40.0), Bandwidth::from_mbps(40.0));
        assert!((r.mbps() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_paths_have_no_junction() {
        let mut b = TopologyBuilder::new();
        let a = b.host("a", GeoPoint::new(0.0, 0.0));
        let c = b.host("c", GeoPoint::new(2.0, 2.0));
        let m1 = b.router("m1", GeoPoint::new(1.0, 0.0));
        let d = b.host("d", GeoPoint::new(3.0, 3.0));
        let p = LinkParams::new(Bandwidth::from_mbps(10.0), SimTime::from_millis(2));
        b.duplex(a, m1, p);
        b.duplex(m1, d, p);
        let m2 = b.router("m2", GeoPoint::new(2.5, 2.5));
        b.duplex(c, m2, p);
        b.duplex(m2, d, p);
        let mut sim = Sim::new(b.build(), 1);
        let t1 = Traceroute::run(sim.core(), a, d).unwrap();
        let t2 = Traceroute::run(sim.core(), c, d).unwrap();
        let cmp = compare_traceroutes(&t1, &t2);
        // Only the destination is shared; junction (non-destination) absent.
        assert_eq!(cmp.junction, None);
        assert_eq!(cmp.common_hops, vec!["d".to_string()]);
    }
}
