//! Minimal JSON tree, writer and parser.
//!
//! The workspace vendors no serde; scenario specs and check verdicts are
//! small, flat documents, so a ~200-line hand-rolled JSON suffices. Two
//! properties matter here:
//!
//! * **u64 exactness** — seeds are full-range 64-bit integers. They are kept
//!   as [`Json::Int`] end to end and never pass through `f64`, so a spec
//!   survives a write/parse round trip bit-for-bit.
//! * **deterministic output** — object keys render in insertion order and
//!   floats render via Rust's shortest-roundtrip formatting, so the same
//!   spec always serializes to the same bytes.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer that must survive exactly (seeds, byte
    /// counts). Negative or fractional numbers parse as [`Json::Num`].
    Int(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// As u64 (exact `Int` only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// As f64 (accepts `Int` too).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// As bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// As string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// As array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serialize (compact, no trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null"); // JSON has no Inf/NaN
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).render_into(out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document.
    pub fn parse(s: &str) -> Result<Json, String> {
        let bytes = s.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut non_int = self.pos > start; // leading '-' => not an Int
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
                non_int = true;
            }
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !non_int {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Advance one whole UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_exact_u64() {
        let v = Json::Obj(vec![
            ("seed".into(), Json::Int(u64::MAX)),
            ("other".into(), Json::Int(9_007_199_254_740_993)), // 2^53 + 1
        ]);
        let text = v.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("seed").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(
            back.get("other").unwrap().as_u64(),
            Some(9_007_199_254_740_993)
        );
    }

    #[test]
    fn round_trip_structures() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("a \"quoted\"\nline".into())),
            (
                "items".into(),
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::Num(-1.5)]),
            ),
        ]);
        let back = Json::parse(&v.render()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = Json::parse(" { \"a\" : [ 1 , { \"b\" : [ ] } ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn negative_and_float_are_num() {
        assert_eq!(Json::parse("-3").unwrap().as_f64(), Some(-3.0));
        assert_eq!(Json::parse("2.5").unwrap().as_f64(), Some(2.5));
        assert_eq!(Json::parse("-3").unwrap().as_u64(), None);
    }
}
