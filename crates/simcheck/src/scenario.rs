//! Randomized scenario specifications.
//!
//! A [`ScenarioSpec`] is a *self-contained, serializable* description of one
//! fuzz case: topology shape, capacity jitter, foreground upload/detour
//! jobs, background-traffic generators and link-fault schedule. Everything
//! is plain integers (fractions are stored as percents) so the JSON round
//! trip is exact and a replayed spec drives a bit-identical simulation.
//!
//! Host and link references are stored as raw indices and resolved modulo
//! the actual host/link count at build time — that keeps every spec valid
//! under shrinking (removing hosts can never dangle a reference).

use crate::json::Json;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Topology family for a case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoSpec {
    /// A transit–stub WAN from [`netsim::synth::SynthWan`].
    Synth {
        /// Transit routers (>= 2).
        transit: u32,
        /// Stub routers (>= 1).
        stubs: u32,
        /// End hosts (>= 2).
        hosts: u32,
        /// Core link rate, Mbps.
        core_mbps: u32,
        /// Host access rate range, Mbps.
        access_lo_mbps: u32,
        /// Upper end of the access range.
        access_hi_mbps: u32,
        /// Seed for the topology generator (independent of the sim seed).
        topo_seed: u64,
    },
    /// Hosts around a single router — the smallest interesting topology,
    /// and the shrinker's terminal form (`hosts + 1` nodes total).
    Star {
        /// End hosts (>= 2).
        hosts: u32,
        /// Access rate of every spoke, Mbps.
        access_mbps: u32,
    },
}

impl TopoSpec {
    /// Number of end hosts.
    pub fn n_hosts(&self) -> u32 {
        match self {
            TopoSpec::Synth { hosts, .. } => *hosts,
            TopoSpec::Star { hosts, .. } => *hosts,
        }
    }

    /// Total node count of the built topology.
    pub fn node_count(&self) -> u32 {
        match self {
            TopoSpec::Synth {
                transit,
                stubs,
                hosts,
                ..
            } => transit + stubs + hosts,
            TopoSpec::Star { hosts, .. } => hosts + 1,
        }
    }
}

/// One foreground transfer job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSpec {
    /// Source host index (mod host count).
    pub src: u32,
    /// Destination host index (mod host count; bumped if it collides with
    /// `src`).
    pub dst: u32,
    /// Optional detour host index: the flow is pinned to the concatenated
    /// path `src → via → dst`, modeling the paper's relay routes.
    pub via: Option<u32>,
    /// Payload bytes.
    pub bytes: u64,
    /// Traffic class selector (mod 4 → commodity/research/planetlab/
    /// background).
    pub class: u8,
    /// Fairness weight in percent (100 = weight 1.0).
    pub weight_pct: u32,
    /// Start offset from simulation begin, milliseconds.
    pub start_ms: u64,
}

/// One background-traffic generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BgSpec {
    /// Source host index (mod host count).
    pub src: u32,
    /// Destination host index.
    pub dst: u32,
    /// Heavy profile (vs moderate).
    pub heavy: bool,
    /// Flow-count scale in percent (see `BackgroundProfile::scaled`).
    pub scale_pct: u32,
}

/// One high-rate-churn generator: a serial chain of `flows` short
/// transfers between two hosts, each started `gap_ms` after the previous
/// one finishes. Every start and finish perturbs the shared component's
/// allocation, superseding queued drain events — the workload that grows
/// the event queue without growing the live flow count, exercising heap
/// compaction and the lazy progress accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnSpec {
    /// Source host index (mod host count).
    pub src: u32,
    /// Destination host index (mod host count; bumped if it collides with
    /// `src`).
    pub dst: u32,
    /// Number of back-to-back transfers.
    pub flows: u32,
    /// Payload of each transfer, bytes (small: the point is many flow
    /// boundaries, not many bytes).
    pub bytes: u64,
    /// Gap between one transfer's completion and the next one's start,
    /// milliseconds.
    pub gap_ms: u64,
}

/// One chaotic cloud-storage upload session: a [`cloudstore`] session run
/// against a provider whose fault plan is cranked far past the calibrated
/// `flaky()` rates — throttle storms, transient-error bursts, or a mix —
/// optionally under a hard transfer deadline. The chaos scenario class
/// ([`ScenarioSpec::generate_chaos`]) uses these to check the *resilience*
/// invariant: every session settles (success or a typed error) within a
/// bound derived from its retry budget or deadline, never spinning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosSpec {
    /// Uploading host index (mod host count).
    pub client: u32,
    /// Host index acting as the provider frontend (mod host count; bumped
    /// if it collides with `client`).
    pub frontend: u32,
    /// Payload, bytes.
    pub bytes: u64,
    /// Probability (percent, 0..=100) that any part upload is throttled.
    pub throttle_pct: u32,
    /// Probability (percent) that any part upload fails transiently.
    /// `throttle_pct + transient_pct` must stay <= 100.
    pub transient_pct: u32,
    /// Server-advertised Retry-After on throttle, milliseconds.
    pub retry_after_ms: u64,
    /// Hard transfer deadline, milliseconds after session start
    /// (0 = none; bounded by the retry budget instead).
    pub deadline_ms: u64,
    /// Session start time, milliseconds.
    pub start_ms: u64,
}

/// One delta-sync session: a [`transfer::SyncPopulation`] of deterministic
/// per-round mutations on the client, rsynced to a relay host round by
/// round. The relay keeps a content-addressed chunk store
/// ([`relay::ChunkStore`]), so repeat content shrinks the forward leg. The
/// sync scenario class ([`ScenarioSpec::generate_sync`]) checks two things:
/// every applied delta reconstructs the client's bytes exactly
/// ([`crate::oracle::Violation::SyncIntegrity`]), and a cache-bypass
/// re-execution delivers byte-identical final files
/// ([`crate::oracle::Violation::ChunkDivergence`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncSpec {
    /// Client host index (mod host count).
    pub client: u32,
    /// Relay host index (mod host count; bumped if it collides with
    /// `client`). Sessions resolving to the same relay share one chunk
    /// store — the cross-tenant dedup the chunk store exists for.
    pub relay: u32,
    /// Files in the client's sync set.
    pub files: u32,
    /// Initial length of each file, KiB (small: every check case runs the
    /// real signature/delta/MD5 machinery ~9 times).
    pub file_kb: u32,
    /// Mutation rounds after the initial replication.
    pub rounds: u32,
    /// Relay chunk-store capacity, KiB. Small values force FIFO eviction.
    pub cache_kb: u32,
    /// Dataset identity: sessions with the same id seed identical initial
    /// populations (think two tenants replicating one shared dataset), so a
    /// shared relay store serves the second tenant's chunks from cache —
    /// the cross-tenant dedup case where the cache beats the rsync delta.
    pub dataset: u32,
    /// Use the churn-heavy mutation mix instead of the desktop mix.
    pub churny: bool,
    /// Session start time, milliseconds.
    pub start_ms: u64,
}

/// One scheduled link-capacity change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Link index (mod link count).
    pub link: u32,
    /// When the change fires, milliseconds.
    pub at_ms: u64,
    /// New capacity as a percent of nominal (10 = crushed to 10%,
    /// 150 = upgraded).
    pub factor_pct: u32,
}

/// A complete, replayable fuzz case.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Simulation seed (PRNG for jitter, background traffic, ...).
    pub seed: u64,
    /// Topology shape.
    pub topo: TopoSpec,
    /// Capacity jitter in percent (0 = none).
    pub jitter_pct: u32,
    /// Foreground jobs (at least one).
    pub jobs: Vec<JobSpec>,
    /// Background generators.
    pub background: Vec<BgSpec>,
    /// Link-fault schedule.
    pub faults: Vec<FaultSpec>,
    /// High-rate-churn generators (often empty).
    pub churn: Vec<ChurnSpec>,
    /// Chaotic cloud-upload sessions (empty outside the chaos class).
    pub chaos: Vec<ChaosSpec>,
    /// Delta-sync sessions (empty outside the sync class).
    pub sync: Vec<SyncSpec>,
    /// Independent replicas of this world (1 = a single cell). A scenario
    /// with `replicas = k > 1` is `k` disconnected copies, each reseeded
    /// via [`case_seed`] — the connected components the sharded executor
    /// distributes across workers. Sequential execution folds them in
    /// cell order, so the spec stays a single replayable unit.
    pub replicas: u32,
}

impl ScenarioSpec {
    /// Generate the spec for one fuzz case, fully determined by `case_seed`.
    pub fn generate(case_seed: u64) -> ScenarioSpec {
        let mut rng = SmallRng::seed_from_u64(case_seed);
        let topo = if rng.gen_bool(0.8) {
            let lo = rng.gen_range(2..10u32);
            TopoSpec::Synth {
                transit: rng.gen_range(2..=5),
                stubs: rng.gen_range(1..=6),
                hosts: rng.gen_range(2..=12),
                core_mbps: [200u32, 500, 1000][rng.gen_range(0..3usize)],
                access_lo_mbps: lo,
                access_hi_mbps: lo + rng.gen_range(10..=90u32),
                topo_seed: rng.gen::<u32>() as u64,
            }
        } else {
            TopoSpec::Star {
                hosts: rng.gen_range(2..=8),
                access_mbps: rng.gen_range(5..=50),
            }
        };
        let hosts = topo.n_hosts();
        let jitter_pct = if rng.gen_bool(0.5) {
            0
        } else {
            rng.gen_range(1..=8)
        };

        let n_jobs = rng.gen_range(1..=8);
        let jobs = (0..n_jobs)
            .map(|_| {
                let src = rng.gen_range(0..hosts);
                let dst = rng.gen_range(0..hosts);
                JobSpec {
                    src,
                    dst,
                    via: rng.gen_bool(0.2).then(|| rng.gen_range(0..hosts)),
                    bytes: rng.gen_range(256 * 1024..=16 * 1024 * 1024),
                    class: rng.gen_range(0..4),
                    weight_pct: [50u32, 100, 100, 100, 200, 300][rng.gen_range(0..6usize)],
                    start_ms: rng.gen_range(0..=1500),
                }
            })
            .collect();

        let n_bg = rng.gen_range(0..=2);
        let background = (0..n_bg)
            .map(|_| BgSpec {
                src: rng.gen_range(0..hosts),
                dst: rng.gen_range(0..hosts),
                heavy: rng.gen_bool(0.3),
                scale_pct: rng.gen_range(25..=100),
            })
            .collect();

        let n_faults = rng.gen_range(0..=3);
        let faults = (0..n_faults)
            .map(|_| FaultSpec {
                link: rng.gen::<u32>(),
                at_ms: rng.gen_range(50..=4000),
                factor_pct: rng.gen_range(10..=150),
            })
            .collect();

        // ~35% of cases add high-rate-churn generators: long chains of
        // tiny transfers that supersede drain events far faster than live
        // flows accumulate.
        let n_churn = if rng.gen_bool(0.35) {
            rng.gen_range(1..=2)
        } else {
            0
        };
        let churn = (0..n_churn)
            .map(|_| ChurnSpec {
                src: rng.gen_range(0..hosts),
                dst: rng.gen_range(0..hosts),
                flows: rng.gen_range(20..=120),
                bytes: rng.gen_range(16 * 1024..=256 * 1024),
                gap_ms: rng.gen_range(0..=20),
            })
            .collect();

        let seed = rng.gen::<u32>() as u64;
        // ~20% of cases replicate the world into 2-3 disconnected cells so
        // the sharded executor gets genuine multi-worker coverage. Drawn
        // after `seed` so pre-existing case seeds generate byte-identical
        // specs apart from the new field.
        let replicas = if rng.gen_bool(0.2) {
            rng.gen_range(2..=3)
        } else {
            1
        };

        ScenarioSpec {
            seed,
            topo,
            jitter_pct,
            jobs,
            background,
            faults,
            churn,
            chaos: vec![],
            sync: vec![],
            replicas,
        }
    }

    /// Generate one *chaos-class* case: a small world where cloud-upload
    /// sessions run under throttle storms, transient-error bursts, and
    /// mid-transfer link-capacity faults, some with hard deadlines. The
    /// invariant of interest is termination: every session must settle —
    /// success or a typed error — within its budget/deadline-derived bound,
    /// deterministically per seed.
    pub fn generate_chaos(case_seed: u64) -> ScenarioSpec {
        let mut rng = SmallRng::seed_from_u64(case_seed);
        // Smaller worlds than the standard class: the stress is in the
        // retry machinery, not the topology.
        let topo = if rng.gen_bool(0.4) {
            let lo = rng.gen_range(5..15u32);
            TopoSpec::Synth {
                transit: rng.gen_range(2..=3),
                stubs: rng.gen_range(1..=3),
                hosts: rng.gen_range(2..=6),
                core_mbps: [200u32, 500][rng.gen_range(0..2usize)],
                access_lo_mbps: lo,
                access_hi_mbps: lo + rng.gen_range(10..=50u32),
                topo_seed: rng.gen::<u32>() as u64,
            }
        } else {
            TopoSpec::Star {
                hosts: rng.gen_range(2..=6),
                access_mbps: rng.gen_range(10..=50),
            }
        };
        let hosts = topo.n_hosts();
        let jitter_pct = if rng.gen_bool(0.5) {
            0
        } else {
            rng.gen_range(1..=4)
        };

        // A light foreground load so the chaotic sessions contend with
        // ordinary traffic.
        let n_jobs = rng.gen_range(0..=2);
        let jobs = (0..n_jobs)
            .map(|_| JobSpec {
                src: rng.gen_range(0..hosts),
                dst: rng.gen_range(0..hosts),
                via: None,
                bytes: rng.gen_range(128 * 1024..=2 * 1024 * 1024),
                class: rng.gen_range(0..4),
                weight_pct: 100,
                start_ms: rng.gen_range(0..=500),
            })
            .collect();

        // Mid-transfer capacity faults are always on in this class: links
        // degrade (or recover) while sessions are mid-retry.
        let n_faults = rng.gen_range(1..=3);
        let faults = (0..n_faults)
            .map(|_| FaultSpec {
                link: rng.gen::<u32>(),
                at_ms: rng.gen_range(100..=5000),
                factor_pct: rng.gen_range(10..=150),
            })
            .collect();

        let n_chaos = rng.gen_range(1..=3);
        let chaos = (0..n_chaos)
            .map(|_| {
                // Three storm flavors: throttle-heavy, transient-heavy,
                // and a moderate mix.
                let (throttle_pct, transient_pct) = match rng.gen_range(0..3u32) {
                    0 => (rng.gen_range(60..=100), 0),
                    1 => (0, rng.gen_range(60..=100)),
                    _ => (rng.gen_range(10..=40), rng.gen_range(10..=40)),
                };
                ChaosSpec {
                    client: rng.gen_range(0..hosts),
                    frontend: rng.gen_range(0..hosts),
                    bytes: rng.gen_range(256 * 1024..=12 * 1024 * 1024),
                    throttle_pct,
                    transient_pct,
                    retry_after_ms: rng.gen_range(100..=3000),
                    deadline_ms: if rng.gen_bool(0.5) {
                        rng.gen_range(2_000..=30_000)
                    } else {
                        0
                    },
                    start_ms: rng.gen_range(0..=1000),
                }
            })
            .collect();

        let seed = rng.gen::<u32>() as u64;
        // Chaos worlds are heavier per cell; replicate a bit more rarely.
        let replicas = if rng.gen_bool(0.15) { 2 } else { 1 };

        ScenarioSpec {
            seed,
            topo,
            jitter_pct,
            jobs,
            background: vec![],
            faults,
            churn: vec![],
            chaos,
            sync: vec![],
            replicas,
        }
    }

    /// Generate one *sync-class* case: a small world where delta-sync
    /// sessions push deterministically mutating file sets to relay hosts
    /// through the chunk store, round by round, while light foreground
    /// traffic contends for the links. File sizes and round counts are kept
    /// small — every checked case runs the real signature/delta/MD5
    /// machinery across ~9 differential executions plus a cache-bypass run.
    pub fn generate_sync(case_seed: u64) -> ScenarioSpec {
        let mut rng = SmallRng::seed_from_u64(case_seed);
        let topo = if rng.gen_bool(0.6) {
            TopoSpec::Star {
                hosts: rng.gen_range(2..=5),
                access_mbps: rng.gen_range(10..=50),
            }
        } else {
            let lo = rng.gen_range(5..15u32);
            TopoSpec::Synth {
                transit: rng.gen_range(2..=3),
                stubs: rng.gen_range(1..=2),
                hosts: rng.gen_range(2..=4),
                core_mbps: [200u32, 500][rng.gen_range(0..2usize)],
                access_lo_mbps: lo,
                access_hi_mbps: lo + rng.gen_range(10..=40u32),
                topo_seed: rng.gen::<u32>() as u64,
            }
        };
        let hosts = topo.n_hosts();
        let jitter_pct = if rng.gen_bool(0.5) {
            0
        } else {
            rng.gen_range(1..=4)
        };

        // A light foreground load so sync legs contend with ordinary flows.
        let n_jobs = rng.gen_range(0..=2);
        let jobs = (0..n_jobs)
            .map(|_| JobSpec {
                src: rng.gen_range(0..hosts),
                dst: rng.gen_range(0..hosts),
                via: None,
                bytes: rng.gen_range(128 * 1024..=1024 * 1024),
                class: rng.gen_range(0..4),
                weight_pct: 100,
                start_ms: rng.gen_range(0..=500),
            })
            .collect();

        let n_faults = rng.gen_range(0..=1);
        let faults = (0..n_faults)
            .map(|_| FaultSpec {
                link: rng.gen::<u32>(),
                at_ms: rng.gen_range(100..=3000),
                factor_pct: rng.gen_range(20..=150),
            })
            .collect();

        let n_sync = rng.gen_range(1..=2);
        let sync = (0..n_sync)
            .map(|i| SyncSpec {
                client: rng.gen_range(0..hosts),
                relay: rng.gen_range(0..hosts),
                files: rng.gen_range(1..=3),
                file_kb: rng.gen_range(4..=32),
                rounds: rng.gen_range(1..=3),
                // ~30% of stores are tiny enough to evict mid-run.
                cache_kb: if rng.gen_bool(0.3) {
                    rng.gen_range(2..=8)
                } else {
                    rng.gen_range(16..=128)
                },
                // ~40% of second sessions replicate the first's dataset:
                // the cross-tenant dedup case.
                dataset: if i > 0 && rng.gen_bool(0.4) { 0 } else { i },
                churny: rng.gen_bool(0.3),
                start_ms: rng.gen_range(0..=400),
            })
            .collect();

        let seed = rng.gen::<u32>() as u64;
        let replicas = if rng.gen_bool(0.15) { 2 } else { 1 };

        ScenarioSpec {
            seed,
            topo,
            jitter_pct,
            jobs,
            background: vec![],
            faults,
            churn: vec![],
            chaos: vec![],
            sync,
            replicas,
        }
    }

    /// The independent cells of this scenario: `replicas` copies of the
    /// world, cell `k` reseeded with [`case_seed`]`(seed, k)` so replicas
    /// diverge in jitter, background and chaos draws. A single-replica
    /// scenario is its own (only) cell with its seed untouched, which is
    /// what makes the sharded fold collapse to the plain sequential run
    /// for every pre-existing spec.
    pub fn cells(&self) -> Vec<ScenarioSpec> {
        if self.replicas <= 1 {
            return vec![self.clone()];
        }
        (0..self.replicas)
            .map(|k| ScenarioSpec {
                seed: case_seed(self.seed, k),
                replicas: 1,
                ..self.clone()
            })
            .collect()
    }

    /// Serialize to compact JSON (exact round trip via [`Self::from_json`]).
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    pub(crate) fn to_json_value(&self) -> Json {
        let topo = match self.topo {
            TopoSpec::Synth {
                transit,
                stubs,
                hosts,
                core_mbps,
                access_lo_mbps,
                access_hi_mbps,
                topo_seed,
            } => Json::Obj(vec![
                ("kind".into(), Json::Str("synth".into())),
                ("transit".into(), Json::Int(transit as u64)),
                ("stubs".into(), Json::Int(stubs as u64)),
                ("hosts".into(), Json::Int(hosts as u64)),
                ("core_mbps".into(), Json::Int(core_mbps as u64)),
                ("access_lo_mbps".into(), Json::Int(access_lo_mbps as u64)),
                ("access_hi_mbps".into(), Json::Int(access_hi_mbps as u64)),
                ("topo_seed".into(), Json::Int(topo_seed)),
            ]),
            TopoSpec::Star { hosts, access_mbps } => Json::Obj(vec![
                ("kind".into(), Json::Str("star".into())),
                ("hosts".into(), Json::Int(hosts as u64)),
                ("access_mbps".into(), Json::Int(access_mbps as u64)),
            ]),
        };
        let jobs = self
            .jobs
            .iter()
            .map(|j| {
                let mut fields = vec![
                    ("src".into(), Json::Int(j.src as u64)),
                    ("dst".into(), Json::Int(j.dst as u64)),
                ];
                if let Some(via) = j.via {
                    fields.push(("via".into(), Json::Int(via as u64)));
                }
                fields.extend([
                    ("bytes".into(), Json::Int(j.bytes)),
                    ("class".into(), Json::Int(j.class as u64)),
                    ("weight_pct".into(), Json::Int(j.weight_pct as u64)),
                    ("start_ms".into(), Json::Int(j.start_ms)),
                ]);
                Json::Obj(fields)
            })
            .collect();
        let background = self
            .background
            .iter()
            .map(|b| {
                Json::Obj(vec![
                    ("src".into(), Json::Int(b.src as u64)),
                    ("dst".into(), Json::Int(b.dst as u64)),
                    ("heavy".into(), Json::Bool(b.heavy)),
                    ("scale_pct".into(), Json::Int(b.scale_pct as u64)),
                ])
            })
            .collect();
        let faults = self
            .faults
            .iter()
            .map(|f| {
                Json::Obj(vec![
                    ("link".into(), Json::Int(f.link as u64)),
                    ("at_ms".into(), Json::Int(f.at_ms)),
                    ("factor_pct".into(), Json::Int(f.factor_pct as u64)),
                ])
            })
            .collect();
        let mut fields = vec![
            ("seed".into(), Json::Int(self.seed)),
            ("topo".into(), topo),
            ("jitter_pct".into(), Json::Int(self.jitter_pct as u64)),
            ("jobs".into(), Json::Arr(jobs)),
            ("background".into(), Json::Arr(background)),
            ("faults".into(), Json::Arr(faults)),
        ];
        // Omitted when empty so pre-churn replay files round trip verbatim.
        if !self.churn.is_empty() {
            let churn = self
                .churn
                .iter()
                .map(|c| {
                    Json::Obj(vec![
                        ("src".into(), Json::Int(c.src as u64)),
                        ("dst".into(), Json::Int(c.dst as u64)),
                        ("flows".into(), Json::Int(c.flows as u64)),
                        ("bytes".into(), Json::Int(c.bytes)),
                        ("gap_ms".into(), Json::Int(c.gap_ms)),
                    ])
                })
                .collect();
            fields.push(("churn".into(), Json::Arr(churn)));
        }
        // Same convention: standard-class replay files never mention chaos.
        if !self.chaos.is_empty() {
            let chaos = self
                .chaos
                .iter()
                .map(|c| {
                    let mut f = vec![
                        ("client".into(), Json::Int(c.client as u64)),
                        ("frontend".into(), Json::Int(c.frontend as u64)),
                        ("bytes".into(), Json::Int(c.bytes)),
                        ("throttle_pct".into(), Json::Int(c.throttle_pct as u64)),
                        ("transient_pct".into(), Json::Int(c.transient_pct as u64)),
                        ("retry_after_ms".into(), Json::Int(c.retry_after_ms)),
                    ];
                    if c.deadline_ms > 0 {
                        f.push(("deadline_ms".into(), Json::Int(c.deadline_ms)));
                    }
                    f.push(("start_ms".into(), Json::Int(c.start_ms)));
                    Json::Obj(f)
                })
                .collect();
            fields.push(("chaos".into(), Json::Arr(chaos)));
        }
        // Same convention again: pre-sync replay files never mention sync.
        if !self.sync.is_empty() {
            let sync = self
                .sync
                .iter()
                .map(|s| {
                    Json::Obj(vec![
                        ("client".into(), Json::Int(s.client as u64)),
                        ("relay".into(), Json::Int(s.relay as u64)),
                        ("files".into(), Json::Int(s.files as u64)),
                        ("file_kb".into(), Json::Int(s.file_kb as u64)),
                        ("rounds".into(), Json::Int(s.rounds as u64)),
                        ("cache_kb".into(), Json::Int(s.cache_kb as u64)),
                        ("dataset".into(), Json::Int(s.dataset as u64)),
                        ("churny".into(), Json::Bool(s.churny)),
                        ("start_ms".into(), Json::Int(s.start_ms)),
                    ])
                })
                .collect();
            fields.push(("sync".into(), Json::Arr(sync)));
        }
        // Omitted when 1 (the overwhelming default) so single-cell replay
        // files round trip verbatim.
        if self.replicas > 1 {
            fields.push(("replicas".into(), Json::Int(self.replicas as u64)));
        }
        Json::Obj(fields)
    }

    /// Parse a spec previously produced by [`Self::to_json`].
    pub fn from_json(text: &str) -> Result<ScenarioSpec, String> {
        let v = Json::parse(text)?;
        Self::from_json_value(&v)
    }

    pub(crate) fn from_json_value(v: &Json) -> Result<ScenarioSpec, String> {
        fn req_u64(v: &Json, key: &str) -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing or non-integer field {key:?}"))
        }
        fn req_u32(v: &Json, key: &str) -> Result<u32, String> {
            u32::try_from(req_u64(v, key)?).map_err(|_| format!("field {key:?} out of u32 range"))
        }

        let topo_v = v.get("topo").ok_or("missing field \"topo\"")?;
        let topo = match topo_v.get("kind").and_then(Json::as_str) {
            Some("synth") => TopoSpec::Synth {
                transit: req_u32(topo_v, "transit")?,
                stubs: req_u32(topo_v, "stubs")?,
                hosts: req_u32(topo_v, "hosts")?,
                core_mbps: req_u32(topo_v, "core_mbps")?,
                access_lo_mbps: req_u32(topo_v, "access_lo_mbps")?,
                access_hi_mbps: req_u32(topo_v, "access_hi_mbps")?,
                topo_seed: req_u64(topo_v, "topo_seed")?,
            },
            Some("star") => TopoSpec::Star {
                hosts: req_u32(topo_v, "hosts")?,
                access_mbps: req_u32(topo_v, "access_mbps")?,
            },
            other => return Err(format!("unknown topo kind {other:?}")),
        };
        if topo.n_hosts() < 2 {
            return Err("topology needs at least two hosts".into());
        }
        match topo {
            TopoSpec::Synth {
                transit,
                stubs,
                access_lo_mbps,
                access_hi_mbps,
                ..
            } => {
                if transit < 2 || stubs < 1 {
                    return Err("synth topology needs transit >= 2 and stubs >= 1".into());
                }
                if access_lo_mbps == 0 || access_lo_mbps > access_hi_mbps {
                    return Err("bad access rate range".into());
                }
            }
            TopoSpec::Star { access_mbps, .. } => {
                if access_mbps == 0 {
                    return Err("star access rate must be positive".into());
                }
            }
        }

        let jobs = v
            .get("jobs")
            .and_then(Json::as_arr)
            .ok_or("missing field \"jobs\"")?
            .iter()
            .map(|j| {
                Ok(JobSpec {
                    src: req_u32(j, "src")?,
                    dst: req_u32(j, "dst")?,
                    via: match j.get("via") {
                        None | Some(Json::Null) => None,
                        Some(via) => Some(
                            u32::try_from(via.as_u64().ok_or("non-integer \"via\"")?)
                                .map_err(|_| "via out of range".to_string())?,
                        ),
                    },
                    bytes: req_u64(j, "bytes")?,
                    class: req_u64(j, "class")? as u8,
                    weight_pct: req_u32(j, "weight_pct")?,
                    start_ms: req_u64(j, "start_ms")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        if let Some(bad) = jobs
            .iter()
            .find(|j| j.bytes == 0 || j.weight_pct == 0 || j.weight_pct > 10_000)
        {
            return Err(format!("degenerate job {bad:?}"));
        }

        let background = v
            .get("background")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(|b| {
                Ok(BgSpec {
                    src: req_u32(b, "src")?,
                    dst: req_u32(b, "dst")?,
                    heavy: b
                        .get("heavy")
                        .and_then(Json::as_bool)
                        .ok_or("missing \"heavy\"")?,
                    scale_pct: req_u32(b, "scale_pct")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;

        let faults = v
            .get("faults")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(|f| {
                Ok(FaultSpec {
                    link: req_u32(f, "link")?,
                    at_ms: req_u64(f, "at_ms")?,
                    factor_pct: req_u32(f, "factor_pct")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;

        let churn = v
            .get("churn")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(|c| {
                Ok(ChurnSpec {
                    src: req_u32(c, "src")?,
                    dst: req_u32(c, "dst")?,
                    flows: req_u32(c, "flows")?,
                    bytes: req_u64(c, "bytes")?,
                    gap_ms: req_u64(c, "gap_ms")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        if let Some(bad) = churn.iter().find(|c| c.flows == 0 || c.bytes == 0) {
            return Err(format!("degenerate churn generator {bad:?}"));
        }

        let chaos = v
            .get("chaos")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(|c| {
                Ok(ChaosSpec {
                    client: req_u32(c, "client")?,
                    frontend: req_u32(c, "frontend")?,
                    bytes: req_u64(c, "bytes")?,
                    throttle_pct: req_u32(c, "throttle_pct")?,
                    transient_pct: req_u32(c, "transient_pct")?,
                    retry_after_ms: req_u64(c, "retry_after_ms")?,
                    deadline_ms: c.get("deadline_ms").and_then(Json::as_u64).unwrap_or(0),
                    start_ms: req_u64(c, "start_ms")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        if let Some(bad) = chaos
            .iter()
            .find(|c| c.bytes == 0 || c.throttle_pct + c.transient_pct > 100)
        {
            return Err(format!("degenerate chaos session {bad:?}"));
        }
        let sync = v
            .get("sync")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(|s| {
                Ok(SyncSpec {
                    client: req_u32(s, "client")?,
                    relay: req_u32(s, "relay")?,
                    files: req_u32(s, "files")?,
                    file_kb: req_u32(s, "file_kb")?,
                    rounds: req_u32(s, "rounds")?,
                    cache_kb: req_u32(s, "cache_kb")?,
                    dataset: req_u32(s, "dataset")?,
                    churny: s
                        .get("churny")
                        .and_then(Json::as_bool)
                        .ok_or("missing \"churny\"")?,
                    start_ms: req_u64(s, "start_ms")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        if let Some(bad) = sync
            .iter()
            .find(|s| s.files == 0 || s.file_kb == 0 || s.rounds == 0 || s.cache_kb == 0)
        {
            return Err(format!("degenerate sync session {bad:?}"));
        }
        if jobs.is_empty() && chaos.is_empty() && sync.is_empty() {
            return Err("scenario needs at least one job, chaos session or sync session".into());
        }

        let replicas = match v.get("replicas") {
            None => 1,
            Some(r) => u32::try_from(r.as_u64().ok_or("non-integer \"replicas\"")?)
                .map_err(|_| "replicas out of range".to_string())?,
        };
        if replicas == 0 || replicas > 8 {
            return Err(format!("replicas must be in 1..=8, got {replicas}"));
        }

        Ok(ScenarioSpec {
            seed: req_u64(v, "seed")?,
            topo,
            jitter_pct: req_u32(v, "jitter_pct")?,
            jobs,
            background,
            faults,
            churn,
            chaos,
            sync,
            replicas,
        })
    }
}

/// Derive the seed of case `index` from a base seed (FNV-1a over both), so
/// `detour check --seed S` explores a deterministic but spread-out sequence.
pub fn case_seed(base: u64, index: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in base.to_le_bytes().into_iter().chain(index.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = ScenarioSpec::generate(42);
        let b = ScenarioSpec::generate(42);
        assert_eq!(a, b);
        assert_ne!(a, ScenarioSpec::generate(43));
    }

    #[test]
    fn generated_specs_round_trip_through_json() {
        for i in 0..50 {
            let spec = ScenarioSpec::generate(case_seed(7, i));
            let text = spec.to_json();
            let back = ScenarioSpec::from_json(&text).expect("parses");
            assert_eq!(back, spec, "round trip failed for case {i}: {text}");
        }
    }

    #[test]
    fn case_seeds_are_spread() {
        let seeds: std::collections::HashSet<u64> = (0..100).map(|i| case_seed(7, i)).collect();
        assert_eq!(seeds.len(), 100);
        assert_ne!(case_seed(7, 0), case_seed(8, 0));
    }

    #[test]
    fn malformed_specs_are_rejected() {
        assert!(ScenarioSpec::from_json("{}").is_err());
        // No jobs.
        let spec = ScenarioSpec {
            seed: 1,
            topo: TopoSpec::Star {
                hosts: 2,
                access_mbps: 10,
            },
            jitter_pct: 0,
            jobs: vec![],
            background: vec![],
            faults: vec![],
            churn: vec![],
            chaos: vec![],
            sync: vec![],
            replicas: 1,
        };
        assert!(ScenarioSpec::from_json(&spec.to_json()).is_err());
        // One-host star.
        let text = spec.to_json().replace("\"hosts\":2", "\"hosts\":1");
        assert!(ScenarioSpec::from_json(&text).is_err());
    }

    #[test]
    fn churn_round_trips_and_rejects_degenerates() {
        let mut spec = ScenarioSpec {
            seed: 1,
            topo: TopoSpec::Star {
                hosts: 3,
                access_mbps: 10,
            },
            jitter_pct: 0,
            jobs: vec![JobSpec {
                src: 0,
                dst: 1,
                via: None,
                bytes: 1024,
                class: 0,
                weight_pct: 100,
                start_ms: 0,
            }],
            background: vec![],
            faults: vec![],
            churn: vec![ChurnSpec {
                src: 0,
                dst: 2,
                flows: 50,
                bytes: 4096,
                gap_ms: 5,
            }],
            chaos: vec![],
            sync: vec![],
            replicas: 1,
        };
        let back = ScenarioSpec::from_json(&spec.to_json()).expect("parses");
        assert_eq!(back, spec);

        // Empty churn is omitted from the JSON (pre-churn replay files
        // stay byte-compatible) and parses back as empty.
        spec.churn.clear();
        let text = spec.to_json();
        assert!(!text.contains("churn"));
        assert_eq!(ScenarioSpec::from_json(&text).expect("parses"), spec);

        // Zero-flow and zero-byte churn generators are rejected.
        spec.churn = vec![ChurnSpec {
            src: 0,
            dst: 1,
            flows: 0,
            bytes: 4096,
            gap_ms: 0,
        }];
        assert!(ScenarioSpec::from_json(&spec.to_json()).is_err());
        spec.churn = vec![ChurnSpec {
            src: 0,
            dst: 1,
            flows: 1,
            bytes: 0,
            gap_ms: 0,
        }];
        assert!(ScenarioSpec::from_json(&spec.to_json()).is_err());
    }

    #[test]
    fn chaos_generation_is_deterministic_and_round_trips() {
        let a = ScenarioSpec::generate_chaos(42);
        assert_eq!(a, ScenarioSpec::generate_chaos(42));
        assert!(!a.chaos.is_empty(), "chaos class always has sessions");
        for i in 0..50 {
            let spec = ScenarioSpec::generate_chaos(case_seed(13, i));
            assert!(spec.chaos.len() <= 3 && !spec.chaos.is_empty());
            assert!(!spec.faults.is_empty(), "capacity faults always on");
            for c in &spec.chaos {
                assert!(c.throttle_pct + c.transient_pct <= 100);
                assert!(c.throttle_pct + c.transient_pct >= 20, "storms are severe");
            }
            let back = ScenarioSpec::from_json(&spec.to_json()).expect("parses");
            assert_eq!(back, spec, "round trip failed for chaos case {i}");
        }
    }

    #[test]
    fn chaos_rejects_degenerates_and_is_omitted_when_empty() {
        let mut spec = ScenarioSpec::generate_chaos(7);
        // Standard-class specs never mention chaos in their JSON.
        let std_text = ScenarioSpec::generate(7).to_json();
        assert!(!std_text.contains("chaos"));
        // A chaos-only scenario (no foreground jobs) is valid.
        spec.jobs.clear();
        let back = ScenarioSpec::from_json(&spec.to_json()).expect("parses");
        assert_eq!(back, spec);
        // Over-100% combined fault probability is rejected.
        spec.chaos[0].throttle_pct = 80;
        spec.chaos[0].transient_pct = 30;
        assert!(ScenarioSpec::from_json(&spec.to_json()).is_err());
        spec.chaos[0].transient_pct = 0;
        spec.chaos[0].bytes = 0;
        assert!(ScenarioSpec::from_json(&spec.to_json()).is_err());
    }

    #[test]
    fn sync_generation_is_deterministic_and_round_trips() {
        let a = ScenarioSpec::generate_sync(42);
        assert_eq!(a, ScenarioSpec::generate_sync(42));
        assert!(!a.sync.is_empty(), "sync class always has sessions");
        for i in 0..50 {
            let spec = ScenarioSpec::generate_sync(case_seed(13, i));
            assert!(!spec.sync.is_empty() && spec.sync.len() <= 2);
            for s in &spec.sync {
                assert!(s.files >= 1 && s.file_kb >= 4 && s.rounds >= 1);
                assert!(s.cache_kb >= 2);
            }
            let back = ScenarioSpec::from_json(&spec.to_json()).expect("parses");
            assert_eq!(back, spec, "round trip failed for sync case {i}");
        }
        // Some generated stores are small enough to evict mid-run.
        assert!((0..50).any(|i| {
            ScenarioSpec::generate_sync(case_seed(13, i))
                .sync
                .iter()
                .any(|s| s.cache_kb <= 8)
        }));
    }

    #[test]
    fn sync_rejects_degenerates_and_is_omitted_when_empty() {
        // Standard- and chaos-class specs never mention sync in their JSON.
        assert!(!ScenarioSpec::generate(7).to_json().contains("sync"));
        assert!(!ScenarioSpec::generate_chaos(7).to_json().contains("sync"));
        // A sync-only scenario (no jobs, no chaos) is valid.
        let mut spec = ScenarioSpec::generate_sync(9);
        spec.jobs.clear();
        let back = ScenarioSpec::from_json(&spec.to_json()).expect("parses");
        assert_eq!(back, spec);
        // Zero files / rounds / cache are rejected.
        for field in ["files", "rounds", "cache_kb"] {
            let v = match field {
                "files" => spec.sync[0].files,
                "rounds" => spec.sync[0].rounds,
                _ => spec.sync[0].cache_kb,
            };
            let text = spec
                .to_json()
                .replace(&format!("\"{field}\":{v}"), &format!("\"{field}\":0"));
            assert!(
                ScenarioSpec::from_json(&text).is_err(),
                "accepted {field}=0"
            );
        }
    }

    #[test]
    fn replicas_round_trip_and_reject_degenerates() {
        let mut spec = ScenarioSpec::generate(3);
        spec.replicas = 3;
        let text = spec.to_json();
        assert!(text.contains("\"replicas\":3"));
        assert_eq!(ScenarioSpec::from_json(&text).expect("parses"), spec);

        // Single-replica specs omit the field entirely, so pre-sharding
        // replay files stay byte-compatible.
        spec.replicas = 1;
        let text = spec.to_json();
        assert!(!text.contains("replicas"));
        assert_eq!(ScenarioSpec::from_json(&text).expect("parses"), spec);

        for bad in ["\"replicas\":0", "\"replicas\":9"] {
            let mut broken = ScenarioSpec::from_json(&text).expect("parses");
            broken.replicas = 2;
            let t = broken.to_json().replace("\"replicas\":2", bad);
            assert!(ScenarioSpec::from_json(&t).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn cells_reseed_replicas_and_keep_singletons_intact() {
        let mut spec = ScenarioSpec::generate(11);
        spec.replicas = 1;
        assert_eq!(spec.cells(), vec![spec.clone()], "one cell, seed untouched");

        spec.replicas = 3;
        let cells = spec.cells();
        assert_eq!(cells.len(), 3);
        let seeds: std::collections::HashSet<u64> = cells.iter().map(|c| c.seed).collect();
        assert_eq!(seeds.len(), 3, "each cell gets its own seed");
        for (k, cell) in cells.iter().enumerate() {
            assert_eq!(cell.replicas, 1, "cells are not themselves replicated");
            assert_eq!(cell.seed, case_seed(spec.seed, k as u32));
            assert_eq!(cell.topo, spec.topo, "cells share the world shape");
            assert_eq!(cell.jobs, spec.jobs);
        }
    }

    #[test]
    fn generation_draws_replicated_cases() {
        let replicated = (0..200)
            .filter(|&i| ScenarioSpec::generate(case_seed(5, i)).replicas > 1)
            .count();
        assert!(
            (10..=80).contains(&replicated),
            "expected ~20% replicated standard cases, got {replicated}/200"
        );
        assert!((0..200).any(|i| ScenarioSpec::generate_chaos(case_seed(5, i)).replicas > 1));
    }

    #[test]
    fn node_counts() {
        assert_eq!(
            TopoSpec::Star {
                hosts: 2,
                access_mbps: 10
            }
            .node_count(),
            3
        );
        assert_eq!(
            TopoSpec::Synth {
                transit: 2,
                stubs: 1,
                hosts: 2,
                core_mbps: 500,
                access_lo_mbps: 5,
                access_hi_mbps: 50,
                topo_seed: 1
            }
            .node_count(),
            5
        );
    }
}
