//! Invariant oracles checked after every simulator event.
//!
//! The oracle is an [`AuditHook`] installed into a [`netsim::engine::Sim`].
//! After each event it sees a read-only [`AuditView`] of the engine and
//! checks four safety properties:
//!
//! 1. **Time monotonicity** — the clock never runs backwards.
//! 2. **Capacity** — the rates of active flows crossing any resource (link
//!    or aggregate policer) never sum above its effective capacity.
//! 3. **Max-min fairness** — the engine's allocation matches an independent
//!    re-run of [`max_min_allocate`] over the same inputs.
//! 4. **Byte conservation** — a shadow ledger integrates each flow's
//!    piecewise-constant rate over time; when the engine reports a flow
//!    delivered, the integral must equal the payload size (within a float
//!    tolerance).
//!
//! It also folds every post-event state digest into a running *chain
//! digest*; two same-seed executions of the same scenario must produce the
//! same chain, which is how [`crate::runner`] checks determinism.

use netsim::audit::{AuditHook, Digest};
use netsim::engine::AuditView;
use netsim::flow::{max_min_allocate, AllocEntry};
use netsim::time::SimTime;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Keep at most this many violations per run; one broken invariant tends to
/// fire on every subsequent event and we only need the first few.
const MAX_VIOLATIONS: usize = 64;

/// Relative tolerance for float comparisons against engine-computed values.
const REL_TOL: f64 = 1e-9;

/// A detected invariant violation.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// The simulation clock moved backwards.
    TimeRegression {
        /// Clock before the event, nanoseconds.
        prev_ns: u64,
        /// Clock after the event, nanoseconds.
        now_ns: u64,
    },
    /// Active flows were allocated more than a resource's capacity.
    OverAllocation {
        /// Resource index (links first, then aggregate policers).
        resource: usize,
        /// Sum of allocated rates crossing the resource, bytes/sec.
        used: f64,
        /// Effective capacity, bytes/sec.
        cap: f64,
        /// When, nanoseconds.
        at_ns: u64,
    },
    /// A flow's rate deviates from the independent max-min recomputation.
    UnfairAllocation {
        /// Flow id.
        flow: u64,
        /// Engine-allocated rate, bytes/sec.
        got: f64,
        /// Independently recomputed fair rate, bytes/sec.
        want: f64,
        /// When, nanoseconds.
        at_ns: u64,
    },
    /// A delivered flow's rate integral does not match its payload size.
    ByteConservation {
        /// Flow id.
        flow: u64,
        /// Payload the engine reported delivered.
        reported: u64,
        /// Shadow-ledger integral of rate over time, bytes.
        integrated: f64,
        /// When, nanoseconds.
        at_ns: u64,
    },
    /// Two same-seed executions diverged.
    Determinism {
        /// Chain digest of the first execution.
        first: u64,
        /// Chain digest of the second execution.
        second: u64,
    },
    /// The incremental and reference allocators produced different
    /// executions for the same seed. The engine guarantees the two are
    /// bitwise-identical (see `netsim::flow::FlowCore`), so any divergence
    /// in the chained state digests is an allocator bug.
    AllocatorDivergence {
        /// Chain digest under the incremental allocator.
        incremental: u64,
        /// Chain digest under the reference (full-recompute) allocator.
        reference: u64,
    },
    /// The lazy and eager progress-accounting modes produced different
    /// executions for the same seed. Both modes share the anchored progress
    /// arithmetic (see `netsim::engine::ProgressMode`), so any divergence
    /// in the chained state digests is a progress-accounting bug.
    ProgressDivergence {
        /// Chain digest under lazy (materialize-on-demand) accounting.
        lazy: u64,
        /// Chain digest under the eager per-event sweep.
        eager: u64,
    },
    /// The precomputed route oracle and the per-query reference Dijkstra
    /// produced different executions for the same seed. Both backends
    /// implement the same canonical smaller-predecessor-at-settlement
    /// tie-break (see `netsim::oracle`), so any divergence in the chained
    /// state digests is a routing bug.
    RoutingDivergence {
        /// Chain digest under the precomputed route oracle.
        oracle: u64,
        /// Chain digest under the per-query reference Dijkstra.
        reference: u64,
    },
    /// The sharded executor produced a different execution from the
    /// sequential fold over the same cells. Both paths run identical cell
    /// simulations and reduce them in cell-id order, so any divergence
    /// means a nondeterministic order (thread scheduling, completion
    /// order, slot assignment) leaked into the merge.
    ShardDivergence {
        /// Worker-thread count of the sharded run.
        workers: u32,
        /// Chain digest of the sequential execution.
        sequential: u64,
        /// Chain digest under the sharded executor.
        sharded: u64,
    },
    /// The route plane served a decision whose bits differ from a fresh
    /// source computation at the current generation (with breaker demotion
    /// applied). The cache guarantees warm, refreshed and demoted serves
    /// are all bit-identical to computing from scratch, so any divergence
    /// is a staleness, publication or demotion bug in `routeplane`.
    PlaneDivergence {
        /// Packed decision key (`routeplane::DecisionKey::pack`).
        key: u64,
        /// Current generation the fresh decision was computed at.
        generation: u64,
        /// Bits of the decision the plane served.
        served: u64,
        /// Bits of the freshly computed decision.
        fresh: u64,
    },
    /// The engine returned an error running the scenario.
    EngineError {
        /// The error's display form.
        message: String,
    },
    /// A chaotic upload session failed to settle within the termination
    /// bound derived from its retry budget or deadline (see
    /// [`crate::scenario::ChaosSpec`]): the resilience layer let it spin.
    DeadlineOverrun {
        /// Index of the chaos session within the spec.
        session: u32,
        /// The bound the session had to settle by, ms after its start.
        bound_ms: u64,
        /// When it actually settled, ms after its start.
        settled_ms: u64,
    },
    /// A delta applied at the sync relay did not reconstruct the client's
    /// file byte-for-byte (MD5 whole-file check after patching): the
    /// signature/delta/patch pipeline corrupted data in flight.
    SyncIntegrity {
        /// Index of the sync session within the spec.
        session: u32,
        /// File index within the session's population.
        file: u32,
        /// Sync pass (0 = initial replication, then mutation rounds).
        round: u32,
    },
    /// The cache-enabled and cache-bypass executions of a sync scenario
    /// delivered different final file bytes at the relay. The chunk store
    /// only re-prices the forward leg — it must never change *what* is
    /// delivered — so any content divergence is a dedup bug.
    ChunkDivergence {
        /// Content digest of the cache-enabled execution's delivered files.
        cached: u64,
        /// Content digest of the cache-bypass execution's delivered files.
        bypass: u64,
    },
}

impl Violation {
    /// Stable machine-readable kind tag (for JSON verdicts).
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::TimeRegression { .. } => "time_regression",
            Violation::OverAllocation { .. } => "over_allocation",
            Violation::UnfairAllocation { .. } => "unfair_allocation",
            Violation::ByteConservation { .. } => "byte_conservation",
            Violation::Determinism { .. } => "determinism",
            Violation::AllocatorDivergence { .. } => "allocator_divergence",
            Violation::ProgressDivergence { .. } => "progress_divergence",
            Violation::RoutingDivergence { .. } => "routing_divergence",
            Violation::ShardDivergence { .. } => "shard_divergence",
            Violation::PlaneDivergence { .. } => "plane_divergence",
            Violation::EngineError { .. } => "engine_error",
            Violation::DeadlineOverrun { .. } => "deadline_overrun",
            Violation::SyncIntegrity { .. } => "sync_integrity",
            Violation::ChunkDivergence { .. } => "chunk_divergence",
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::TimeRegression { prev_ns, now_ns } => {
                write!(f, "clock ran backwards: {prev_ns}ns -> {now_ns}ns")
            }
            Violation::OverAllocation {
                resource,
                used,
                cap,
                at_ns,
            } => write!(
                f,
                "resource {resource} over-allocated at {at_ns}ns: {used:.1} B/s > cap {cap:.1} B/s"
            ),
            Violation::UnfairAllocation {
                flow,
                got,
                want,
                at_ns,
            } => write!(
                f,
                "flow {flow} unfair at {at_ns}ns: got {got:.1} B/s, max-min says {want:.1} B/s"
            ),
            Violation::ByteConservation {
                flow,
                reported,
                integrated,
                at_ns,
            } => write!(
                f,
                "flow {flow} byte conservation at {at_ns}ns: reported {reported} B, integral {integrated:.1} B"
            ),
            Violation::Determinism { first, second } => write!(
                f,
                "same-seed executions diverged: {first:#018x} vs {second:#018x}"
            ),
            Violation::AllocatorDivergence {
                incremental,
                reference,
            } => write!(
                f,
                "incremental vs reference allocator diverged: {incremental:#018x} vs {reference:#018x}"
            ),
            Violation::ProgressDivergence { lazy, eager } => write!(
                f,
                "lazy vs eager progress accounting diverged: {lazy:#018x} vs {eager:#018x}"
            ),
            Violation::RoutingDivergence { oracle, reference } => write!(
                f,
                "route oracle vs reference Dijkstra diverged: {oracle:#018x} vs {reference:#018x}"
            ),
            Violation::ShardDivergence {
                workers,
                sequential,
                sharded,
            } => write!(
                f,
                "sharded executor ({workers} workers) diverged from sequential: {sequential:#018x} vs {sharded:#018x}"
            ),
            Violation::PlaneDivergence {
                key,
                generation,
                served,
                fresh,
            } => write!(
                f,
                "route plane served key {key:#x} at generation {generation} with bits {served:#018x}, fresh compute says {fresh:#018x}"
            ),
            Violation::EngineError { message } => write!(f, "engine error: {message}"),
            Violation::DeadlineOverrun {
                session,
                bound_ms,
                settled_ms,
            } => write!(
                f,
                "chaos session {session} settled {settled_ms}ms after start, past its {bound_ms}ms termination bound"
            ),
            Violation::SyncIntegrity {
                session,
                file,
                round,
            } => write!(
                f,
                "sync session {session} file {file} round {round}: applied delta does not reconstruct the source bytes"
            ),
            Violation::ChunkDivergence { cached, bypass } => write!(
                f,
                "cache-enabled vs cache-bypass sync delivered different bytes: {cached:#018x} vs {bypass:#018x}"
            ),
        }
    }
}

/// Shadow per-flow ledger entry.
#[derive(Debug, Clone, Copy, Default)]
struct ShadowFlow {
    /// Rate as of the previous event (0 once the flow drains).
    rate: f64,
    /// Integral of rate over time so far, bytes.
    integrated: f64,
}

#[derive(Debug, Default)]
struct OracleState {
    violations: Vec<Violation>,
    /// Running chain of post-event state digests.
    chain: u64,
    events_seen: u64,
    prev_now_ns: u64,
    shadow: HashMap<u64, ShadowFlow>,
    /// `flow_delivered` notifications buffered until the next `after_event`
    /// (the hook callback fires mid-dispatch, before time has advanced past
    /// the delivery instant is accounted for).
    delivered: Vec<(u64, u64, SimTime)>,
}

impl OracleState {
    fn push(&mut self, v: Violation) {
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(v);
        }
    }
}

/// Shared handle for reading oracle results after the run; the matching
/// [`InvariantOracle`] is boxed into the engine as its audit hook.
#[derive(Clone)]
pub struct OracleHandle {
    state: Rc<RefCell<OracleState>>,
}

impl OracleHandle {
    /// Violations detected so far (truncated at an internal cap).
    pub fn violations(&self) -> Vec<Violation> {
        self.state.borrow().violations.clone()
    }

    /// True if any invariant fired.
    pub fn violated(&self) -> bool {
        !self.state.borrow().violations.is_empty()
    }

    /// Record an externally detected violation (determinism, engine error).
    pub fn push(&self, v: Violation) {
        self.state.borrow_mut().push(v);
    }

    /// The execution's chained state digest.
    pub fn chain_digest(&self) -> u64 {
        self.state.borrow().chain
    }

    /// Events audited.
    pub fn events_seen(&self) -> u64 {
        self.state.borrow().events_seen
    }
}

/// The audit hook: install with `sim.set_audit_hook(Box::new(oracle))`.
pub struct InvariantOracle {
    state: Rc<RefCell<OracleState>>,
}

impl InvariantOracle {
    /// Create an oracle and the handle used to read its findings back.
    pub fn new() -> (InvariantOracle, OracleHandle) {
        let state = Rc::new(RefCell::new(OracleState::default()));
        (
            InvariantOracle {
                state: Rc::clone(&state),
            },
            OracleHandle { state },
        )
    }
}

impl AuditHook for InvariantOracle {
    fn after_event(&mut self, view: &AuditView<'_>) {
        let mut st = self.state.borrow_mut();
        let st = &mut *st;
        let now_ns = view.now().as_nanos();

        // 1. Monotonicity.
        if now_ns < st.prev_now_ns {
            st.push(Violation::TimeRegression {
                prev_ns: st.prev_now_ns,
                now_ns,
            });
        }

        // 4a. Advance the shadow ledger across the elapsed interval using
        // the rates that held *before* this event — the same
        // piecewise-constant fluid model the engine integrates.
        let dt = (now_ns.saturating_sub(st.prev_now_ns)) as f64 * 1e-9;
        if dt > 0.0 {
            for s in st.shadow.values_mut() {
                s.integrated += s.rate * dt;
            }
        }
        st.prev_now_ns = now_ns;

        // 4b. Settle flows the engine reported delivered during this event.
        for (flow, bytes, at) in st.delivered.drain(..) {
            let integrated = st.shadow.remove(&flow).map(|s| s.integrated).unwrap_or(0.0);
            let tol = (bytes as f64 * 1e-6).max(64.0);
            if (integrated - bytes as f64).abs() > tol && st.violations.len() < MAX_VIOLATIONS {
                st.violations.push(Violation::ByteConservation {
                    flow,
                    reported: bytes,
                    integrated,
                    at_ns: at.as_nanos(),
                });
            }
        }

        let flows = view.flows();
        let caps = view.resource_capacities();

        // 2. Capacity: sum active rates per resource.
        let mut used = vec![0.0_f64; caps.len()];
        for f in flows.iter().filter(|f| f.active) {
            for &r in f.resources {
                if let Some(u) = used.get_mut(r as usize) {
                    *u += f.rate;
                }
            }
        }
        for (r, (&u, &cap)) in used.iter().zip(caps.iter()).enumerate() {
            // Absolute slack of 1 byte/sec plus a relative term: the engine
            // sums the same f64s, so genuine bugs overshoot by far more.
            if u > cap + cap.abs() * REL_TOL + 1.0 {
                st.push(Violation::OverAllocation {
                    resource: r,
                    used: u,
                    cap,
                    at_ns: now_ns,
                });
            }
        }

        // 3. Fairness: recompute the allocation from the same inputs in the
        // same (sorted-by-id) order the engine uses.
        let active: Vec<_> = flows.iter().filter(|f| f.active).collect();
        let entries: Vec<AllocEntry> = active
            .iter()
            .map(|f| AllocEntry {
                resources: f.resources.to_vec(),
                cap: f.cap,
                weight: f.weight,
            })
            .collect();
        let want = max_min_allocate(&caps, &entries);
        for (f, &w) in active.iter().zip(want.iter()) {
            if (f.rate - w).abs() > w.abs().max(1.0) * REL_TOL.max(1e-9) + 1.0 {
                st.push(Violation::UnfairAllocation {
                    flow: f.id,
                    got: f.rate,
                    want: w,
                    at_ns: now_ns,
                });
            }
        }

        // 4c. Refresh the shadow rates for the next interval. Inactive flows
        // (drained, awaiting their Delivered event) keep a stale engine-side
        // rate; they no longer move bytes, so shadow at 0.
        for f in &flows {
            let entry = st.shadow.entry(f.id).or_default();
            entry.rate = if f.active { f.rate } else { 0.0 };
        }
        st.shadow.retain(|id, _| flows.iter().any(|f| f.id == *id));

        // Determinism chain: fold this event's digest into the running hash.
        let mut d = Digest::new();
        d.write_u64(st.chain);
        d.write_u64(view.state_digest());
        d.write_time(view.now());
        st.chain = d.finish();
        st.events_seen += 1;
    }

    fn flow_delivered(&mut self, flow: u64, bytes: u64, now: SimTime) {
        self.state.borrow_mut().delivered.push((flow, bytes, now));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::prelude::*;

    fn two_host_world() -> (Topology, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let a = b.host("a", GeoPoint::new(49.0, -123.0));
        let r = b.router("r", GeoPoint::new(45.0, -100.0));
        let z = b.host("z", GeoPoint::new(37.0, -122.0));
        b.duplex(
            a,
            r,
            LinkParams::new(Bandwidth::from_mbps(40.0), SimTime::from_millis(5)),
        );
        b.duplex(
            r,
            z,
            LinkParams::new(Bandwidth::from_mbps(20.0), SimTime::from_millis(5)),
        );
        (b.build(), a, z)
    }

    #[test]
    fn clean_transfer_has_no_violations() {
        let (topo, a, z) = two_host_world();
        let mut sim = Sim::new(topo, 11);
        let (oracle, handle) = InvariantOracle::new();
        sim.set_audit_hook(Box::new(oracle));
        sim.run_transfer(TransferRequest::new(a, z, 4 * MB))
            .unwrap();
        assert_eq!(
            handle.violations(),
            vec![],
            "clean run must be violation-free"
        );
        assert!(handle.events_seen() > 0);
        assert_ne!(handle.chain_digest(), 0);
    }

    #[test]
    fn chain_digest_is_reproducible() {
        let run = || {
            let (topo, a, z) = two_host_world();
            let mut sim = Sim::new(topo, 7);
            let (oracle, handle) = InvariantOracle::new();
            sim.set_audit_hook(Box::new(oracle));
            sim.run_transfer(TransferRequest::new(a, z, 2 * MB))
                .unwrap();
            handle.chain_digest()
        };
        assert_eq!(run(), run());
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn inflated_rates_are_caught() {
        let (topo, a, z) = two_host_world();
        let mut sim = Sim::new(topo, 11);
        sim.inject_rate_inflation(1.5);
        let (oracle, handle) = InvariantOracle::new();
        sim.set_audit_hook(Box::new(oracle));
        sim.run_transfer(TransferRequest::new(a, z, 4 * MB))
            .unwrap();
        let vs = handle.violations();
        assert!(
            vs.iter()
                .any(|v| matches!(v, Violation::OverAllocation { .. })),
            "expected an over-allocation violation, got {vs:?}"
        );
    }
}
