//! Scenario execution: build the world a [`ScenarioSpec`] describes, run it
//! under the invariant oracle, and (for checking) run it repeatedly: twice
//! with the same seed to compare determinism digests, once under the
//! reference (full-recompute) allocator, once under the eager progress
//! sweep, and once per worker count under the sharded executor — every
//! differential execution must be bit-identical to the first.
//!
//! A scenario is a list of independent *cells* ([`ScenarioSpec::cells`]):
//! single-replica scenarios are one cell, replicated ones are several.
//! [`run_once`] folds the cells sequentially; [`run_sharded`] runs the same
//! cells on worker threads via [`netsim::shard::run_shards`] and reduces
//! them in cell-id order. The two must agree bit for bit — that is the
//! shard-divergence oracle.

use crate::oracle::{InvariantOracle, OracleHandle, Violation};
use crate::scenario::{ScenarioSpec, TopoSpec};
use cloudstore::{FaultPlan, Provider, ProviderKind, RetryPolicy, UploadOptions, UploadSession};
use netsim::background::{BackgroundProfile, BackgroundTraffic};
use netsim::engine::{Ctx, Event, Process, ProcessId, ProgressMode, Sim, Value};
use netsim::flow::{FlowClass, FlowSpec};
use netsim::geo::GeoPoint;
use netsim::synth::SynthWan;
use netsim::time::SimTime;
use netsim::topology::{LinkId, LinkParams, NodeId, Topology, TopologyBuilder};
use netsim::units::Bandwidth;
use relay::ChunkStore;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use transfer::chunk::ChunkManifest;
use transfer::delta::compute_delta;
use transfer::patch::apply_delta;
use transfer::signature::Signature;
use transfer::syncpop::{MutationMix, SyncPopulation, SyncPopulationConfig};
use transfer::wire::RsyncWirePlan;

/// Livelock guard: no generated scenario comes near this many events.
const EVENT_BUDGET: u64 = 2_000_000;

/// Transfer slack added to every chaos-session termination bound: covers
/// the payload's own (possibly contended) wire time plus control RPCs,
/// far above anything a generated chaos case can legitimately need.
const CHAOS_SLACK: SimTime = SimTime::from_secs(600);

/// Knobs for a check run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOptions {
    /// Post-allocation rate multiplier injected into the engine to prove
    /// the oracles catch a broken allocator. `None` = faithful engine.
    /// Requires the `failpoints` feature; silently ignored without it.
    pub rate_inflation: Option<f64>,
    /// Run under the reference (full-recompute) allocator instead of the
    /// incremental one. [`check_case`] uses this for its differential
    /// execution; both must produce identical chained digests.
    pub reference_allocator: bool,
    /// Run with the eager per-event progress sweep (the legacy accounting,
    /// kept as an oracle) instead of lazy materialization. [`check_case`]
    /// uses this for a further differential execution; both modes must
    /// produce identical chained digests.
    pub eager_progress: bool,
    /// Route with the per-query reference Dijkstra instead of the
    /// precomputed route oracle. [`check_case`] uses this for a further
    /// differential execution; both backends must produce identical
    /// chained digests.
    pub reference_routing: bool,
    /// Record telemetry and fold the derived health-plane state (route
    /// scoreboard, window flushes) into the chained digest, extending the
    /// determinism and differential oracles over the aggregation layer.
    /// [`check_case`] forces this on for every execution.
    pub health: bool,
    /// Run sync sessions with the relay chunk store bypassed: every leg is
    /// priced as if the cache were cold and nothing is ever admitted.
    /// [`check_case`] uses this for the chunk differential — cached and
    /// bypass executions take different wire paths but must deliver
    /// byte-identical final files ([`RunOutcome::sync_digest`]).
    pub chunk_bypass: bool,
}

/// What one execution of a scenario produced.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Invariant violations the oracle detected.
    pub violations: Vec<Violation>,
    /// Chained per-event state digest (determinism fingerprint).
    pub chain_digest: u64,
    /// Events processed.
    pub events: u64,
    /// Foreground jobs that completed.
    pub jobs_completed: u64,
    /// Payload bytes the engine reported delivered (includes background).
    pub bytes_delivered: u64,
    /// Digest of the health-plane state (scoreboard + window flushes) when
    /// [`RunOptions::health`] was set; folded into `chain_digest`.
    pub health_digest: Option<u64>,
    /// Merged flow-delivery duration sketch (the engine's
    /// `netsim.flow.duration_ns` window series) when [`RunOptions::health`]
    /// was set. Cross-cell reduction uses the sketch's commutative-monoid
    /// merge, so sequential and sharded runs produce identical bytes.
    pub delivery: Option<obs::QuantileSketch>,
    /// Digest of the final file bytes every sync session delivered at its
    /// relay, folded in session-index order (`Some` iff the spec has sync
    /// sessions). Depends only on the mutation seeds, never on wire timing,
    /// so cache-enabled and cache-bypass executions must agree — that is
    /// the [`Violation::ChunkDivergence`] differential.
    pub sync_digest: Option<u64>,
}

/// Result of checking one scenario (two same-seed executions plus a
/// reference-allocator execution).
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// The scenario that was run.
    pub spec: ScenarioSpec,
    /// All violations: first execution's, plus a determinism violation if
    /// the second execution diverged.
    pub violations: Vec<Violation>,
    /// Events processed by the first execution.
    pub events: u64,
    /// Jobs completed by the first execution.
    pub jobs_completed: u64,
}

impl CaseResult {
    /// Did every invariant hold?
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The built world: topology plus the host list scenario indices refer to.
struct World {
    topo: Topology,
    hosts: Vec<NodeId>,
}

fn build_world(topo: &TopoSpec) -> World {
    match *topo {
        TopoSpec::Synth {
            transit,
            stubs,
            hosts,
            core_mbps,
            access_lo_mbps,
            access_hi_mbps,
            topo_seed,
        } => {
            let w = SynthWan {
                transit: transit as usize,
                stubs: stubs as usize,
                hosts: hosts as usize,
                core_mbps: core_mbps as f64,
                access_mbps: (access_lo_mbps as f64, access_hi_mbps as f64),
                seed: topo_seed,
            }
            .build();
            World {
                topo: w.topo,
                hosts: w.hosts,
            }
        }
        TopoSpec::Star { hosts, access_mbps } => {
            let mut b = TopologyBuilder::new();
            let hub = b.router("hub", GeoPoint::new(45.0, -100.0));
            let spokes: Vec<NodeId> = (0..hosts)
                .map(|i| {
                    let h = b.host(
                        &format!("host{i}"),
                        GeoPoint::new(30.0 + i as f64, -120.0 + i as f64),
                    );
                    b.duplex(
                        h,
                        hub,
                        LinkParams::new(
                            Bandwidth::from_mbps(access_mbps as f64),
                            SimTime::from_millis(2),
                        ),
                    );
                    h
                })
                .collect();
            World {
                topo: b.build(),
                hosts: spokes,
            }
        }
    }
}

/// A concrete foreground job with spec indices resolved to nodes.
struct ResolvedJob {
    src: NodeId,
    dst: NodeId,
    via: Option<NodeId>,
    bytes: u64,
    class: FlowClass,
    weight: f64,
    start: SimTime,
}

fn resolve_hosts(spec: &ScenarioSpec, hosts: &[NodeId]) -> Vec<ResolvedJob> {
    let n = hosts.len() as u32;
    spec.jobs
        .iter()
        .map(|j| {
            let src = j.src % n;
            let mut dst = j.dst % n;
            if dst == src {
                dst = (dst + 1) % n;
            }
            let via = j.via.map(|v| v % n).filter(|&v| v != src && v != dst);
            ResolvedJob {
                src: hosts[src as usize],
                dst: hosts[dst as usize],
                via: via.map(|v| hosts[v as usize]),
                bytes: j.bytes,
                class: match j.class % 4 {
                    0 => FlowClass::Commodity,
                    1 => FlowClass::Research,
                    2 => FlowClass::PlanetLab,
                    _ => FlowClass::Background,
                },
                weight: j.weight_pct as f64 / 100.0,
                start: SimTime::from_millis(j.start_ms),
            }
        })
        .collect()
}

/// A concrete chaos session with spec indices resolved to nodes and the
/// fault plan / retry policy / termination bound precomputed.
struct ResolvedChaos {
    client: NodeId,
    provider: Provider,
    bytes: u64,
    policy: RetryPolicy,
    start: SimTime,
    /// Settle-by bound, measured from the session's start.
    bound: SimTime,
}

fn resolve_chaos(spec: &ScenarioSpec, hosts: &[NodeId]) -> Vec<ResolvedChaos> {
    let n = hosts.len() as u32;
    spec.chaos
        .iter()
        .map(|c| {
            let client = c.client % n;
            let mut frontend = c.frontend % n;
            if frontend == client {
                frontend = (frontend + 1) % n;
            }
            let plan = FaultPlan {
                throttle_prob: c.throttle_pct as f64 / 100.0,
                transient_prob: c.transient_pct as f64 / 100.0,
                retry_after: SimTime::from_millis(c.retry_after_ms),
                ..FaultPlan::none()
            };
            let mut policy = RetryPolicy::from_plan(&plan);
            if c.deadline_ms > 0 {
                policy = policy.with_deadline(SimTime::from_millis(c.deadline_ms));
            }
            // Termination bound. With a deadline, every allowed retry wait
            // resumes by the deadline, so the session settles within
            // deadline + transfer slack. Without one, the retry budget caps
            // the number of waits and each wait is at most
            // max(retry_after, jittered max backoff ≤ base·2⁴·1.25).
            let wait_cap_ms = c.retry_after_ms.max(500 * 20);
            let bound = if c.deadline_ms > 0 {
                SimTime::from_millis(c.deadline_ms) + CHAOS_SLACK
            } else {
                SimTime::from_millis((policy.budget as u64 + 1) * wait_cap_ms) + CHAOS_SLACK
            };
            ResolvedChaos {
                client: hosts[client as usize],
                provider: Provider::new(ProviderKind::Dropbox, hosts[frontend as usize])
                    .with_faults(plan),
                bytes: c.bytes,
                policy,
                start: SimTime::from_millis(c.start_ms),
                bound,
            }
        })
        .collect()
}

/// rsync block size every sync session uses. Small relative to the 4-32 KiB
/// generated files so deltas have real structure.
const SYNC_BLOCK_SIZE: usize = 1024;

/// Chunk size the relay store chunks manifests at. Smaller than the block
/// size would be pointless; 2 KiB gives a handful of chunks per file.
const SYNC_CHUNK_SIZE: usize = 2048;

/// Per-cell ledger the sync sessions deposit their final content digests
/// into: (session index, digest of delivered file bytes). Sorted by session
/// index before folding so completion order — which legitimately differs
/// between cached and bypass executions — cannot leak into the digest.
type SyncLedger = Rc<RefCell<Vec<(u32, u64)>>>;

/// A sync session ready to spawn: spec indices resolved to nodes, the
/// shared per-relay chunk store attached (`None` under
/// [`RunOptions::chunk_bypass`]).
struct ResolvedSync {
    session: u32,
    client: NodeId,
    relay: NodeId,
    files: usize,
    file_len: usize,
    rounds: u32,
    churny: bool,
    pop_seed: u64,
    start: SimTime,
    store: Option<Rc<RefCell<ChunkStore>>>,
}

impl ResolvedSync {
    fn build(&self, oracle: OracleHandle, ledger: SyncLedger) -> SyncSession {
        let cfg = SyncPopulationConfig {
            files: self.files,
            file_len: self.file_len,
            mix: if self.churny {
                MutationMix::churny()
            } else {
                MutationMix::desktop()
            },
            max_edits: 16,
            max_append: 2048,
            max_rewrite: 4096,
        };
        SyncSession {
            session: self.session,
            client: self.client,
            relay: self.relay,
            rounds: self.rounds,
            pop: SyncPopulation::new(self.pop_seed, cfg),
            remote: vec![Vec::new(); self.files],
            store: self.store.clone(),
            ledger,
            oracle,
            pass: 0,
            file_idx: 0,
            pending: None,
            pending_manifest: None,
        }
    }
}

/// Resolve the spec's sync sessions against the built host list and wire up
/// one shared chunk store per distinct relay host (sessions landing on the
/// same relay deduplicate against each other — the store's whole point).
/// Returns the sessions plus the stores in first-use order, the canonical
/// order their digests fold into the chain digest in.
fn resolve_sync(
    spec: &ScenarioSpec,
    hosts: &[NodeId],
    bypass: bool,
) -> (Vec<ResolvedSync>, Vec<Rc<RefCell<ChunkStore>>>) {
    let n = hosts.len() as u32;
    let mut by_relay: HashMap<u32, Rc<RefCell<ChunkStore>>> = HashMap::new();
    let mut store_order = Vec::new();
    let sync = spec
        .sync
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let client = s.client % n;
            let mut relay = s.relay % n;
            if relay == client {
                relay = (relay + 1) % n;
            }
            let store = if bypass {
                None
            } else {
                Some(Rc::clone(by_relay.entry(relay).or_insert_with(|| {
                    // The first session landing on a relay sizes its store.
                    let st = Rc::new(RefCell::new(ChunkStore::new(s.cache_kb as u64 * 1024)));
                    store_order.push(Rc::clone(&st));
                    st
                })))
            };
            ResolvedSync {
                session: i as u32,
                client: hosts[client as usize],
                relay: hosts[relay as usize],
                files: s.files as usize,
                file_len: s.file_kb as usize * 1024,
                rounds: s.rounds,
                churny: s.churny,
                // Keyed by dataset id (shared ids seed identical content —
                // the cross-tenant dedup case) and namespaced well away
                // from the 0..replicas cell reseeds.
                pop_seed: crate::scenario::case_seed(spec.seed, 0x5e5e + s.dataset),
                start: SimTime::from_millis(s.start_ms),
                store,
            }
        })
        .collect();
    (sync, store_order)
}

/// One delta-sync session: replicate the population to the relay (pass 0),
/// then advance it one mutation round per pass and rsync every file. Each
/// file transfer moves exactly the bytes the real exchange would — the
/// exact [`RsyncWirePlan`] with the delta leg re-priced through the chunk
/// store when one is attached — and on completion the delta is *actually
/// applied* to the relay's copy and verified byte-for-byte
/// ([`Violation::SyncIntegrity`] on mismatch). Finishes with the digest of
/// the delivered files.
struct SyncSession {
    session: u32,
    client: NodeId,
    relay: NodeId,
    rounds: u32,
    pop: SyncPopulation,
    /// Relay-side copies, updated as legs land.
    remote: Vec<Vec<u8>>,
    store: Option<Rc<RefCell<ChunkStore>>>,
    ledger: SyncLedger,
    oracle: OracleHandle,
    /// 0 = initial replication, then one mutation round per pass.
    pass: u32,
    file_idx: usize,
    /// Client content in flight (installed when the flow completes).
    pending: Option<Vec<u8>>,
    /// Manifest to admit to the store once the bytes arrive.
    pending_manifest: Option<ChunkManifest>,
}

impl SyncSession {
    /// Start the next file leg, or advance a round / finish when the pass
    /// is exhausted.
    fn kick(&mut self, ctx: &mut Ctx<'_>) {
        if self.file_idx >= self.pop.len() {
            self.file_idx = 0;
            self.pass += 1;
            if self.pass > self.rounds {
                let digest = content_digest(&self.remote);
                self.ledger.borrow_mut().push((self.session, digest));
                ctx.finish(Value::U64(digest));
                return;
            }
            self.pop.advance();
        }
        let f = self.file_idx;
        let local = self.pop.file(f).to_vec();
        let plan = RsyncWirePlan::exact(&self.remote[f], &local, SYNC_BLOCK_SIZE);
        let mut wire = plan.total_bytes();
        if let Some(store) = &self.store {
            let manifest = ChunkManifest::of(&local, SYNC_CHUNK_SIZE);
            let dedup = store.borrow_mut().plan(&manifest);
            if dedup.wire_bytes < plan.delta_bytes {
                wire = wire - plan.delta_bytes + dedup.wire_bytes;
            }
            self.pending_manifest = Some(manifest);
        }
        self.pending = Some(local);
        let spec = FlowSpec::new(self.client, self.relay, wire.max(1), FlowClass::Commodity);
        if ctx.start_flow(spec).is_err() {
            self.oracle.push(Violation::EngineError {
                message: format!("sync session {} leg unroutable", self.session),
            });
            ctx.finish(Value::U64(0));
        }
    }

    /// A leg landed: run the real signature/delta/patch pipeline against
    /// the relay's basis and verify it reconstructs the client's bytes.
    fn land(&mut self, ctx: &mut Ctx<'_>) {
        let local = self
            .pending
            .take()
            .expect("flow landed without a pending sync leg");
        let f = self.file_idx;
        let sig = Signature::compute(&self.remote[f], SYNC_BLOCK_SIZE);
        let delta = compute_delta(&sig, &local);
        let ok = matches!(
            apply_delta(&self.remote[f], SYNC_BLOCK_SIZE, &delta), Ok(p) if p == local
        );
        if !ok {
            self.oracle.push(Violation::SyncIntegrity {
                session: self.session,
                file: f as u32,
                round: self.pass,
            });
        }
        if let (Some(store), Some(m)) = (&self.store, self.pending_manifest.take()) {
            store.borrow_mut().admit(&m);
        }
        self.remote[f] = local;
        self.file_idx += 1;
        self.kick(ctx);
    }
}

impl Process for SyncSession {
    fn poll(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Started => self.kick(ctx),
            Event::FlowCompleted { .. } => self.land(ctx),
            Event::FlowFailed { .. } => {
                self.oracle.push(Violation::EngineError {
                    message: format!("sync session {} leg failed", self.session),
                });
                ctx.finish(Value::U64(0));
            }
            Event::Timer { .. } | Event::ChildDone { .. } => {}
        }
    }

    fn name(&self) -> &'static str {
        "simcheck-sync"
    }

    fn digest_into(&self, d: &mut netsim::audit::Digest) {
        d.write_u64(self.pass as u64);
        d.write_u64(self.file_idx as u64);
        d.write_u64(self.remote.iter().map(|f| f.len() as u64).sum());
        d.write_u64(self.pending.as_ref().map_or(0, |p| p.len() as u64));
    }
}

/// Digest of the relay-side file bytes a session delivered.
fn content_digest(remote: &[Vec<u8>]) -> u64 {
    let mut d = netsim::audit::Digest::new();
    d.write_u64(remote.len() as u64);
    for f in remote {
        d.write_u64(f.len() as u64);
        d.write_bytes(f);
    }
    d.finish()
}

/// Root process: starts every job, chaos session and sync session at its
/// scheduled time, finishes when all have completed or failed. Chaos
/// sessions are watched against their termination bounds; an overrun is
/// pushed straight into the oracle as a [`Violation::DeadlineOverrun`].
struct Driver {
    jobs: Vec<ResolvedJob>,
    chaos: Vec<ResolvedChaos>,
    sync: Vec<ResolvedSync>,
    ledger: SyncLedger,
    oracle: OracleHandle,
    /// Live chaos sessions: child pid → (index, started, bound).
    chaos_watch: HashMap<ProcessId, (u32, SimTime, SimTime)>,
    outstanding: u64,
    completed: u64,
}

impl Process for Driver {
    fn poll(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Started => {
                self.outstanding = (self.jobs.len() + self.chaos.len() + self.sync.len()) as u64;
                if self.outstanding == 0 {
                    ctx.finish(Value::U64(0));
                    return;
                }
                for (i, j) in self.jobs.iter().enumerate() {
                    ctx.set_timer(j.start, i as u64);
                }
                for (k, c) in self.chaos.iter().enumerate() {
                    ctx.set_timer(c.start, (self.jobs.len() + k) as u64);
                }
                for (k, s) in self.sync.iter().enumerate() {
                    ctx.set_timer(s.start, (self.jobs.len() + self.chaos.len() + k) as u64);
                }
            }
            Event::Timer { tag } if (tag as usize) < self.jobs.len() => {
                let j = &self.jobs[tag as usize];
                let mut spec = FlowSpec::new(j.src, j.dst, j.bytes, j.class).with_weight(j.weight);
                if let Some(via) = j.via {
                    // Pin the detour path src → via → dst, the relay routing
                    // the paper's detour system installs.
                    match (ctx.resolve_path(j.src, via), ctx.resolve_path(via, j.dst)) {
                        (Ok(mut head), Ok(tail)) => {
                            head.extend_from_slice(&tail[1..]);
                            spec = spec.with_path(head);
                        }
                        _ => {
                            // Unroutable detour: fall back to direct routing.
                        }
                    }
                }
                if ctx.start_flow(spec).is_err() {
                    self.settle_one(ctx, false);
                }
            }
            Event::Timer { tag } if (tag as usize) < self.jobs.len() + self.chaos.len() => {
                let k = tag as usize - self.jobs.len();
                let c = &self.chaos[k];
                let mut opts = UploadOptions::warm(FlowClass::Commodity);
                opts.retry = Some(c.policy);
                let session = UploadSession::new(c.client, c.provider.clone(), c.bytes, opts);
                let pid = ctx.spawn(Box::new(session));
                self.chaos_watch.insert(pid, (k as u32, ctx.now(), c.bound));
            }
            Event::Timer { tag } => {
                let k = tag as usize - self.jobs.len() - self.chaos.len();
                let session = self.sync[k].build(self.oracle.clone(), Rc::clone(&self.ledger));
                ctx.spawn(Box::new(session));
            }
            Event::FlowCompleted { .. } => self.settle_one(ctx, true),
            Event::FlowFailed { .. } => self.settle_one(ctx, false),
            Event::ChildDone { child, value } => {
                if let Some((idx, started, bound)) = self.chaos_watch.remove(&child) {
                    let settled = ctx.now().saturating_sub(started);
                    if settled > bound {
                        self.oracle.push(Violation::DeadlineOverrun {
                            session: idx,
                            bound_ms: bound.as_nanos() / 1_000_000,
                            settled_ms: settled.as_nanos() / 1_000_000,
                        });
                    }
                    let ok = !matches!(value, Value::Error(_));
                    self.settle_one(ctx, ok);
                } else {
                    // A sync session: integrity problems were already pushed
                    // into the oracle by the session itself.
                    self.settle_one(ctx, !matches!(value, Value::Error(_)));
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "simcheck-driver"
    }

    fn digest_into(&self, d: &mut netsim::audit::Digest) {
        d.write_u64(self.outstanding);
        d.write_u64(self.completed);
        d.write_u64(self.chaos_watch.len() as u64);
    }
}

impl Driver {
    fn settle_one(&mut self, ctx: &mut Ctx<'_>, ok: bool) {
        if ok {
            self.completed += 1;
        }
        self.outstanding -= 1;
        if self.outstanding == 0 {
            ctx.finish(Value::U64(self.completed));
        }
    }
}

/// Detached process driving one [`ChurnSpec`]: a serial chain of short
/// transfers, the next started one gap after the previous settles. Each
/// boundary reallocates the shared component and supersedes queued drain
/// events — live flow count stays at one while total rate changes grow.
struct ChurnGen {
    src: NodeId,
    dst: NodeId,
    bytes: u64,
    gap: SimTime,
    remaining: u32,
}

impl Process for ChurnGen {
    fn poll(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Started | Event::Timer { .. } => self.kick(ctx),
            Event::FlowCompleted { .. } | Event::FlowFailed { .. } => {
                if self.remaining == 0 {
                    ctx.finish(Value::None);
                } else {
                    // A zero gap still defers one event: back-to-back flow
                    // boundaries at distinct queue sequence numbers.
                    ctx.set_timer(self.gap, 0);
                }
            }
            Event::ChildDone { .. } => {}
        }
    }

    fn name(&self) -> &'static str {
        "simcheck-churn"
    }

    fn digest_into(&self, d: &mut netsim::audit::Digest) {
        d.write_u64(self.remaining as u64);
    }
}

impl ChurnGen {
    fn kick(&mut self, ctx: &mut Ctx<'_>) {
        if self.remaining == 0 {
            ctx.finish(Value::None);
            return;
        }
        self.remaining -= 1;
        let spec = FlowSpec::new(self.src, self.dst, self.bytes, FlowClass::Background);
        if ctx.start_flow(spec).is_err() {
            ctx.finish(Value::None);
        }
    }
}

/// Execute a scenario once under the oracle: its cells run sequentially
/// in cell order and fold via [`merge_outcomes`]. For the overwhelmingly
/// common single-cell scenario the fold is the identity, so this is
/// byte-for-byte the pre-sharding behavior.
pub fn run_once(spec: &ScenarioSpec, opts: RunOptions) -> RunOutcome {
    let outs = spec.cells().iter().map(|c| run_cell(c, opts)).collect();
    merge_outcomes(outs)
}

/// Execute a scenario under the sharded executor: its cells run on up to
/// `workers` scoped worker threads ([`netsim::shard::run_shards`]) and are
/// reduced in cell-id order regardless of completion order. Bit-identical
/// to [`run_once`] for every scenario and worker count — [`check_case`]
/// proves it per case and flags [`Violation::ShardDivergence`] otherwise.
pub fn run_sharded(spec: &ScenarioSpec, opts: RunOptions, workers: usize) -> RunOutcome {
    let outs = netsim::shard::run_shards(spec.cells(), workers, |_, cell| run_cell(&cell, opts));
    merge_outcomes(outs)
}

/// Fold per-cell outcomes in cell-id order. A single cell passes through
/// untouched (digest identity); multiple cells fold their chain and health
/// digests via [`netsim::shard::fold_digests`], sum their counters,
/// concatenate their violations, and merge their delivery sketches through
/// the commutative monoid. Every input order dependence is canonical by
/// construction: callers hand cells over in cell-id order.
fn merge_outcomes(outs: Vec<RunOutcome>) -> RunOutcome {
    if outs.len() == 1 {
        return outs.into_iter().next().expect("one outcome");
    }
    let chain =
        netsim::shard::fold_digests(&outs.iter().map(|o| o.chain_digest).collect::<Vec<_>>());
    let health_digest = outs
        .iter()
        .map(|o| o.health_digest)
        .collect::<Option<Vec<_>>>()
        .map(|ds| netsim::shard::fold_digests(&ds));
    let delivery = outs
        .iter()
        .map(|o| o.delivery.as_ref())
        .collect::<Option<Vec<_>>>()
        .map(obs::QuantileSketch::merge_all);
    let sync_digest = outs
        .iter()
        .map(|o| o.sync_digest)
        .collect::<Option<Vec<_>>>()
        .map(|ds| netsim::shard::fold_digests(&ds));
    RunOutcome {
        violations: outs.iter().flat_map(|o| o.violations.clone()).collect(),
        chain_digest: chain,
        events: outs.iter().map(|o| o.events).sum(),
        jobs_completed: outs.iter().map(|o| o.jobs_completed).sum(),
        bytes_delivered: outs.iter().map(|o| o.bytes_delivered).sum(),
        health_digest,
        delivery,
        sync_digest,
    }
}

/// Execute one cell (a single-replica world) under the oracle.
fn run_cell(spec: &ScenarioSpec, opts: RunOptions) -> RunOutcome {
    let world = build_world(&spec.topo);
    let mut sim = Sim::new(world.topo.clone(), spec.seed);
    if opts.health {
        sim.enable_telemetry();
    }
    if opts.reference_allocator {
        sim.set_allocator_mode(netsim::flow::AllocMode::Reference);
    }
    if opts.eager_progress {
        sim.set_progress_mode(ProgressMode::Eager);
    }
    if opts.reference_routing {
        sim.set_routing_mode(netsim::routing::RoutingMode::Reference);
    }
    sim.set_event_budget(EVENT_BUDGET);
    if spec.jitter_pct > 0 {
        sim.set_capacity_jitter(spec.jitter_pct as f64 / 100.0);
    }
    let n_links = world.topo.links().len() as u32;
    for f in &spec.faults {
        let link = LinkId(f.link % n_links);
        let nominal = world.topo.links()[link.0 as usize].capacity.bytes_per_sec();
        sim.schedule_capacity_change(
            link,
            SimTime::from_millis(f.at_ms),
            Bandwidth::from_bytes_per_sec(nominal * f.factor_pct as f64 / 100.0),
        );
    }
    let n_hosts = world.hosts.len() as u32;
    for bg in &spec.background {
        let src = bg.src % n_hosts;
        let mut dst = bg.dst % n_hosts;
        if dst == src {
            dst = (dst + 1) % n_hosts;
        }
        let (src, dst) = (world.hosts[src as usize], world.hosts[dst as usize]);
        let profile = if bg.heavy {
            BackgroundProfile::heavy(src, dst)
        } else {
            BackgroundProfile::moderate(src, dst)
        }
        .scaled(bg.scale_pct as f64 / 100.0);
        sim.spawn_detached(Box::new(BackgroundTraffic::new(profile)));
    }
    for c in &spec.churn {
        let src = c.src % n_hosts;
        let mut dst = c.dst % n_hosts;
        if dst == src {
            dst = (dst + 1) % n_hosts;
        }
        sim.spawn_detached(Box::new(ChurnGen {
            src: world.hosts[src as usize],
            dst: world.hosts[dst as usize],
            bytes: c.bytes,
            gap: SimTime::from_millis(c.gap_ms),
            remaining: c.flows,
        }));
    }

    #[cfg(feature = "failpoints")]
    if let Some(factor) = opts.rate_inflation {
        sim.inject_rate_inflation(factor);
    }
    #[cfg(not(feature = "failpoints"))]
    let _ = opts.rate_inflation;

    let (oracle, handle) = InvariantOracle::new();
    sim.set_audit_hook(Box::new(oracle));

    let jobs = resolve_hosts(spec, &world.hosts);
    let chaos = resolve_chaos(spec, &world.hosts);
    let (sync, stores) = resolve_sync(spec, &world.hosts, opts.chunk_bypass);
    let has_sync = !sync.is_empty();
    let ledger: SyncLedger = Rc::new(RefCell::new(Vec::new()));
    let result = sim.run_process(Box::new(Driver {
        jobs,
        chaos,
        sync,
        ledger: Rc::clone(&ledger),
        oracle: handle.clone(),
        chaos_watch: HashMap::new(),
        outstanding: 0,
        completed: 0,
    }));
    let jobs_completed = match result {
        Ok(Value::U64(n)) => n,
        Ok(_) => 0,
        Err(e) => {
            handle.push(Violation::EngineError {
                message: e.to_string(),
            });
            0
        }
    };
    let health = opts.health.then(|| health_plane_digest(&mut sim));
    // Content digest of everything the sync sessions delivered, folded in
    // session-index order (sessions may *complete* in any order — cached
    // and bypass executions pace their legs differently).
    let sync_digest = has_sync.then(|| {
        let mut entries = ledger.borrow().clone();
        entries.sort_unstable_by_key(|&(idx, _)| idx);
        let mut d = netsim::audit::Digest::new();
        d.write_u64(entries.len() as u64);
        for (idx, dg) in entries {
            d.write_u64(idx as u64);
            d.write_u64(dg);
        }
        d.finish()
    });
    // Chunk-store state, folded into the chain digest below: residency in
    // admission order plus counters, per store in first-use order. Every
    // differential execution (same-seed, reference allocator/routing, eager
    // progress, sharded) must agree on it bit for bit.
    let store_digest = has_sync.then(|| {
        let mut d = netsim::audit::Digest::new();
        d.write_u64(stores.len() as u64);
        for s in &stores {
            d.write_u64(s.borrow().digest());
        }
        d.finish()
    });
    finish_outcome(
        &sim,
        &handle,
        jobs_completed,
        health,
        store_digest,
        sync_digest,
    )
}

/// Digest the run's derived health-plane state: the route scoreboard built
/// from the recorded trace, plus every sim-time window flush (name, bounds,
/// counter value or full sketch state). Purely sim-time-derived, so it is
/// identical across same-seed and differential executions. Also returns the
/// merged flow-delivery duration sketch, the per-cell telemetry summary the
/// sharded reduction combines via the commutative monoid.
fn health_plane_digest(sim: &mut Sim) -> (u64, obs::QuantileSketch) {
    let rec = sim.take_telemetry().expect("telemetry was enabled");
    let trace = obs::Trace::from_recording(&rec);
    let mut board = obs::HealthBoard::new(obs::SloPolicy::default());
    board.ingest(&trace);
    let mut d = netsim::audit::Digest::new();
    board.fold_into(&mut |v| d.write_u64(v));
    for f in &rec.window_flushes {
        for b in f.name.bytes() {
            d.write_u64(b as u64);
        }
        d.write_u64(f.start_ns);
        d.write_u64(f.end_ns);
        match &f.value {
            obs::WindowValue::Count(c) => d.write_u64(*c),
            obs::WindowValue::Sketch(s) => s.fold_into(&mut |v| d.write_u64(v)),
        }
    }
    let delivery =
        obs::QuantileSketch::merge_all(rec.window_flushes.iter().filter_map(|f| match &f.value {
            obs::WindowValue::Sketch(s) if f.name == "netsim.flow.duration_ns" => Some(s),
            _ => None,
        }));
    (d.finish(), delivery)
}

fn finish_outcome(
    sim: &Sim,
    handle: &OracleHandle,
    jobs_completed: u64,
    health: Option<(u64, obs::QuantileSketch)>,
    store_digest: Option<u64>,
    sync_digest: Option<u64>,
) -> RunOutcome {
    let (health_digest, delivery) = match health {
        Some((h, s)) => (Some(h), Some(s)),
        None => (None, None),
    };
    RunOutcome {
        violations: handle.violations(),
        chain_digest: {
            // Fold the final full-engine digest (which includes process
            // state the per-event core digest does not) into the chain,
            // plus the health-plane digest when one was recorded, plus the
            // relay chunk-store state when sync sessions ran.
            let mut d = netsim::audit::Digest::new();
            d.write_u64(handle.chain_digest());
            d.write_u64(sim.state_digest());
            if let Some(h) = health_digest {
                d.write_u64(h);
            }
            if let Some(s) = store_digest {
                d.write_u64(s);
            }
            d.finish()
        },
        events: sim.stats().events,
        jobs_completed,
        bytes_delivered: sim.stats().bytes_delivered,
        health_digest,
        delivery,
        sync_digest,
    }
}

/// Worker counts every checked case is re-executed with under the sharded
/// executor: sequential-through-the-executor (1), plus genuinely parallel
/// 2 and 4.
pub const SHARD_WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// Operations per plane-coherence differential (see
/// [`check_plane_coherence`]).
const PLANE_COHERENCE_OPS: u64 = 1_500;

/// The route-plane coherence differential: replay a deterministic schedule
/// of lookups, generation bumps and breaker trips (derived from the spec's
/// seed) against a [`routeplane::RoutePlane`], and after every served
/// decision recompute it from scratch at the current generation with the
/// same demotion rule. Cache and fresh computation must agree bit for bit
/// — a [`Violation::PlaneDivergence`] otherwise. This is the cached-path
/// analogue of the allocator/routing differentials: same inputs, two
/// implementations (memoized vs direct), identical bits required.
pub fn check_plane_coherence(spec: &ScenarioSpec) -> Vec<Violation> {
    plane_coherence_with(spec.seed, 0)
}

/// Core of the coherence check, with a verification-generation skew used
/// by tests to prove the detector actually fires: `gen_skew > 0` verifies
/// against the wrong generation, which a generation-sensitive source must
/// expose.
fn plane_coherence_with(seed: u64, gen_skew: u64) -> Vec<Violation> {
    use routeplane::{
        splitmix64, DecisionKey, DecisionSource, Lookup, PlaneConfig, RoutePlane, ServeStatus,
        SyntheticSource, DIRECT_ROUTE,
    };
    const NODES: u32 = 256;
    let board = std::sync::Arc::new(cloudstore::TripBoard::new(NODES as usize));
    let plane = RoutePlane::new(PlaneConfig {
        shards: 8,
        providers: 3,
        vantages: 64,
        vantage_bucket_shift: 2,
        tenants: 4,
        ..PlaneConfig::default()
    })
    .with_trip_board(std::sync::Arc::clone(&board));
    let source = SyntheticSource::new(seed, 4, NODES);
    let mut violations = Vec::new();
    for i in 0..PLANE_COHERENCE_OPS {
        let h = splitmix64(seed ^ i.wrapping_mul(0x9E37_79B9));
        let now_ns = i * 1_000;
        match h % 16 {
            0 => {
                let provider = ((h >> 8) % 3) as u16;
                let lo = ((h >> 16) % 64) as u32;
                plane.invalidate_vantage_range(provider, lo, (lo + 7).min(63));
            }
            1 => {
                let node = netsim::topology::NodeId(((h >> 8) % NODES as u64) as u32);
                board.trip(node, SimTime::from_nanos(now_ns + 50_000));
            }
            2 => {
                let node = netsim::topology::NodeId(((h >> 8) % NODES as u64) as u32);
                board.close(node);
            }
            _ => {
                let key = DecisionKey {
                    vantage: ((h >> 8) % 64) as u32,
                    provider: ((h >> 24) % 3) as u16,
                    size_class: ((h >> 32) % 3) as u8,
                };
                let tenant = ((h >> 40) % 4) as u32;
                let (decision, status) = match plane.lookup(tenant, key, now_ns, &source) {
                    Lookup::Shed => continue,
                    Lookup::Served { decision, status } => (decision, status),
                };
                // Recompute from scratch at the current generation and
                // apply the demotion rule the plane claims to implement.
                let generation = plane.generations().current(key) + gen_skew;
                let entry = source.compute(key, generation);
                let fresh = if entry.best.route_idx != DIRECT_ROUTE
                    && board.is_open(entry.best.target, now_ns)
                {
                    entry.direct
                } else {
                    entry.best
                };
                let demote_expected =
                    fresh.route_idx == DIRECT_ROUTE && entry.best.route_idx != DIRECT_ROUTE;
                if decision.score.bits() != fresh.bits()
                    || decision.generation != generation
                    || (status == ServeStatus::Demoted) != demote_expected
                {
                    violations.push(Violation::PlaneDivergence {
                        key: key.pack(),
                        generation,
                        served: decision.score.bits(),
                        fresh: fresh.bits(),
                    });
                    if violations.len() >= 8 {
                        return violations;
                    }
                }
            }
        }
    }
    violations
}

/// Check one scenario at the default shard worker counts
/// ([`SHARD_WORKER_COUNTS`]); see [`check_case_at`].
pub fn check_case(spec: &ScenarioSpec, opts: RunOptions) -> CaseResult {
    check_case_at(spec, opts, &SHARD_WORKER_COUNTS)
}

/// Check one scenario: run it twice with the same seed and flag invariant
/// violations plus any determinism divergence; once more under the
/// reference allocator, once more under the eager progress sweep, and once
/// more under the per-query reference Dijkstra routing backend; then
/// once per entry of `shard_workers` under the sharded executor. Every
/// differential execution's chained digest must be identical to the
/// incremental/lazy/sequential execution's (same seed ⇒ bit-identical).
pub fn check_case_at(spec: &ScenarioSpec, opts: RunOptions, shard_workers: &[usize]) -> CaseResult {
    // Health folding is forced on so every determinism and differential
    // comparison also covers the aggregation/health plane.
    let opts = RunOptions {
        health: true,
        ..opts
    };
    let first = run_once(spec, opts);
    let second = run_once(spec, opts);
    let mut violations = first.violations.clone();
    if first.chain_digest != second.chain_digest {
        violations.push(Violation::Determinism {
            first: first.chain_digest,
            second: second.chain_digest,
        });
    }
    if !opts.reference_allocator {
        let reference = run_once(
            spec,
            RunOptions {
                reference_allocator: true,
                ..opts
            },
        );
        if first.chain_digest != reference.chain_digest {
            violations.push(Violation::AllocatorDivergence {
                incremental: first.chain_digest,
                reference: reference.chain_digest,
            });
        }
    }
    if !opts.eager_progress {
        let eager = run_once(
            spec,
            RunOptions {
                eager_progress: true,
                ..opts
            },
        );
        if first.chain_digest != eager.chain_digest {
            violations.push(Violation::ProgressDivergence {
                lazy: first.chain_digest,
                eager: eager.chain_digest,
            });
        }
    }
    if !opts.reference_routing {
        let reference = run_once(
            spec,
            RunOptions {
                reference_routing: true,
                ..opts
            },
        );
        if first.chain_digest != reference.chain_digest {
            violations.push(Violation::RoutingDivergence {
                oracle: first.chain_digest,
                reference: reference.chain_digest,
            });
        }
    }
    for &workers in shard_workers {
        let sharded = run_sharded(spec, opts, workers);
        if first.chain_digest != sharded.chain_digest {
            violations.push(Violation::ShardDivergence {
                workers: workers as u32,
                sequential: first.chain_digest,
                sharded: sharded.chain_digest,
            });
        }
    }
    // The chunk differential: re-run with the relay chunk store bypassed.
    // Wire bytes (and therefore timing and chain digests) legitimately
    // differ, but the delivered file bytes must be identical — the cache
    // only re-prices the forward leg, it never changes content.
    if !spec.sync.is_empty() && !opts.chunk_bypass {
        let bypass = run_once(
            spec,
            RunOptions {
                chunk_bypass: true,
                ..opts
            },
        );
        if first.sync_digest != bypass.sync_digest {
            violations.push(Violation::ChunkDivergence {
                cached: first.sync_digest.unwrap_or(0),
                bypass: bypass.sync_digest.unwrap_or(0),
            });
        }
    }
    violations.extend(check_plane_coherence(spec));
    CaseResult {
        spec: spec.clone(),
        violations,
        events: first.events,
        jobs_completed: first.jobs_completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{case_seed, ChurnSpec};

    #[test]
    fn generated_cases_run_clean() {
        for i in 0..8 {
            let spec = ScenarioSpec::generate(case_seed(1, i));
            let out = run_once(&spec, RunOptions::default());
            assert_eq!(
                out.violations,
                vec![],
                "case {i} violated invariants: {:?}",
                spec
            );
            assert!(out.events > 0);
        }
    }

    #[test]
    fn same_seed_reexecution_is_bit_identical() {
        let spec = ScenarioSpec::generate(case_seed(2, 0));
        let a = run_once(&spec, RunOptions::default());
        let b = run_once(&spec, RunOptions::default());
        assert_eq!(a.chain_digest, b.chain_digest);
        assert_eq!(a.events, b.events);
        assert_eq!(a.bytes_delivered, b.bytes_delivered);
    }

    #[test]
    fn reference_allocator_execution_is_bit_identical() {
        // The incremental allocator must produce the exact execution the
        // full-recompute reference does — not just close rates: identical
        // event sequences, digests and byte counts.
        for i in 0..4 {
            let spec = ScenarioSpec::generate(case_seed(9, i));
            let inc = run_once(&spec, RunOptions::default());
            let refr = run_once(
                &spec,
                RunOptions {
                    reference_allocator: true,
                    ..Default::default()
                },
            );
            assert_eq!(inc.chain_digest, refr.chain_digest, "case {i}: {spec:?}");
            assert_eq!(inc.events, refr.events, "case {i}");
            assert_eq!(inc.bytes_delivered, refr.bytes_delivered, "case {i}");
        }
    }

    #[test]
    fn reference_routing_execution_is_bit_identical() {
        // The precomputed route oracle must produce the exact execution the
        // per-query reference Dijkstra does — identical event sequences,
        // digests and byte counts.
        for i in 0..4 {
            let spec = ScenarioSpec::generate(case_seed(31, i));
            let oracle = run_once(&spec, RunOptions::default());
            let refr = run_once(
                &spec,
                RunOptions {
                    reference_routing: true,
                    ..Default::default()
                },
            );
            assert_eq!(oracle.chain_digest, refr.chain_digest, "case {i}: {spec:?}");
            assert_eq!(oracle.events, refr.events, "case {i}");
            assert_eq!(oracle.bytes_delivered, refr.bytes_delivered, "case {i}");
        }
    }

    #[test]
    fn health_plane_digest_is_deterministic_and_folded() {
        let opts = RunOptions {
            health: true,
            ..Default::default()
        };
        let spec = ScenarioSpec::generate_chaos(case_seed(23, 1));
        let a = run_once(&spec, opts);
        let b = run_once(&spec, opts);
        assert!(a.health_digest.is_some());
        assert_eq!(a.health_digest, b.health_digest);
        assert_eq!(a.chain_digest, b.chain_digest);
        // The health fold really changes the chained digest: a run without
        // it must not produce the same chain.
        let plain = run_once(&spec, RunOptions::default());
        assert_eq!(plain.health_digest, None);
        assert_ne!(plain.chain_digest, a.chain_digest);
    }

    #[test]
    fn star_topology_runs() {
        let spec = ScenarioSpec {
            seed: 5,
            topo: TopoSpec::Star {
                hosts: 2,
                access_mbps: 10,
            },
            jitter_pct: 0,
            jobs: vec![crate::scenario::JobSpec {
                src: 0,
                dst: 1,
                via: None,
                bytes: 1024 * 1024,
                class: 0,
                weight_pct: 100,
                start_ms: 0,
            }],
            background: vec![],
            faults: vec![],
            churn: vec![],
            chaos: vec![],
            sync: vec![],
            replicas: 1,
        };
        let res = check_case(&spec, RunOptions::default());
        assert!(res.ok(), "violations: {:?}", res.violations);
        assert_eq!(res.jobs_completed, 1);
    }

    #[test]
    fn eager_progress_execution_is_bit_identical() {
        for i in 0..4 {
            let spec = ScenarioSpec::generate(case_seed(11, i));
            let lazy = run_once(&spec, RunOptions::default());
            let eager = run_once(
                &spec,
                RunOptions {
                    eager_progress: true,
                    ..Default::default()
                },
            );
            assert_eq!(lazy.chain_digest, eager.chain_digest, "case {i}: {spec:?}");
            assert_eq!(lazy.events, eager.events, "case {i}");
            assert_eq!(lazy.bytes_delivered, eager.bytes_delivered, "case {i}");
        }
    }

    #[test]
    fn high_churn_case_runs_clean_under_all_executions() {
        let spec = ScenarioSpec {
            seed: 3,
            topo: TopoSpec::Star {
                hosts: 3,
                access_mbps: 20,
            },
            jitter_pct: 2,
            jobs: vec![crate::scenario::JobSpec {
                src: 0,
                dst: 1,
                via: None,
                bytes: 8 * 1024 * 1024,
                class: 0,
                weight_pct: 100,
                start_ms: 0,
            }],
            background: vec![],
            faults: vec![],
            churn: vec![
                ChurnSpec {
                    src: 0,
                    dst: 1,
                    flows: 80,
                    bytes: 32 * 1024,
                    gap_ms: 0,
                },
                ChurnSpec {
                    src: 2,
                    dst: 1,
                    flows: 60,
                    bytes: 64 * 1024,
                    gap_ms: 3,
                },
            ],
            chaos: vec![],
            sync: vec![],
            replicas: 1,
        };
        let res = check_case(&spec, RunOptions::default());
        assert!(res.ok(), "violations: {:?}", res.violations);
        assert_eq!(res.jobs_completed, 1);
        // The churn chains really ran: far more events than the lone job.
        assert!(res.events > 500, "only {} events", res.events);
    }

    #[test]
    fn chaos_cases_run_clean() {
        // Throttle storms, fault bursts and capacity faults: every session
        // must settle within its bound, with all engine invariants intact.
        for i in 0..6 {
            let spec = ScenarioSpec::generate_chaos(case_seed(17, i));
            let out = run_once(&spec, RunOptions::default());
            assert_eq!(
                out.violations,
                vec![],
                "chaos case {i} violated invariants: {:?}",
                spec
            );
            assert!(out.events > 0);
        }
    }

    #[test]
    fn chaos_case_is_deterministic_across_all_executions() {
        let spec = ScenarioSpec::generate_chaos(case_seed(19, 0));
        let res = check_case(&spec, RunOptions::default());
        assert!(res.ok(), "violations: {:?}", res.violations);
    }

    #[test]
    fn hopeless_throttle_storm_terminates_in_bounded_sim_time() {
        // 100% throttling: the retry budget must end the session with an
        // error well inside its termination bound and the event budget —
        // the regression guard for the unbounded-429 retry loop.
        let spec = ScenarioSpec {
            seed: 9,
            topo: TopoSpec::Star {
                hosts: 2,
                access_mbps: 20,
            },
            jitter_pct: 0,
            jobs: vec![],
            background: vec![],
            faults: vec![],
            churn: vec![],
            chaos: vec![crate::scenario::ChaosSpec {
                client: 0,
                frontend: 1,
                bytes: 4 * 1024 * 1024,
                throttle_pct: 100,
                transient_pct: 0,
                retry_after_ms: 1000,
                deadline_ms: 0,
                start_ms: 0,
            }],
            sync: vec![],
            replicas: 1,
        };
        let out = run_once(&spec, RunOptions::default());
        assert_eq!(out.violations, vec![], "violations: {:?}", out.violations);
        // The session settled (the driver finished) but never succeeded.
        assert_eq!(out.jobs_completed, 0);
        assert!(out.events < EVENT_BUDGET / 10, "events: {}", out.events);
    }

    #[test]
    fn chaos_deadline_is_enforced() {
        // A deadline-armed session under heavy throttling must settle by
        // deadline + slack; the watcher would flag an overrun otherwise.
        let spec = ScenarioSpec {
            seed: 11,
            topo: TopoSpec::Star {
                hosts: 3,
                access_mbps: 20,
            },
            jitter_pct: 0,
            jobs: vec![],
            background: vec![],
            faults: vec![],
            churn: vec![],
            chaos: vec![crate::scenario::ChaosSpec {
                client: 0,
                frontend: 1,
                bytes: 8 * 1024 * 1024,
                throttle_pct: 70,
                transient_pct: 20,
                retry_after_ms: 2000,
                deadline_ms: 5000,
                start_ms: 100,
            }],
            sync: vec![],
            replicas: 1,
        };
        let out = run_once(&spec, RunOptions::default());
        assert_eq!(out.violations, vec![], "violations: {:?}", out.violations);
    }

    #[test]
    fn sharded_execution_is_bit_identical_for_single_cell_specs() {
        // A single-replica spec is one cell: the sharded fold is the
        // identity, so every worker count must reproduce the sequential
        // chain digest exactly.
        let opts = RunOptions {
            health: true,
            ..Default::default()
        };
        for i in 0..3 {
            let mut spec = ScenarioSpec::generate(case_seed(29, i));
            spec.replicas = 1;
            let seq = run_once(&spec, opts);
            for workers in [1, 2, 4] {
                let sharded = run_sharded(&spec, opts, workers);
                assert_eq!(
                    seq.chain_digest, sharded.chain_digest,
                    "case {i}, {workers} workers"
                );
                assert_eq!(seq.health_digest, sharded.health_digest, "case {i}");
                assert_eq!(seq.delivery, sharded.delivery, "case {i}");
            }
        }
    }

    #[test]
    fn sharded_execution_is_bit_identical_for_replicated_specs() {
        let opts = RunOptions {
            health: true,
            ..Default::default()
        };
        for (i, replicas) in [(0u32, 2u32), (1, 3), (2, 4)] {
            let mut spec = ScenarioSpec::generate(case_seed(31, i));
            spec.replicas = replicas;
            let seq = run_once(&spec, opts);
            for workers in [1, 2, 4] {
                let sharded = run_sharded(&spec, opts, workers);
                assert_eq!(
                    seq.chain_digest, sharded.chain_digest,
                    "case {i} x{replicas}, {workers} workers"
                );
                assert_eq!(seq.events, sharded.events, "case {i}");
                assert_eq!(seq.bytes_delivered, sharded.bytes_delivered, "case {i}");
                assert_eq!(seq.health_digest, sharded.health_digest, "case {i}");
                assert_eq!(seq.delivery, sharded.delivery, "case {i}");
            }
        }
    }

    #[test]
    fn replicated_cells_really_multiply_the_work() {
        let mut spec = ScenarioSpec::generate(case_seed(37, 0));
        spec.replicas = 1;
        let one = run_once(&spec, RunOptions::default());
        spec.replicas = 3;
        let three = run_once(&spec, RunOptions::default());
        assert!(
            three.events > one.events * 2,
            "3 cells ran {} events vs {} for 1 cell",
            three.events,
            one.events
        );
        assert_ne!(one.chain_digest, three.chain_digest);
    }

    #[test]
    fn replicated_chaos_case_checks_clean() {
        let mut spec = ScenarioSpec::generate_chaos(case_seed(41, 2));
        spec.replicas = 2;
        let res = check_case(&spec, RunOptions::default());
        assert!(res.ok(), "violations: {:?}", res.violations);
    }

    #[test]
    fn sync_cases_run_clean() {
        for i in 0..4 {
            let spec = ScenarioSpec::generate_sync(case_seed(43, i));
            let out = run_once(&spec, RunOptions::default());
            assert_eq!(
                out.violations,
                vec![],
                "sync case {i} violated invariants: {:?}",
                spec
            );
            assert!(out.sync_digest.is_some());
            assert!(out.events > 0);
        }
    }

    #[test]
    fn sync_case_checks_clean_including_chunk_differential() {
        let spec = ScenarioSpec::generate_sync(case_seed(47, 0));
        let res = check_case(&spec, RunOptions::default());
        assert!(res.ok(), "violations: {:?}", res.violations);
    }

    #[test]
    fn chunk_bypass_delivers_identical_bytes_on_different_wire() {
        // The cache changes how many bytes cross the wire (and therefore
        // the chain digest) but never what is delivered.
        for i in 0..3 {
            let spec = ScenarioSpec::generate_sync(case_seed(53, i));
            let cached = run_once(&spec, RunOptions::default());
            let bypass = run_once(
                &spec,
                RunOptions {
                    chunk_bypass: true,
                    ..Default::default()
                },
            );
            assert_eq!(cached.sync_digest, bypass.sync_digest, "case {i}");
            assert!(cached.sync_digest.is_some());
        }
    }

    #[test]
    fn chunk_store_state_is_folded_into_the_chain_digest() {
        // A warm-cache repeat round means the store's state really differs
        // between cached and bypass executions; since that state folds into
        // the chain digest, the two chains must differ while the delivered
        // bytes agree (previous test). Sessions with multiple rounds always
        // admit chunks, so the cached store is non-trivially populated.
        let mut spec = ScenarioSpec::generate_sync(case_seed(59, 1));
        spec.sync.truncate(1);
        spec.sync[0].rounds = 2;
        spec.sync[0].cache_kb = 256;
        let cached = run_once(&spec, RunOptions::default());
        let bypass = run_once(
            &spec,
            RunOptions {
                chunk_bypass: true,
                ..Default::default()
            },
        );
        assert_ne!(cached.chain_digest, bypass.chain_digest);
        assert_eq!(cached.sync_digest, bypass.sync_digest);
    }

    #[test]
    fn sync_sessions_sharing_a_relay_share_the_store() {
        // Two sessions, same client->relay pair, identical populations:
        // determinism of the shared store across all differential
        // executions is what check_case proves.
        let spec = ScenarioSpec {
            seed: 21,
            topo: TopoSpec::Star {
                hosts: 3,
                access_mbps: 20,
            },
            jitter_pct: 0,
            jobs: vec![],
            background: vec![],
            faults: vec![],
            churn: vec![],
            chaos: vec![],
            sync: vec![
                crate::scenario::SyncSpec {
                    client: 0,
                    relay: 2,
                    files: 2,
                    file_kb: 8,
                    rounds: 2,
                    cache_kb: 64,
                    dataset: 0,
                    churny: false,
                    start_ms: 0,
                },
                crate::scenario::SyncSpec {
                    client: 1,
                    relay: 2,
                    files: 1,
                    file_kb: 8,
                    rounds: 1,
                    cache_kb: 64,
                    dataset: 0,
                    churny: true,
                    start_ms: 50,
                },
            ],
            replicas: 1,
        };
        let res = check_case(&spec, RunOptions::default());
        assert!(res.ok(), "violations: {:?}", res.violations);
        // Both sessions replicate dataset 0, so the second tenant's initial
        // replication is served from the shared store: fewer bytes cross
        // the wire than under bypass, yet the delivered files are identical.
        let cached = run_once(&spec, RunOptions::default());
        let bypass = run_once(
            &spec,
            RunOptions {
                chunk_bypass: true,
                ..Default::default()
            },
        );
        assert!(
            cached.bytes_delivered < bypass.bytes_delivered,
            "cache saved nothing: {} vs {}",
            cached.bytes_delivered,
            bypass.bytes_delivered
        );
        assert_eq!(cached.sync_digest, bypass.sync_digest);
    }

    #[test]
    fn replicated_sync_case_is_bit_identical_under_sharding() {
        let mut spec = ScenarioSpec::generate_sync(case_seed(61, 0));
        spec.replicas = 2;
        let opts = RunOptions {
            health: true,
            ..Default::default()
        };
        let seq = run_once(&spec, opts);
        for workers in [1, 2, 4] {
            let sharded = run_sharded(&spec, opts, workers);
            assert_eq!(seq.chain_digest, sharded.chain_digest, "{workers} workers");
            assert_eq!(seq.sync_digest, sharded.sync_digest, "{workers} workers");
        }
    }

    #[test]
    fn plane_coherence_holds_across_seeds() {
        for seed in 0..24u64 {
            let vs = plane_coherence_with(seed, 0);
            assert_eq!(vs, vec![], "seed {seed} diverged");
        }
    }

    #[test]
    fn plane_coherence_detector_fires_on_generation_skew() {
        // Verifying against the wrong generation must trip the oracle on
        // effectively every seed — proof the differential has teeth and
        // that a cache serving stale generations could not pass.
        let vs = plane_coherence_with(5, 1);
        assert!(
            vs.iter()
                .any(|v| matches!(v, Violation::PlaneDivergence { .. })),
            "skewed verification produced no divergence"
        );
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn injected_overallocation_is_detected() {
        let spec = ScenarioSpec::generate(case_seed(3, 1));
        let res = check_case(
            &spec,
            RunOptions {
                rate_inflation: Some(1.5),
                ..Default::default()
            },
        );
        assert!(
            res.violations
                .iter()
                .any(|v| matches!(v, Violation::OverAllocation { .. })),
            "expected over-allocation, got {:?}",
            res.violations
        );
    }
}
