//! # simcheck — deterministic simulation checking for `netsim`
//!
//! The paper's conclusions rest on simulated transfer timings; a silent
//! engine bug (over-allocating a link, unfair sharing, nondeterministic
//! replay) would corrupt every downstream table. This crate stress-tests
//! the simulator the way FoundationDB/TigerBeetle-style deterministic
//! simulation testing does:
//!
//! * [`scenario`] generates randomized topologies and workloads far beyond
//!   the hand-built NorthAmerica scenario — random WANs, detour jobs,
//!   background traffic mixes, link-fault schedules — each fully described
//!   by a replayable, JSON-serializable [`ScenarioSpec`]. A second *chaos*
//!   class ([`ScenarioClass::Chaos`]) stresses the resilience layer:
//!   cloud-upload sessions under throttle storms, transient-error bursts
//!   and mid-transfer capacity faults, each checked against a termination
//!   bound derived from its retry budget or deadline.
//! * [`oracle`] installs an [`netsim::audit::AuditHook`] that checks
//!   invariants after *every* engine event: byte conservation per flow,
//!   no link above capacity, max-min fairness, clock monotonicity — and
//!   chains per-event state digests so two same-seed executions can be
//!   compared bit-for-bit.
//! * [`runner`] builds the world a spec describes and executes it — twice
//!   for the determinism check, under differential allocator/progress
//!   modes, and under the sharded executor at several worker counts
//!   ([`Violation::ShardDivergence`] fires if parallel execution is not
//!   bit-identical to sequential).
//! * [`shrink`] reduces a failing scenario to a minimal reproducer.
//!
//! The `detour check` CLI subcommand and the `tests/simcheck_invariants.rs`
//! integration test drive [`run_check`]; `--replay` re-executes a saved
//! spec. The `failpoints` feature (forwarded to `netsim`) adds
//! fault-injection knobs used to prove the oracles actually catch a broken
//! engine.

pub mod json;
pub mod oracle;
pub mod runner;
pub mod scenario;
pub mod shrink;

pub use json::Json;
pub use oracle::{OracleHandle, Violation};
pub use runner::{
    check_case, check_case_at, run_once, run_sharded, CaseResult, RunOptions, RunOutcome,
    SHARD_WORKER_COUNTS,
};
pub use scenario::{
    case_seed, BgSpec, ChaosSpec, ChurnSpec, FaultSpec, JobSpec, ScenarioSpec, SyncSpec, TopoSpec,
};
pub use shrink::{shrink, ShrinkResult};

/// Which scenario family a check run draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScenarioClass {
    /// Randomized WANs, detour jobs, background mixes, churn
    /// ([`ScenarioSpec::generate`]).
    #[default]
    Standard,
    /// Resilience stress: cloud-upload sessions under throttle storms,
    /// transient-error bursts and mid-transfer capacity faults, checked
    /// against per-session termination bounds
    /// ([`ScenarioSpec::generate_chaos`]).
    Chaos,
    /// Delta-sync stress: deterministically mutating file populations
    /// rsynced to relay chunk stores round by round, with every applied
    /// delta verified byte-for-byte and a cache-bypass differential
    /// proving the chunk store never changes delivered content
    /// ([`ScenarioSpec::generate_sync`]).
    Sync,
}

/// Configuration for a batch check run.
#[derive(Debug, Clone, Copy)]
pub struct CheckConfig {
    /// Number of generated cases.
    pub cases: u32,
    /// Base seed; case `i` runs scenario [`case_seed`]`(seed, i)`.
    pub seed: u64,
    /// Scenario family to generate.
    pub class: ScenarioClass,
    /// Optional engine fault injection (needs the `failpoints` feature).
    pub rate_inflation: Option<f64>,
    /// Max candidate evaluations when shrinking a failure.
    pub shrink_budget: u32,
    /// Extra worker count for the sharded differential executions, on top
    /// of the standard [`SHARD_WORKER_COUNTS`] (1, 2 and 4). `0` adds
    /// nothing; the CLI wires `--threads` / `DETOUR_THREADS` here.
    pub threads: u32,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            cases: 64,
            seed: 7,
            class: ScenarioClass::Standard,
            rate_inflation: None,
            shrink_budget: 200,
            threads: 0,
        }
    }
}

/// One failed case in a [`CheckReport`].
#[derive(Debug, Clone)]
pub struct CaseFailure {
    /// Index within the batch.
    pub case_index: u32,
    /// The derived scenario seed (replays independently of the batch).
    pub case_seed: u64,
    /// Violations of the *shrunk* reproducer.
    pub violations: Vec<Violation>,
    /// Minimal still-failing scenario.
    pub shrunk: ScenarioSpec,
    /// Accepted shrink steps.
    pub shrink_steps: u32,
}

/// Outcome of [`run_check`] / a replay.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Cases that held every invariant.
    pub passed: u32,
    /// Cases that violated at least one.
    pub failures: Vec<CaseFailure>,
    /// Total engine events audited across all first executions.
    pub events: u64,
}

impl CheckReport {
    /// Did every case pass?
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Machine-readable verdict for the CLI / CI.
    pub fn to_json(&self) -> String {
        let failures = self
            .failures
            .iter()
            .map(|f| {
                let violations = f
                    .violations
                    .iter()
                    .map(|v| {
                        Json::Obj(vec![
                            ("kind".into(), Json::Str(v.kind().into())),
                            ("detail".into(), Json::Str(v.to_string())),
                        ])
                    })
                    .collect();
                Json::Obj(vec![
                    ("case_index".into(), Json::Int(f.case_index as u64)),
                    ("case_seed".into(), Json::Int(f.case_seed)),
                    ("violations".into(), Json::Arr(violations)),
                    ("shrink_steps".into(), Json::Int(f.shrink_steps as u64)),
                    ("shrunk".into(), f.shrunk.to_json_value()),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("ok".into(), Json::Bool(self.ok())),
            ("passed".into(), Json::Int(self.passed as u64)),
            ("failed".into(), Json::Int(self.failures.len() as u64)),
            ("events".into(), Json::Int(self.events)),
            ("failures".into(), Json::Arr(failures)),
        ])
        .render()
    }
}

/// Run a batch of generated cases; shrink each failure to a minimal
/// reproducer.
pub fn run_check(config: CheckConfig) -> CheckReport {
    let opts = RunOptions {
        rate_inflation: config.rate_inflation,
        ..Default::default()
    };
    // The sharded differential always covers 1/2/4 workers; an explicit
    // --threads request joins the set (deduplicated, ascending).
    let mut workers: Vec<usize> = SHARD_WORKER_COUNTS.to_vec();
    if config.threads > 0 {
        workers.push(config.threads as usize);
        workers.sort_unstable();
        workers.dedup();
    }
    let mut report = CheckReport::default();
    for i in 0..config.cases {
        let seed = case_seed(config.seed, i);
        let spec = match config.class {
            ScenarioClass::Standard => ScenarioSpec::generate(seed),
            ScenarioClass::Chaos => ScenarioSpec::generate_chaos(seed),
            ScenarioClass::Sync => ScenarioSpec::generate_sync(seed),
        };
        let res = check_case_at(&spec, opts, &workers);
        report.events += res.events;
        if res.ok() {
            report.passed += 1;
            continue;
        }
        let shrunk = shrink(&spec, opts, config.shrink_budget);
        let violations = check_case(&shrunk.spec, opts).violations;
        report.failures.push(CaseFailure {
            case_index: i,
            case_seed: seed,
            violations,
            shrunk: shrunk.spec,
            shrink_steps: shrunk.steps,
        });
    }
    report
}

/// Re-execute a saved scenario spec (the CLI's `--replay`).
pub fn replay(spec_json: &str, rate_inflation: Option<f64>) -> Result<CheckReport, String> {
    let spec = ScenarioSpec::from_json(spec_json)?;
    let res = check_case(
        &spec,
        RunOptions {
            rate_inflation,
            ..Default::default()
        },
    );
    let mut report = CheckReport {
        passed: 0,
        failures: vec![],
        events: res.events,
    };
    if res.ok() {
        report.passed = 1;
    } else {
        report.failures.push(CaseFailure {
            case_index: 0,
            case_seed: spec.seed,
            violations: res.violations,
            shrunk: spec,
            shrink_steps: 0,
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_batch_is_clean_and_reports_json() {
        let report = run_check(CheckConfig {
            cases: 4,
            seed: 7,
            shrink_budget: 10,
            ..Default::default()
        });
        assert!(report.ok(), "failures: {:?}", report.failures);
        assert_eq!(report.passed, 4);
        let v = Json::parse(&report.to_json()).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("passed").and_then(Json::as_u64), Some(4));
    }

    #[test]
    fn chaos_batch_is_clean() {
        let report = run_check(CheckConfig {
            cases: 3,
            seed: 11,
            class: ScenarioClass::Chaos,
            shrink_budget: 10,
            ..Default::default()
        });
        assert!(report.ok(), "failures: {:?}", report.failures);
        assert_eq!(report.passed, 3);
    }

    #[test]
    fn sync_batch_is_clean() {
        let report = run_check(CheckConfig {
            cases: 3,
            seed: 13,
            class: ScenarioClass::Sync,
            shrink_budget: 10,
            ..Default::default()
        });
        assert!(report.ok(), "failures: {:?}", report.failures);
        assert_eq!(report.passed, 3);
    }

    #[test]
    fn replay_round_trips_a_spec() {
        let spec = ScenarioSpec::generate(case_seed(7, 1));
        let report = replay(&spec.to_json(), None).unwrap();
        assert!(report.ok());
        assert!(replay("{not json", None).is_err());
    }
}
