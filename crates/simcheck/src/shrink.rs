//! Greedy scenario shrinking.
//!
//! When a case fails, the raw reproducer is noisy: a dozen-node synthetic
//! WAN, background traffic, faults. [`shrink`] repeatedly tries
//! simplifying transformations — collapse the topology to a two-host star,
//! drop background/faults, remove jobs, clear detours, halve payloads —
//! keeping a candidate only if it *still fails*. First-improvement greedy
//! descent, bounded by an evaluation budget, same scheme as QuickCheck-style
//! shrinkers but over the scenario grammar instead of raw bytes.

use crate::runner::{check_case, RunOptions};
use crate::scenario::{ScenarioSpec, TopoSpec};

/// Smallest payload the shrinker will go down to.
const MIN_BYTES: u64 = 64 * 1024;

/// Result of a shrink run.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The smallest still-failing spec found.
    pub spec: ScenarioSpec,
    /// Accepted shrink steps.
    pub steps: u32,
    /// Scenario executions spent (each evaluation runs the case twice).
    pub evals: u32,
}

/// Candidate transformations, most aggressive first. Each returns a spec
/// strictly "smaller" than the input, so descent terminates.
fn candidates(spec: &ScenarioSpec) -> Vec<ScenarioSpec> {
    let mut out = Vec::new();

    // Collapse the whole topology to a 2-host star and retarget every job.
    if !matches!(spec.topo, TopoSpec::Star { hosts: 2, .. }) {
        let mut s = spec.clone();
        s.topo = TopoSpec::Star {
            hosts: 2,
            access_mbps: 10,
        };
        for j in &mut s.jobs {
            j.src = 0;
            j.dst = 1;
            j.via = None;
        }
        for b in &mut s.background {
            b.src = 0;
            b.dst = 1;
        }
        for c in &mut s.churn {
            c.src = 0;
            c.dst = 1;
        }
        for c in &mut s.chaos {
            c.client = 0;
            c.frontend = 1;
        }
        for y in &mut s.sync {
            y.client = 0;
            y.relay = 1;
        }
        out.push(s);
    }
    // Collapse a replicated world to a single cell: most shard-divergence
    // reproducers don't need more than one, and a single cell removes the
    // cross-cell fold from the picture entirely.
    if spec.replicas > 1 {
        let mut s = spec.clone();
        s.replicas = 1;
        out.push(s);
    }
    if !spec.background.is_empty() {
        let mut s = spec.clone();
        s.background.clear();
        out.push(s);
    }
    if !spec.faults.is_empty() {
        let mut s = spec.clone();
        s.faults.clear();
        out.push(s);
    }
    if !spec.churn.is_empty() {
        let mut s = spec.clone();
        s.churn.clear();
        out.push(s);
    }
    if spec.jitter_pct != 0 {
        let mut s = spec.clone();
        s.jitter_pct = 0;
        out.push(s);
    }

    // Per-item removals.
    if spec.jobs.len() > 1 {
        for i in 0..spec.jobs.len() {
            let mut s = spec.clone();
            s.jobs.remove(i);
            out.push(s);
        }
    }
    for i in 0..spec.faults.len() {
        let mut s = spec.clone();
        s.faults.remove(i);
        out.push(s);
    }
    for i in 0..spec.background.len() {
        let mut s = spec.clone();
        s.background.remove(i);
        out.push(s);
    }
    for (i, c) in spec.churn.iter().enumerate() {
        let mut s = spec.clone();
        s.churn.remove(i);
        out.push(s);
        // Halve the chain length too — shorter chains often still repro.
        if c.flows >= 2 {
            let mut s = spec.clone();
            s.churn[i].flows /= 2;
            out.push(s);
        }
    }

    // Per-chaos-session reductions: drop a session (keeping the spec
    // non-empty), halve its payload, strip its deadline, start it at zero.
    for (i, c) in spec.chaos.iter().enumerate() {
        if spec.chaos.len() > 1 || !spec.jobs.is_empty() {
            let mut s = spec.clone();
            s.chaos.remove(i);
            out.push(s);
        }
        if c.bytes / 2 >= MIN_BYTES {
            let mut s = spec.clone();
            s.chaos[i].bytes /= 2;
            out.push(s);
        }
        if c.deadline_ms != 0 {
            let mut s = spec.clone();
            s.chaos[i].deadline_ms = 0;
            out.push(s);
        }
        if c.start_ms != 0 {
            let mut s = spec.clone();
            s.chaos[i].start_ms = 0;
            out.push(s);
        }
    }

    // Per-sync-session reductions: drop a session (keeping the spec
    // non-empty), shed rounds and files, halve the file size, start at zero.
    for (i, y) in spec.sync.iter().enumerate() {
        if spec.sync.len() > 1 || !spec.jobs.is_empty() || !spec.chaos.is_empty() {
            let mut s = spec.clone();
            s.sync.remove(i);
            out.push(s);
        }
        if y.rounds > 1 {
            let mut s = spec.clone();
            s.sync[i].rounds = y.rounds / 2;
            out.push(s);
        }
        if y.files > 1 {
            let mut s = spec.clone();
            s.sync[i].files = y.files / 2;
            out.push(s);
        }
        if y.file_kb > 4 {
            let mut s = spec.clone();
            s.sync[i].file_kb = (y.file_kb / 2).max(4);
            out.push(s);
        }
        if y.start_ms != 0 {
            let mut s = spec.clone();
            s.sync[i].start_ms = 0;
            out.push(s);
        }
    }

    // Per-job simplifications.
    for (i, j) in spec.jobs.iter().enumerate() {
        if j.via.is_some() {
            let mut s = spec.clone();
            s.jobs[i].via = None;
            out.push(s);
        }
        if j.weight_pct != 100 {
            let mut s = spec.clone();
            s.jobs[i].weight_pct = 100;
            out.push(s);
        }
        if j.start_ms != 0 {
            let mut s = spec.clone();
            s.jobs[i].start_ms = 0;
            out.push(s);
        }
        if j.bytes / 2 >= MIN_BYTES {
            let mut s = spec.clone();
            s.jobs[i].bytes /= 2;
            out.push(s);
        }
    }

    // Topology reductions short of full collapse.
    match spec.topo {
        TopoSpec::Star { hosts, access_mbps } if hosts > 2 => {
            let mut s = spec.clone();
            s.topo = TopoSpec::Star {
                hosts: hosts - 1,
                access_mbps,
            };
            out.push(s);
        }
        TopoSpec::Synth {
            transit,
            stubs,
            hosts,
            core_mbps,
            access_lo_mbps,
            access_hi_mbps,
            topo_seed,
        } => {
            let mut push_if = |t: u32, st: u32, h: u32| {
                if (t, st, h) != (transit, stubs, hosts) {
                    out.push(ScenarioSpec {
                        topo: TopoSpec::Synth {
                            transit: t,
                            stubs: st,
                            hosts: h,
                            core_mbps,
                            access_lo_mbps,
                            access_hi_mbps,
                            topo_seed,
                        },
                        ..spec.clone()
                    });
                }
            };
            push_if(2, 1, 2);
            push_if(transit, stubs, (hosts / 2).max(2));
            push_if(2.max(transit / 2), 1.max(stubs / 2), hosts);
        }
        TopoSpec::Star { .. } => {}
    }

    out
}

/// Shrink `spec` to a smaller scenario that still fails under `opts`.
///
/// `budget` bounds the number of candidate evaluations (each one executes
/// the scenario twice via [`check_case`]). The input spec is assumed to
/// fail; if it does not, it is returned unchanged with `evals == 0`.
pub fn shrink(spec: &ScenarioSpec, opts: RunOptions, budget: u32) -> ShrinkResult {
    let fails = |s: &ScenarioSpec| !check_case(s, opts).ok();
    let mut current = spec.clone();
    let mut steps = 0u32;
    let mut evals = 0u32;
    'descent: loop {
        for cand in candidates(&current) {
            if evals >= budget {
                break 'descent;
            }
            evals += 1;
            if fails(&cand) {
                current = cand;
                steps += 1;
                continue 'descent;
            }
        }
        break;
    }
    ShrinkResult {
        spec: current,
        steps,
        evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::case_seed;

    #[test]
    fn candidates_are_strictly_smaller() {
        // Every candidate must differ from its parent, or descent could loop.
        let spec = ScenarioSpec::generate(case_seed(4, 2));
        for c in candidates(&spec) {
            assert_ne!(c, spec);
        }
        // Same property over the chaos scenario class.
        let spec = ScenarioSpec::generate_chaos(case_seed(4, 5));
        for c in candidates(&spec) {
            assert_ne!(c, spec);
            assert!(
                !c.jobs.is_empty() || !c.chaos.is_empty(),
                "shrinking must never empty the scenario"
            );
        }
        // And over the sync class.
        let spec = ScenarioSpec::generate_sync(case_seed(4, 9));
        for c in candidates(&spec) {
            assert_ne!(c, spec);
            assert!(
                !c.jobs.is_empty() || !c.chaos.is_empty() || !c.sync.is_empty(),
                "shrinking must never empty the scenario"
            );
        }
    }

    #[test]
    fn passing_spec_shrinks_to_itself_cheaply() {
        let spec = ScenarioSpec::generate(case_seed(4, 3));
        let res = shrink(&spec, RunOptions::default(), 20);
        // A clean engine fails nothing, so no candidate is ever accepted.
        assert_eq!(res.steps, 0);
        assert_eq!(res.spec, spec);
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn shrinks_injected_failure_to_minimal_star() {
        use crate::scenario::ScenarioSpec;
        let opts = RunOptions {
            rate_inflation: Some(1.5),
            ..Default::default()
        };
        // Find a failing generated case first.
        let spec = (0..16)
            .map(|i| ScenarioSpec::generate(case_seed(5, i)))
            .find(|s| !check_case(s, opts).ok())
            .expect("rate inflation must break some generated case");
        let res = shrink(&spec, opts, 300);
        assert!(
            !check_case(&res.spec, opts).ok(),
            "shrunk spec must still fail"
        );
        assert!(
            res.spec.topo.node_count() <= 4,
            "expected a minimal topology, got {:?}",
            res.spec.topo
        );
        assert!(res.spec.jobs.len() <= 2, "jobs: {:?}", res.spec.jobs);
    }
}
