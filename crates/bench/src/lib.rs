//! # bench — the reproduction harness
//!
//! * [`repro`] — renders every paper table and figure from fresh campaign
//!   runs (used by the `repro` binary and the `paper_tables` bench target).
//! * [`ablations`] — the extension experiments from `DESIGN.md` §6:
//!   store-and-forward vs pipelined relaying (A1), selector strategies vs
//!   the oracle (A2), congestion sweeps (A3), and multi-hop detours.

pub mod ablations;
pub mod repro;
