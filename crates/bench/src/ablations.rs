//! Extension experiments beyond the paper (DESIGN.md §6).

use cloudstore::{ProviderKind, UploadOptions};
use detour_core::{Campaign, ProbeSelector, Route};
use measure::{RunProtocol, Stats, Table};
use netsim::error::NetError;
use netsim::units::MB;
use relay::pipeline::pipelined_upload;
use scenarios::{Client, NorthAmerica, ScenarioOptions};
use std::borrow::Cow;

/// A1 — store-and-forward vs pipelined relaying on the paper's winning
/// detour (UBC→UAlberta→Google Drive).
pub fn pipeline_ablation(protocol: RunProtocol, sizes: &[u64]) -> Result<Table, NetError> {
    let world = NorthAmerica::new();
    let n = *world.nodes();
    let provider = world.provider(ProviderKind::GoogleDrive);
    let mut t = Table::new(
        "A1: store-and-forward vs pipelined detour, UBC→UAlberta→Google Drive",
        &[
            "File size (MB)",
            "Store-and-forward (s)",
            "Pipelined (s)",
            "Savings (%)",
        ],
    );
    for &size in sizes {
        let sf = protocol.run(|run, _| {
            let seed = RunProtocol::run_seed(&format!("a1/sf/{size}"), run);
            let mut sim = world.build_sim(seed);
            relay::detour_upload(
                &mut sim,
                vec![n.ubc, n.ualberta],
                vec![
                    netsim::flow::FlowClass::PlanetLab,
                    netsim::flow::FlowClass::Research,
                ],
                &provider,
                size,
                UploadOptions::warm(netsim::flow::FlowClass::Research),
            )
            .expect("detour works")
            .total
            .as_secs_f64()
        });
        let pl = protocol.run(|run, _| {
            let seed = RunProtocol::run_seed(&format!("a1/pl/{size}"), run);
            let mut sim = world.build_sim(seed);
            pipelined_upload(
                &mut sim,
                n.ubc,
                n.ualberta,
                &provider,
                size,
                netsim::flow::FlowClass::PlanetLab,
                netsim::flow::FlowClass::Research,
            )
            .expect("pipelined detour works")
            .total
            .as_secs_f64()
        });
        let savings = (sf.mean - pl.mean) / sf.mean * 100.0;
        t.row(vec![
            (size / MB).to_string(),
            format!("{:.2}", sf.mean),
            format!("{:.2}", pl.mean),
            format!("{savings:.1}"),
        ]);
    }
    Ok(t)
}

/// A2 — selector quality: does the cheap probe-based selector pick the same
/// route the oracle (full measurement) picks?
pub fn selector_ablation(protocol: RunProtocol, size: u64) -> Result<Table, NetError> {
    let world = NorthAmerica::new();
    let mut t = Table::new(
        "A2: probe-based selection vs measured oracle (per client × provider)",
        &[
            "Client",
            "Provider",
            "Oracle pick",
            "Probe pick",
            "Agree",
            "Regret (%)",
        ],
    );
    let routes = vec![
        Route::Direct,
        Route::via(world.hop_ualberta()),
        Route::via(world.hop_umich()),
    ];
    for client in Client::all() {
        for provider_kind in ProviderKind::all() {
            let provider = world.provider(provider_kind);
            let client_spec = world.client(client);
            // Oracle: run the full campaign at this size.
            let campaign = Campaign {
                factory: &world,
                client: Cow::Borrowed(&client_spec),
                provider: Cow::Borrowed(&provider),
                routes: Cow::Borrowed(&routes),
                sizes: vec![size],
                protocol,
                label: format!("a2/{}/{}", client.name(), provider_kind),
                threads: 0,
            };
            let result = campaign.run()?;
            let oracle_pick = result.best_route_for(0);
            // Probe: idle-path prediction on a fresh sim.
            let mut sim = world.build_sim(RunProtocol::run_seed("a2/probe", 0));
            let probe = ProbeSelector::default().choose(
                &mut sim,
                client_spec.node,
                client_spec.class,
                &provider,
                &routes,
                size,
            )?;
            let oracle_secs = result.stats(0, oracle_pick).mean;
            let probe_secs = result.stats(0, probe.route_idx).mean;
            let regret = (probe_secs - oracle_secs) / oracle_secs * 100.0;
            t.row(vec![
                client.name().to_string(),
                provider_kind.display_name().to_string(),
                routes[oracle_pick].label(),
                routes[probe.route_idx].label(),
                if oracle_pick == probe.route_idx {
                    "yes"
                } else {
                    "no"
                }
                .to_string(),
                format!("{regret:.1}"),
            ]);
        }
    }
    Ok(t)
}

/// A3 — congestion sweep: Purdue→Google Drive means as background scale
/// varies (detours should win more as congestion worsens).
pub fn congestion_ablation(protocol: RunProtocol, size: u64) -> Result<Table, NetError> {
    let mut t = Table::new(
        "A3: Purdue→Google Drive vs background-congestion scale",
        &[
            "Scale",
            "Direct (s)",
            "via UAlberta (s)",
            "via UMich (s)",
            "Best route",
        ],
    );
    for scale in [0.0, 0.5, 1.0, 1.5, 2.0] {
        let world = NorthAmerica::with_options(ScenarioOptions {
            congestion_scale: scale,
            disable_pacificwave_policer: false,
            ..ScenarioOptions::default()
        });
        let campaign = Campaign {
            factory: &world,
            client: Cow::Owned(world.client(Client::Purdue)),
            provider: Cow::Owned(world.provider(ProviderKind::GoogleDrive)),
            routes: Cow::Owned(vec![
                Route::Direct,
                Route::via(world.hop_ualberta()),
                Route::via(world.hop_umich()),
            ]),
            sizes: vec![size],
            protocol,
            label: format!("a3/{scale}"),
            threads: 0,
        };
        let r = campaign.run()?;
        let best = r.best_route_for(0);
        t.row(vec![
            format!("{scale:.1}"),
            format!("{:.2}", r.stats(0, 0).mean),
            format!("{:.2}", r.stats(0, 1).mean),
            format!("{:.2}", r.stats(0, 2).mean),
            r.routes[best].label(),
        ]);
    }
    Ok(t)
}

/// A4 — the paper's "medium term" recommendation, quantified: give Google
/// Drive a second, cleanly-peered Seattle POP. West-coast clients get
/// steered there and the detour stops mattering.
pub fn second_pop_ablation(protocol: RunProtocol, size: u64) -> Result<Table, NetError> {
    let mut t = Table::new(
        "A4: UBC→Google Drive with and without a clean Seattle POP",
        &["Scenario", "Direct (s)", "via UAlberta (s)", "Best route"],
    );
    for (label, enabled) in [("paper's 2015 network", false), ("+ Seattle POP", true)] {
        let world = NorthAmerica::with_options(ScenarioOptions {
            google_seattle_pop: enabled,
            ..ScenarioOptions::default()
        });
        let campaign = Campaign {
            factory: &world,
            client: Cow::Owned(world.client(Client::Ubc)),
            provider: Cow::Owned(world.provider(ProviderKind::GoogleDrive)),
            routes: Cow::Owned(vec![Route::Direct, Route::via(world.hop_ualberta())]),
            sizes: vec![size],
            protocol,
            label: format!("a4/{enabled}"),
            threads: 0,
        };
        let r = campaign.run()?;
        t.row(vec![
            label.to_string(),
            format!("{:.2}", r.stats(0, 0).mean),
            format!("{:.2}", r.stats(0, 1).mean),
            r.routes[r.best_route_for(0)].label(),
        ]);
    }
    Ok(t)
}

/// A5 — GridFTP-style parallel streams as an *alternative* mitigation:
/// on the per-flow-policed UBC→Google path, k streams multiply throughput;
/// on the capacity-limited UBC→UAlberta path they do nothing.
pub fn parallel_streams_ablation(protocol: RunProtocol, size: u64) -> Result<Table, NetError> {
    let world = NorthAmerica::new();
    let n = *world.nodes();
    let mut t = Table::new(
        "A5: parallel TCP streams vs per-flow policing (raw transfer, s)",
        &[
            "Streams",
            "UBC→Google (policed per-flow)",
            "UBC→UAlberta (capacity-limited)",
        ],
    );
    for streams in [1u32, 2, 4, 8] {
        let policed = protocol.run(|run, _| {
            let seed = RunProtocol::run_seed(&format!("a5/p/{streams}"), run);
            let mut sim = world.build_sim(seed);
            relay::parallel_transfer(
                &mut sim,
                n.ubc,
                n.google_pop,
                size,
                streams,
                netsim::flow::FlowClass::PlanetLab,
            )
            .expect("policed transfer")
            .as_secs_f64()
        });
        let capped = protocol.run(|run, _| {
            let seed = RunProtocol::run_seed(&format!("a5/c/{streams}"), run);
            let mut sim = world.build_sim(seed);
            relay::parallel_transfer(
                &mut sim,
                n.ubc,
                n.ualberta,
                size,
                streams,
                netsim::flow::FlowClass::PlanetLab,
            )
            .expect("capacity transfer")
            .as_secs_f64()
        });
        t.row(vec![
            streams.to_string(),
            format!("{:.2}", policed.mean),
            format!("{:.2}", capped.mean),
        ]);
    }
    Ok(t)
}

/// A6 — what the paper deliberately turned off: rsync's delta transfer.
/// The paper deletes the DTN's copy before every run, so rsync ships the
/// whole file. A DTN that *keeps* state ships only deltas on subsequent
/// versions of an evolving file; the provider leg still pays full price
/// (the 2015 APIs have no delta upload). Uses the real rsync algorithm on
/// real generated buffers.
pub fn delta_sync_ablation(
    protocol: RunProtocol,
    size: u64,
    versions: u32,
) -> Result<Table, NetError> {
    use transfer::{FileGen, RsyncWirePlan};
    assert!(versions >= 2);
    let world = NorthAmerica::new();
    let n = *world.nodes();
    let provider = world.provider(ProviderKind::GoogleDrive);

    // Build the version chain once (deterministic): each version is the
    // previous with a few edits and a small append.
    let gen = FileGen::new(0xA6);
    let mut files = Vec::with_capacity(versions as usize);
    files.push(gen.random_file(size as usize));
    for v in 1..versions {
        let prev = &files[(v - 1) as usize];
        files.push(FileGen::new(0xA6 + v as u64).similar_file(prev, 24, 64 * 1024));
    }
    // Wire plans for both DTN behaviours.
    let fresh_plans: Vec<RsyncWirePlan> = files
        .iter()
        .map(|f| RsyncWirePlan::fresh(f.len() as u64))
        .collect();
    let delta_plans: Vec<RsyncWirePlan> = files
        .iter()
        .enumerate()
        .map(|(v, f)| {
            if v == 0 {
                RsyncWirePlan::fresh(f.len() as u64)
            } else {
                RsyncWirePlan::exact(&files[v - 1], f, transfer::DEFAULT_BLOCK_SIZE)
            }
        })
        .collect();

    let run_chain = |plans: &[RsyncWirePlan], tag: &str| -> measure::Stats {
        protocol.run(|run, _| {
            let seed = RunProtocol::run_seed(&format!("a6/{tag}"), run);
            let mut sim = world.build_sim(seed);
            let mut total = 0.0;
            for (v, plan) in plans.iter().enumerate() {
                let leg = relay::RsyncLeg::new(
                    n.purdue,
                    n.ualberta,
                    *plan,
                    netsim::flow::FlowClass::PlanetLab,
                );
                let t1 = match sim.run_process(Box::new(leg)).expect("rsync leg") {
                    netsim::engine::Value::Time(t) => t.as_secs_f64(),
                    other => panic!("unexpected rsync result {other:?}"),
                };
                let stats = cloudstore::upload(
                    &mut sim,
                    n.ualberta,
                    &provider,
                    files[v].len() as u64,
                    UploadOptions::warm(netsim::flow::FlowClass::Research),
                )
                .expect("upload leg");
                total += t1 + stats.elapsed.as_secs_f64();
            }
            total
        })
    };

    let wiped = run_chain(&fresh_plans, "wiped");
    let cached = run_chain(&delta_plans, "cached");
    let delta_bytes: u64 = delta_plans.iter().map(|p| p.total_bytes()).sum();
    let fresh_bytes: u64 = fresh_plans.iter().map(|p| p.total_bytes()).sum();

    let mut t = Table::new(
        &format!(
            "A6: {versions} versions of a {} MB file, Purdue→UAlberta→Google Drive",
            size / MB
        ),
        &[
            "DTN state",
            "rsync wire bytes (all versions)",
            "Session total (s)",
        ],
    );
    t.row(vec![
        "wiped before each run (paper)".into(),
        fresh_bytes.to_string(),
        format!("{:.2} ± {:.2}", wiped.mean, wiped.std_dev),
    ]);
    t.row(vec![
        "kept (delta sync)".into(),
        delta_bytes.to_string(),
        format!("{:.2} ± {:.2}", cached.mean, cached.std_dev),
    ]);
    Ok(t)
}

/// Workload experiment: a realistic sync session (many small files, a few
/// large) played under three routing policies.
pub fn workload_experiment(n_files: usize, seeds: u64) -> Result<Table, NetError> {
    use scenarios::{run_session, SessionPolicy, SyncWorkload};
    let world = NorthAmerica::new();
    let mut t = Table::new(
        "Workload: personal-cloud sync session from Purdue to Google Drive",
        &["Policy", "Mean session total (s)", "σ"],
    );
    for (label, policy) in [
        ("always direct", SessionPolicy::AlwaysDirect),
        ("fixed via UAlberta", SessionPolicy::FixedRoute(1)),
        ("fixed via UMich", SessionPolicy::FixedRoute(2)),
        ("adaptive (ε=0.1)", SessionPolicy::Adaptive { epsilon: 0.1 }),
    ] {
        let mut totals = Vec::new();
        for seed in 0..seeds {
            let w = SyncWorkload::personal_cloud(seed, n_files);
            let r = run_session(
                &world,
                Client::Purdue,
                ProviderKind::GoogleDrive,
                &w,
                policy,
                seed,
            );
            totals.push(r.total_secs);
        }
        let stats = measure::Stats::from_samples(&totals);
        t.row(vec![
            label.to_string(),
            format!("{:.1}", stats.mean),
            format!("{:.1}", stats.std_dev),
        ]);
    }
    // Bundled direct: the sync-client trick of archiving small files before
    // upload, as a fifth policy.
    {
        use cloudstore::{plan_batches, upload_batched, BatchPolicy};
        let client = world.client(Client::Purdue);
        let provider = world.provider(ProviderKind::GoogleDrive);
        let mut totals = Vec::new();
        for seed in 0..seeds {
            let w = SyncWorkload::personal_cloud(seed, n_files);
            let plan = plan_batches(&w.files, BatchPolicy::default());
            let mut sim = world.build_sim(seed);
            let r = upload_batched(&mut sim, client.node, &provider, &plan, client.class)?;
            totals.push(r.elapsed.as_secs_f64());
        }
        let stats = measure::Stats::from_samples(&totals);
        t.row(vec![
            "direct + small-file bundling".to_string(),
            format!("{:.1}", stats.mean),
            format!("{:.1}", stats.std_dev),
        ]);
    }
    Ok(t)
}

/// Multi-hop ablation: one paper-style hop vs a two-hop detour
/// (UBC→UAlberta→UMich→Drive) — extra hops pay store-and-forward twice.
pub fn multihop_ablation(protocol: RunProtocol, size: u64) -> Result<Table, NetError> {
    let world = NorthAmerica::new();
    let campaign = Campaign {
        factory: &world,
        client: Cow::Owned(world.client(Client::Ubc)),
        provider: Cow::Owned(world.provider(ProviderKind::GoogleDrive)),
        routes: Cow::Owned(vec![
            Route::Direct,
            Route::via(world.hop_ualberta()),
            Route::Via(vec![world.hop_ualberta(), world.hop_umich()]),
        ]),
        sizes: vec![size],
        protocol,
        label: "multihop".into(),
        threads: 0,
    };
    let r = campaign.run()?;
    let mut t = Table::new(
        "Multi-hop detours: more hops, more store-and-forward cost",
        &["Route", "Mean (s)", "σ (s)"],
    );
    for (i, route) in r.routes.iter().enumerate() {
        let s: &Stats = r.stats(0, i);
        t.row(vec![
            route.label(),
            format!("{:.2}", s.mean),
            format!("{:.2}", s.std_dev),
        ]);
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_ablation_shows_savings() {
        let t = pipeline_ablation(RunProtocol::quick(), &[30 * MB]).unwrap();
        let text = t.render();
        assert!(text.contains("Pipelined"), "{text}");
        // Savings column present and positive for this clean detour.
        let last_line = text.lines().last().unwrap();
        let savings: f64 = last_line
            .split_whitespace()
            .last()
            .unwrap()
            .parse()
            .unwrap();
        assert!(
            savings > 5.0,
            "expected real pipelining savings, got {savings}% ({text})"
        );
    }

    #[test]
    fn congestion_ablation_flips_winner() {
        let t = congestion_ablation(RunProtocol::quick(), 50 * MB).unwrap();
        let text = t.render();
        // At scale 0 the 8 Mbps peering alone is not catastrophic enough to
        // justify detours... actually direct = 8 Mbps vs detour legs at
        // 4.6 Mbps: direct wins clean; with congestion the detours win.
        let lines: Vec<&str> = text.lines().collect();
        let first = lines[3]; // scale 0.0 row
        let last = lines.last().unwrap(); // scale 2.0 row
        assert!(
            first.contains("Direct"),
            "clean network should prefer direct: {text}"
        );
        assert!(
            last.contains("via "),
            "congested network should prefer a detour: {text}"
        );
    }

    #[test]
    fn delta_sync_saves_wire_and_time() {
        let t = delta_sync_ablation(RunProtocol::quick(), 8 * MB, 3).unwrap();
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        let bytes_of = |line: &str| -> u64 {
            line.split_whitespace()
                .find_map(|w| w.parse::<u64>().ok().filter(|&v| v > 1_000_000))
                .unwrap_or_else(|| panic!("no byte count in {line}"))
        };
        let wiped = bytes_of(lines[3]);
        let cached = bytes_of(lines[4]);
        // 3 versions: wiped ships 3 full files; cached ships 1 full + 2
        // small deltas ⇒ ratio approaches 3 (exactly 2.86 here).
        assert!(cached * 2 < wiped, "delta not saving wire bytes: {text}");
    }

    #[test]
    fn workload_detour_beats_direct_from_purdue() {
        let t = workload_experiment(8, 2).unwrap();
        let text = t.render();
        let mean_of = |label: &str| -> f64 {
            let line = text.lines().find(|l| l.starts_with(label)).unwrap();
            line.split_whitespace()
                .rev()
                .nth(1)
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(
            mean_of("fixed via UMich") < mean_of("always direct"),
            "session detour should win from Purdue: {text}"
        );
    }

    #[test]
    fn parallel_streams_help_only_when_policed() {
        let t = parallel_streams_ablation(RunProtocol::quick(), 30 * MB).unwrap();
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        let row = |i: usize| -> (f64, f64) {
            let cells: Vec<&str> = lines[i].split_whitespace().collect();
            (cells[1].parse().unwrap(), cells[2].parse().unwrap())
        };
        let (policed_1, capped_1) = row(3);
        let (policed_8, capped_8) = row(6);
        assert!(
            policed_1 / policed_8 > 3.0,
            "policed path should scale: {text}"
        );
        assert!(
            capped_1 / capped_8 < 1.3,
            "capacity path should not: {text}"
        );
    }

    #[test]
    fn second_pop_removes_detour_advantage() {
        let t = second_pop_ablation(RunProtocol::quick(), 60 * MB).unwrap();
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert!(
            lines[3].contains("via UAlberta"),
            "2015 network must favor the detour: {text}"
        );
        assert!(
            lines[4].contains("Direct"),
            "with a Seattle POP direct must win: {text}"
        );
    }

    #[test]
    fn multihop_is_worse_than_single_hop() {
        let t = multihop_ablation(RunProtocol::quick(), 30 * MB).unwrap();
        let text = t.render();
        let mean_of = |label: &str| -> f64 {
            let line = text.lines().find(|l| l.starts_with(label)).unwrap();
            line.split_whitespace()
                .rev()
                .nth(1)
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(
            mean_of("via UAlberta+UMich") > mean_of("via UAlberta"),
            "two hops should cost more: {text}"
        );
    }
}
