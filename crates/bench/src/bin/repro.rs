//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro --all            # the full paper, 7-run protocol (slower)
//! repro --quick --all    # 3-run protocol, 2 sizes (CI smoke)
//! repro fig2 table2      # individual artifacts
//! repro ablations        # the DESIGN.md §6 extension experiments
//! repro --csv DIR        # additionally dump campaign CSVs into DIR
//! repro --trace DIR fig2 # also replay one run per figure with telemetry
//!                        # and write DIR/<fig>.trace.json + DIR/<fig>.jsonl
//! repro --metrics fig2   # print the replayed run's metrics snapshot
//! ```

use bench::{ablations, repro};
use cloudstore::ProviderKind;
use measure::RunProtocol;
use scenarios::{Client, ExperimentSet, NorthAmerica};
use std::io::Write;

/// The figures whose data come from a (client × provider) campaign —
/// the artifacts `--trace` / `--metrics` can replay.
const CAMPAIGN_FIGS: &[(&str, Client, ProviderKind)] = &[
    ("fig2", Client::Ubc, ProviderKind::GoogleDrive),
    ("fig4", Client::Ubc, ProviderKind::Dropbox),
    ("fig7", Client::Purdue, ProviderKind::GoogleDrive),
    ("fig8", Client::Purdue, ProviderKind::Dropbox),
    ("fig9", Client::Purdue, ProviderKind::OneDrive),
    ("fig10", Client::Ucla, ProviderKind::GoogleDrive),
    ("fig11", Client::Ucla, ProviderKind::Dropbox),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: repro [--quick] [--csv DIR] [--trace DIR] [--metrics] [--all | fig2 fig3 \
             fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 table1 table2 table3 table4 table5 \
             ablations]"
        );
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let quick = args.iter().any(|a| a == "--quick");
    let all = args.iter().any(|a| a == "--all");
    let metrics = args.iter().any(|a| a == "--metrics");
    let csv_dir = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let trace_dir = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let world = NorthAmerica::new();
    let set = if quick {
        ExperimentSet::quick(&world)
    } else {
        ExperimentSet::paper(&world)
    };
    let wants = |name: &str| all || args.iter().any(|a| a == name);

    let mut csv_tables: Vec<(String, measure::Table)> = Vec::new();

    if all {
        match repro::render_all(&set) {
            Ok(text) => println!("{text}"),
            Err(e) => {
                eprintln!("reproduction failed: {e}");
                std::process::exit(1);
            }
        }
    } else {
        run_selected(&set, &wants, &mut csv_tables);
    }

    if wants("ablations") {
        let protocol = if quick {
            RunProtocol::quick()
        } else {
            RunProtocol::paper()
        };
        let sizes: Vec<u64> = if quick {
            vec![30 * netsim::units::MB]
        } else {
            vec![10, 30, 60, 100]
                .into_iter()
                .map(|m| m * netsim::units::MB)
                .collect()
        };
        let refsize = 60 * netsim::units::MB;
        for table in [
            ablations::pipeline_ablation(protocol, &sizes).expect("A1"),
            ablations::selector_ablation(protocol, refsize).expect("A2"),
            ablations::congestion_ablation(protocol, refsize).expect("A3"),
            ablations::second_pop_ablation(protocol, refsize).expect("A4"),
            ablations::parallel_streams_ablation(protocol, refsize).expect("A5"),
            ablations::delta_sync_ablation(
                protocol,
                if quick {
                    8 * netsim::units::MB
                } else {
                    40 * netsim::units::MB
                },
                4,
            )
            .expect("A6"),
            ablations::workload_experiment(if quick { 8 } else { 25 }, if quick { 2 } else { 5 })
                .expect("workload"),
            ablations::multihop_ablation(protocol, refsize).expect("multihop"),
        ] {
            println!("{}", table.render());
        }
    }

    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|e| io_fail(&dir, "create the CSV directory", &e));
        for (name, table) in &csv_tables {
            let path = format!("{dir}/{name}.csv");
            let mut f = std::fs::File::create(&path)
                .unwrap_or_else(|e| io_fail(&path, "create the CSV file", &e));
            f.write_all(table.to_csv().as_bytes())
                .unwrap_or_else(|e| io_fail(&path, "write the CSV file", &e));
            eprintln!("wrote {path}");
        }
    }

    if trace_dir.is_some() || metrics {
        if let Some(dir) = &trace_dir {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| io_fail(dir, "create the trace directory", &e));
        }
        for &(name, client, provider) in CAMPAIGN_FIGS {
            if wants(name) {
                capture_trace(&set, name, client, provider, trace_dir.as_deref(), metrics);
            }
        }
    }
}

/// Exit with an actionable message for an artifact I/O failure instead of
/// a panic backtrace: the path, what was being done, the OS error, and how
/// to fix it.
fn io_fail(path: &str, what: &str, e: &std::io::Error) -> ! {
    eprintln!(
        "{path}: cannot {what} ({e})\n  hint: check that the parent directory exists and is \
         writable, or pass a different --trace/--csv directory"
    );
    std::process::exit(1);
}

/// Replay one representative run of a figure's campaign (largest size,
/// direct route, first kept run — the same seed the campaign used) with
/// telemetry enabled; write the Chrome trace-event JSON and JSONL event
/// log, and optionally print the metrics snapshot.
fn capture_trace(
    set: &ExperimentSet<'_>,
    name: &str,
    client: Client,
    provider: ProviderKind,
    trace_dir: Option<&str>,
    metrics: bool,
) {
    let campaign = set.campaign_spec(client, provider);
    let size_idx = campaign.sizes.len() - 1;
    let run = campaign.protocol.discard; // first kept run
    let (secs, rec) = campaign.trace_run(size_idx, 0, run).unwrap_or_else(|e| {
        eprintln!("{name} trace replay failed: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "{name}: replayed {} -> {} direct, {} MB, run {run}: {secs:.2} s \
         ({} spans, {} events)",
        client.name(),
        provider.display_name(),
        campaign.sizes[size_idx] / netsim::units::MB,
        rec.spans.len(),
        rec.events.len()
    );
    if let Some(dir) = trace_dir {
        let chrome = format!("{dir}/{name}.trace.json");
        std::fs::write(&chrome, obs::chrome_trace_json(&rec))
            .unwrap_or_else(|e| io_fail(&chrome, "write the Chrome trace", &e));
        eprintln!("wrote {chrome}");
        let jsonl = format!("{dir}/{name}.jsonl");
        std::fs::write(&jsonl, obs::jsonl_log(&rec))
            .unwrap_or_else(|e| io_fail(&jsonl, "write the JSONL log", &e));
        eprintln!("wrote {jsonl}");
    }
    if metrics {
        println!(
            "{}",
            measure::metrics_table(&rec.metrics.snapshot(), &format!("{name} metrics")).render()
        );
    }
}

fn run_selected(
    set: &ExperimentSet<'_>,
    wants: &dyn Fn(&str) -> bool,
    csv: &mut Vec<(String, measure::Table)>,
) {
    fn fail(what: &str, e: netsim::error::NetError) -> ! {
        eprintln!("{what} failed: {e}");
        std::process::exit(1);
    }
    if wants("fig3") {
        println!("{}", set.fig3().render());
    }
    if wants("fig2") || wants("table2") {
        let r = set.fig2().unwrap_or_else(|e| fail("fig2", e));
        if wants("fig2") {
            println!(
                "{}",
                repro::figure(&r, "Fig 2: Upload performance from UBC to Google Drive (s)")
            );
        }
        if wants("table2") {
            println!(
                "{}",
                repro::numbers_table(
                    &r,
                    "Table II: UBC-to-Google Drive average transfer times",
                    Some(repro::PAPER_TABLE2)
                )
            );
        }
        csv.push(("fig2".into(), r.mean_std_table("fig2")));
    }
    if wants("fig4") {
        let r = set.fig4().unwrap_or_else(|e| fail("fig4", e));
        println!(
            "{}",
            repro::figure(&r, "Fig 4: Upload performance from UBC to Dropbox (s)")
        );
        csv.push(("fig4".into(), r.mean_std_table("fig4")));
    }
    if wants("fig5") {
        println!(
            "== Fig 5: UBC to Google Drive Server Traceroute ==\n{}",
            set.fig5()
        );
    }
    if wants("fig6") {
        println!(
            "== Fig 6: UAlberta to Google Drive Server Traceroute ==\n{}",
            set.fig6()
        );
    }
    if wants("fig7") || wants("table3") {
        let r = set.fig7().unwrap_or_else(|e| fail("fig7", e));
        if wants("fig7") {
            println!(
                "{}",
                repro::figure(
                    &r,
                    "Fig 7: Upload performance from Purdue to Google Drive (s)"
                )
            );
        }
        if wants("table3") {
            println!(
                "{}",
                repro::numbers_table(
                    &r,
                    "Table III: Purdue-to-Google Drive average transfer times",
                    Some(repro::PAPER_TABLE3)
                )
            );
        }
        csv.push(("fig7".into(), r.mean_std_table("fig7")));
    }
    if wants("fig8") {
        let r = set.fig8().unwrap_or_else(|e| fail("fig8", e));
        println!(
            "{}",
            repro::figure(&r, "Fig 8: Upload performance from Purdue to Dropbox (s)")
        );
        csv.push(("fig8".into(), r.mean_std_table("fig8")));
    }
    if wants("fig9") {
        let r = set.fig9().unwrap_or_else(|e| fail("fig9", e));
        println!(
            "{}",
            repro::figure(&r, "Fig 9: Upload performance from Purdue to OneDrive (s)")
        );
        csv.push(("fig9".into(), r.mean_std_table("fig9")));
    }
    if wants("table4") {
        println!(
            "{}",
            set.table4().unwrap_or_else(|e| fail("table4", e)).render()
        );
    }
    if wants("fig10") {
        let r = set.fig10().unwrap_or_else(|e| fail("fig10", e));
        println!(
            "{}",
            repro::figure(
                &r,
                "Fig 10: Upload performance from UCLA to Google Drive (s)"
            )
        );
        csv.push(("fig10".into(), r.mean_std_table("fig10")));
    }
    if wants("fig11") {
        let r = set.fig11().unwrap_or_else(|e| fail("fig11", e));
        println!(
            "{}",
            repro::figure(&r, "Fig 11: Upload performance from UCLA to Dropbox (s)")
        );
        csv.push(("fig11".into(), r.mean_std_table("fig11")));
    }
    if wants("table1") || wants("table5") {
        let all = set.all_campaigns().unwrap_or_else(|e| fail("table1/5", e));
        if wants("table1") {
            println!("{}", scenarios::summary::table1(&all).render());
        }
        if wants("table5") {
            println!("{}", scenarios::summary::table5(&all).render());
        }
    }
}
