//! Render every paper artifact from fresh campaign data.

use cloudstore::ProviderKind;
use detour_core::CampaignResult;
use measure::Table;
use netsim::error::NetError;
use scenarios::{Client, ExperimentSet};

/// Paper reference values for side-by-side printing in EXPERIMENTS.md.
/// (table, file size MB, route label, seconds)
pub const PAPER_TABLE2: &[(u64, f64, f64, f64)] = &[
    // (size MB, direct, via UAlberta, via UMich) — paper Table II
    (10, 9.46, 6.47, 15.41),
    (20, 18.61, 8.27, 27.71),
    (30, 28.66, 13.85, 39.14),
    (40, 36.86, 17.4, 51.87),
    (50, 42.26, 19.41, 63.68),
    (60, 51.11, 21.99, 80.71),
    (100, 86.92, 35.79, 132.17),
];

/// Paper Table III: Purdue→Google Drive.
pub const PAPER_TABLE3: &[(u64, f64, f64, f64)] = &[
    (10, 98.89, 17.57, 30.59),
    (20, 288.23, 70.55, 83.62),
    (30, 480.95, 120.69, 111.37),
    (40, 585.54, 94.43, 173.53),
    (50, 557.9, 138.03, 126.82),
    (60, 610.88, 142.15, 183.85),
    (100, 748.03, 195.88, 184.07),
];

/// A figure rendered as its ASCII bar chart, its mean±σ series table and
/// the ranking line.
pub fn figure(result: &CampaignResult, title: &str) -> String {
    let mut out = result.chart(title).render(48);
    out.push_str(&result.mean_std_table(&format!("{title} — data")).render());
    let ranking = result.ranking();
    let labels: Vec<String> = ranking.iter().map(|&i| result.routes[i].label()).collect();
    out.push_str(&format!(
        "ranking (fastest→slowest): {}\n",
        labels.join(" > ")
    ));
    out
}

/// Validation block: correlation + multiplicative error of a reproduced
/// route series against the paper's published values.
pub fn validation(
    result: &CampaignResult,
    paper: &[(u64, f64, f64, f64)],
    artifact: &str,
) -> String {
    use std::fmt::Write as _;
    let mut out = format!("validation vs paper ({artifact}):\n");
    let route_series = |col: usize| -> Vec<f64> {
        paper
            .iter()
            .map(|row| match col {
                0 => row.1,
                1 => row.2,
                _ => row.3,
            })
            .collect()
    };
    for (ri, route) in result.routes.iter().enumerate().take(3) {
        let ours = result.mean_series(ri);
        let theirs = route_series(ri);
        if ours.len() != theirs.len() {
            let _ = writeln!(out, "  {}: size grids differ; skipped", route.label());
            continue;
        }
        let corr = measure::pearson(&ours, &theirs).unwrap_or(f64::NAN);
        let ratio = measure::RatioStats::compute(&ours, &theirs);
        let _ = writeln!(
            out,
            "  {:<14} pearson r = {:.4}; geo-mean ratio {:.3}; worst factor {:.2}x",
            route.label(),
            corr,
            ratio.geo_mean_ratio,
            ratio.worst_factor
        );
    }
    out
}

/// A paper-format numbers table (means + % vs direct), with the paper's
/// own values interleaved for comparison when available.
pub fn numbers_table(
    result: &CampaignResult,
    title: &str,
    paper: Option<&[(u64, f64, f64, f64)]>,
) -> String {
    let mut out = result.paper_table(title).render();
    if let Some(rows) = paper {
        let mut t = Table::new(
            &format!("{title} — paper's measured values (2015 testbed)"),
            &[
                "File size (MB)",
                "Direct (s)",
                "via UAlberta (s)",
                "via UMich (s)",
            ],
        );
        for &(mb, d, ua, um) in rows {
            t.row(vec![
                mb.to_string(),
                format!("{d:.2}"),
                format!("{ua:.2}"),
                format!("{um:.2}"),
            ]);
        }
        out.push('\n');
        out.push_str(&t.render());
    }
    out
}

/// Everything the paper reports, rendered in order. Returns the rendered
/// text and the campaign results for further use (Table I/V need them all).
pub fn render_all(set: &ExperimentSet<'_>) -> Result<String, NetError> {
    let mut out = String::new();

    out.push_str(&set.fig3().render());
    out.push('\n');

    let fig2 = set.fig2()?;
    out.push_str(&figure(
        &fig2,
        "Fig 2: Upload performance from UBC to Google Drive (s)",
    ));
    out.push('\n');
    out.push_str(&numbers_table(
        &fig2,
        "Table II: UBC-to-Google Drive average transfer times",
        Some(PAPER_TABLE2),
    ));
    out.push('\n');
    out.push_str(&validation(&fig2, PAPER_TABLE2, "Table II"));
    out.push('\n');

    let fig4 = set.fig4()?;
    out.push_str(&figure(
        &fig4,
        "Fig 4: Upload performance from UBC to Dropbox (s)",
    ));
    out.push('\n');

    out.push_str("== Fig 5: UBC to Google Drive Server Traceroute ==\n");
    out.push_str(&set.fig5().to_string());
    out.push('\n');
    out.push_str("== Fig 6: UAlberta to Google Drive Server Traceroute ==\n");
    out.push_str(&set.fig6().to_string());
    out.push('\n');

    let fig7 = set.fig7()?;
    out.push_str(&figure(
        &fig7,
        "Fig 7: Upload performance from Purdue to Google Drive (s)",
    ));
    out.push('\n');
    out.push_str(&numbers_table(
        &fig7,
        "Table III: Purdue-to-Google Drive average transfer times",
        Some(PAPER_TABLE3),
    ));
    out.push('\n');
    out.push_str(&validation(&fig7, PAPER_TABLE3, "Table III"));
    out.push('\n');

    let fig8 = set.fig8()?;
    out.push_str(&figure(
        &fig8,
        "Fig 8: Upload performance from Purdue to Dropbox (s)",
    ));
    out.push('\n');
    let fig9 = set.fig9()?;
    out.push_str(&figure(
        &fig9,
        "Fig 9: Upload performance from Purdue to OneDrive (s)",
    ));
    out.push('\n');

    out.push_str(&set.table4()?.render());
    out.push('\n');

    let fig10 = set.fig10()?;
    out.push_str(&figure(
        &fig10,
        "Fig 10: Upload performance from UCLA to Google Drive (s)",
    ));
    out.push('\n');
    let fig11 = set.fig11()?;
    out.push_str(&figure(
        &fig11,
        "Fig 11: Upload performance from UCLA to Dropbox (s)",
    ));
    out.push('\n');

    // Tables I and V need the full 3×3 grid; reuse what we have and run the
    // remaining campaigns.
    let mut all: Vec<(Client, ProviderKind, CampaignResult)> = vec![
        (Client::Ubc, ProviderKind::GoogleDrive, fig2),
        (Client::Ubc, ProviderKind::Dropbox, fig4),
        (Client::Purdue, ProviderKind::GoogleDrive, fig7),
        (Client::Purdue, ProviderKind::Dropbox, fig8),
        (Client::Purdue, ProviderKind::OneDrive, fig9),
        (Client::Ucla, ProviderKind::GoogleDrive, fig10),
        (Client::Ucla, ProviderKind::Dropbox, fig11),
    ];
    all.push((
        Client::Ubc,
        ProviderKind::OneDrive,
        set.campaign(Client::Ubc, ProviderKind::OneDrive)?,
    ));
    all.push((
        Client::Ucla,
        ProviderKind::OneDrive,
        set.campaign(Client::Ucla, ProviderKind::OneDrive)?,
    ));

    out.push_str(&scenarios::summary::table1(&all).render());
    out.push('\n');
    out.push_str(&scenarios::summary::table5(&all).render());
    Ok(out)
}

/// Quick self-check used by tests: the headline orderings the reproduction
/// must preserve.
pub fn check_headline_claims(set: &ExperimentSet<'_>) -> Result<Vec<String>, NetError> {
    let mut violations = Vec::new();
    let fig2 = set.fig2()?;
    if fig2.ranking() != vec![1, 0, 2] {
        violations.push(format!(
            "Fig2 ranking {:?} != [UAlberta, Direct, UMich]",
            fig2.ranking()
        ));
    }
    let last = fig2.sizes.len() - 1;
    let speedup = fig2.stats(last, 0).mean / fig2.stats(last, 1).mean;
    if speedup < 2.0 {
        violations.push(format!(
            "Fig2 100MB detour speedup only {speedup:.2}x (paper: 2.4x)"
        ));
    }
    let fig7 = set.fig7()?;
    let direct = fig7.stats(fig7.sizes.len() - 1, 0).mean;
    let ua = fig7.stats(fig7.sizes.len() - 1, 1).mean;
    if ua * 2.0 > direct {
        violations.push(format!("Fig7: detour {ua:.0}s not ≫ direct {direct:.0}s"));
    }
    let fig10 = set.fig10()?;
    if fig10.ranking()[0] != 0 {
        violations.push("Fig10: direct should win from UCLA".to_string());
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scenarios::NorthAmerica;

    #[test]
    fn headline_claims_hold_quick() {
        let world = NorthAmerica::new();
        let set = ExperimentSet::quick(&world);
        let violations = check_headline_claims(&set).unwrap();
        assert!(violations.is_empty(), "violations: {violations:#?}");
    }

    #[test]
    fn figure_rendering() {
        let world = NorthAmerica::new();
        let set = ExperimentSet::quick(&world);
        let fig2 = set.fig2().unwrap();
        let text = figure(&fig2, "Fig 2");
        assert!(text.contains("ranking"));
        assert!(text.contains("via UAlberta"));
        let nums = numbers_table(&fig2, "Table II", Some(PAPER_TABLE2));
        assert!(nums.contains("paper's measured values"));
        assert!(nums.contains("86.92"));
    }
}
