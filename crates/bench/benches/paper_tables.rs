//! `cargo bench --bench paper_tables` — regenerates every table and figure
//! of the paper with the full 7-run protocol and prints them, paper values
//! interleaved. This is the headline artifact of the reproduction.
//!
//! Honors `REPRO_QUICK=1` for a fast smoke run.

use bench::repro;
use scenarios::{ExperimentSet, NorthAmerica};

fn main() {
    let quick = std::env::var("REPRO_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
        || std::env::args().any(|a| a == "--test"); // `cargo test --benches` smoke
    let world = NorthAmerica::new();
    let set = if quick {
        ExperimentSet::quick(&world)
    } else {
        ExperimentSet::paper(&world)
    };
    let started = std::time::Instant::now();
    match repro::render_all(&set) {
        Ok(text) => {
            println!("{text}");
            match repro::check_headline_claims(&set) {
                Ok(v) if v.is_empty() => {
                    println!("headline claims: all preserved");
                }
                Ok(v) => {
                    eprintln!("HEADLINE CLAIM VIOLATIONS:\n{v:#?}");
                    std::process::exit(1);
                }
                Err(e) => {
                    eprintln!("claim check failed: {e}");
                    std::process::exit(1);
                }
            }
            eprintln!("(regenerated in {:.1?})", started.elapsed());
        }
        Err(e) => {
            eprintln!("reproduction failed: {e}");
            std::process::exit(1);
        }
    }
}
