//! Overhead of the telemetry subsystem on an end-to-end simulated upload.
//!
//! Three measurements:
//!
//! 1. the upload with the sink disabled (the default every test and
//!    campaign runs with),
//! 2. the same upload with recording enabled (the cost a trace capture
//!    pays),
//! 3. a tight loop of disabled-sink calls, giving the per-call no-op cost.
//!
//! From (3) and a count of the telemetry call sites one run actually
//! executes, the bench prints the estimated disabled-sink overhead as a
//! percentage of the run — the budget is **under 2%**.
//!
//! The aggregation plane gets the same treatment: raw sketch ingest,
//! enabled window ingest, and a disabled-sink window loop whose per-call
//! cost is held to a separate **under 1%** budget — windows sit on the
//! flow-delivery hot path, so their no-op cost must be invisible.

use cloudstore::{ProviderKind, UploadOptions};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use detour_core::{run_job, Route};
use netsim::units::MB;
use obs::{Category, SpanId, Telemetry};
use scenarios::{Client, NorthAmerica};

const SIZE: u64 = 10 * MB;
const SEED: u64 = 7;

fn one_upload(world: &NorthAmerica, enabled: bool) -> netsim::time::SimTime {
    let client = world.client(Client::Ubc);
    let provider = world.provider(ProviderKind::GoogleDrive);
    let mut sim = world.build_sim(SEED);
    if enabled {
        sim.enable_telemetry();
    }
    run_job(
        &mut sim,
        client.node,
        client.class,
        &provider,
        SIZE,
        &Route::Direct,
        UploadOptions::warm(client.class),
    )
    .expect("upload succeeds")
    .elapsed
}

/// Upper bound on the telemetry operations one run executes, counted from
/// an enabled recording: two per span (begin/end), one per event, one per
/// histogram/gauge sample, and one counter touch charged to every span and
/// event (counter adds ride along with those sites).
fn telemetry_ops(world: &NorthAmerica) -> u64 {
    let client = world.client(Client::Ubc);
    let provider = world.provider(ProviderKind::GoogleDrive);
    let mut sim = world.build_sim(SEED);
    sim.enable_telemetry();
    run_job(
        &mut sim,
        client.node,
        client.class,
        &provider,
        SIZE,
        &Route::Direct,
        UploadOptions::warm(client.class),
    )
    .expect("upload succeeds");
    let rec = sim.take_telemetry().expect("enabled");
    let snap = rec.metrics.snapshot();
    let sampled: u64 = snap
        .rows
        .iter()
        .filter(|r| r.kind != "counter")
        .map(|r| r.samples)
        .sum();
    3 * rec.spans.len() as u64 + 2 * rec.events.len() as u64 + sampled
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let world = NorthAmerica::new();

    let mut disabled_ns = None;
    c.bench_function("upload-10MB/telemetry-disabled", |b| {
        b.iter(|| one_upload(&world, false));
        disabled_ns = b.last_median_ns();
    });

    let mut enabled_ns = None;
    c.bench_function("upload-10MB/telemetry-enabled", |b| {
        b.iter(|| one_upload(&world, true));
        enabled_ns = b.last_median_ns();
    });

    // Per-call cost of the disabled sink: span begin+end, one event with an
    // argument closure (must not run), one counter — 4 calls per iteration.
    let mut noop_ns = None;
    c.bench_function("disabled-sink/1k-call-batches", |b| {
        let mut tele = Telemetry::disabled();
        b.iter(|| {
            // black_box on the handle and timestamp keeps the optimizer
            // from proving the sink disabled and deleting the whole loop.
            let t = black_box(&mut tele);
            for i in 0..1000u64 {
                let s =
                    t.span_begin_with(black_box(i), Category::Flow, "flow", SpanId::NONE, |a| {
                        a.set("bytes", i);
                    });
                t.event(i, Category::Flow, "flow.rate", s, |a| {
                    a.set("bytes_per_sec", 1.0);
                });
                t.counter_add("bench.calls", 1);
                t.span_end(i, s);
            }
            black_box(t.is_enabled())
        });
        noop_ns = b.last_median_ns();
    });

    if let (Some(d), Some(e)) = (disabled_ns, enabled_ns) {
        println!(
            "recording-enabled slowdown: {:.3}x over the disabled sink",
            e / d
        );
    }
    if let (Some(d), Some(n)) = (disabled_ns, noop_ns) {
        let per_call = n / 4000.0; // 4 sink calls per inner iteration
        let ops = telemetry_ops(&world);
        let pct = ops as f64 * per_call / d * 100.0;
        println!(
            "disabled-sink overhead estimate: {ops} call sites x {per_call:.2} ns/call \
             = {pct:.4}% of a {:.2} ms simulated upload — {}",
            d / 1e6,
            if pct < 2.0 {
                "within the 2% budget"
            } else {
                "EXCEEDS the 2% budget"
            }
        );
    }

    // Aggregation plane: raw sketch ingest throughput.
    c.bench_function("sketch/record-1k", |b| {
        b.iter(|| {
            let mut s = obs::QuantileSketch::new();
            for i in 0..1000u64 {
                s.record(black_box(i.wrapping_mul(2654435761) % 1_000_000));
            }
            black_box(s.count())
        });
    });

    // Enabled window ingest: what a recording run pays per sample, with a
    // watermark advance per sample as the engine clock would issue.
    c.bench_function("windows/enabled-1k-records", |b| {
        b.iter(|| {
            let mut tele = Telemetry::enabled();
            for i in 0..1000u64 {
                let t = i * 1_000_000; // 1 ms apart: spans several windows
                tele.window_record(t, "netsim.flow.duration_ns", black_box(i));
                tele.window_count(t, "netsim.flow.delivered_bytes", 1);
                tele.advance_watermark(t);
            }
            black_box(tele.take().map(|r| r.window_flushes.len()))
        });
    });

    // Disabled window ingest: the no-op path every production run takes —
    // 3 sink calls per inner iteration.
    let mut window_noop_ns = None;
    c.bench_function("windows/disabled-1k-call-batches", |b| {
        let mut tele = Telemetry::disabled();
        b.iter(|| {
            let t = black_box(&mut tele);
            for i in 0..1000u64 {
                t.window_record(black_box(i), "netsim.flow.duration_ns", i);
                t.window_count(i, "netsim.flow.delivered_bytes", 1);
                t.advance_watermark(i);
            }
            black_box(t.is_enabled())
        });
        window_noop_ns = b.last_median_ns();
    });

    if let (Some(d), Some(n)) = (disabled_ns, window_noop_ns) {
        let per_call = n / 3000.0; // 3 sink calls per inner iteration
                                   // Window sites per run: one record + one count per delivered flow,
                                   // plus one watermark advance per engine step. Bound both by the
                                   // telemetry op count — every window site shares those call sites.
        let ops = telemetry_ops(&world);
        let pct = ops as f64 * per_call / d * 100.0;
        println!(
            "disabled window-path overhead estimate: {ops} sites x {per_call:.2} ns/call \
             = {pct:.4}% of a {:.2} ms simulated upload — {}",
            d / 1e6,
            if pct < 1.0 {
                "within the 1% budget"
            } else {
                "EXCEEDS the 1% budget"
            }
        );
    }
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
