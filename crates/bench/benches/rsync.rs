//! Criterion micro-benchmarks of the transfer substrate: MD5, the rolling
//! checksum, signature generation, delta computation and patching.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use transfer::{apply_delta, compute_delta, FileGen, Md5, RollingChecksum, Signature};

fn bench_md5(c: &mut Criterion) {
    let mut g = c.benchmark_group("md5");
    for size in [4 * 1024, 64 * 1024, 1024 * 1024] {
        let data = FileGen::new(1).random_file(size);
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| Md5::digest(std::hint::black_box(data)))
        });
    }
    g.finish();
}

fn bench_rolling(c: &mut Criterion) {
    let data = FileGen::new(2).random_file(1024 * 1024);
    let window = 2048;
    let mut g = c.benchmark_group("rolling-checksum");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("slide-1MiB", |b| {
        b.iter(|| {
            let mut rc = RollingChecksum::from_window(&data[..window]);
            let mut acc = 0u64;
            for k in 1..=(data.len() - window) {
                rc.roll(data[k - 1], data[k + window - 1]);
                acc = acc.wrapping_add(rc.value() as u64);
            }
            acc
        })
    });
    g.finish();
}

fn bench_signature(c: &mut Criterion) {
    let mut g = c.benchmark_group("signature");
    for mb in [1usize, 8] {
        let data = FileGen::new(3).random_file(mb * 1000 * 1000);
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_with_input(BenchmarkId::new("compute", mb), &data, |b, data| {
            b.iter(|| Signature::compute(std::hint::black_box(data), 2048))
        });
    }
    g.finish();
}

fn bench_delta_patch(c: &mut Criterion) {
    let gen = FileGen::new(4);
    let basis = gen.random_file(4 * 1000 * 1000);
    let similar = gen.similar_file(&basis, 8, 0);
    let sig = Signature::compute(&basis, 2048);
    let empty_sig = Signature::empty(2048);

    let mut g = c.benchmark_group("delta");
    g.throughput(Throughput::Bytes(basis.len() as u64));
    g.bench_function("similar-4MB", |b| {
        b.iter(|| compute_delta(std::hint::black_box(&sig), std::hint::black_box(&similar)))
    });
    g.bench_function("fresh-4MB", |b| {
        b.iter(|| {
            compute_delta(
                std::hint::black_box(&empty_sig),
                std::hint::black_box(&similar),
            )
        })
    });
    let delta = compute_delta(&sig, &similar);
    g.bench_function("patch-4MB", |b| {
        b.iter(|| {
            apply_delta(
                std::hint::black_box(&basis),
                2048,
                std::hint::black_box(&delta),
            )
            .unwrap()
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_md5, bench_rolling, bench_signature, bench_delta_patch
}
criterion_main!(benches);
