//! Criterion benchmarks of end-to-end simulated uploads on the calibrated
//! scenario: simulator cost per run for direct and detoured uploads (this
//! measures the *harness*, not the modeled network — wall-clock per
//! simulated campaign run).

use cloudstore::{ProviderKind, UploadOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use detour_core::{run_job, Route};
use netsim::flow::FlowClass;
use netsim::units::MB;
use scenarios::{Client, NorthAmerica};

fn bench_direct_uploads(c: &mut Criterion) {
    let world = NorthAmerica::new();
    let mut g = c.benchmark_group("sim-upload-direct");
    for kind in ProviderKind::all() {
        let provider = world.provider(kind);
        let client = world.client(Client::Ubc);
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.display_name().replace(' ', "-")),
            &provider,
            |b, provider| {
                b.iter(|| {
                    let mut sim = world.build_sim(11);
                    run_job(
                        &mut sim,
                        client.node,
                        client.class,
                        provider,
                        30 * MB,
                        &Route::Direct,
                        UploadOptions::warm(FlowClass::PlanetLab),
                    )
                    .unwrap()
                    .elapsed
                })
            },
        );
    }
    g.finish();
}

fn bench_detour_uploads(c: &mut Criterion) {
    let world = NorthAmerica::new();
    let provider = world.provider(ProviderKind::GoogleDrive);
    let client = world.client(Client::Ubc);
    let route = Route::via(world.hop_ualberta());
    c.bench_function("sim-upload-detour-ualberta", |b| {
        b.iter(|| {
            let mut sim = world.build_sim(13);
            run_job(
                &mut sim,
                client.node,
                client.class,
                &provider,
                30 * MB,
                &route,
                UploadOptions::warm(FlowClass::Research),
            )
            .unwrap()
            .elapsed
        })
    });
}

fn bench_pathological_run(c: &mut Criterion) {
    // Purdue→Google under heavy background: the most event-dense run in the
    // whole reproduction (hundreds of simulated seconds of MMPP flows).
    let world = NorthAmerica::new();
    let provider = world.provider(ProviderKind::GoogleDrive);
    let client = world.client(Client::Purdue);
    c.bench_function("sim-upload-purdue-congested", |b| {
        b.iter(|| {
            let mut sim = world.build_sim(17);
            run_job(
                &mut sim,
                client.node,
                client.class,
                &provider,
                100 * MB,
                &Route::Direct,
                UploadOptions::warm(FlowClass::PlanetLab),
            )
            .unwrap()
            .elapsed
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_direct_uploads, bench_detour_uploads, bench_pathological_run
}
criterion_main!(benches);
