//! Criterion benchmarks of the detour-selection strategies: how much does
//! each decision cost?

use criterion::{criterion_group, criterion_main, Criterion};
use detour_core::{AdaptiveSelector, OracleSelector, ProbeSelector, Route};
use measure::RunProtocol;
use netsim::units::MB;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use scenarios::{Client, NorthAmerica};

fn routes(world: &NorthAmerica) -> Vec<Route> {
    vec![
        Route::Direct,
        Route::via(world.hop_ualberta()),
        Route::via(world.hop_umich()),
    ]
}

fn bench_probe_selector(c: &mut Criterion) {
    let world = NorthAmerica::new();
    let client = world.client(Client::Ubc);
    let provider = world.provider(cloudstore::ProviderKind::GoogleDrive);
    let routes = routes(&world);
    c.bench_function("selector-probe", |b| {
        b.iter(|| {
            let mut sim = world.build_sim(3);
            ProbeSelector::default()
                .choose(
                    &mut sim,
                    client.node,
                    client.class,
                    &provider,
                    &routes,
                    60 * MB,
                )
                .unwrap()
        })
    });
}

fn bench_oracle_selector(c: &mut Criterion) {
    let world = NorthAmerica::new();
    let client = world.client(Client::Ubc);
    let provider = world.provider(cloudstore::ProviderKind::GoogleDrive);
    let routes = routes(&world);
    c.bench_function("selector-oracle-quick", |b| {
        b.iter(|| {
            OracleSelector {
                protocol: RunProtocol::quick(),
            }
            .choose(&world, &client, &provider, &routes, 30 * MB, "bench", 0)
            .unwrap()
        })
    });
}

fn bench_adaptive_selector(c: &mut Criterion) {
    c.bench_function("selector-adaptive-1000-steps", |b| {
        b.iter(|| {
            let mut sel = AdaptiveSelector::new(3, 0.1, 0.3);
            let mut rng = SmallRng::seed_from_u64(9);
            let mut acc = 0usize;
            for i in 0..1000 {
                let r = sel.next_route(&mut rng);
                sel.record(r, (i % 17) as f64 + r as f64);
                acc += r;
            }
            acc
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_probe_selector, bench_oracle_selector, bench_adaptive_selector
}
criterion_main!(benches);
