//! Criterion benchmarks of the simulator core — the max-min allocator and
//! full event-driven transfer runs under background load — plus a scaling
//! study of incremental vs full-recompute reallocation that emits
//! `BENCH_flowsim.json` for CI regression gating (see EXPERIMENTS.md).

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use netsim::background::{BackgroundProfile, BackgroundTraffic};
use netsim::flow::{max_min_allocate, AllocEntry, FlowCore};
use netsim::prelude::*;
use netsim::units::MB;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simcheck::Json;
use std::time::Instant;

/// Random allocation problem with `flows` flows over `links` links.
fn problem(flows: usize, links: usize, seed: u64) -> (Vec<f64>, Vec<AllocEntry>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let caps: Vec<f64> = (0..links).map(|_| rng.gen_range(10.0..1000.0)).collect();
    let entries = (0..flows)
        .map(|_| {
            let n = rng.gen_range(1..=4.min(links));
            let mut resources: Vec<u32> = (0..n).map(|_| rng.gen_range(0..links as u32)).collect();
            resources.sort_unstable();
            resources.dedup();
            let cap = if rng.gen_bool(0.3) {
                rng.gen_range(1.0..200.0)
            } else {
                f64::INFINITY
            };
            AllocEntry::new(resources, cap)
        })
        .collect();
    (caps, entries)
}

fn bench_allocator(c: &mut Criterion) {
    let mut g = c.benchmark_group("max-min-allocator");
    for (flows, links) in [(10, 8), (100, 32), (1000, 64)] {
        let (caps, entries) = problem(flows, links, 7);
        g.throughput(Throughput::Elements(flows as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{flows}f-{links}l")),
            &(caps, entries),
            |b, (caps, entries)| b.iter(|| max_min_allocate(caps, entries)),
        );
    }
    g.finish();
}

fn contended_world() -> (Topology, NodeId, NodeId, NodeId, NodeId) {
    let mut b = TopologyBuilder::new();
    let a = b.host("a", GeoPoint::new(49.0, -123.0));
    let r1 = b.router("r1", GeoPoint::new(45.0, -110.0));
    let r2 = b.router("r2", GeoPoint::new(42.0, -100.0));
    let c = b.host("c", GeoPoint::new(37.0, -122.0));
    let bs = b.host("bs", GeoPoint::new(45.1, -110.1));
    let bd = b.host("bd", GeoPoint::new(37.1, -122.1));
    let fat = LinkParams::new(Bandwidth::from_mbps(1000.0), SimTime::from_millis(3));
    let thin = LinkParams::new(Bandwidth::from_mbps(50.0), SimTime::from_millis(10));
    b.duplex(a, r1, fat);
    b.duplex(r1, r2, thin);
    b.duplex(r2, c, fat);
    b.duplex(bs, r1, fat);
    b.duplex(r2, bd, fat);
    (b.build(), a, c, bs, bd)
}

fn bench_transfer_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim-transfer");
    let (topo, a, dst, bs, bd) = contended_world();
    for mb in [10u64, 100] {
        g.throughput(Throughput::Bytes(mb * MB));
        g.bench_with_input(BenchmarkId::new("idle", mb), &topo, |b, topo| {
            b.iter(|| {
                Sim::new(topo.clone(), 1)
                    .run_transfer(TransferRequest::new(a, dst, mb * MB))
                    .unwrap()
                    .elapsed
            })
        });
        g.bench_with_input(BenchmarkId::new("contended", mb), &topo, |b, topo| {
            b.iter(|| {
                let mut sim = Sim::new(topo.clone(), 1);
                sim.spawn_detached(Box::new(BackgroundTraffic::new(BackgroundProfile::heavy(
                    bs, bd,
                ))));
                sim.run_transfer(TransferRequest::new(a, dst, mb * MB))
                    .unwrap()
                    .elapsed
            })
        });
    }
    g.finish();
}

fn bench_scenario_build(c: &mut Criterion) {
    c.bench_function("northamerica-build-sim", |b| {
        let world = scenarios::NorthAmerica::new();
        b.iter(|| world.build_sim(std::hint::black_box(7)))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_allocator, bench_transfer_run, bench_scenario_build
}

// ---------------------------------------------------------------------------
// Incremental-reallocation scaling study.
//
// The engine's hot path is one reallocation per flow arrival/departure. The
// study models a fleet of mostly independent transfer sites (each site: two
// resources, `FLOWS_PER_SITE` flows) and measures the per-event cost of
//
//   * incremental: `FlowCore::remove` + `FlowCore::insert` of one flow,
//     which recomputes only the touched connected component, vs
//   * reference:   one full `max_min_allocate` over every live flow —
//     what the engine did before the rewrite.
// ---------------------------------------------------------------------------

const FLOWS_PER_SITE: usize = 10;

/// A `total_flows`-flow world of independent 2-resource sites.
fn scaling_world(total_flows: usize, seed: u64) -> (Vec<f64>, Vec<AllocEntry>) {
    let sites = total_flows / FLOWS_PER_SITE;
    let mut rng = SmallRng::seed_from_u64(seed);
    let caps: Vec<f64> = (0..2 * sites)
        .map(|_| rng.gen_range(10.0..1000.0))
        .collect();
    let entries = (0..total_flows)
        .map(|j| {
            let site = (j / FLOWS_PER_SITE) as u32;
            let cap = if rng.gen_bool(0.3) {
                rng.gen_range(1.0..200.0)
            } else {
                f64::INFINITY
            };
            AllocEntry::new(vec![2 * site, 2 * site + 1], cap)
        })
        .collect();
    (caps, entries)
}

/// Median ns/iter of `f` over `samples` timed runs (after `warmup` runs).
fn median_ns(warmup: usize, samples: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// One scaling point: per-event reallocation cost at `n` concurrent flows.
fn scaling_point(n: usize, warmup: usize, samples: usize) -> Json {
    let (caps, entries) = scaling_world(n, 42);

    let mut core = FlowCore::new(caps.clone());
    for (j, e) in entries.iter().enumerate() {
        core.insert(j as u64, &e.resources, e.cap, 1.0);
    }
    // Cycle the churned flow so successive iterations touch different
    // components (defeats any single-component cache warmth). Each sample
    // batches many remove+insert pairs: one pair is sub-microsecond, well
    // below timer noise.
    const BATCH: usize = 64;
    let mut victim = 0usize;
    let incremental_ns = median_ns(warmup, samples, || {
        for _ in 0..BATCH {
            let e = &entries[victim];
            core.remove(victim as u64);
            core.insert(victim as u64, &e.resources, e.cap, 1.0);
            victim = (victim + 1) % entries.len();
        }
    }) / (2 * BATCH) as f64; // each pair = two reallocation events

    let reference_ns = median_ns(warmup, samples, || {
        std::hint::black_box(max_min_allocate(&caps, &entries));
    });

    let speedup = reference_ns / incremental_ns;
    println!(
        "flowsim-scaling/{n}: incremental {incremental_ns:.0} ns/event, \
         reference {reference_ns:.0} ns/event, speedup {speedup:.1}x"
    );
    Json::Obj(vec![
        ("flows".into(), Json::Int(n as u64)),
        ("incremental_ns".into(), Json::Num(incremental_ns)),
        ("reference_ns".into(), Json::Num(reference_ns)),
        ("speedup".into(), Json::Num(speedup)),
    ])
}

/// Allowed slowdown vs the checked-in baseline before CI fails the run.
const REGRESSION_TOLERANCE: f64 = 1.25;

/// Compare against a baseline `BENCH_flowsim.json`; returns error lines.
fn check_baseline(report: &Json, baseline: &Json) -> Vec<String> {
    let mut errors = Vec::new();
    let empty = Vec::new();
    let base_sizes = baseline
        .get("sizes")
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    for point in report.get("sizes").and_then(Json::as_arr).unwrap_or(&empty) {
        let flows = point.get("flows").and_then(Json::as_u64).unwrap_or(0);
        let now = point
            .get("incremental_ns")
            .and_then(Json::as_f64)
            .unwrap_or(f64::NAN);
        let Some(was) = base_sizes
            .iter()
            .find(|b| b.get("flows").and_then(Json::as_u64) == Some(flows))
            .and_then(|b| b.get("incremental_ns"))
            .and_then(Json::as_f64)
        else {
            continue;
        };
        if now > was * REGRESSION_TOLERANCE {
            errors.push(format!(
                "flowsim-scaling/{flows}: incremental {now:.0} ns/event vs \
                 baseline {was:.0} ns/event (> {REGRESSION_TOLERANCE}x)"
            ));
        }
    }
    errors
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // `cargo bench` passes `--bench`; `cargo test --benches` does not (and
    // builds without optimization, where timings are meaningless).
    let bench_mode = args.iter().any(|a| a == "--bench");
    let quick = args.iter().any(|a| a == "--quick") || std::env::var_os("BENCH_QUICK").is_some();

    benches();

    // Scaling study: smoke-run a tiny point (no report) outside bench mode.
    if !bench_mode {
        scaling_point(100, 0, 2);
        return;
    }
    let (warmup, samples) = if quick { (5, 21) } else { (50, 101) };
    let sizes: Vec<Json> = [100usize, 1000, 10000]
        .iter()
        .map(|&n| scaling_point(n, warmup, samples))
        .collect();
    let report = Json::Obj(vec![
        ("bench".into(), Json::Str("flowsim-scaling".into())),
        ("flows_per_site".into(), Json::Int(FLOWS_PER_SITE as u64)),
        ("quick".into(), Json::Bool(quick)),
        ("sizes".into(), Json::Arr(sizes)),
    ]);

    // Regression gate: compare BEFORE overwriting any baseline the output
    // path might point at.
    let mut failed = false;
    if let Some(path) = std::env::var_os("BENCH_BASELINE") {
        match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|s| Json::parse(&s))
        {
            Ok(baseline) => {
                for err in check_baseline(&report, &baseline) {
                    eprintln!("REGRESSION: {err}");
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("cannot read baseline {path:?}: {e}");
                failed = true;
            }
        }
    }

    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_flowsim.json".into());
    std::fs::write(&out, report.render()).expect("write bench report");
    println!("wrote {out}");
    if failed {
        std::process::exit(1);
    }
}
