//! Criterion benchmarks of the simulator core: the max-min allocator and
//! full event-driven transfer runs under background load.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use netsim::background::{BackgroundProfile, BackgroundTraffic};
use netsim::flow::{max_min_allocate, AllocEntry};
use netsim::prelude::*;
use netsim::units::MB;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Random allocation problem with `flows` flows over `links` links.
fn problem(flows: usize, links: usize, seed: u64) -> (Vec<f64>, Vec<AllocEntry>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let caps: Vec<f64> = (0..links).map(|_| rng.gen_range(10.0..1000.0)).collect();
    let entries = (0..flows)
        .map(|_| {
            let n = rng.gen_range(1..=4.min(links));
            let mut resources: Vec<u32> = (0..n).map(|_| rng.gen_range(0..links as u32)).collect();
            resources.sort_unstable();
            resources.dedup();
            let cap = if rng.gen_bool(0.3) {
                rng.gen_range(1.0..200.0)
            } else {
                f64::INFINITY
            };
            AllocEntry::new(resources, cap)
        })
        .collect();
    (caps, entries)
}

fn bench_allocator(c: &mut Criterion) {
    let mut g = c.benchmark_group("max-min-allocator");
    for (flows, links) in [(10, 8), (100, 32), (1000, 64)] {
        let (caps, entries) = problem(flows, links, 7);
        g.throughput(Throughput::Elements(flows as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{flows}f-{links}l")),
            &(caps, entries),
            |b, (caps, entries)| b.iter(|| max_min_allocate(caps, entries)),
        );
    }
    g.finish();
}

fn contended_world() -> (Topology, NodeId, NodeId, NodeId, NodeId) {
    let mut b = TopologyBuilder::new();
    let a = b.host("a", GeoPoint::new(49.0, -123.0));
    let r1 = b.router("r1", GeoPoint::new(45.0, -110.0));
    let r2 = b.router("r2", GeoPoint::new(42.0, -100.0));
    let c = b.host("c", GeoPoint::new(37.0, -122.0));
    let bs = b.host("bs", GeoPoint::new(45.1, -110.1));
    let bd = b.host("bd", GeoPoint::new(37.1, -122.1));
    let fat = LinkParams::new(Bandwidth::from_mbps(1000.0), SimTime::from_millis(3));
    let thin = LinkParams::new(Bandwidth::from_mbps(50.0), SimTime::from_millis(10));
    b.duplex(a, r1, fat);
    b.duplex(r1, r2, thin);
    b.duplex(r2, c, fat);
    b.duplex(bs, r1, fat);
    b.duplex(r2, bd, fat);
    (b.build(), a, c, bs, bd)
}

fn bench_transfer_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim-transfer");
    let (topo, a, dst, bs, bd) = contended_world();
    for mb in [10u64, 100] {
        g.throughput(Throughput::Bytes(mb * MB));
        g.bench_with_input(BenchmarkId::new("idle", mb), &topo, |b, topo| {
            b.iter(|| {
                Sim::new(topo.clone(), 1)
                    .run_transfer(TransferRequest::new(a, dst, mb * MB))
                    .unwrap()
                    .elapsed
            })
        });
        g.bench_with_input(BenchmarkId::new("contended", mb), &topo, |b, topo| {
            b.iter(|| {
                let mut sim = Sim::new(topo.clone(), 1);
                sim.spawn_detached(Box::new(BackgroundTraffic::new(BackgroundProfile::heavy(
                    bs, bd,
                ))));
                sim.run_transfer(TransferRequest::new(a, dst, mb * MB))
                    .unwrap()
                    .elapsed
            })
        });
    }
    g.finish();
}

fn bench_scenario_build(c: &mut Criterion) {
    c.bench_function("northamerica-build-sim", |b| {
        let world = scenarios::NorthAmerica::new();
        b.iter(|| world.build_sim(std::hint::black_box(7)))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_allocator, bench_transfer_run, bench_scenario_build
}
criterion_main!(benches);
