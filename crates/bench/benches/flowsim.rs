//! Criterion benchmarks of the simulator core — the max-min allocator and
//! full event-driven transfer runs under background load — plus a scaling
//! study of incremental vs full-recompute reallocation that emits
//! `BENCH_flowsim.json` for CI regression gating (see EXPERIMENTS.md).

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use netsim::background::{BackgroundProfile, BackgroundTraffic};
use netsim::flow::{max_min_allocate, AllocEntry, FlowClass, FlowCore, FlowSpec};
use netsim::oracle::RouteOracle;
use netsim::prelude::*;
use netsim::shard::{fold_digests, run_shards};
use netsim::synth::SynthGlobe;
use netsim::units::{GB, KB, MB};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simcheck::Json;
use std::cell::Cell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Instant;

/// Random allocation problem with `flows` flows over `links` links.
fn problem(flows: usize, links: usize, seed: u64) -> (Vec<f64>, Vec<AllocEntry>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let caps: Vec<f64> = (0..links).map(|_| rng.gen_range(10.0..1000.0)).collect();
    let entries = (0..flows)
        .map(|_| {
            let n = rng.gen_range(1..=4.min(links));
            let mut resources: Vec<u32> = (0..n).map(|_| rng.gen_range(0..links as u32)).collect();
            resources.sort_unstable();
            resources.dedup();
            let cap = if rng.gen_bool(0.3) {
                rng.gen_range(1.0..200.0)
            } else {
                f64::INFINITY
            };
            AllocEntry::new(resources, cap)
        })
        .collect();
    (caps, entries)
}

fn bench_allocator(c: &mut Criterion) {
    let mut g = c.benchmark_group("max-min-allocator");
    for (flows, links) in [(10, 8), (100, 32), (1000, 64)] {
        let (caps, entries) = problem(flows, links, 7);
        g.throughput(Throughput::Elements(flows as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{flows}f-{links}l")),
            &(caps, entries),
            |b, (caps, entries)| b.iter(|| max_min_allocate(caps, entries)),
        );
    }
    g.finish();
}

fn contended_world() -> (Topology, NodeId, NodeId, NodeId, NodeId) {
    let mut b = TopologyBuilder::new();
    let a = b.host("a", GeoPoint::new(49.0, -123.0));
    let r1 = b.router("r1", GeoPoint::new(45.0, -110.0));
    let r2 = b.router("r2", GeoPoint::new(42.0, -100.0));
    let c = b.host("c", GeoPoint::new(37.0, -122.0));
    let bs = b.host("bs", GeoPoint::new(45.1, -110.1));
    let bd = b.host("bd", GeoPoint::new(37.1, -122.1));
    let fat = LinkParams::new(Bandwidth::from_mbps(1000.0), SimTime::from_millis(3));
    let thin = LinkParams::new(Bandwidth::from_mbps(50.0), SimTime::from_millis(10));
    b.duplex(a, r1, fat);
    b.duplex(r1, r2, thin);
    b.duplex(r2, c, fat);
    b.duplex(bs, r1, fat);
    b.duplex(r2, bd, fat);
    (b.build(), a, c, bs, bd)
}

fn bench_transfer_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim-transfer");
    let (topo, a, dst, bs, bd) = contended_world();
    for mb in [10u64, 100] {
        g.throughput(Throughput::Bytes(mb * MB));
        g.bench_with_input(BenchmarkId::new("idle", mb), &topo, |b, topo| {
            b.iter(|| {
                Sim::new(topo.clone(), 1)
                    .run_transfer(TransferRequest::new(a, dst, mb * MB))
                    .unwrap()
                    .elapsed
            })
        });
        g.bench_with_input(BenchmarkId::new("contended", mb), &topo, |b, topo| {
            b.iter(|| {
                let mut sim = Sim::new(topo.clone(), 1);
                sim.spawn_detached(Box::new(BackgroundTraffic::new(BackgroundProfile::heavy(
                    bs, bd,
                ))));
                sim.run_transfer(TransferRequest::new(a, dst, mb * MB))
                    .unwrap()
                    .elapsed
            })
        });
    }
    g.finish();
}

fn bench_scenario_build(c: &mut Criterion) {
    c.bench_function("northamerica-build-sim", |b| {
        let world = scenarios::NorthAmerica::new();
        b.iter(|| world.build_sim(std::hint::black_box(7)))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_allocator, bench_transfer_run, bench_scenario_build
}

// ---------------------------------------------------------------------------
// Incremental-reallocation scaling study.
//
// The engine's hot path is one reallocation per flow arrival/departure. The
// study models a fleet of mostly independent transfer sites (each site: two
// resources, `FLOWS_PER_SITE` flows) and measures the per-event cost of
//
//   * incremental: `FlowCore::remove` + `FlowCore::insert` of one flow,
//     which recomputes only the touched connected component, vs
//   * reference:   one full `max_min_allocate` over every live flow —
//     what the engine did before the rewrite.
// ---------------------------------------------------------------------------

const FLOWS_PER_SITE: usize = 10;

/// A `total_flows`-flow world of independent 2-resource sites.
fn scaling_world(total_flows: usize, seed: u64) -> (Vec<f64>, Vec<AllocEntry>) {
    let sites = total_flows / FLOWS_PER_SITE;
    let mut rng = SmallRng::seed_from_u64(seed);
    let caps: Vec<f64> = (0..2 * sites)
        .map(|_| rng.gen_range(10.0..1000.0))
        .collect();
    let entries = (0..total_flows)
        .map(|j| {
            let site = (j / FLOWS_PER_SITE) as u32;
            let cap = if rng.gen_bool(0.3) {
                rng.gen_range(1.0..200.0)
            } else {
                f64::INFINITY
            };
            AllocEntry::new(vec![2 * site, 2 * site + 1], cap)
        })
        .collect();
    (caps, entries)
}

/// Median ns/iter of `f` over `samples` timed runs (after `warmup` runs).
fn median_ns(warmup: usize, samples: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// One scaling point: per-event reallocation cost at `n` concurrent flows.
fn scaling_point(n: usize, warmup: usize, samples: usize) -> Json {
    let (caps, entries) = scaling_world(n, 42);

    let mut core = FlowCore::new(caps.clone());
    for (j, e) in entries.iter().enumerate() {
        core.insert(j as u64, j as u64, &e.resources, e.cap, 1.0);
    }
    // Cycle the churned flow so successive iterations touch different
    // components (defeats any single-component cache warmth). Each sample
    // batches many remove+insert pairs: one pair is sub-microsecond, well
    // below timer noise.
    const BATCH: usize = 64;
    let mut victim = 0usize;
    let incremental_ns = median_ns(warmup, samples, || {
        for _ in 0..BATCH {
            let e = &entries[victim];
            core.remove(victim as u64);
            core.insert(victim as u64, victim as u64, &e.resources, e.cap, 1.0);
            victim = (victim + 1) % entries.len();
        }
    }) / (2 * BATCH) as f64; // each pair = two reallocation events

    let reference_ns = median_ns(warmup, samples, || {
        std::hint::black_box(max_min_allocate(&caps, &entries));
    });

    let speedup = reference_ns / incremental_ns;
    println!(
        "flowsim-scaling/{n}: incremental {incremental_ns:.0} ns/event, \
         reference {reference_ns:.0} ns/event, speedup {speedup:.1}x"
    );
    Json::Obj(vec![
        ("flows".into(), Json::Int(n as u64)),
        ("incremental_ns".into(), Json::Num(incremental_ns)),
        ("reference_ns".into(), Json::Num(reference_ns)),
        ("speedup".into(), Json::Num(speedup)),
    ])
}

// ---------------------------------------------------------------------------
// End-to-end engine scaling study.
//
// The allocator study above isolates reallocation; this one measures the
// whole per-event path — heap pop, dispatch, slab lookup, reallocation,
// lazy progress settlement, drain scheduling, queue compaction — at 100,
// 1k, 10k and 100k *concurrent* flows. The world is a fleet of independent
// two-host sites (10 flows each: 9 long-lived residents plus one slot of
// churning short flows), so the allocator component an event touches stays
// constant-size and any growth in per-event cost is engine overhead.
//
// Each point also runs under `ProgressMode::Eager`, which re-runs the
// legacy O(live flows) per-event progress sweep — the cost model the lazy
// rewrite removed — giving an in-binary before/after comparison. Eager is
// skipped at 100k (the quadratic sweep would dominate the whole run).
// ---------------------------------------------------------------------------

/// Flows per independent site: 9 residents + 1 churn slot.
const ENGINE_FLOWS_PER_SITE: usize = 10;

/// One independent transfer site: a host pair plus its churn-flow size.
#[derive(Clone, Copy)]
struct EngineSite {
    src: NodeId,
    dst: NodeId,
    churn_bytes: u64,
}

/// A fleet of disconnected two-host sites. Disconnection keeps on-demand
/// shortest-path resolution O(site), so world setup stays linear in sites.
/// Per-site capacities, delays and churn sizes are deliberately varied:
/// identical sites would complete flows in lock-step, bunching events on
/// shared timestamps and letting the eager sweep's zero-dt early-return
/// dodge the O(live flows) cost it exists to measure.
fn engine_world(sites: usize) -> (Topology, Vec<EngineSite>) {
    engine_world_range(0, sites)
}

/// The sites `lo..hi` of the fleet, with per-site parameters keyed by the
/// *global* site index — a cell of the sharded study builds exactly the
/// slice of the world it simulates, and the union over cells is the same
/// fleet `engine_world` builds whole.
fn engine_world_range(lo: usize, hi: usize) -> (Topology, Vec<EngineSite>) {
    let mut b = TopologyBuilder::new();
    let fleet = (lo..hi)
        .map(|i| {
            let lat = (i % 120) as f64 - 60.0;
            let lon = (i / 120 % 300) as f64 - 150.0;
            let src = b.host(&format!("s{i}"), GeoPoint::new(lat, lon));
            let dst = b.host(&format!("d{i}"), GeoPoint::new(lat, lon + 0.5));
            let params = LinkParams::new(
                Bandwidth::from_mbps(50.0 + (i % 97) as f64),
                SimTime::from_millis(1 + (i % 7) as u64),
            );
            b.duplex(src, dst, params);
            EngineSite {
                src,
                dst,
                churn_bytes: (32 + 8 * (i % 13) as u64) * KB,
            }
        })
        .collect();
    (b.build(), fleet)
}

/// Starts every site's resident + churn flows, then keeps each site's churn
/// slot busy until `remaining` short flows have completed in total.
struct EngineChurn {
    fleet: Vec<EngineSite>,
    site_of: HashMap<u64, usize>,
    remaining: u64,
    /// Completions to treat as warm-up before the timed window opens.
    warmup: u64,
    seen: u64,
    /// Set to `Instant::now()` at the `warmup`-th completion; the caller
    /// reads it back to time the steady-state window only.
    mark: Rc<Cell<Option<Instant>>>,
}

impl EngineChurn {
    fn start_churn(&mut self, ctx: &mut Ctx<'_>, site: usize) {
        let s = self.fleet[site];
        let id = ctx
            .start_flow(FlowSpec::new(
                s.src,
                s.dst,
                s.churn_bytes,
                FlowClass::Background,
            ))
            .expect("site is connected");
        self.site_of.insert(id.0, site);
    }
}

impl Process for EngineChurn {
    fn poll(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Started => {
                for site in 0..self.fleet.len() {
                    let s = self.fleet[site];
                    // Residents share the site link for the whole run, so
                    // every churn boundary perturbs their rates (and
                    // supersedes their pending drains).
                    for _ in 0..ENGINE_FLOWS_PER_SITE - 1 {
                        ctx.start_flow(FlowSpec::new(s.src, s.dst, 100 * GB, FlowClass::Commodity))
                            .expect("site is connected");
                    }
                    self.start_churn(ctx, site);
                }
            }
            Event::FlowCompleted { flow, .. } => {
                let site = self.site_of.remove(&flow.0).expect("known churn flow");
                self.seen += 1;
                if self.seen == self.warmup {
                    self.mark.set(Some(Instant::now()));
                }
                self.remaining -= 1;
                if self.remaining == 0 {
                    ctx.finish(Value::None);
                } else {
                    self.start_churn(ctx, site);
                }
            }
            Event::FlowFailed { error, .. } => panic!("bench flow failed: {error}"),
            _ => {}
        }
    }
}

/// One full engine run at `n` concurrent flows; returns `(ns/event,
/// events/sec, peak_queue)`. The first fifth of the churn completions are
/// warm-up (ramp-up inserts grow the slab, the flow index and the heap
/// through their reallocation doublings); the timed window covers only
/// steady-state churn, where each completion is exactly three engine
/// events (Activate, Drained, Delivered — stale drains sit far in the
/// future and are compacted away, never popped).
fn engine_run(n: usize, cycles: u64, mode: ProgressMode) -> (f64, f64, u64) {
    let sites = n / ENGINE_FLOWS_PER_SITE;
    let (topo, fleet) = engine_world(sites);
    let mut sim = Sim::new(topo, 42);
    sim.set_progress_mode(mode);
    let warmup = (cycles / 5).max(1);
    let mark = Rc::new(Cell::new(None));
    let v = sim
        .run_process(Box::new(EngineChurn {
            fleet,
            site_of: HashMap::new(),
            remaining: cycles,
            warmup,
            seen: 0,
            mark: Rc::clone(&mark),
        }))
        .expect("engine bench run");
    assert!(matches!(v, Value::None), "bench run failed: {v:?}");
    let wall_ns = mark.get().expect("warm-up mark").elapsed().as_nanos() as f64;
    let stats = sim.stats();
    // At finish every site still holds its residents, and every site but
    // the one whose completion ended the run has a churn flow in flight.
    assert_eq!(sim.live_flows(), sites * ENGINE_FLOWS_PER_SITE - 1);
    let steady_events = 3 * (cycles - warmup);
    let ns_per_event = wall_ns / steady_events as f64;
    (ns_per_event, 1e9 / ns_per_event, stats.peak_queue)
}

/// One engine scaling point: fastest of `reps` runs per mode (scheduling
/// noise is strictly additive, so the minimum is the stable estimator —
/// medians left the regression gate flapping at small sizes).
fn engine_point(n: usize, cycles: u64, reps: usize, with_eager: bool) -> Json {
    let fastest = |mode: ProgressMode| {
        (0..reps)
            .map(|_| engine_run(n, cycles, mode))
            .min_by(|a, b| f64::total_cmp(&a.0, &b.0))
            .expect("at least one rep")
    };
    let (lazy_ns, events_per_sec, peak_queue) = fastest(ProgressMode::Lazy);
    let mut fields = vec![
        ("flows".into(), Json::Int(n as u64)),
        ("lazy_ns".into(), Json::Num(lazy_ns)),
        ("events_per_sec".into(), Json::Num(events_per_sec)),
        ("peak_queue".into(), Json::Int(peak_queue)),
    ];
    if with_eager {
        let (eager_ns, _, _) = fastest(ProgressMode::Eager);
        let speedup = eager_ns / lazy_ns;
        println!(
            "flowsim-engine/{n}: lazy {lazy_ns:.0} ns/event ({events_per_sec:.0} ev/s, \
             peak queue {peak_queue}), eager sweep {eager_ns:.0} ns/event, speedup {speedup:.1}x"
        );
        fields.push(("eager_ns".into(), Json::Num(eager_ns)));
        fields.push(("sweep_speedup".into(), Json::Num(speedup)));
    } else {
        println!(
            "flowsim-engine/{n}: lazy {lazy_ns:.0} ns/event ({events_per_sec:.0} ev/s, \
             peak queue {peak_queue})"
        );
    }
    Json::Obj(fields)
}

// ---------------------------------------------------------------------------
// Sharded-executor scaling study.
//
// The engine fleet above is a union of disconnected sites, so it splits
// cleanly into ENGINE_CELLS independent cells — each a full sub-simulation
// (own topology slice, own Sim, own churn driver) built entirely on its
// worker thread and reduced in cell-id order. The cell count is FIXED
// regardless of the worker count: every thread count executes the exact
// same per-cell work, so the folded digests must match bit-for-bit and the
// wall-clock difference is pure executor scaling.
// ---------------------------------------------------------------------------

/// Cells the fleet is split into for the sharded study.
const ENGINE_CELLS: usize = 8;

/// Plain-data description of one cell: sites `lo..hi` of the global fleet,
/// churned to `cycles` completions. Only this spec crosses the thread
/// boundary — `Sim` is not `Send` and is built on the worker.
#[derive(Clone, Copy)]
struct EngineCellSpec {
    lo: usize,
    hi: usize,
    cycles: u64,
    seed: u64,
}

/// Run one cell to completion; returns `(events, state digest)`.
fn engine_cell_run(spec: EngineCellSpec) -> (u64, u64) {
    let (topo, fleet) = engine_world_range(spec.lo, spec.hi);
    let sites = fleet.len();
    let mut sim = Sim::new(topo, spec.seed);
    let mark = Rc::new(Cell::new(None));
    let v = sim
        .run_process(Box::new(EngineChurn {
            fleet,
            site_of: HashMap::new(),
            remaining: spec.cycles,
            warmup: 0, // whole-run wall time is taken outside run_shards
            seen: 0,
            mark,
        }))
        .expect("engine cell run");
    assert!(matches!(v, Value::None), "cell run failed: {v:?}");
    assert_eq!(sim.live_flows(), sites * ENGINE_FLOWS_PER_SITE - 1);
    (sim.stats().events, sim.state_digest())
}

/// Split the `n`-flow fleet into cells and run them under the sharded
/// executor at `workers` threads, wall-clocking the whole `run_shards`
/// call (spawn, claim loop, join barrier and reduction included). Returns
/// `(ns/event, events/sec, folded digest)`.
fn sharded_engine_run(n: usize, cycles: u64, workers: usize) -> (f64, f64, u64) {
    let sites = n / ENGINE_FLOWS_PER_SITE;
    assert!(sites >= 1, "need at least one site");
    let cells = ENGINE_CELLS.min(sites);
    let specs: Vec<EngineCellSpec> = (0..cells)
        .map(|k| {
            let lo = sites * k / cells;
            let hi = sites * (k + 1) / cells;
            EngineCellSpec {
                lo,
                hi,
                // Churn proportional to the cell's share of the fleet, so
                // the work split matches the site split.
                cycles: (cycles * (hi - lo) as u64 / sites as u64).max(1),
                seed: 42 ^ k as u64,
            }
        })
        .collect();
    let t = Instant::now();
    let results = run_shards(specs, workers, |_, spec| engine_cell_run(spec));
    let wall_ns = t.elapsed().as_nanos() as f64;
    let events: u64 = results.iter().map(|r| r.0).sum();
    let digests: Vec<u64> = results.iter().map(|r| r.1).collect();
    let ns_per_event = wall_ns / events as f64;
    (ns_per_event, 1e9 / ns_per_event, fold_digests(&digests))
}

/// One sharded scaling point: fastest-of-`reps` per worker count, with
/// bit-identical folded digests demanded at every count — the bench doubles
/// as a determinism check on real multi-core hardware.
fn threads_point(n: usize, cycles: u64, reps: usize, counts: &[usize]) -> Vec<Json> {
    let cells = ENGINE_CELLS.min(n / ENGINE_FLOWS_PER_SITE);
    let fastest = |workers: usize| {
        (0..reps)
            .map(|_| sharded_engine_run(n, cycles, workers))
            .min_by(|a, b| f64::total_cmp(&a.0, &b.0))
            .expect("at least one rep")
    };
    let (base_ns, base_eps, base_digest) = fastest(1);
    let mut out = Vec::new();
    for &workers in counts {
        let (ns, eps, digest) = if workers == 1 {
            (base_ns, base_eps, base_digest)
        } else {
            fastest(workers)
        };
        assert_eq!(
            digest, base_digest,
            "sharded digest diverged at {workers} workers / {n} flows"
        );
        let speedup = base_ns / ns;
        println!(
            "flowsim-threads/{n}x{workers}: {ns:.0} ns/event ({eps:.0} ev/s), \
             speedup {speedup:.2}x vs 1 thread"
        );
        out.push(Json::Obj(vec![
            ("flows".into(), Json::Int(n as u64)),
            ("threads".into(), Json::Int(workers as u64)),
            ("cells".into(), Json::Int(cells as u64)),
            ("ns_per_event".into(), Json::Num(ns)),
            ("events_per_sec".into(), Json::Num(eps)),
            ("speedup".into(), Json::Num(speedup)),
        ]));
    }
    out
}

// ---------------------------------------------------------------------------
// Route-oracle scaling study.
//
// Measures the routing rebuild end to end on generated multi-cloud globes:
// cold tree construction (one Dijkstra over the CSR per source), warm
// `path_into` queries (prev-chain walks, zero allocation), `k_detours`
// enumeration, and — for comparison — the legacy per-query Dijkstra the
// oracle replaced. Sizes run 1k → 100k nodes; the 100k point uses the
// acceptance-scale `SynthGlobe::stress` knobs (~1M host links).
// ---------------------------------------------------------------------------

/// Warm-query speedup (legacy Dijkstra ns / oracle ns) demanded at the
/// largest routing point — enforced only when the host has ≥ 4 hardware
/// threads; smaller boxes record their real measurements and print a
/// waiver instead (numbers are never fabricated).
const ROUTING_SPEEDUP_FLOOR: f64 = 25.0;

/// One routing scaling point on `globe`; `quick` trims sample counts.
fn routing_point(globe: SynthGlobe, quick: bool) -> Json {
    let world = globe.build();
    let topo = &world.topo;
    let nodes = topo.nodes().len();
    let arcs = topo.csr().arc_count();
    let hosts = &world.hosts;
    // A handful of spread-out sources keeps the tree cache small while the
    // destinations fan out across every region.
    let sources: Vec<NodeId> = hosts.iter().step_by(hosts.len() / 4 + 1).copied().collect();
    let mut state = 0x2545f4914f6cdd1du64;
    let mut next = move |m: usize| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize % m
    };
    let far = hosts[hosts.len() - 1];
    let mut oracle = RouteOracle::new();
    let mut path_buf: Vec<NodeId> = Vec::with_capacity(nodes);

    // Cold build: clear the cache and pay for one full source tree.
    let build_reps = if quick { 3 } else { 5 };
    let build_ms = (0..build_reps)
        .map(|_| {
            oracle.clear_trees();
            let t = Instant::now();
            oracle
                .path_into(topo, sources[0], far, &mut path_buf)
                .unwrap();
            t.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min);

    // Warm queries: every source tree built, then batched prev-chain walks.
    for &s in &sources {
        oracle.path_into(topo, s, far, &mut path_buf).unwrap();
    }
    let (warmup, samples) = if quick { (3, 21) } else { (10, 51) };
    const BATCH: usize = 256;
    let mut pairs: Vec<(NodeId, NodeId)> = (0..BATCH)
        .map(|_| (sources[next(sources.len())], hosts[next(hosts.len())]))
        .collect();
    let query_ns = median_ns(warmup, samples, || {
        for &(src, dst) in &pairs {
            oracle.path_into(topo, src, dst, &mut path_buf).unwrap();
        }
    }) / BATCH as f64;

    // The legacy comparison: one full Dijkstra per query, rotating pairs.
    // Sub-linear sample counts — at 100k nodes a single query is ~a tree
    // build, and the point is the orders-of-magnitude gap, not precision.
    let mut i = 0usize;
    let dijkstra_ns = median_ns(1, if quick { 3 } else { 7 }, || {
        let (src, dst) = pairs[i % pairs.len()];
        std::hint::black_box(netsim::routing::dijkstra(topo, src, dst));
        i += 1;
    });
    let speedup = dijkstra_ns / query_ns;

    // Detour enumeration: k=4 candidates per query, warm reverse trees.
    pairs.truncate(8);
    for &(src, dst) in &pairs {
        oracle.k_detours(topo, src, dst, 4).unwrap();
    }
    let mut j = 0usize;
    let detour_ns = median_ns(warmup, if quick { 11 } else { 31 }, || {
        let (src, dst) = pairs[j % pairs.len()];
        std::hint::black_box(oracle.k_detours(topo, src, dst, 4).unwrap());
        j += 1;
    });

    println!(
        "flowsim-routing/{nodes}: build {build_ms:.2} ms, warm query {query_ns:.0} ns, \
         legacy dijkstra {dijkstra_ns:.0} ns (speedup {speedup:.0}x), \
         k=4 detours {detour_ns:.0} ns/call ({:.0} enum/s)",
        1e9 / detour_ns
    );
    Json::Obj(vec![
        ("nodes".into(), Json::Int(nodes as u64)),
        ("arcs".into(), Json::Int(arcs as u64)),
        ("build_ms".into(), Json::Num(build_ms)),
        ("query_ns".into(), Json::Num(query_ns)),
        ("dijkstra_ns".into(), Json::Num(dijkstra_ns)),
        ("speedup".into(), Json::Num(speedup)),
        ("detour_ns".into(), Json::Num(detour_ns)),
    ])
}

/// The routing speedup floor at the largest measured point. Same waiver
/// policy as the parallel gate: sub-4-thread hosts record and print.
fn check_routing_speedup(routing: &[Json], host_threads: usize) -> Option<String> {
    let row = routing
        .iter()
        .max_by_key(|p| p.get("nodes").and_then(Json::as_u64).unwrap_or(0))?;
    let nodes = row.get("nodes").and_then(Json::as_u64).unwrap_or(0);
    let speedup = row.get("speedup").and_then(Json::as_f64).unwrap_or(0.0);
    if host_threads < 4 {
        println!(
            "flowsim-routing: speedup gate waived — host has {host_threads} hardware \
             thread(s); measured {speedup:.0}x at {nodes} nodes"
        );
        return None;
    }
    (speedup < ROUTING_SPEEDUP_FLOOR).then(|| {
        format!(
            "flowsim-routing/{nodes}: warm-query speedup {speedup:.1}x < required \
             {ROUTING_SPEEDUP_FLOOR}x vs legacy dijkstra"
        )
    })
}

// ---------------------------------------------------------------------------
// Route-plane decision study.
//
// The plane exists to amortize selector passes: a warm cache lookup must
// be far cheaper than the probe-selector decision it replaces. Two
// measurements make that a checkable claim on any host:
//
//   * warm-hit ns — fastest-of-5 batched lookups against a fully
//     populated `RoutePlane` (the allocation-free path the counting-
//     allocator test pins), and
//   * uncached ns — `ProbeSource::compute` called directly, i.e. one real
//     `ProbeSelector` pass per candidate route over the NorthAmerica sim.
//
// Both run on the same box in the same process, so the ≥10x floor is
// host-relative and enforced unconditionally (no hardware waiver). The
// fleet rows then measure served QPS at 1/2/4 worker threads and check
// the churn-sweep staleness bound end to end.
// ---------------------------------------------------------------------------

use netsim::flow::FlowClass as PlaneFlowClass;
use routeplane::{
    run_fleet, AdmissionConfig, DecisionKey, DecisionSource, FleetConfig, PlaneConfig, ProbeSource,
    RoutePlane,
};

/// Warm cache hit vs uncached selector decision: the minimum amortization
/// the plane must deliver. Host-relative (both sides measured here), so
/// never waived.
const PLANE_WARM_SPEEDUP_FLOOR: f64 = 10.0;

/// Served decisions per second demanded of the 4-thread fleet row —
/// enforced only on hosts with ≥ 4 hardware threads; smaller boxes record
/// their real measurement and print a waiver (numbers are never fabricated).
const PLANE_QPS_FLOOR: f64 = 1_000_000.0;

/// A probe-selector-backed source over the NorthAmerica world: 3 vantage
/// clients × 3 providers × (direct + 2 detour hops), the exact decision
/// the paper's tables are built from.
fn plane_probe_source() -> ProbeSource {
    let world = scenarios::NorthAmerica::new();
    let clients: Vec<(NodeId, PlaneFlowClass)> = scenarios::Client::all()
        .iter()
        .map(|&c| {
            let s = world.client(c);
            (s.node, s.class)
        })
        .collect();
    let providers = vec![
        world.provider(cloudstore::ProviderKind::GoogleDrive),
        world.provider(cloudstore::ProviderKind::Dropbox),
        world.provider(cloudstore::ProviderKind::OneDrive),
    ];
    let routes = vec![
        detour_core::Route::Direct,
        detour_core::Route::via(world.hop_ualberta()),
        detour_core::Route::via(world.hop_umich()),
    ];
    ProbeSource::new(
        world.build_sim(3),
        clients,
        providers,
        routes,
        [4 * MB, 64 * MB, 512 * MB],
    )
}

/// Warm-hit vs uncached-selector point. `keys` distinct cells are
/// populated cold, then timed warm in batches of `batch`.
fn plane_decision_point(keys: u32, batch: usize, reps: usize) -> Json {
    let source = plane_probe_source();
    let plane = RoutePlane::new(PlaneConfig {
        vantages: keys,
        // The whole timing loop runs at one virtual instant: quota must
        // come from burst depth, not refill.
        admission: AdmissionConfig {
            tokens_per_sec: 1_000_000,
            burst: 100_000_000,
        },
        ..PlaneConfig::default()
    });
    let cells: Vec<DecisionKey> = (0..keys)
        .map(|v| DecisionKey {
            vantage: v,
            provider: (v % 3) as u16,
            size_class: (v % 3) as u8,
        })
        .collect();
    for &k in &cells {
        plane.lookup(0, k, 0, &source);
    }

    // Fastest-of-`reps` batched warm lookups (scheduling noise is strictly
    // additive, so the minimum is the stable estimator).
    let mut j = 0usize;
    let mut warm_batch = || {
        let t = Instant::now();
        for _ in 0..batch {
            let k = cells[j % cells.len()];
            std::hint::black_box(plane.lookup((j % 4) as u32, k, 0, &source));
            j += 1;
        }
        t.elapsed().as_nanos() as f64 / batch as f64
    };
    warm_batch(); // warm-up rep
    let warm_ns = (0..reps)
        .map(|_| warm_batch())
        .fold(f64::INFINITY, f64::min);

    // The uncached comparison: one full selector pass per decision. A
    // handful of calls suffices — the point is the orders-of-magnitude
    // gap, not precision.
    let probe_keys: Vec<DecisionKey> = cells.iter().copied().take(4).collect();
    let mut i = 0usize;
    let uncached_ns = median_ns(1, reps.max(3), || {
        std::hint::black_box(source.compute(probe_keys[i % probe_keys.len()], 0));
        i += 1;
    });

    let speedup = uncached_ns / warm_ns;
    println!(
        "flowsim-plane-decision/{keys}: warm hit {warm_ns:.0} ns, uncached selector \
         {uncached_ns:.0} ns, speedup {speedup:.0}x"
    );
    Json::Obj(vec![
        ("keys".into(), Json::Int(keys as u64)),
        ("warm_ns".into(), Json::Num(warm_ns)),
        ("uncached_ns".into(), Json::Num(uncached_ns)),
        ("speedup".into(), Json::Num(speedup)),
    ])
}

/// Fleet QPS rows at each worker count: fastest-of-`reps` full fleet runs
/// (zipf clients, churn sweep, breaker trips — the whole service loop).
/// Every row checks the hard staleness invariant: no served decision older
/// than one churn-sweep period.
fn plane_fleet_rows(lookups: u64, reps: usize, counts: &[usize]) -> Vec<Json> {
    let mut out = Vec::new();
    for &threads in counts {
        let cfg = FleetConfig {
            lookups,
            threads,
            ..FleetConfig::default()
        };
        let bound = cfg.churn_period_ns().expect("default config churns");
        let best = (0..reps)
            .map(|_| run_fleet(&cfg))
            .max_by(|a, b| f64::total_cmp(&a.qps, &b.qps))
            .expect("at least one rep");
        let max_stale = best.staleness.max().unwrap_or(0);
        assert!(
            max_stale <= bound,
            "plane served a decision {max_stale}ns stale, past the \
             {bound}ns churn-sweep bound"
        );
        let p99 = best.staleness_ns(0.99);
        let ns_per_lookup = 1e9 / best.qps;
        println!(
            "flowsim-plane/{threads}t: {:.0} lookups/s ({ns_per_lookup:.0} ns/lookup), \
             hit {} stale {} demote {} shed {}, staleness p99 {p99} ns (bound {bound} ns)",
            best.qps,
            best.stats.hits,
            best.stats.stale_refreshes,
            best.stats.demotions,
            best.stats.sheds,
        );
        out.push(Json::Obj(vec![
            ("threads".into(), Json::Int(threads as u64)),
            ("lookups".into(), Json::Int(lookups)),
            ("qps".into(), Json::Num(best.qps)),
            ("ns_per_lookup".into(), Json::Num(ns_per_lookup)),
            ("hits".into(), Json::Int(best.stats.hits)),
            ("misses".into(), Json::Int(best.stats.misses)),
            (
                "stale_refreshes".into(),
                Json::Int(best.stats.stale_refreshes),
            ),
            ("demotions".into(), Json::Int(best.stats.demotions)),
            ("sheds".into(), Json::Int(best.stats.sheds)),
            ("staleness_p99_ns".into(), Json::Int(p99)),
            ("staleness_max_ns".into(), Json::Int(max_stale)),
            ("staleness_bound_ns".into(), Json::Int(bound)),
        ]));
    }
    out
}

/// The warm-hit amortization floor. Host-relative, so always enforced.
fn check_plane_speedup(decision: &Json) -> Option<String> {
    let speedup = decision
        .get("speedup")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    (speedup < PLANE_WARM_SPEEDUP_FLOOR).then(|| {
        format!(
            "flowsim-plane-decision: warm-hit speedup {speedup:.1}x < required \
             {PLANE_WARM_SPEEDUP_FLOOR}x vs uncached selector"
        )
    })
}

/// The absolute QPS floor at 4 fleet threads. Same waiver policy as the
/// parallel gate: sub-4-thread hosts record and print.
fn check_plane_qps(rows: &[Json], host_threads: usize) -> Option<String> {
    let row = rows
        .iter()
        .find(|p| p.get("threads").and_then(Json::as_u64) == Some(4))?;
    let qps = row.get("qps").and_then(Json::as_f64).unwrap_or(0.0);
    if host_threads < 4 {
        println!(
            "flowsim-plane: QPS gate waived — host has {host_threads} hardware \
             thread(s); measured {qps:.0} lookups/s at 4 threads"
        );
        return None;
    }
    (qps < PLANE_QPS_FLOOR).then(|| {
        format!(
            "flowsim-plane/4t: {qps:.0} lookups/s < required {PLANE_QPS_FLOOR:.0} \
             (host has {host_threads} hardware threads)"
        )
    })
}

// ---------------------------------------------------------------------------
// Delta-sync chunk-store study.
//
// The sync workload plane's hot loop is `ChunkStore::plan` — one content-
// addressed probe per manifest chunk on every rsync leg through a DTN.
// Each point replays a deterministic `SyncPopulation` edit history (the
// same fixed-seed workload `detour sync` runs) through one shared store
// and records
//
//   * the byte outcome: full bytes vs deduplicated wire bytes and the
//     store's cumulative hit rate — fixed-seed deterministic, so gated by
//     absolute floors (a dip means the dedup logic changed, not the host),
//   * ns/probe: fastest-of-5 batched `plan` passes over a frozen clone of
//     the warm store, regression-gated vs the checked-in baseline.
// ---------------------------------------------------------------------------

use relay::ChunkStore;
use transfer::{ChunkManifest, MutationMix, SyncPopulation, SyncPopulationConfig};

/// Deterministic floors on the recorded byte outcome. The workload is
/// fixed-seed, so these are exact reproducibility checks, not hardware
/// gates — never waived.
const SYNC_SAVINGS_FLOOR_PCT: f64 = 50.0;
const SYNC_HIT_RATE_FLOOR: f64 = 0.5;

/// One sync point: `files` files of `file_kb` KB mutated through `rounds`
/// edit rounds against a shared chunk store.
fn sync_point(files: usize, file_kb: usize, rounds: usize, reps: usize) -> Json {
    let mut pop = SyncPopulation::new(
        42,
        SyncPopulationConfig {
            files,
            file_len: file_kb * KB as usize,
            mix: MutationMix::desktop(),
            max_edits: 16,
            max_append: 4096,
            max_rewrite: 16 * 1024,
        },
    );
    let mut store = ChunkStore::new(64 * MB);
    let mut full_bytes = 0u64;
    let mut wire_bytes = 0u64;
    for round in 0..=rounds {
        if round > 0 {
            pop.advance();
        }
        for i in 0..files {
            let m = ChunkManifest::of(pop.file(i), transfer::DEFAULT_CHUNK_SIZE);
            let p = store.plan(&m);
            store.admit(&m);
            full_bytes += pop.file(i).len() as u64;
            wire_bytes += p.wire_bytes;
        }
    }
    let stats = store.stats();
    let saved_pct = 100.0 * (full_bytes - wire_bytes) as f64 / full_bytes as f64;

    // ns/probe: batched plans against a frozen clone of the warm store.
    // `plan` mutates counters only, never residency, so every pass probes
    // the identical resident set.
    let manifests: Vec<ChunkManifest> = (0..files)
        .map(|i| ChunkManifest::of(pop.file(i), transfer::DEFAULT_CHUNK_SIZE))
        .collect();
    let probes_per_pass: u64 = manifests.iter().map(|m| m.chunks.len() as u64).sum();
    let mut timing = store.clone();
    let mut pass = || {
        let t = Instant::now();
        for m in &manifests {
            std::hint::black_box(timing.plan(m));
        }
        t.elapsed().as_nanos() as f64 / probes_per_pass as f64
    };
    pass(); // warm-up
    let ns_per_probe = (0..reps).map(|_| pass()).fold(f64::INFINITY, f64::min);

    println!(
        "flowsim-sync/{probes_per_pass}: {files} files x {file_kb} KB x {rounds} rounds, \
         {saved_pct:.1}% bytes saved, hit rate {:.2}, probe {ns_per_probe:.0} ns",
        stats.hit_rate()
    );
    Json::Obj(vec![
        ("chunks".into(), Json::Int(probes_per_pass)),
        ("files".into(), Json::Int(files as u64)),
        ("file_kb".into(), Json::Int(file_kb as u64)),
        ("rounds".into(), Json::Int(rounds as u64)),
        ("full_bytes".into(), Json::Int(full_bytes)),
        ("wire_bytes".into(), Json::Int(wire_bytes)),
        ("saved_pct".into(), Json::Num(saved_pct)),
        ("hit_rate".into(), Json::Num(stats.hit_rate())),
        ("ns_per_probe".into(), Json::Num(ns_per_probe)),
    ])
}

/// The deterministic byte-outcome floors for every sync point.
fn check_sync_floors(sync: &[Json]) -> Vec<String> {
    let mut errors = Vec::new();
    for point in sync {
        let chunks = point.get("chunks").and_then(Json::as_u64).unwrap_or(0);
        let saved = point.get("saved_pct").and_then(Json::as_f64).unwrap_or(0.0);
        let hit = point.get("hit_rate").and_then(Json::as_f64).unwrap_or(0.0);
        if saved < SYNC_SAVINGS_FLOOR_PCT {
            errors.push(format!(
                "flowsim-sync/{chunks}: bytes saved {saved:.1}% < required \
                 {SYNC_SAVINGS_FLOOR_PCT}% (deterministic workload)"
            ));
        }
        if hit < SYNC_HIT_RATE_FLOOR {
            errors.push(format!(
                "flowsim-sync/{chunks}: hit rate {hit:.2} < required \
                 {SYNC_HIT_RATE_FLOOR} (deterministic workload)"
            ));
        }
    }
    errors
}

/// Allowed slowdown vs the checked-in baseline before CI fails the run.
const REGRESSION_TOLERANCE: f64 = 1.25;

/// Minimum parallel speedup demanded at 4 threads / 100k flows — enforced
/// only when the host actually has ≥ 4 hardware threads; a smaller box
/// records its real measurements and prints a waiver instead (numbers are
/// never fabricated).
const PARALLEL_SPEEDUP_FLOOR: f64 = 1.8;

/// Compare one metric series of `report` against `baseline`, matching
/// points on the `key` field ("flows" for the allocator/engine series,
/// "nodes" for routing), appending an error line per point slower than
/// the tolerance allows.
fn check_series(
    report: &Json,
    baseline: &Json,
    series: &str,
    key: &str,
    metric: &str,
    errors: &mut Vec<String>,
) {
    let empty = Vec::new();
    let base_points = baseline
        .get(series)
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    for point in report.get(series).and_then(Json::as_arr).unwrap_or(&empty) {
        let at = point.get(key).and_then(Json::as_u64).unwrap_or(0);
        let now = point.get(metric).and_then(Json::as_f64).unwrap_or(f64::NAN);
        let Some(was) = base_points
            .iter()
            .find(|b| b.get(key).and_then(Json::as_u64) == Some(at))
            .and_then(|b| b.get(metric))
            .and_then(Json::as_f64)
        else {
            continue;
        };
        if now > was * REGRESSION_TOLERANCE {
            errors.push(format!(
                "flowsim-{series}/{at}: {metric} {now:.0} vs \
                 baseline {was:.0} (> {REGRESSION_TOLERANCE}x)"
            ));
        }
    }
}

/// Like `check_series` but keyed on `(flows, threads)` — the sharded
/// series has one row per worker count at each size.
fn check_threads_series(report: &Json, baseline: &Json, errors: &mut Vec<String>) {
    let empty = Vec::new();
    let base_points = baseline
        .get("threads")
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    for point in report
        .get("threads")
        .and_then(Json::as_arr)
        .unwrap_or(&empty)
    {
        let flows = point.get("flows").and_then(Json::as_u64).unwrap_or(0);
        let threads = point.get("threads").and_then(Json::as_u64).unwrap_or(0);
        let now = point
            .get("ns_per_event")
            .and_then(Json::as_f64)
            .unwrap_or(f64::NAN);
        let Some(was) = base_points
            .iter()
            .find(|b| {
                b.get("flows").and_then(Json::as_u64) == Some(flows)
                    && b.get("threads").and_then(Json::as_u64) == Some(threads)
            })
            .and_then(|b| b.get("ns_per_event"))
            .and_then(Json::as_f64)
        else {
            continue;
        };
        if now > was * REGRESSION_TOLERANCE {
            errors.push(format!(
                "flowsim-threads/{flows}x{threads}: ns_per_event {now:.0} vs \
                 baseline {was:.0} (> {REGRESSION_TOLERANCE}x)"
            ));
        }
    }
}

/// The parallel-speedup floor at 4 threads / 100k flows. Returns
/// an error line when the gate is enforceable and missed; on hosts with
/// fewer than 4 hardware threads the measurement is recorded but the gate
/// is waived with a printed note.
fn check_parallel_speedup(threads: &[Json], host_threads: usize) -> Option<String> {
    let row = threads.iter().find(|p| {
        p.get("flows").and_then(Json::as_u64) == Some(100_000)
            && p.get("threads").and_then(Json::as_u64) == Some(4)
    })?;
    let speedup = row.get("speedup").and_then(Json::as_f64).unwrap_or(0.0);
    if host_threads < 4 {
        println!(
            "flowsim-threads: speedup gate waived — host has {host_threads} hardware \
             thread(s); measured {speedup:.2}x at 100k flows / 4 threads"
        );
        return None;
    }
    (speedup < PARALLEL_SPEEDUP_FLOOR).then(|| {
        format!(
            "flowsim-threads/100000x4: speedup {speedup:.2}x < required \
             {PARALLEL_SPEEDUP_FLOOR}x (host has {host_threads} hardware threads)"
        )
    })
}

/// Compare against a baseline `BENCH_flowsim.json`; returns error lines.
fn check_baseline(report: &Json, baseline: &Json) -> Vec<String> {
    let mut errors = Vec::new();
    check_series(
        report,
        baseline,
        "sizes",
        "flows",
        "incremental_ns",
        &mut errors,
    );
    check_series(report, baseline, "engine", "flows", "lazy_ns", &mut errors);
    check_series(
        report,
        baseline,
        "routing",
        "nodes",
        "query_ns",
        &mut errors,
    );
    check_series(
        report,
        baseline,
        "routing",
        "nodes",
        "detour_ns",
        &mut errors,
    );
    check_series(
        report,
        baseline,
        "routing",
        "nodes",
        "build_ms",
        &mut errors,
    );
    check_series(
        report,
        baseline,
        "plane_decision",
        "keys",
        "warm_ns",
        &mut errors,
    );
    check_series(
        report,
        baseline,
        "plane_fleet",
        "threads",
        "ns_per_lookup",
        &mut errors,
    );
    check_series(
        report,
        baseline,
        "sync",
        "chunks",
        "ns_per_probe",
        &mut errors,
    );
    check_threads_series(report, baseline, &mut errors);
    errors
}

/// Resolve a bench-file path against the workspace root. Cargo runs bench
/// binaries with cwd = `crates/bench`, so a bare relative `BENCH_OUT` (or
/// baseline path) used to land the report inside the crate directory
/// instead of next to the checked-in `BENCH_flowsim.json`.
fn workspace_path(p: &str) -> std::path::PathBuf {
    let p = std::path::Path::new(p);
    if p.is_absolute() {
        p.to_path_buf()
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(p)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // `cargo bench` passes `--bench`; `cargo test --benches` does not (and
    // builds without optimization, where timings are meaningless).
    let bench_mode = args.iter().any(|a| a == "--bench");
    let quick = args.iter().any(|a| a == "--quick") || std::env::var_os("BENCH_QUICK").is_some();

    benches();

    // Scaling studies: smoke-run tiny points (no report) outside bench mode.
    if !bench_mode {
        scaling_point(100, 0, 2);
        engine_point(100, 200, 1, true);
        threads_point(100, 100, 1, &[1, 2]);
        routing_point(SynthGlobe::default().with_target_nodes(600), true);
        plane_decision_point(8, 64, 1);
        plane_fleet_rows(20_000, 1, &[1]);
        // The real smallest series point: the byte outcome is a pure
        // function of (seed, config), so the floors hold here exactly as
        // they do in bench mode.
        assert!(check_sync_floors(&[sync_point(8, 128, 4, 1)]).is_empty());
        // The workspace-root anchor the report/baseline paths rely on.
        assert!(workspace_path("Cargo.toml").is_file());
        assert!(workspace_path("crates/bench").is_dir());
        return;
    }
    let (warmup, samples) = if quick { (5, 21) } else { (50, 101) };
    let sizes: Vec<Json> = [100usize, 1000, 10000]
        .iter()
        .map(|&n| scaling_point(n, warmup, samples))
        .collect();

    // End-to-end engine series; the eager (legacy-sweep) comparison run is
    // skipped at 100k where it would be quadratic.
    let reps = 3;
    let engine: Vec<Json> = [100usize, 1000, 10_000, 100_000]
        .iter()
        .map(|&n| {
            let cycles = if quick {
                (n as u64 / 10).max(2000)
            } else {
                (n as u64).max(5000)
            };
            engine_point(n, cycles, reps, n <= 10_000)
        })
        .collect();
    // Headline scaling ratios for the log: eager-vs-lazy at 10k, and how
    // flat events/sec stays from 10k to 100k concurrent flows.
    let evs = |p: &Json| {
        p.get("events_per_sec")
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    if let (Some(p10k), Some(p100k)) = (engine.get(2), engine.get(3)) {
        let speedup = p10k
            .get("sweep_speedup")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        println!(
            "flowsim-engine: 10k-flow sweep speedup {speedup:.1}x, \
             100k/10k events-per-sec ratio {:.2}",
            evs(p100k) / evs(p10k)
        );
    }

    // Sharded-executor scaling: the same fleet split into fixed cells, run
    // at 1/2/4/8 workers. Digest parity across counts is asserted inside
    // threads_point, so the series is also a hardware determinism check.
    let host_threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let thread_sizes: &[usize] = if quick {
        &[10_000, 100_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    // Fastest-of-5 (vs 3 for the engine series): multi-worker runs on an
    // oversubscribed host pick up scheduling noise that more reps damp.
    let mut threads = Vec::new();
    for &n in thread_sizes {
        let cycles = (n as u64 / 10).max(2000);
        threads.extend(threads_point(n, cycles, 5, &[1, 2, 4, 8]));
    }
    let speedup_err = check_parallel_speedup(&threads, host_threads);

    // Route-oracle scaling: cold build, warm query, detour enumeration and
    // the legacy Dijkstra gap at 1k/10k/100k nodes (100k = stress knobs).
    let mut globes = vec![
        SynthGlobe {
            seed: 11,
            ..SynthGlobe::default()
        }
        .with_target_nodes(1_000),
        SynthGlobe {
            seed: 11,
            ..SynthGlobe::default()
        }
        .with_target_nodes(10_000),
    ];
    if !quick {
        globes.push(SynthGlobe::stress(11));
    }
    let routing: Vec<Json> = globes
        .into_iter()
        .map(|g| routing_point(g, quick))
        .collect();
    let routing_err = check_routing_speedup(&routing, host_threads);

    // Route-plane series: the warm-hit amortization point and fleet QPS
    // rows at 1/2/4 worker threads (fastest-of-5 — multi-worker runs on an
    // oversubscribed host pick up scheduling noise that more reps damp).
    let decision = plane_decision_point(256, if quick { 1024 } else { 4096 }, 5);
    let plane_err = check_plane_speedup(&decision);
    let fleet_lookups = if quick { 400_000 } else { 2_000_000 };
    let plane_fleet = plane_fleet_rows(fleet_lookups, 5, &[1, 2, 4]);
    let qps_err = check_plane_qps(&plane_fleet, host_threads);

    // Delta-sync series: the same two points in quick and full mode (the
    // workload is cheap and the byte floors are deterministic, so there is
    // nothing to trim).
    let sync: Vec<Json> = [(8usize, 128usize), (32, 256)]
        .iter()
        .map(|&(files, file_kb)| sync_point(files, file_kb, 4, 5))
        .collect();
    let sync_errs = check_sync_floors(&sync);

    let report = Json::Obj(vec![
        ("bench".into(), Json::Str("flowsim-scaling".into())),
        ("flows_per_site".into(), Json::Int(FLOWS_PER_SITE as u64)),
        ("quick".into(), Json::Bool(quick)),
        ("host_threads".into(), Json::Int(host_threads as u64)),
        ("sizes".into(), Json::Arr(sizes)),
        ("engine".into(), Json::Arr(engine)),
        ("threads".into(), Json::Arr(threads)),
        ("routing".into(), Json::Arr(routing)),
        ("plane_decision".into(), Json::Arr(vec![decision])),
        ("plane_fleet".into(), Json::Arr(plane_fleet)),
        ("sync".into(), Json::Arr(sync)),
    ]);

    // Regression gate: compare BEFORE overwriting any baseline the output
    // path might point at.
    let mut failed = false;
    for err in [speedup_err, routing_err, plane_err, qps_err]
        .into_iter()
        .flatten()
        .chain(sync_errs)
    {
        eprintln!("REGRESSION: {err}");
        failed = true;
    }
    if let Ok(path) = std::env::var("BENCH_BASELINE") {
        let path = workspace_path(&path);
        match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|s| Json::parse(&s))
        {
            Ok(baseline) => {
                for err in check_baseline(&report, &baseline) {
                    eprintln!("REGRESSION: {err}");
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("cannot read baseline {}: {e}", path.display());
                failed = true;
            }
        }
    }

    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_flowsim.json".into());
    let out = workspace_path(&out);
    std::fs::write(&out, report.render()).expect("write bench report");
    println!("wrote {}", out.display());
    if failed {
        std::process::exit(1);
    }
}
