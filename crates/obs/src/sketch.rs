//! Deterministic, mergeable quantile sketches.
//!
//! [`QuantileSketch`] is a log-linear sketch in the DDSketch/HdrHistogram
//! family: each `u64` sample maps to an **integer bucket key** (power-of-two
//! major ranges, 64 linear sub-buckets each), and the sketch stores sparse
//! `key → count` pairs plus exact `count`/`sum`/`min`/`max`. Quantile
//! queries report the midpoint of the bucket holding the requested rank,
//! clamped to the observed range, which bounds relative error at
//! **1/128 (~0.8%)** for any value ≥ 64 and is exact below that.
//!
//! Everything is integer arithmetic over a sorted map, so the sketch is a
//! commutative monoid under [`merge`](QuantileSketch::merge): merging
//! shard-local sketches in *any* order or partitioning produces a sketch
//! bit-identical to single-stream ingestion. That makes it the reduction
//! substrate for sharded simulation workers and for folding per-run health
//! scoreboards — no floating-point drift, no merge-order sensitivity.

use std::collections::BTreeMap;

/// Linear sub-buckets per power-of-two range (and the number of exact unit
/// buckets at the bottom of the scale).
const SUB_BITS: u32 = 6;
const SUB: u64 = 1 << SUB_BITS; // 64

/// Bucket key for a sample. Values below `SUB` get exact unit buckets;
/// a value in `[2^e, 2^(e+1))` lands in one of `SUB` linear sub-buckets of
/// width `2^(e - SUB_BITS)`.
fn bucket_key(v: u64) -> u32 {
    if v < SUB {
        return v as u32;
    }
    let exp = 63 - v.leading_zeros(); // >= SUB_BITS
    let sub = ((v >> (exp - SUB_BITS)) - SUB) as u32;
    (exp - SUB_BITS + 1) * SUB as u32 + sub
}

/// Inclusive `[lo, hi]` range of values mapping to `key`.
fn bucket_bounds(key: u32) -> (u64, u64) {
    if (key as u64) < SUB {
        return (key as u64, key as u64);
    }
    let major = (key as u64 >> SUB_BITS) as u32; // >= 1
    let exp = major + SUB_BITS - 1;
    let sub = key as u64 & (SUB - 1);
    let shift = exp - SUB_BITS;
    let lo = (SUB + sub) << shift;
    // The very top bucket ends exactly at u64::MAX; add the width minus
    // one (not width, then subtract) so that case cannot overflow.
    let hi = lo + ((1u64 << shift) - 1);
    (lo, hi)
}

/// The value a quantile query reports for samples in `key`: the bucket
/// midpoint (integer arithmetic, so merge order can never perturb it).
fn bucket_mid(key: u32) -> u64 {
    let (lo, hi) = bucket_bounds(key);
    lo + (hi - lo) / 2
}

/// A mergeable log-linear quantile sketch over `u64` samples.
///
/// Bounded relative quantile error of 1/128 (~0.8%) above 64, exact below;
/// merge is associative, commutative, and bit-identical to single-stream
/// ingestion (see module docs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuantileSketch {
    buckets: BTreeMap<u32, u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` identical samples.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        *self.buckets.entry(bucket_key(v)).or_insert(0) += n;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += n;
        self.sum += v as u128 * n as u128;
    }

    /// Fold another sketch into this one. Pure integer bucket-count
    /// addition: `a.merge(&b)` equals `b.merge(&a)` equals ingesting both
    /// streams into one sketch, bit for bit.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        for (&k, &n) in &other.buckets {
            *self.buckets.entry(k).or_insert(0) += n;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Merge any number of sketches into one.
    ///
    /// Because [`QuantileSketch::merge`] is a commutative monoid (integer
    /// bucket-count addition with an empty identity), the result is
    /// bit-identical for any ordering or grouping of the parts. The
    /// sharded executor relies on exactly this to reduce per-shard
    /// telemetry deterministically regardless of worker completion order.
    pub fn merge_all<'a>(parts: impl IntoIterator<Item = &'a QuantileSketch>) -> QuantileSketch {
        let mut out = QuantileSketch::new();
        for p in parts {
            out.merge(p);
        }
        out
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded sample; `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample; `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Is the sketch empty?
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The value at quantile `q ∈ [0, 1]`: the midpoint of the bucket
    /// holding that rank, clamped to the observed `[min, max]`. `None`
    /// when empty. Relative error ≤ 1/128 for values ≥ 64, exact below.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (&k, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(bucket_mid(k).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Sparse `(bucket key, count)` pairs in ascending key order — the
    /// canonical serialization used by digests and exporters.
    pub fn buckets(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.buckets.iter().map(|(&k, &n)| (k, n))
    }

    /// Feed the sketch's complete state to `f` as a deterministic `u64`
    /// stream (count, sum halves, min, max, then every key/count pair) —
    /// for folding into an external digest.
    pub fn fold_into(&self, f: &mut impl FnMut(u64)) {
        f(self.count);
        f((self.sum >> 64) as u64);
        f(self.sum as u64);
        f(self.min);
        f(self.max);
        for (&k, &n) in &self.buckets {
            f(k as u64);
            f(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_reports_nothing() {
        let s = QuantileSketch::new();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn small_values_are_exact() {
        let mut s = QuantileSketch::new();
        for v in 0..SUB {
            s.record(v);
        }
        assert_eq!(s.quantile(0.0), Some(0));
        assert_eq!(s.quantile(1.0), Some(SUB - 1));
        assert_eq!(s.quantile(0.5), Some(SUB / 2 - 1));
    }

    #[test]
    fn bucket_layout_is_monotone_and_covering() {
        let mut prev_hi = None;
        let mut key_prev = None;
        for v in [0u64, 1, 63, 64, 65, 127, 128, 1000, 1 << 20, u64::MAX] {
            let k = bucket_key(v);
            let (lo, hi) = bucket_bounds(k);
            assert!(lo <= v && v <= hi, "v={v} outside bucket [{lo}, {hi}]");
            if let (Some(p), Some(kp)) = (prev_hi, key_prev) {
                if k != kp {
                    assert!(lo > p, "buckets overlap at v={v}");
                }
            }
            prev_hi = Some(hi);
            key_prev = Some(k);
        }
        // Contiguity across the whole keyspace: bucket n+1 starts right
        // after bucket n ends.
        let top = bucket_key(u64::MAX);
        let mut expect_lo = 0u64;
        for k in 0..=top {
            let (lo, hi) = bucket_bounds(k);
            assert_eq!(lo, expect_lo, "gap before key {k}");
            expect_lo = hi.wrapping_add(1);
        }
        assert_eq!(bucket_bounds(top).1, u64::MAX);
    }

    #[test]
    fn quantile_error_is_bounded() {
        let mut s = QuantileSketch::new();
        for v in 1..=100_000u64 {
            s.record(v);
        }
        for q in [0.5, 0.9, 0.99, 0.999] {
            let exact = (q * 100_000.0) as u64;
            let est = s.quantile(q).unwrap();
            let rel = (est as f64 - exact as f64).abs() / exact as f64;
            assert!(
                rel <= 1.0 / 128.0 + 1e-9,
                "q={q}: {est} vs {exact} ({rel:.4})"
            );
        }
    }

    #[test]
    fn merge_is_bit_identical_to_single_stream() {
        let values: Vec<u64> = (0..5000u64)
            .map(|i| i.wrapping_mul(2654435761) % 1_000_000)
            .collect();
        let mut single = QuantileSketch::new();
        for &v in &values {
            single.record(v);
        }
        // Partition into uneven shards, merge in reverse order.
        let mut shards: Vec<QuantileSketch> = Vec::new();
        for chunk in values.chunks(611) {
            let mut s = QuantileSketch::new();
            for &v in chunk {
                s.record(v);
            }
            shards.push(s);
        }
        let mut merged = QuantileSketch::new();
        for s in shards.iter().rev() {
            merged.merge(s);
        }
        assert_eq!(merged, single);
        assert_eq!(merged.quantile(0.99), single.quantile(0.99));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = QuantileSketch::new();
        a.record(42);
        let b = QuantileSketch::new();
        let before = a.clone();
        a.merge(&b);
        assert_eq!(a, before);
        let mut c = QuantileSketch::new();
        c.merge(&before);
        assert_eq!(c, before);
    }

    #[test]
    fn giant_samples_stay_in_range() {
        let mut s = QuantileSketch::new();
        s.record(u64::MAX);
        s.record(u64::MAX - 3);
        s.record(7);
        assert_eq!(s.max(), Some(u64::MAX));
        assert_eq!(s.quantile(0.01), Some(7));
        assert!(s.quantile(1.0).unwrap() >= u64::MAX - (u64::MAX >> 7));
        assert_eq!(s.sum(), u64::MAX as u128 + (u64::MAX - 3) as u128 + 7);
    }
}
