//! Telemetry for the simulated upload pipeline.
//!
//! Every layer of the stack — the flow-level simulator, the RPC model, the
//! cloud-storage sessions, the DTN relays, and the route-selection logic —
//! reports into one [`Telemetry`] handle owned by the simulation:
//!
//! * **Spans and events** ([`telemetry`]) are stamped with *simulated* time
//!   (nanoseconds of [`SimTime`-like] clock), never wall time, so a trace
//!   is a pure function of the scenario and seed. When telemetry is
//!   disabled (the default) every call is a no-op behind a single branch.
//! * **Metrics** ([`metrics`]) are counters, gauges, and log-linear
//!   histograms with percentile queries: per-link utilization samples,
//!   allocator recompute counts, active-flow counts, retry/throttle
//!   totals, bytes by provider and route.
//! * **Exporters** ([`export`]) render a finished [`Recording`] as a
//!   deterministic JSONL event log, a Chrome trace-event JSON file
//!   loadable in Perfetto (spans nested session → chunk → RPC → flow),
//!   and text/CSV metrics snapshots.
//! * **Streaming aggregation** ([`sketch`], [`window`]) provides
//!   mergeable log-linear quantile sketches (merge-order-independent,
//!   bit-identical reduction for sharded workers) and sim-time tumbling
//!   windows with watermark-driven flush.
//! * **The health plane** ([`trace`], [`health`], [`analyze`]) parses
//!   recorded JSONL traces back (with typed, actionable errors), folds
//!   them into a per-(vantage, provider, size-class) route-health
//!   scoreboard with multi-window SLO burn rates, and extracts critical
//!   paths / retry waterfalls / breaker timelines (`detour health`,
//!   `detour analyze`).
//!
//! The crate is dependency-free and knows nothing about the simulator; the
//! simulator passes plain nanosecond timestamps.

pub mod analyze;
pub mod export;
pub mod health;
pub mod metrics;
pub mod sketch;
pub mod telemetry;
pub mod trace;
pub mod window;

pub use analyze::{analyze, AnalyzeReport};
pub use export::{chrome_trace_json, jsonl_log, span_tree_text};
pub use health::{size_class, HealthBoard, HealthReport, SloPolicy, Verdict};
pub use metrics::{
    is_valid_metric_name, metric_segment, Histogram, MetricsRegistry, MetricsSnapshot,
};
pub use sketch::QuantileSketch;
pub use telemetry::{
    ArgValue, Args, Category, EventRecord, Recording, SpanId, SpanRecord, Telemetry,
};
pub use trace::{load_trace, parse_jsonl, Trace, TraceError, TraceErrorKind};
pub use window::{WindowFlush, WindowSet, WindowValue, DEFAULT_WINDOW_NS};
