//! Telemetry for the simulated upload pipeline.
//!
//! Every layer of the stack — the flow-level simulator, the RPC model, the
//! cloud-storage sessions, the DTN relays, and the route-selection logic —
//! reports into one [`Telemetry`] handle owned by the simulation:
//!
//! * **Spans and events** ([`telemetry`]) are stamped with *simulated* time
//!   (nanoseconds of [`SimTime`-like] clock), never wall time, so a trace
//!   is a pure function of the scenario and seed. When telemetry is
//!   disabled (the default) every call is a no-op behind a single branch.
//! * **Metrics** ([`metrics`]) are counters, gauges, and log-linear
//!   histograms with percentile queries: per-link utilization samples,
//!   allocator recompute counts, active-flow counts, retry/throttle
//!   totals, bytes by provider and route.
//! * **Exporters** ([`export`]) render a finished [`Recording`] as a
//!   deterministic JSONL event log, a Chrome trace-event JSON file
//!   loadable in Perfetto (spans nested session → chunk → RPC → flow),
//!   and text/CSV metrics snapshots.
//!
//! The crate is dependency-free and knows nothing about the simulator; the
//! simulator passes plain nanosecond timestamps.

pub mod export;
pub mod metrics;
pub mod telemetry;

pub use export::{chrome_trace_json, jsonl_log, span_tree_text};
pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot};
pub use telemetry::{
    ArgValue, Args, Category, EventRecord, Recording, SpanId, SpanRecord, Telemetry,
};
