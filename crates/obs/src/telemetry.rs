//! Sim-time span/event recording with a zero-overhead disabled path.
//!
//! [`Telemetry`] is either disabled (`inner: None`, the default — every
//! call returns after one branch and never allocates) or carries a
//! recorder accumulating [`SpanRecord`]s and [`EventRecord`]s. Argument
//! lists are built by closures that are only invoked when recording is on,
//! so call sites pay nothing for formatting when telemetry is off.
//!
//! All timestamps are **simulated nanoseconds**. Span and event identity
//! comes from monotonic sequence counters, so a recording is a pure
//! function of the instrumented program's behavior — byte-identical
//! exports for byte-identical runs.

use crate::metrics::MetricsRegistry;
use crate::window::{WindowFlush, WindowSet};

/// Identifies a live or finished span. `SpanId::NONE` (0) means "no span":
/// it is what the disabled sink returns and the root parent marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null span: no parent / telemetry disabled.
    pub const NONE: SpanId = SpanId(0);

    /// True when this id refers to an actual recorded span.
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// Coarse classification of spans and events; drives Perfetto track
/// grouping and lets tools filter one layer of the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Campaign / job / selector / failover decisions (detour-core).
    Control,
    /// A whole upload/download session (cloudstore).
    Session,
    /// One chunk (part) of a session, across its retries (cloudstore).
    Chunk,
    /// One request/response exchange (netsim::rpc).
    Rpc,
    /// One simulated flow (netsim::engine).
    Flow,
    /// DTN relay activity: rsync legs, staging buffer (relay).
    Relay,
}

impl Category {
    /// Stable lowercase label used by every exporter.
    pub fn label(self) -> &'static str {
        match self {
            Category::Control => "control",
            Category::Session => "session",
            Category::Chunk => "chunk",
            Category::Rpc => "rpc",
            Category::Flow => "flow",
            Category::Relay => "relay",
        }
    }
}

/// One argument value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Text.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}

/// Argument collector handed to recording closures.
#[derive(Debug, Default)]
pub struct Args {
    pub(crate) kv: Vec<(&'static str, ArgValue)>,
}

impl Args {
    /// Attach one key/value pair.
    pub fn set(&mut self, key: &'static str, value: impl Into<ArgValue>) -> &mut Self {
        self.kv.push((key, value.into()));
        self
    }
}

/// A finished (or still-open) span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// This span's id (index + 1 into the span table).
    pub id: SpanId,
    /// Enclosing span, or [`SpanId::NONE`] for roots.
    pub parent: SpanId,
    /// Layer.
    pub cat: Category,
    /// Short stable name ("upload-session", "part", "rpc.auth", ...).
    pub name: &'static str,
    /// Simulated begin time, nanoseconds.
    pub start_ns: u64,
    /// Simulated end time; `None` when the run finished with the span open.
    pub end_ns: Option<u64>,
    /// Sequence number of the begin (global order tiebreaker).
    pub begin_seq: u64,
    /// Attached arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl SpanRecord {
    /// Span duration; open spans report zero.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns
            .unwrap_or(self.start_ns)
            .saturating_sub(self.start_ns)
    }
}

/// A point-in-time event.
#[derive(Debug, Clone)]
pub struct EventRecord {
    /// Simulated time, nanoseconds.
    pub t_ns: u64,
    /// Enclosing span, or [`SpanId::NONE`].
    pub parent: SpanId,
    /// Layer.
    pub cat: Category,
    /// Short stable name ("chunk.retry", "flow.rate", ...).
    pub name: &'static str,
    /// Sequence number (global order tiebreaker).
    pub seq: u64,
    /// Attached arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// Everything a run recorded: the span table, the event stream, and the
/// metrics registry. Produced by [`Telemetry::take`].
#[derive(Debug, Default)]
pub struct Recording {
    /// All spans, in begin order.
    pub spans: Vec<SpanRecord>,
    /// All instant events, in record order.
    pub events: Vec<EventRecord>,
    /// Metrics accumulated during the run.
    pub metrics: MetricsRegistry,
    /// Closed sim-time windows, in flush order (watermark-driven; the
    /// final open windows are flushed by [`Telemetry::take`]).
    pub window_flushes: Vec<WindowFlush>,
}

impl Recording {
    /// The span with the given id.
    pub fn span(&self, id: SpanId) -> Option<&SpanRecord> {
        id.0.checked_sub(1).and_then(|i| self.spans.get(i as usize))
    }

    /// Walk up the parent chain from `id` (exclusive) to the root.
    pub fn ancestors(&self, id: SpanId) -> Vec<&SpanRecord> {
        let mut out = Vec::new();
        let mut cur = self.span(id).map(|s| s.parent).unwrap_or(SpanId::NONE);
        while let Some(s) = self.span(cur) {
            out.push(s);
            cur = s.parent;
        }
        out
    }

    /// Direct children of `id` in begin order.
    pub fn children(&self, id: SpanId) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.parent == id).collect()
    }
}

#[derive(Debug, Default)]
struct Recorder {
    recording: Recording,
    seq: u64,
    windows: WindowSet,
}

/// The instrumentation handle. Cheap to embed (one pointer); disabled by
/// default. Every recording method is a no-op behind a single `Option`
/// check while disabled, including never invoking argument closures.
#[derive(Debug, Default)]
pub struct Telemetry {
    inner: Option<Box<Recorder>>,
}

impl Telemetry {
    /// A disabled handle: records nothing, costs one branch per call.
    pub const fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled handle with an empty recording.
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(Box::default()),
        }
    }

    /// Whether calls record anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Begin a span. Returns [`SpanId::NONE`] when disabled.
    #[inline]
    pub fn span_begin(
        &mut self,
        t_ns: u64,
        cat: Category,
        name: &'static str,
        parent: SpanId,
    ) -> SpanId {
        self.span_begin_with(t_ns, cat, name, parent, |_| {})
    }

    /// Begin a span with arguments; the closure only runs when enabled.
    #[inline]
    pub fn span_begin_with(
        &mut self,
        t_ns: u64,
        cat: Category,
        name: &'static str,
        parent: SpanId,
        fill: impl FnOnce(&mut Args),
    ) -> SpanId {
        let Some(rec) = self.inner.as_deref_mut() else {
            return SpanId::NONE;
        };
        let mut args = Args::default();
        fill(&mut args);
        let id = SpanId(rec.recording.spans.len() as u64 + 1);
        let begin_seq = rec.seq;
        rec.seq += 1;
        rec.recording.spans.push(SpanRecord {
            id,
            parent,
            cat,
            name,
            start_ns: t_ns,
            end_ns: None,
            begin_seq,
            args: args.kv,
        });
        id
    }

    /// End a span begun by [`Telemetry::span_begin`]. Ignores
    /// [`SpanId::NONE`], so call sites need no disabled-path branching.
    #[inline]
    pub fn span_end(&mut self, t_ns: u64, span: SpanId) {
        let Some(rec) = self.inner.as_deref_mut() else {
            return;
        };
        let Some(idx) = span.0.checked_sub(1) else {
            return;
        };
        if let Some(s) = rec.recording.spans.get_mut(idx as usize) {
            debug_assert!(s.end_ns.is_none(), "span {span:?} ended twice");
            debug_assert!(s.start_ns <= t_ns, "span {span:?} ends before it starts");
            s.end_ns = Some(t_ns);
            rec.seq += 1;
        }
    }

    /// Record an instant event; the argument closure only runs when enabled.
    #[inline]
    pub fn event(
        &mut self,
        t_ns: u64,
        cat: Category,
        name: &'static str,
        parent: SpanId,
        fill: impl FnOnce(&mut Args),
    ) {
        let Some(rec) = self.inner.as_deref_mut() else {
            return;
        };
        let mut args = Args::default();
        fill(&mut args);
        let seq = rec.seq;
        rec.seq += 1;
        rec.recording.events.push(EventRecord {
            t_ns,
            parent,
            cat,
            name,
            seq,
            args: args.kv,
        });
    }

    /// Add to a counter (static name).
    #[inline]
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        if let Some(rec) = self.inner.as_deref_mut() {
            rec.recording.metrics.counter_add(name, delta);
        }
    }

    /// Add to a counter whose name is built lazily (e.g. per-provider
    /// totals); the closure only runs when enabled.
    #[inline]
    pub fn counter_add_dyn(&mut self, name: impl FnOnce() -> String, delta: u64) {
        if let Some(rec) = self.inner.as_deref_mut() {
            rec.recording.metrics.counter_add_owned(name(), delta);
        }
    }

    /// Set a gauge to a value.
    #[inline]
    pub fn gauge_set(&mut self, name: &'static str, value: f64) {
        if let Some(rec) = self.inner.as_deref_mut() {
            rec.recording.metrics.gauge_set(name, value);
        }
    }

    /// Record a histogram sample.
    #[inline]
    pub fn hist_record(&mut self, name: &'static str, value: u64) {
        if let Some(rec) = self.inner.as_deref_mut() {
            rec.recording.metrics.hist_record(name, value);
        }
    }

    /// Add `delta` to the windowed counter series `name` at sim time `t_ns`.
    /// Windows are tumbling sim-time buckets; see [`crate::window`].
    #[inline]
    pub fn window_count(&mut self, t_ns: u64, name: &'static str, delta: u64) {
        if let Some(rec) = self.inner.as_deref_mut() {
            rec.windows.count(t_ns, name, delta);
        }
    }

    /// Record a sample into the windowed sketch series `name` at `t_ns`.
    #[inline]
    pub fn window_record(&mut self, t_ns: u64, name: &'static str, value: u64) {
        if let Some(rec) = self.inner.as_deref_mut() {
            rec.windows.record(t_ns, name, value);
        }
    }

    /// Advance the window watermark to sim time `t_ns`, flushing idle
    /// series whose open windows now lie entirely in the past. The engine
    /// calls this from its clock advance.
    #[inline]
    pub fn advance_watermark(&mut self, t_ns: u64) {
        if let Some(rec) = self.inner.as_deref_mut() {
            rec.windows.advance_watermark(t_ns);
        }
    }

    /// Change the tumbling-window width (flushes all open windows first).
    pub fn set_window_width(&mut self, width_ns: u64) {
        if let Some(rec) = self.inner.as_deref_mut() {
            rec.windows.set_width_ns(width_ns);
        }
    }

    /// Take the recording out, leaving the handle disabled.
    /// Returns `None` when telemetry was never enabled.
    pub fn take(&mut self) -> Option<Recording> {
        self.inner.take().map(|mut r| {
            r.windows.flush_all();
            r.recording.window_flushes = r.windows.take_flushes();
            r.recording
        })
    }

    /// Read-only view of the recording while the run is still in progress.
    pub fn recording(&self) -> Option<&Recording> {
        self.inner.as_deref().map(|r| &r.recording)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_is_inert_and_never_calls_closures() {
        let mut tele = Telemetry::disabled();
        let span = tele.span_begin_with(5, Category::Session, "s", SpanId::NONE, |_| {
            panic!("closure must not run while disabled");
        });
        assert_eq!(span, SpanId::NONE);
        tele.event(6, Category::Flow, "e", span, |_| {
            panic!("closure must not run while disabled");
        });
        tele.counter_add_dyn(|| panic!("name closure must not run while disabled"), 1);
        tele.span_end(7, span);
        assert!(tele.take().is_none());
    }

    #[test]
    fn spans_nest_and_survive_take() {
        let mut tele = Telemetry::enabled();
        let root = tele.span_begin(0, Category::Session, "session", SpanId::NONE);
        let child = tele.span_begin_with(10, Category::Chunk, "part", root, |a| {
            a.set("index", 0u64).set("bytes", 1234u64);
        });
        tele.event(15, Category::Chunk, "chunk.retry", child, |a| {
            a.set("attempt", 1u64);
        });
        tele.span_end(20, child);
        tele.span_end(30, root);
        let rec = tele.take().expect("enabled recording");
        assert!(!tele.is_enabled(), "take() leaves the handle disabled");
        assert_eq!(rec.spans.len(), 2);
        assert_eq!(rec.events.len(), 1);
        let child_rec = rec.span(child).unwrap();
        assert_eq!(child_rec.parent, root);
        assert_eq!(child_rec.duration_ns(), 10);
        assert_eq!(rec.ancestors(child).len(), 1);
        assert_eq!(rec.children(root).len(), 1);
        assert_eq!(child_rec.args[0], ("index", ArgValue::U64(0)));
    }

    #[test]
    fn take_drains_open_windows() {
        let mut tele = Telemetry::enabled();
        tele.set_window_width(1_000);
        tele.window_count(10, "a.count", 2);
        tele.window_record(20, "a.lat", 500);
        tele.window_count(1_500, "a.count", 1); // flushes window [0,1000)
        let rec = tele.take().unwrap();
        // First flush from the boundary crossing, then the two open
        // windows drained by take() in name order.
        assert_eq!(rec.window_flushes.len(), 3);
        assert_eq!(rec.window_flushes[0].name, "a.count");
        assert_eq!(rec.window_flushes[0].end_ns, 1_000);
        assert_eq!(rec.window_flushes[1].name, "a.count");
        assert_eq!(rec.window_flushes[2].name, "a.lat");
    }

    #[test]
    fn windows_are_inert_while_disabled() {
        let mut tele = Telemetry::disabled();
        tele.window_count(10, "a", 1);
        tele.window_record(10, "b", 1);
        tele.advance_watermark(1 << 40);
        assert!(tele.take().is_none());
    }

    #[test]
    fn sequence_numbers_are_strictly_increasing() {
        let mut tele = Telemetry::enabled();
        let a = tele.span_begin(0, Category::Flow, "a", SpanId::NONE);
        tele.event(1, Category::Flow, "x", a, |_| {});
        tele.event(1, Category::Flow, "y", a, |_| {});
        let rec = tele.recording().unwrap();
        assert!(rec.events[0].seq < rec.events[1].seq);
    }
}
