//! Sim-time tumbling windows with watermark-driven flush.
//!
//! A [`WindowSet`] maintains named series of windowed aggregates — counters
//! ([`WindowValue::Count`]) and quantile sketches ([`WindowValue::Sketch`])
//! — bucketed into fixed-width **tumbling windows of simulated time**. No
//! wall clock appears anywhere: window boundaries are pure functions of the
//! sim-time nanosecond timestamps the engine already stamps on every record.
//!
//! Flush discipline is watermark-driven, mirroring streaming systems:
//!
//! * Recording into a series whose open window has ended flushes that
//!   window immediately and opens the new one (records arrive in
//!   nondecreasing sim time, so nothing is ever late).
//! * [`WindowSet::advance_watermark`] — called by the engine whenever the
//!   sim clock advances — flushes any *idle* series whose open window now
//!   lies entirely behind the watermark, in name order, so a series that
//!   stops receiving records still emits its final window deterministically.
//! * [`WindowSet::flush_all`] drains everything at end of run.
//!
//! Flushed windows accumulate as [`WindowFlush`] records ordered by
//! (flush-trigger time, series name); identical seeds produce identical
//! flush sequences, which simcheck folds into its chain digest.

use crate::sketch::QuantileSketch;
use std::collections::BTreeMap;

/// Default tumbling-window width: one simulated second.
pub const DEFAULT_WINDOW_NS: u64 = 1_000_000_000;

/// The aggregate carried by one flushed window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WindowValue {
    /// Sum of deltas recorded in the window.
    Count(u64),
    /// Quantile sketch of samples recorded in the window.
    Sketch(QuantileSketch),
}

/// One closed window of one series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowFlush {
    /// Series name (static, dotted — same scheme as metric names).
    pub name: &'static str,
    /// Inclusive window start, sim-time nanoseconds.
    pub start_ns: u64,
    /// Exclusive window end, sim-time nanoseconds.
    pub end_ns: u64,
    /// Aggregate over the window.
    pub value: WindowValue,
}

#[derive(Debug)]
struct Series {
    /// Window index (start = index * width) of the open window.
    window: u64,
    accum: WindowValue,
}

/// A set of named windowed series sharing one window width and watermark.
#[derive(Debug)]
pub struct WindowSet {
    width_ns: u64,
    series: BTreeMap<&'static str, Series>,
    flushes: Vec<WindowFlush>,
}

impl Default for WindowSet {
    fn default() -> Self {
        Self::new(DEFAULT_WINDOW_NS)
    }
}

impl WindowSet {
    /// A window set with the given tumbling-window width (ns of sim time).
    pub fn new(width_ns: u64) -> Self {
        Self {
            width_ns: width_ns.max(1),
            series: BTreeMap::new(),
            flushes: Vec::new(),
        }
    }

    /// Window width in sim-time nanoseconds.
    pub fn width_ns(&self) -> u64 {
        self.width_ns
    }

    /// Change the window width. Flushes all open windows first so no
    /// window ever spans two widths.
    pub fn set_width_ns(&mut self, width_ns: u64) {
        self.flush_all();
        self.width_ns = width_ns.max(1);
    }

    /// Add `delta` to the counter series `name` at sim time `t_ns`.
    pub fn count(&mut self, t_ns: u64, name: &'static str, delta: u64) {
        let w = t_ns / self.width_ns;
        match self.series.get_mut(name) {
            Some(s) if s.window == w => {
                if let WindowValue::Count(c) = &mut s.accum {
                    *c += delta;
                } else {
                    debug_assert!(false, "window series {name} changed kind");
                }
            }
            existing => {
                if existing.is_some() {
                    self.flush_series(name);
                }
                self.series.insert(
                    name,
                    Series {
                        window: w,
                        accum: WindowValue::Count(delta),
                    },
                );
            }
        }
    }

    /// Record sample `v` into the sketch series `name` at sim time `t_ns`.
    pub fn record(&mut self, t_ns: u64, name: &'static str, v: u64) {
        let w = t_ns / self.width_ns;
        match self.series.get_mut(name) {
            Some(s) if s.window == w => {
                if let WindowValue::Sketch(sk) = &mut s.accum {
                    sk.record(v);
                } else {
                    debug_assert!(false, "window series {name} changed kind");
                }
            }
            existing => {
                if existing.is_some() {
                    self.flush_series(name);
                }
                let mut sk = QuantileSketch::new();
                sk.record(v);
                self.series.insert(
                    name,
                    Series {
                        window: w,
                        accum: WindowValue::Sketch(sk),
                    },
                );
            }
        }
    }

    /// Advance the watermark to sim time `t_ns`: every series whose open
    /// window ends at or before the watermark is flushed (in name order),
    /// so idle series emit their final windows without waiting for a new
    /// record.
    pub fn advance_watermark(&mut self, t_ns: u64) {
        let width = self.width_ns;
        let expired: Vec<&'static str> = self
            .series
            .iter()
            .filter(|(_, s)| (s.window + 1).saturating_mul(width) <= t_ns)
            .map(|(&name, _)| name)
            .collect();
        for name in expired {
            self.flush_series(name);
        }
    }

    /// Flush every open window (end of run / width change).
    pub fn flush_all(&mut self) {
        let names: Vec<&'static str> = self.series.keys().copied().collect();
        for name in names {
            self.flush_series(name);
        }
    }

    fn flush_series(&mut self, name: &'static str) {
        if let Some(s) = self.series.remove(name) {
            let start = s.window * self.width_ns;
            self.flushes.push(WindowFlush {
                name,
                start_ns: start,
                end_ns: start.saturating_add(self.width_ns),
                value: s.accum,
            });
        }
    }

    /// Closed windows flushed so far, in flush order.
    pub fn flushes(&self) -> &[WindowFlush] {
        &self.flushes
    }

    /// Take ownership of the flushed windows, leaving the set empty of
    /// history (open windows are untouched).
    pub fn take_flushes(&mut self) -> Vec<WindowFlush> {
        std::mem::take(&mut self.flushes)
    }

    /// Number of series with an open (unflushed) window.
    pub fn open_series(&self) -> usize {
        self.series.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_within_a_window() {
        let mut w = WindowSet::new(1_000);
        w.count(10, "a.x", 1);
        w.count(999, "a.x", 2);
        assert!(w.flushes().is_empty());
        w.count(1_000, "a.x", 5); // crosses boundary -> flush [0,1000)
        let f = w.flushes();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].name, "a.x");
        assert_eq!((f[0].start_ns, f[0].end_ns), (0, 1_000));
        assert_eq!(f[0].value, WindowValue::Count(3));
    }

    #[test]
    fn watermark_flushes_idle_series_in_name_order() {
        let mut w = WindowSet::new(1_000);
        w.count(100, "b.y", 1);
        w.count(200, "a.x", 1);
        w.advance_watermark(999); // window [0,1000) not yet complete
        assert!(w.flushes().is_empty());
        w.advance_watermark(1_000);
        let names: Vec<_> = w.flushes().iter().map(|f| f.name).collect();
        assert_eq!(names, ["a.x", "b.y"]);
        assert_eq!(w.open_series(), 0);
    }

    #[test]
    fn sketch_windows_carry_quantiles() {
        let mut w = WindowSet::new(1_000);
        for v in [10u64, 20, 30] {
            w.record(500, "lat", v);
        }
        w.flush_all();
        let f = &w.flushes()[0];
        match &f.value {
            WindowValue::Sketch(s) => {
                assert_eq!(s.count(), 3);
                assert_eq!(s.quantile(1.0), Some(30));
            }
            other => panic!("expected sketch, got {other:?}"),
        }
    }

    #[test]
    fn width_change_flushes_open_windows() {
        let mut w = WindowSet::new(1_000);
        w.count(10, "a", 1);
        w.set_width_ns(500);
        assert_eq!(w.flushes().len(), 1);
        assert_eq!(w.flushes()[0].end_ns, 1_000);
        w.count(600, "a", 1);
        w.advance_watermark(1_100);
        assert_eq!(w.flushes()[1].start_ns, 500);
        assert_eq!(w.flushes()[1].end_ns, 1_000);
    }

    #[test]
    fn same_input_same_flush_sequence() {
        let run = || {
            let mut w = WindowSet::new(1_000);
            for i in 0..50u64 {
                let t = i * 137;
                w.count(t, "c.n", i);
                w.record(t, "c.s", i * 7 + 3);
                if i % 9 == 0 {
                    w.advance_watermark(t);
                }
            }
            w.flush_all();
            w.take_flushes()
        };
        assert_eq!(run(), run());
    }
}
