//! Route-health scoreboard with SLO burn-rate verdicts.
//!
//! [`HealthBoard`] folds a parsed [`Trace`] (live or recorded — see
//! [`Trace::from_recording`]) into per-cell health state keyed by
//! **(vantage, provider, size-class)**, the unit of the paper's detour
//! argument. Each cell carries a mergeable [`QuantileSketch`] of
//! successful transfer times plus counters fed by every plane of the
//! stack: monitor probes, failover route failures and switches, breaker
//! trips/cooldowns/skips, and resilience throttle/retry/budget/deadline
//! events.
//!
//! SLO evaluation follows the multi-window burn-rate discipline: the
//! error rate over a short and a long window (measured back from the end
//! of the trace, in sim time) is divided by the error budget to get a
//! burn rate; a cell is **burning** when both windows exceed the page
//! threshold, **warn** when the long window exceeds the warn threshold
//! or p99 transfer time drifts past its target, **ok** otherwise.
//!
//! Everything is integer or rational arithmetic over deterministic
//! inputs: the same trace always produces the same scoreboard, and
//! ingesting several traces is order-independent for every sketch and
//! counter (burn windows anchor to the maximum end time seen).

use crate::export::json_escape;
use crate::sketch::QuantileSketch;
use crate::trace::{Trace, TraceSpan};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// SLO targets and burn-rate windows for every cell.
#[derive(Debug, Clone)]
pub struct SloPolicy {
    /// p99 successful-transfer-time target, sim nanoseconds.
    pub p99_ns: u64,
    /// Fraction of attempts allowed to fail (error budget).
    pub error_budget: f64,
    /// Short burn window, sim nanoseconds.
    pub short_window_ns: u64,
    /// Long burn window, sim nanoseconds.
    pub long_window_ns: u64,
    /// Long-window burn rate at which a cell turns warn.
    pub warn_burn: f64,
    /// Burn rate both windows must exceed for burning.
    pub page_burn: f64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            p99_ns: 120_000_000_000, // 120 s of sim time
            error_budget: 0.05,
            short_window_ns: 60_000_000_000,
            long_window_ns: 600_000_000_000,
            warn_burn: 1.0,
            page_burn: 6.0,
        }
    }
}

/// Health state of one cell or board row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// Within SLO.
    Ok,
    /// Burning budget faster than sustainable, or p99 drifting.
    Warn,
    /// Both burn windows past the page threshold or p99 blown.
    Burning,
}

impl Verdict {
    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Warn => "warn",
            Verdict::Burning => "burning",
        }
    }
}

/// Transfer-size class: the paper buckets its measurements the same way.
pub fn size_class(bytes: u64) -> &'static str {
    if bytes < 16 * 1024 * 1024 {
        "small"
    } else if bytes < 256 * 1024 * 1024 {
        "medium"
    } else {
        "large"
    }
}

/// Accumulated health state of one (vantage, provider, size-class) cell.
#[derive(Debug, Clone, Default)]
pub struct CellHealth {
    /// Sketch of successful transfer durations (ns).
    pub transfer_ns: QuantileSketch,
    /// `(end time, success)` per attempt — feeds the burn windows.
    pub outcomes: Vec<(u64, bool)>,
    /// Throttle events (429/503 style pushback).
    pub throttles: u64,
    /// Chunk retry events.
    pub retries: u64,
    /// Route attempts that failed inside failover.
    pub route_failures: u64,
    /// Failover switches away from the preferred route.
    pub failovers: u64,
    /// Breaker trips attributed to this cell.
    pub breaker_trips: u64,
    /// Routes skipped because a breaker was open.
    pub breaker_skips: u64,
    /// Retry budget exhaustions.
    pub budget_exhausted: u64,
    /// Deadline exceeded terminations.
    pub deadline_exceeded: u64,
    /// Route-plane lookups shed by admission control for this cell.
    pub plane_sheds: u64,
    /// Route-plane decisions demoted to direct by an open breaker.
    pub plane_demotions: u64,
    /// Route-plane stale-generation refreshes (invalidation pressure).
    pub plane_stale: u64,
}

impl CellHealth {
    /// Total attempts seen.
    pub fn attempts(&self) -> u64 {
        self.outcomes.len() as u64
    }

    /// Failed attempts.
    pub fn errors(&self) -> u64 {
        self.outcomes.iter().filter(|(_, ok)| !ok).count() as u64
    }

    fn burn_rate(&self, window_ns: u64, end_ns: u64, budget: f64) -> f64 {
        let lo = end_ns.saturating_sub(window_ns);
        let mut attempts = 0u64;
        let mut errors = 0u64;
        for &(t, ok) in &self.outcomes {
            if t >= lo {
                attempts += 1;
                if !ok {
                    errors += 1;
                }
            }
        }
        if attempts == 0 || budget <= 0.0 {
            return 0.0;
        }
        (errors as f64 / attempts as f64) / budget
    }
}

/// Per-breaker-target activity (keyed by breaker target id).
#[derive(Debug, Clone, Default)]
pub struct BreakerRow {
    /// Closed → Open transitions.
    pub trips: u64,
    /// Open/HalfOpen → Closed transitions.
    pub closes: u64,
    /// Route attempts skipped while open.
    pub skips: u64,
}

/// The scoreboard: cells, breaker activity, probe volume, and the SLO
/// policy they are judged against.
#[derive(Debug, Default)]
pub struct HealthBoard {
    slo: SloPolicy,
    cells: BTreeMap<(String, String, &'static str), CellHealth>,
    breakers: BTreeMap<String, BreakerRow>,
    probes: u64,
    end_ns: u64,
}

/// One evaluated row of the report.
#[derive(Debug, Clone)]
pub struct HealthRow {
    /// Vantage (client) name.
    pub vantage: String,
    /// Provider display name.
    pub provider: String,
    /// Size class ("small" / "medium" / "large" / "-").
    pub size: &'static str,
    /// The accumulated cell state.
    pub cell: CellHealth,
    /// p50 of successful transfers, ns.
    pub p50_ns: Option<u64>,
    /// p99 of successful transfers, ns.
    pub p99_ns: Option<u64>,
    /// Short-window burn rate.
    pub burn_short: f64,
    /// Long-window burn rate.
    pub burn_long: f64,
    /// Latency verdict (p99 vs target).
    pub latency: Verdict,
    /// Error-budget verdict (multi-window burn rate).
    pub errors: Verdict,
    /// Worst of the two.
    pub overall: Verdict,
}

/// The rendered scoreboard.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Policy the rows were judged against.
    pub slo: SloPolicy,
    /// Evaluated cells, sorted by (vantage, provider, size).
    pub rows: Vec<HealthRow>,
    /// Breaker activity by target.
    pub breakers: Vec<(String, BreakerRow)>,
    /// Monitor probes observed.
    pub probes: u64,
    /// Anchor for the burn windows (max sim time in the traces).
    pub end_ns: u64,
}

fn span_cell_key(span: &TraceSpan) -> (String, String, &'static str) {
    let vantage = span
        .arg("vantage")
        .and_then(|v| v.as_str())
        .unwrap_or("-")
        .to_string();
    let provider = span
        .arg("provider")
        .and_then(|v| v.as_str())
        .unwrap_or("-")
        .to_string();
    let size = span
        .arg("bytes")
        .and_then(|v| v.as_u64())
        .map(size_class)
        .unwrap_or("-");
    (vantage, provider, size)
}

impl HealthBoard {
    /// A board judging against the given policy.
    pub fn new(slo: SloPolicy) -> Self {
        HealthBoard {
            slo,
            ..Default::default()
        }
    }

    /// The policy in force.
    pub fn slo(&self) -> &SloPolicy {
        &self.slo
    }

    /// Fold one trace into the board. Calling this for several traces
    /// (e.g. shard-local recordings) merges sketches and counters
    /// order-independently.
    pub fn ingest(&mut self, trace: &Trace) {
        self.end_ns = self.end_ns.max(trace.end_ns());

        // Resolve each span to its owning attempt span: the enclosing
        // "job", or the session itself when a scenario drives sessions
        // directly without the core job layer.
        let mut owner: Vec<Option<usize>> = vec![None; trace.spans.len()];
        for (i, s) in trace.spans.iter().enumerate() {
            let inherited = s.parent.and_then(|p| owner.get(p).copied().flatten());
            let is_attempt_root = s.name == "job"
                || (inherited.is_none()
                    && (s.name == "upload-session" || s.name == "download-session"));
            owner[i] = if is_attempt_root { Some(i) } else { inherited };
        }

        // Spans carrying error events (job.error / session.error parented
        // directly to them) fail their attempt.
        let mut has_error: Vec<bool> = vec![false; trace.spans.len()];
        for e in &trace.events {
            if let Some(p) = e.parent {
                if e.name == "job.error" || e.name == "session.error" {
                    if let Some(flag) = has_error.get_mut(p) {
                        *flag = true;
                    }
                }
            }
        }

        // Attempts: exactly the owner spans (jobs and jobless sessions).
        for (i, s) in trace.spans.iter().enumerate() {
            if owner[i] != Some(i) {
                continue;
            }
            let key = span_cell_key(s);
            let ok = s.end_ns.is_some() && !has_error[i];
            let t = s.end_ns.unwrap_or(s.start_ns);
            let cell = self.cells.entry(key).or_default();
            cell.outcomes.push((t, ok));
            if ok {
                cell.transfer_ns.record(s.duration_ns());
            }
        }

        for e in &trace.events {
            // A cell for the event: the owning job's key when it has one,
            // else the event's own vantage/provider args (failover and
            // breaker events are root-parented but self-describing).
            let key = e
                .parent
                .and_then(|p| owner.get(p).copied().flatten())
                .map(|j| span_cell_key(&trace.spans[j]))
                .or_else(|| {
                    e.arg("vantage").and_then(|v| v.as_str()).map(|vantage| {
                        let provider = e
                            .arg("provider")
                            .and_then(|v| v.as_str())
                            .unwrap_or("-")
                            .to_string();
                        let size = e
                            .arg("bytes")
                            .and_then(|v| v.as_u64())
                            .map(size_class)
                            .unwrap_or("-");
                        (vantage.to_string(), provider, size)
                    })
                });
            let mut bump = |f: fn(&mut CellHealth)| {
                if let Some(k) = key.clone() {
                    f(self.cells.entry(k).or_default());
                }
            };
            let target = || {
                e.arg("target")
                    .and_then(|v| v.as_str())
                    .unwrap_or("?")
                    .to_string()
            };
            match e.name.as_str() {
                "chunk.throttled" => bump(|c| c.throttles += 1),
                "chunk.retry" => bump(|c| c.retries += 1),
                "failover.route_failed" => bump(|c| c.route_failures += 1),
                "failover.switched" => bump(|c| c.failovers += 1),
                "failover.breaker_skip" => {
                    bump(|c| c.breaker_skips += 1);
                    self.breakers.entry(target()).or_default().skips += 1;
                }
                "breaker.trip" => {
                    bump(|c| c.breaker_trips += 1);
                    self.breakers.entry(target()).or_default().trips += 1;
                }
                "breaker.close" => {
                    self.breakers.entry(target()).or_default().closes += 1;
                }
                "monitor.probe" => self.probes += 1,
                // Route-plane pressure: self-describing events (vantage /
                // provider / bytes args) emitted by fleet drivers and the
                // plane CLI, so cache overload shows up on the same
                // scoreboard as transfer health.
                "plane.shed" => bump(|c| c.plane_sheds += 1),
                "plane.demote" => bump(|c| c.plane_demotions += 1),
                "plane.stale" => bump(|c| c.plane_stale += 1),
                "session.error" => {
                    let text = e.arg("error").and_then(|v| v.as_str()).unwrap_or("");
                    if text.contains("deadline") {
                        bump(|c| c.deadline_exceeded += 1);
                    } else if text.contains("budget") || text.contains("retry") {
                        bump(|c| c.budget_exhausted += 1);
                    }
                }
                _ => {}
            }
        }
    }

    /// Evaluate every cell against the SLO policy.
    pub fn report(&self) -> HealthReport {
        let mut rows = Vec::with_capacity(self.cells.len());
        for ((vantage, provider, size), cell) in &self.cells {
            let p99 = cell.transfer_ns.quantile(0.99);
            let latency = match p99 {
                None => Verdict::Ok,
                Some(p) if p <= self.slo.p99_ns => Verdict::Ok,
                Some(p) if p <= self.slo.p99_ns + self.slo.p99_ns / 4 => Verdict::Warn,
                Some(_) => Verdict::Burning,
            };
            let burn_short =
                cell.burn_rate(self.slo.short_window_ns, self.end_ns, self.slo.error_budget);
            let burn_long =
                cell.burn_rate(self.slo.long_window_ns, self.end_ns, self.slo.error_budget);
            let errors = if burn_short >= self.slo.page_burn && burn_long >= self.slo.page_burn {
                Verdict::Burning
            } else if burn_long >= self.slo.warn_burn {
                Verdict::Warn
            } else {
                Verdict::Ok
            };
            rows.push(HealthRow {
                vantage: vantage.clone(),
                provider: provider.clone(),
                size,
                p50_ns: cell.transfer_ns.quantile(0.50),
                p99_ns: p99,
                burn_short,
                burn_long,
                latency,
                errors,
                overall: latency.max(errors),
                cell: cell.clone(),
            });
        }
        HealthReport {
            slo: self.slo.clone(),
            rows,
            breakers: self
                .breakers
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            probes: self.probes,
            end_ns: self.end_ns,
        }
    }

    /// Feed the board's complete evaluated state to `f` as a `u64`
    /// stream, for folding into an execution digest (simcheck covers the
    /// health plane with this).
    pub fn fold_into(&self, f: &mut impl FnMut(u64)) {
        let fold_str = |s: &str, f: &mut dyn FnMut(u64)| {
            f(s.len() as u64);
            for b in s.bytes() {
                f(b as u64);
            }
        };
        f(self.cells.len() as u64);
        for ((vantage, provider, size), cell) in &self.cells {
            fold_str(vantage, f);
            fold_str(provider, f);
            fold_str(size, f);
            cell.transfer_ns.fold_into(f);
            f(cell.outcomes.len() as u64);
            for &(t, ok) in &cell.outcomes {
                f(t);
                f(ok as u64);
            }
            for v in [
                cell.throttles,
                cell.retries,
                cell.route_failures,
                cell.failovers,
                cell.breaker_trips,
                cell.breaker_skips,
                cell.budget_exhausted,
                cell.deadline_exceeded,
                cell.plane_sheds,
                cell.plane_demotions,
                cell.plane_stale,
            ] {
                f(v);
            }
        }
        f(self.breakers.len() as u64);
        for (target, row) in &self.breakers {
            fold_str(target, f);
            f(row.trips);
            f(row.closes);
            f(row.skips);
        }
        f(self.probes);
        f(self.end_ns);
    }
}

fn fmt_ms(ns: Option<u64>) -> String {
    match ns {
        Some(ns) => format!("{:.1}", ns as f64 / 1e6),
        None => "-".to_string(),
    }
}

impl HealthReport {
    /// Aligned human-readable scoreboard.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "route health @ t={:.1}s  (slo: p99 <= {:.1}s, error budget {:.1}%, \
             windows {}s/{}s, warn>={}, page>={})",
            self.end_ns as f64 / 1e9,
            self.slo.p99_ns as f64 / 1e9,
            self.slo.error_budget * 100.0,
            self.slo.short_window_ns / 1_000_000_000,
            self.slo.long_window_ns / 1_000_000_000,
            self.slo.warn_burn,
            self.slo.page_burn,
        );
        if self.rows.is_empty() {
            out.push_str("(no transfer attempts in trace)\n");
            return out;
        }
        let vw = self
            .rows
            .iter()
            .map(|r| r.vantage.len())
            .max()
            .unwrap_or(7)
            .max(7);
        let pw = self
            .rows
            .iter()
            .map(|r| r.provider.len())
            .max()
            .unwrap_or(8)
            .max(8);
        let _ = writeln!(
            out,
            "{:<vw$}  {:<pw$}  {:<6}  {:>4} {:>4}  {:>9} {:>9}  {:>3} {:>3} {:>3} {:>3}  {:>6} {:>6}  verdict",
            "vantage", "provider", "size", "att", "err", "p50_ms", "p99_ms",
            "thr", "rty", "fov", "skp", "burn_s", "burn_l"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<vw$}  {:<pw$}  {:<6}  {:>4} {:>4}  {:>9} {:>9}  {:>3} {:>3} {:>3} {:>3}  {:>6.2} {:>6.2}  {}",
                r.vantage,
                r.provider,
                r.size,
                r.cell.attempts(),
                r.cell.errors(),
                fmt_ms(r.p50_ns),
                fmt_ms(r.p99_ns),
                r.cell.throttles,
                r.cell.retries,
                r.cell.failovers,
                r.cell.breaker_skips,
                r.burn_short,
                r.burn_long,
                r.overall.label(),
            );
        }
        if !self.breakers.is_empty() {
            out.push_str("\nbreakers:\n");
            for (target, row) in &self.breakers {
                let _ = writeln!(
                    out,
                    "  target {:<6} trips {:>3}  closes {:>3}  skips {:>3}",
                    target, row.trips, row.closes, row.skips
                );
            }
        }
        let _ = writeln!(out, "\nmonitor probes: {}", self.probes);
        out
    }

    /// Canonical JSON (sorted cells, integer ns, shortest-roundtrip
    /// floats) — golden-snapshot and artifact friendly.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"slo\":{");
        let _ = write!(
            out,
            "\"p99_ns\":{},\"error_budget\":{},\"short_window_ns\":{},\"long_window_ns\":{},\
             \"warn_burn\":{},\"page_burn\":{}}},",
            self.slo.p99_ns,
            self.slo.error_budget,
            self.slo.short_window_ns,
            self.slo.long_window_ns,
            self.slo.warn_burn,
            self.slo.page_burn
        );
        let _ = write!(
            out,
            "\"end_ns\":{},\"probes\":{},\"cells\":[",
            self.end_ns, self.probes
        );
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"vantage\":");
            json_escape(&r.vantage, &mut out);
            out.push_str(",\"provider\":");
            json_escape(&r.provider, &mut out);
            let _ = write!(
                out,
                ",\"size\":\"{}\",\"attempts\":{},\"errors\":{},\"p50_ns\":{},\"p99_ns\":{},\
                 \"throttles\":{},\"retries\":{},\"route_failures\":{},\"failovers\":{},\
                 \"breaker_trips\":{},\"breaker_skips\":{},\"budget_exhausted\":{},\
                 \"deadline_exceeded\":{},\"plane_sheds\":{},\"plane_demotions\":{},\
                 \"plane_stale\":{},\"burn_short\":{},\"burn_long\":{},\
                 \"latency\":\"{}\",\"error_verdict\":\"{}\",\"verdict\":\"{}\"}}",
                r.size,
                r.cell.attempts(),
                r.cell.errors(),
                r.p50_ns
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "null".into()),
                r.p99_ns
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "null".into()),
                r.cell.throttles,
                r.cell.retries,
                r.cell.route_failures,
                r.cell.failovers,
                r.cell.breaker_trips,
                r.cell.breaker_skips,
                r.cell.budget_exhausted,
                r.cell.deadline_exceeded,
                r.cell.plane_sheds,
                r.cell.plane_demotions,
                r.cell.plane_stale,
                r.burn_short,
                r.burn_long,
                r.latency.label(),
                r.errors.label(),
                r.overall.label(),
            );
        }
        out.push_str("],\"breakers\":[");
        for (i, (target, row)) in self.breakers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"target\":");
            json_escape(target, &mut out);
            let _ = write!(
                out,
                ",\"trips\":{},\"closes\":{},\"skips\":{}}}",
                row.trips, row.closes, row.skips
            );
        }
        out.push_str("]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{Category, SpanId, Telemetry};
    use crate::trace::Trace;

    fn job(tele: &mut Telemetry, t0: u64, ok: bool, vantage: &str, provider: &str, bytes: u64) {
        let j = tele.span_begin_with(t0, Category::Control, "job", SpanId::NONE, |a| {
            a.set("route", "Direct")
                .set("bytes", bytes)
                .set("vantage", vantage.to_string())
                .set("provider", provider.to_string());
        });
        tele.event(t0 + 100, Category::Chunk, "chunk.retry", j, |a| {
            a.set("attempt", 1u64);
        });
        if !ok {
            tele.event(t0 + 500, Category::Control, "job.error", j, |a| {
                a.set("error", "timeout contacting frontend");
            });
        }
        tele.span_end(t0 + 1_000_000_000, j);
    }

    fn board_from(tele: &mut Telemetry) -> HealthBoard {
        let rec = tele.take().unwrap();
        let trace = Trace::from_recording(&rec);
        let mut b = HealthBoard::new(SloPolicy::default());
        b.ingest(&trace);
        b
    }

    #[test]
    fn attempts_split_by_cell_and_outcome() {
        let mut tele = Telemetry::enabled();
        job(&mut tele, 0, true, "UBC", "Google Drive", 1 << 20);
        job(&mut tele, 10, true, "UBC", "Google Drive", 1 << 20);
        job(&mut tele, 20, false, "UBC", "Google Drive", 1 << 20);
        job(&mut tele, 30, true, "Purdue", "Dropbox", 512 << 20);
        let b = board_from(&mut tele);
        let rep = b.report();
        assert_eq!(rep.rows.len(), 2);
        let ubc = &rep.rows[1];
        assert_eq!((ubc.vantage.as_str(), ubc.size), ("UBC", "small"));
        assert_eq!(ubc.cell.attempts(), 3);
        assert_eq!(ubc.cell.errors(), 1);
        assert_eq!(ubc.cell.retries, 3);
        assert_eq!(ubc.cell.transfer_ns.count(), 2);
        let purdue = &rep.rows[0];
        assert_eq!((purdue.vantage.as_str(), purdue.size), ("Purdue", "large"));
        assert_eq!(purdue.cell.errors(), 0);
    }

    #[test]
    fn burn_rates_drive_error_verdicts() {
        let mut tele = Telemetry::enabled();
        // Every attempt fails: burn = (1.0 / 0.05) = 20 >> page threshold.
        for i in 0..10u64 {
            job(
                &mut tele,
                i * 1_000_000,
                false,
                "UBC",
                "Google Drive",
                1 << 20,
            );
        }
        let b = board_from(&mut tele);
        let rep = b.report();
        assert_eq!(rep.rows[0].errors, Verdict::Burning);
        assert_eq!(rep.rows[0].overall, Verdict::Burning);
        // All-success board stays ok.
        let mut tele = Telemetry::enabled();
        for i in 0..10u64 {
            job(
                &mut tele,
                i * 1_000_000,
                true,
                "UBC",
                "Google Drive",
                1 << 20,
            );
        }
        let rep = board_from(&mut tele).report();
        assert_eq!(rep.rows[0].overall, Verdict::Ok);
    }

    #[test]
    fn latency_verdict_tracks_p99_target() {
        // 0.5 s target while the jobs take a full second.
        let slo = SloPolicy {
            p99_ns: 500_000_000,
            ..SloPolicy::default()
        };
        let mut tele = Telemetry::enabled();
        job(&mut tele, 0, true, "UBC", "Google Drive", 1 << 20);
        let rec = tele.take().unwrap();
        let mut b = HealthBoard::new(slo);
        b.ingest(&Trace::from_recording(&rec));
        let rep = b.report();
        assert_eq!(rep.rows[0].latency, Verdict::Burning);
    }

    #[test]
    fn root_events_attribute_via_their_own_args() {
        let mut tele = Telemetry::enabled();
        tele.event(
            5,
            Category::Control,
            "failover.switched",
            SpanId::NONE,
            |a| {
                a.set("route", "via UAlberta")
                    .set("vantage", "UBC")
                    .set("provider", "Dropbox")
                    .set("bytes", 1u64 << 20)
                    .set("failed_attempts", 1u64);
            },
        );
        tele.event(6, Category::Control, "breaker.trip", SpanId::NONE, |a| {
            a.set("target", "7")
                .set("vantage", "UBC")
                .set("provider", "Dropbox")
                .set("bytes", 1u64 << 20);
        });
        tele.event(7, Category::Control, "breaker.close", SpanId::NONE, |a| {
            a.set("target", "7");
        });
        tele.event(8, Category::Control, "monitor.probe", SpanId::NONE, |a| {
            a.set("route", 1u64);
        });
        let b = board_from(&mut tele);
        let rep = b.report();
        assert_eq!(rep.probes, 1);
        assert_eq!(rep.breakers.len(), 1);
        assert_eq!(rep.breakers[0].1.trips, 1);
        assert_eq!(rep.breakers[0].1.closes, 1);
        let cell = &rep.rows[0].cell;
        assert_eq!(cell.failovers, 1);
        assert_eq!(cell.breaker_trips, 1);
    }

    #[test]
    fn plane_pressure_events_land_in_their_cell() {
        let mut tele = Telemetry::enabled();
        for (i, name) in ["plane.shed", "plane.shed", "plane.demote", "plane.stale"]
            .iter()
            .enumerate()
        {
            tele.event(10 + i as u64, Category::Control, name, SpanId::NONE, |a| {
                a.set("vantage", "UBC")
                    .set("provider", "Dropbox")
                    .set("bytes", 1u64 << 20);
            });
        }
        // No vantage arg and no parent span: nowhere to attribute, dropped.
        tele.event(99, Category::Control, "plane.shed", SpanId::NONE, |a| {
            a.set("tenant", 3u64);
        });
        let rep = board_from(&mut tele).report();
        assert_eq!(rep.rows.len(), 1);
        let cell = &rep.rows[0].cell;
        assert_eq!(cell.plane_sheds, 2);
        assert_eq!(cell.plane_demotions, 1);
        assert_eq!(cell.plane_stale, 1);
        let json = rep.to_json();
        assert!(json.contains("\"plane_sheds\":2"));
        assert!(json.contains("\"plane_demotions\":1"));
        assert!(json.contains("\"plane_stale\":1"));
    }

    #[test]
    fn multi_trace_ingest_is_order_independent() {
        let mk = |ok: bool| {
            let mut tele = Telemetry::enabled();
            job(&mut tele, 0, ok, "UBC", "Google Drive", 1 << 20);
            Trace::from_recording(&tele.take().unwrap())
        };
        let (a, b) = (mk(true), mk(false));
        let mut x = HealthBoard::new(SloPolicy::default());
        x.ingest(&a);
        x.ingest(&b);
        let mut y = HealthBoard::new(SloPolicy::default());
        y.ingest(&b);
        y.ingest(&a);
        let mut dx = Vec::new();
        let mut dy = Vec::new();
        x.fold_into(&mut |v| dx.push(v));
        y.fold_into(&mut |v| dy.push(v));
        // Same multiset of outcomes; sketches and counters identical.
        assert_eq!(x.report().to_json(), y.report().to_json());
        assert_eq!(dx.len(), dy.len());
    }

    #[test]
    fn report_renders_text_and_json() {
        let mut tele = Telemetry::enabled();
        job(&mut tele, 0, true, "UBC", "Google Drive", 1 << 20);
        job(&mut tele, 10, false, "UBC", "Google Drive", 1 << 20);
        let rep = board_from(&mut tele).report();
        let text = rep.to_text();
        assert!(text.contains("route health"));
        assert!(text.contains("UBC"));
        assert!(text.contains("Google Drive"));
        let json = rep.to_json();
        assert!(json.starts_with("{\"slo\":{"));
        assert!(json.contains("\"vantage\":\"UBC\""));
        assert!(json.contains("\"attempts\":2"));
        assert!(json.ends_with("]}\n"));
    }

    #[test]
    fn jobless_sessions_count_as_attempts() {
        let mut tele = Telemetry::enabled();
        let s = tele.span_begin_with(0, Category::Session, "upload-session", SpanId::NONE, |a| {
            a.set("bytes", 4u64 << 20).set("provider", "OneDrive");
        });
        tele.event(100, Category::Session, "session.error", s, |a| {
            a.set("error", "retry budget exhausted");
        });
        tele.span_end(200, s);
        let rep = board_from(&mut tele).report();
        assert_eq!(rep.rows.len(), 1);
        let r = &rep.rows[0];
        assert_eq!(r.vantage, "-");
        assert_eq!(r.provider, "OneDrive");
        assert_eq!(r.cell.attempts(), 1);
        assert_eq!(r.cell.errors(), 1);
        assert_eq!(r.cell.budget_exhausted, 1);
    }
}
