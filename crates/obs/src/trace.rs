//! Parsing recorded JSONL traces back into a structured [`Trace`].
//!
//! The JSONL exporter ([`crate::export::jsonl_log`]) is the recording
//! format of the health plane: `detour health --record` appends one
//! exported log per run, and this module parses those files back —
//! including **concatenations of several runs** — into spans and events
//! that `health`/`analyze` consume. Span ids in the JSONL are
//! segment-local (each run restarts at 1), so the parser keeps a live
//! `segment id → global index` map that is simply overwritten whenever an
//! id is re-begun; a multi-run file therefore parses without any framing.
//!
//! Live and recorded paths converge by construction:
//! [`Trace::from_recording`] serializes the in-memory [`Recording`]
//! through the same JSONL bytes and re-parses them, so a scoreboard built
//! from a live run is structurally identical to one built from the file
//! that run recorded.
//!
//! Errors are typed and actionable: every [`TraceError`] carries the
//! source path, the 1-based line number where parsing failed, and a
//! remediation hint (see [`TraceError::hint`]).

use crate::export::jsonl_log;
use crate::telemetry::Recording;
use std::fmt;
use std::path::Path;

/// A JSON value from a trace line, with integers kept exact.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceValue {
    /// Unsigned integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Text.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// JSON null (also used for nested containers, which traces don't emit).
    Null,
}

impl TraceValue {
    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            TraceValue::U64(v) => Some(*v),
            TraceValue::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as text.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            TraceValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// One span reconstructed from a trace.
#[derive(Debug, Clone)]
pub struct TraceSpan {
    /// Global index of the parent span in [`Trace::spans`], if any.
    pub parent: Option<usize>,
    /// Category label ("control", "session", ...).
    pub cat: String,
    /// Span name ("job", "upload-session", "part", ...).
    pub name: String,
    /// Simulated begin time, nanoseconds.
    pub start_ns: u64,
    /// Simulated end time; `None` when the trace ends with the span open.
    pub end_ns: Option<u64>,
    /// Attached arguments, in recorded order.
    pub args: Vec<(String, TraceValue)>,
}

impl TraceSpan {
    /// Span duration; open spans report zero.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns
            .unwrap_or(self.start_ns)
            .saturating_sub(self.start_ns)
    }

    /// Look up an argument by key.
    pub fn arg(&self, key: &str) -> Option<&TraceValue> {
        self.args.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// One instant event reconstructed from a trace.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Global index of the parent span in [`Trace::spans`], if any.
    pub parent: Option<usize>,
    /// Category label.
    pub cat: String,
    /// Event name ("chunk.retry", "failover.switched", ...).
    pub name: String,
    /// Simulated time, nanoseconds.
    pub t_ns: u64,
    /// Attached arguments, in recorded order.
    pub args: Vec<(String, TraceValue)>,
}

impl TraceEvent {
    /// Look up an argument by key.
    pub fn arg(&self, key: &str) -> Option<&TraceValue> {
        self.args.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// A parsed trace: spans and events in file order, with parent links
/// resolved to global span indices (stable across run concatenation).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// All spans, in begin order.
    pub spans: Vec<TraceSpan>,
    /// All events, in file order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Parse a live [`Recording`] by round-tripping it through the JSONL
    /// exporter — the recorded-file and live paths share every byte of
    /// the pipeline, which is what makes `detour health` reproduce the
    /// same scoreboard from a run and from its recording.
    pub fn from_recording(rec: &Recording) -> Trace {
        parse_jsonl(&jsonl_log(rec), "<live>").expect("round-trip of a live recording")
    }

    /// Walk parent links from `idx` (exclusive) up to the root.
    pub fn ancestors(&self, idx: usize) -> impl Iterator<Item = usize> + '_ {
        let mut cur = self.spans.get(idx).and_then(|s| s.parent);
        std::iter::from_fn(move || {
            let here = cur?;
            cur = self.spans.get(here).and_then(|s| s.parent);
            Some(here)
        })
    }

    /// Largest timestamp anywhere in the trace (span begin/end or event).
    pub fn end_ns(&self) -> u64 {
        let spans = self
            .spans
            .iter()
            .map(|s| s.end_ns.unwrap_or(s.start_ns))
            .max()
            .unwrap_or(0);
        let events = self.events.iter().map(|e| e.t_ns).max().unwrap_or(0);
        spans.max(events)
    }
}

/// What went wrong while reading a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceErrorKind {
    /// The file could not be read at all (io error text attached).
    Unreadable(String),
    /// The file exists but contains no trace lines.
    Empty,
    /// A line is not valid JSON.
    BadJson(String),
    /// The final line stops mid-record — the classic partial-write tail.
    Truncated,
    /// A record lacks a required field.
    MissingField(&'static str),
    /// A field has the wrong type or an out-of-range value.
    BadField(&'static str),
    /// A record's `type` is not one of span_begin/span_end/event.
    UnknownType(String),
    /// A span_end refers to a span this file never began.
    DanglingSpanEnd(u64),
}

/// A typed, actionable trace-reading error: source file, 1-based line
/// number (when the failure is tied to a line), what went wrong, and a
/// remediation hint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// Path (or `<live>` / `<stdin>`) the trace came from.
    pub source: String,
    /// 1-based line where parsing failed, if line-scoped.
    pub line: Option<usize>,
    /// The failure.
    pub kind: TraceErrorKind,
}

impl TraceError {
    /// A one-line remediation hint for the user.
    pub fn hint(&self) -> &'static str {
        match &self.kind {
            TraceErrorKind::Unreadable(_) => {
                "check the path; record a trace with `detour trace --format jsonl --out FILE` \
                 or `detour health --record FILE`"
            }
            TraceErrorKind::Empty => {
                "the file has no trace lines; re-record with `detour trace --format jsonl --out FILE`"
            }
            TraceErrorKind::BadJson(_) => {
                "the line is not trace JSONL; make sure the file was written by \
                 `detour trace --format jsonl` (not the chrome/table format)"
            }
            TraceErrorKind::Truncated => {
                "the last line stops mid-record (interrupted write); drop the partial \
                 last line or re-record the trace"
            }
            TraceErrorKind::MissingField(_) | TraceErrorKind::BadField(_) => {
                "the record does not match the trace schema; re-record with a current \
                 `detour` binary instead of hand-editing"
            }
            TraceErrorKind::UnknownType(_) => {
                "only span_begin/span_end/event records are valid; make sure this is a \
                 trace JSONL file, not some other log"
            }
            TraceErrorKind::DanglingSpanEnd(_) => {
                "the file ends a span it never began — it may be missing its start; \
                 use the complete recording"
            }
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "{}:{}: ", self.source, line)?,
            None => write!(f, "{}: ", self.source)?,
        }
        match &self.kind {
            TraceErrorKind::Unreadable(io) => write!(f, "cannot read trace ({io})")?,
            TraceErrorKind::Empty => write!(f, "empty trace")?,
            TraceErrorKind::BadJson(what) => write!(f, "invalid JSON ({what})")?,
            TraceErrorKind::Truncated => write!(f, "truncated trace: last line is incomplete")?,
            TraceErrorKind::MissingField(k) => write!(f, "missing field \"{k}\"")?,
            TraceErrorKind::BadField(k) => write!(f, "field \"{k}\" has the wrong type or range")?,
            TraceErrorKind::UnknownType(t) => write!(f, "unknown record type \"{t}\"")?,
            TraceErrorKind::DanglingSpanEnd(id) => {
                write!(f, "span_end for span {id} that was never begun")?
            }
        }
        write!(f, "\n  hint: {}", self.hint())
    }
}

impl std::error::Error for TraceError {}

/// Read and parse a trace file, mapping io failures and empty files to
/// typed errors.
pub fn load_trace(path: &Path) -> Result<Trace, TraceError> {
    let source = path.display().to_string();
    let text = std::fs::read_to_string(path).map_err(|e| TraceError {
        source: source.clone(),
        line: None,
        kind: TraceErrorKind::Unreadable(e.to_string()),
    })?;
    parse_jsonl(&text, &source)
}

/// Parse trace JSONL text. `source` labels errors (a path, `<live>`, ...).
pub fn parse_jsonl(text: &str, source: &str) -> Result<Trace, TraceError> {
    let mut trace = Trace::default();
    // Live segment-local id → global span index; overwritten when a later
    // run (in a concatenated file) reuses the id.
    let mut id_map: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();

    let err = |line: usize, kind: TraceErrorKind| TraceError {
        source: source.to_string(),
        line: Some(line),
        kind,
    };

    let mut saw_line = false;
    let lines: Vec<&str> = text.lines().collect();
    let last_idx = lines.len().saturating_sub(1);
    for (i, raw) in lines.iter().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        saw_line = true;
        let obj = match parse_json_object(line) {
            Ok(obj) => obj,
            Err(JsonError::UnexpectedEof) if i == last_idx => {
                return Err(err(lineno, TraceErrorKind::Truncated));
            }
            Err(e) => return Err(err(lineno, TraceErrorKind::BadJson(e.to_string()))),
        };
        let get = |key: &'static str| -> Result<&JsonVal, TraceError> {
            obj.iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| err(lineno, TraceErrorKind::MissingField(key)))
        };
        let get_u64 = |key: &'static str| -> Result<u64, TraceError> {
            match get(key)? {
                JsonVal::Int(n) => {
                    u64::try_from(*n).map_err(|_| err(lineno, TraceErrorKind::BadField(key)))
                }
                _ => Err(err(lineno, TraceErrorKind::BadField(key))),
            }
        };
        let get_str = |key: &'static str| -> Result<String, TraceError> {
            match get(key)? {
                JsonVal::Str(s) => Ok(s.clone()),
                _ => Err(err(lineno, TraceErrorKind::BadField(key))),
            }
        };
        let ty = get_str("type")?;
        match ty.as_str() {
            "span_begin" => {
                let id = get_u64("id")?;
                let parent_id = get_u64("parent")?;
                // Parents outside this file (e.g. a tail of a bigger
                // trace) simply become roots rather than errors.
                let parent = if parent_id == 0 {
                    None
                } else {
                    id_map.get(&parent_id).copied()
                };
                let args = match obj.iter().find(|(k, _)| k == "args") {
                    Some((_, JsonVal::Obj(kv))) => kv
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_trace_value()))
                        .collect(),
                    Some(_) => return Err(err(lineno, TraceErrorKind::BadField("args"))),
                    None => Vec::new(),
                };
                let idx = trace.spans.len();
                trace.spans.push(TraceSpan {
                    parent,
                    cat: get_str("cat")?,
                    name: get_str("name")?,
                    start_ns: get_u64("t_ns")?,
                    end_ns: None,
                    args,
                });
                id_map.insert(id, idx);
            }
            "span_end" => {
                let id = get_u64("id")?;
                let t = get_u64("t_ns")?;
                match id_map.get(&id) {
                    Some(&idx) => trace.spans[idx].end_ns = Some(t),
                    None => return Err(err(lineno, TraceErrorKind::DanglingSpanEnd(id))),
                }
            }
            "event" => {
                let parent_id = get_u64("parent")?;
                let parent = if parent_id == 0 {
                    None
                } else {
                    id_map.get(&parent_id).copied()
                };
                let args = match obj.iter().find(|(k, _)| k == "args") {
                    Some((_, JsonVal::Obj(kv))) => kv
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_trace_value()))
                        .collect(),
                    Some(_) => return Err(err(lineno, TraceErrorKind::BadField("args"))),
                    None => Vec::new(),
                };
                trace.events.push(TraceEvent {
                    parent,
                    cat: get_str("cat")?,
                    name: get_str("name")?,
                    t_ns: get_u64("t_ns")?,
                    args,
                });
            }
            other => return Err(err(lineno, TraceErrorKind::UnknownType(other.to_string()))),
        }
    }
    if !saw_line {
        return Err(TraceError {
            source: source.to_string(),
            line: None,
            kind: TraceErrorKind::Empty,
        });
    }
    Ok(trace)
}

// ---------------------------------------------------------------------------
// Minimal JSON parser (the crate is dependency-free). Integers parse
// exactly into i128; only what the JSONL exporter emits is supported,
// plus enough generality (arrays, nesting, unicode escapes) to reject
// foreign files with a useful message instead of a panic.

#[derive(Debug, Clone, PartialEq)]
enum JsonVal {
    Obj(Vec<(String, JsonVal)>),
    Arr(Vec<JsonVal>),
    Str(String),
    Int(i128),
    Float(f64),
    Bool(bool),
    Null,
}

impl JsonVal {
    fn to_trace_value(&self) -> TraceValue {
        match self {
            JsonVal::Int(n) => {
                if let Ok(u) = u64::try_from(*n) {
                    TraceValue::U64(u)
                } else if let Ok(i) = i64::try_from(*n) {
                    TraceValue::I64(i)
                } else {
                    TraceValue::F64(*n as f64)
                }
            }
            JsonVal::Float(f) => TraceValue::F64(*f),
            JsonVal::Str(s) => TraceValue::Str(s.clone()),
            JsonVal::Bool(b) => TraceValue::Bool(*b),
            JsonVal::Obj(_) | JsonVal::Arr(_) | JsonVal::Null => TraceValue::Null,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum JsonError {
    UnexpectedEof,
    Unexpected(char, usize),
    BadNumber(usize),
    BadEscape(usize),
    TrailingData(usize),
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::UnexpectedEof => write!(f, "unexpected end of input"),
            JsonError::Unexpected(c, at) => write!(f, "unexpected {c:?} at byte {at}"),
            JsonError::BadNumber(at) => write!(f, "malformed number at byte {at}"),
            JsonError::BadEscape(at) => write!(f, "bad string escape at byte {at}"),
            JsonError::TrailingData(at) => write!(f, "trailing data at byte {at}"),
        }
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\r' || b == b'\n' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        match self.peek() {
            Some(c) if c == b => {
                self.pos += 1;
                Ok(())
            }
            Some(c) => Err(JsonError::Unexpected(c as char, self.pos)),
            None => Err(JsonError::UnexpectedEof),
        }
    }

    fn value(&mut self) -> Result<JsonVal, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonVal::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonVal::Bool(true)),
            Some(b'f') => self.literal("false", JsonVal::Bool(false)),
            Some(b'n') => self.literal("null", JsonVal::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(c) => Err(JsonError::Unexpected(c as char, self.pos)),
            None => Err(JsonError::UnexpectedEof),
        }
    }

    fn literal(&mut self, word: &str, val: JsonVal) -> Result<JsonVal, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(val)
        } else if self.bytes.len() - self.pos < word.len() {
            Err(JsonError::UnexpectedEof)
        } else {
            Err(JsonError::Unexpected(
                self.bytes[self.pos] as char,
                self.pos,
            ))
        }
    }

    fn object(&mut self) -> Result<JsonVal, JsonError> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonVal::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            out.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonVal::Obj(out));
                }
                Some(c) => return Err(JsonError::Unexpected(c as char, self.pos)),
                None => return Err(JsonError::UnexpectedEof),
            }
        }
    }

    fn array(&mut self) -> Result<JsonVal, JsonError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonVal::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonVal::Arr(out));
                }
                Some(c) => return Err(JsonError::Unexpected(c as char, self.pos)),
                None => return Err(JsonError::UnexpectedEof),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or(JsonError::UnexpectedEof)?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or(JsonError::BadEscape(start))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        Some(_) => return Err(JsonError::BadEscape(start)),
                        None => return Err(JsonError::UnexpectedEof),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().ok_or(JsonError::UnexpectedEof)?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(JsonError::UnexpectedEof),
            }
        }
    }

    fn number(&mut self) -> Result<JsonVal, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::BadNumber(start))?;
        if is_float {
            text.parse::<f64>()
                .map(JsonVal::Float)
                .map_err(|_| JsonError::BadNumber(start))
        } else {
            text.parse::<i128>()
                .map(JsonVal::Int)
                .map_err(|_| JsonError::BadNumber(start))
        }
    }
}

fn parse_json_object(line: &str) -> Result<Vec<(String, JsonVal)>, JsonError> {
    let mut cur = Cursor {
        bytes: line.as_bytes(),
        pos: 0,
    };
    let val = cur.value()?;
    cur.skip_ws();
    if cur.pos != cur.bytes.len() {
        return Err(JsonError::TrailingData(cur.pos));
    }
    match val {
        JsonVal::Obj(kv) => Ok(kv),
        _ => Err(JsonError::Unexpected(line.chars().next().unwrap_or(' '), 0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{Category, SpanId, Telemetry};

    fn sample_recording() -> Recording {
        let mut tele = Telemetry::enabled();
        let job = tele.span_begin_with(0, Category::Control, "job", SpanId::NONE, |a| {
            a.set("route", "via UAlberta").set("bytes", 1_000u64);
        });
        let sess = tele.span_begin(1_000, Category::Session, "upload-session", job);
        tele.event(1_500, Category::Chunk, "chunk.retry", sess, |a| {
            a.set("attempt", 1u64).set("backoff_ms", 40u64);
        });
        tele.span_end(9_000, sess);
        tele.span_end(10_000, job);
        tele.take().unwrap()
    }

    #[test]
    fn round_trip_preserves_structure() {
        let rec = sample_recording();
        let trace = Trace::from_recording(&rec);
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.events.len(), 1);
        assert_eq!(trace.spans[0].name, "job");
        assert_eq!(trace.spans[1].parent, Some(0));
        assert_eq!(trace.spans[1].end_ns, Some(9_000));
        assert_eq!(
            trace.spans[0].arg("route").and_then(|v| v.as_str()),
            Some("via UAlberta")
        );
        assert_eq!(trace.events[0].parent, Some(1));
        assert_eq!(
            trace.events[0].arg("attempt").and_then(|v| v.as_u64()),
            Some(1)
        );
        assert_eq!(trace.end_ns(), 10_000);
        assert_eq!(trace.ancestors(1).collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn concatenated_runs_remap_segment_ids() {
        let one = jsonl_log(&sample_recording());
        let both = format!("{one}{one}");
        let trace = parse_jsonl(&both, "<test>").unwrap();
        assert_eq!(trace.spans.len(), 4);
        assert_eq!(trace.events.len(), 2);
        // Second run's session span parents into the second job span.
        assert_eq!(trace.spans[3].parent, Some(2));
        assert_eq!(trace.events[1].parent, Some(3));
    }

    #[test]
    fn truncated_tail_is_reported_with_line_and_hint() {
        let full = jsonl_log(&sample_recording());
        let cut = &full[..full.len() - 25];
        let e = parse_jsonl(cut, "trace.jsonl").unwrap_err();
        assert_eq!(e.kind, TraceErrorKind::Truncated);
        assert_eq!(e.line, Some(cut.lines().count()));
        let msg = e.to_string();
        assert!(msg.contains("trace.jsonl:"), "{msg}");
        assert!(msg.contains("hint:"), "{msg}");
    }

    #[test]
    fn garbage_line_is_bad_json_with_line_number() {
        let full = jsonl_log(&sample_recording());
        let mangled = format!("not json at all\n{full}");
        let e = parse_jsonl(&mangled, "x.jsonl").unwrap_err();
        assert!(matches!(e.kind, TraceErrorKind::BadJson(_)), "{:?}", e.kind);
        assert_eq!(e.line, Some(1));
    }

    #[test]
    fn empty_input_is_typed() {
        let e = parse_jsonl("", "empty.jsonl").unwrap_err();
        assert_eq!(e.kind, TraceErrorKind::Empty);
        assert!(e.to_string().contains("re-record"));
    }

    #[test]
    fn foreign_records_are_rejected() {
        let e = parse_jsonl(r#"{"type":"metric","name":"x"}"#, "y.jsonl").unwrap_err();
        assert_eq!(e.kind, TraceErrorKind::UnknownType("metric".into()));
        let e = parse_jsonl(r#"{"type":"span_begin","id":1}"#, "y.jsonl").unwrap_err();
        assert!(matches!(e.kind, TraceErrorKind::MissingField(_)));
        let e = parse_jsonl(
            r#"{"type":"span_end","id":9,"t_ns":1,"dur_ns":0}"#,
            "y.jsonl",
        )
        .unwrap_err();
        assert_eq!(e.kind, TraceErrorKind::DanglingSpanEnd(9));
    }

    #[test]
    fn missing_file_is_unreadable_with_hint() {
        let e = load_trace(Path::new("/nonexistent/definitely/not/here.jsonl")).unwrap_err();
        assert!(matches!(e.kind, TraceErrorKind::Unreadable(_)));
        assert!(e.to_string().contains("detour trace"));
    }

    #[test]
    fn escapes_and_unicode_round_trip() {
        let mut tele = Telemetry::enabled();
        let s = tele.span_begin_with(0, Category::Session, "s", SpanId::NONE, |a| {
            a.set("note", "5xx \"transient\"\n\ttab — dash");
        });
        tele.span_end(1, s);
        let trace = Trace::from_recording(&tele.take().unwrap());
        assert_eq!(
            trace.spans[0].arg("note").and_then(|v| v.as_str()),
            Some("5xx \"transient\"\n\ttab — dash")
        );
    }
}
