//! Metrics registry: counters, gauges, and log-linear histograms.
//!
//! Histograms use a log-linear bucket layout (power-of-two major buckets,
//! eight linear sub-buckets each — the HdrHistogram idea at low
//! resolution): relative quantile error is bounded at ~12.5% across the
//! full `u64` range with a fixed, allocation-free bucket table. Registry
//! iteration is over `BTreeMap`s, so every export is deterministically
//! ordered.

use std::collections::BTreeMap;

/// Sub-buckets per power-of-two range; also the count of exact unit
/// buckets at the bottom of the scale.
const SUB: u64 = 8;
const SUB_BITS: u32 = 3;
/// Total bucket count: values up to 2^63 land in a real bucket; anything
/// beyond the last major range is clamped into the final (overflow) bucket.
const BUCKETS: usize = (SUB + (64 - SUB_BITS as u64) * SUB) as usize;

/// A log-linear histogram over `u64` samples.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros() as u64; // >= SUB_BITS
    let sub = (v >> (exp - SUB_BITS as u64)) & (SUB - 1);
    let idx = (SUB + (exp - SUB_BITS as u64) * SUB + sub) as usize;
    idx.min(BUCKETS - 1)
}

/// Inclusive upper bound of the bucket holding `v` — the value percentile
/// queries report for samples in that bucket.
fn bucket_upper_bound(idx: usize) -> u64 {
    if idx < SUB as usize {
        return idx as u64;
    }
    let rel = (idx as u64) - SUB;
    let exp = rel / SUB + SUB_BITS as u64;
    let sub = rel % SUB;
    let base = 1u64 << exp;
    let step = 1u64 << (exp - SUB_BITS as u64);
    base.saturating_add((sub + 1).saturating_mul(step))
        .saturating_sub(1)
}

impl Histogram {
    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample; `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample; `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of the recorded samples; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The value at quantile `q` in `[0, 1]`: an upper bound of the bucket
    /// containing that rank (≤ 12.5% relative error), clamped to the true
    /// observed max. `None` when the histogram is empty.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the requested quantile, 1-based, at least 1.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_upper_bound(idx).min(self.max));
            }
        }
        Some(self.max)
    }
}

/// Is `name` a conforming metric name? The scheme is dotted lowercase:
/// at least two non-empty `.`-separated segments, each built only from
/// ASCII lowercase letters, digits, and underscores (e.g.
/// `cloudstore.throttles`, `core.breaker.trips`). Dynamic parts must be
/// sanitized through [`metric_segment`] first.
pub fn is_valid_metric_name(name: &str) -> bool {
    let mut segments = 0usize;
    for seg in name.split('.') {
        if seg.is_empty()
            || !seg
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
        {
            return false;
        }
        segments += 1;
    }
    segments >= 2
}

/// Sanitize a dynamic string (route label, provider display name, node
/// name, ...) into one conforming metric-name segment: lowercase, with
/// every run of non-alphanumeric characters collapsed to a single `_`,
/// trimmed at both ends. Empty input becomes `"unknown"`.
pub fn metric_segment(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut pending_sep = false;
    for c in s.chars() {
        if c.is_ascii_alphanumeric() {
            if pending_sep && !out.is_empty() {
                out.push('_');
            }
            pending_sep = false;
            out.push(c.to_ascii_lowercase());
        } else {
            pending_sep = true;
        }
    }
    if out.is_empty() {
        "unknown".to_string()
    } else {
        out
    }
}

/// A last-value gauge that also remembers its range and sample count.
#[derive(Debug, Clone, Copy)]
pub struct Gauge {
    /// Most recently set value.
    pub last: f64,
    /// Smallest value ever set.
    pub min: f64,
    /// Largest value ever set.
    pub max: f64,
    /// Number of times the gauge was set.
    pub samples: u64,
}

/// Registry of named metrics; names are sorted on every export.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, Gauge>,
    hists: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Add to a counter.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        debug_assert!(is_valid_metric_name(name), "bad metric name: {name:?}");
        if let Some(c) = self.counters.get_mut(name) {
            *c += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Add to a counter, taking ownership of a prebuilt name. Dynamic
    /// name parts must go through [`metric_segment`].
    pub fn counter_add_owned(&mut self, name: String, delta: u64) {
        debug_assert!(is_valid_metric_name(&name), "bad metric name: {name:?}");
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Set a gauge.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        debug_assert!(is_valid_metric_name(name), "bad metric name: {name:?}");
        if let Some(g) = self.gauges.get_mut(name) {
            g.last = value;
            g.min = g.min.min(value);
            g.max = g.max.max(value);
            g.samples += 1;
        } else {
            self.gauges.insert(
                name.to_string(),
                Gauge {
                    last: value,
                    min: value,
                    max: value,
                    samples: 1,
                },
            );
        }
    }

    /// Record a histogram sample.
    pub fn hist_record(&mut self, name: &str, value: u64) {
        debug_assert!(is_valid_metric_name(name), "bad metric name: {name:?}");
        if let Some(h) = self.hists.get_mut(name) {
            h.record(value);
        } else {
            let mut h = Histogram::default();
            h.record(value);
            self.hists.insert(name.to_string(), h);
        }
    }

    /// Current value of a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current state of a gauge.
    pub fn gauge(&self, name: &str) -> Option<Gauge> {
        self.gauges.get(name).copied()
    }

    /// A histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Render every metric into a flat, deterministically ordered snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut rows = Vec::new();
        for (name, &v) in &self.counters {
            rows.push(MetricRow {
                name: name.clone(),
                kind: "counter",
                value: v as f64,
                p50: None,
                p99: None,
                min: None,
                max: None,
                samples: v,
            });
        }
        for (name, g) in &self.gauges {
            rows.push(MetricRow {
                name: name.clone(),
                kind: "gauge",
                value: g.last,
                p50: None,
                p99: None,
                min: Some(g.min),
                max: Some(g.max),
                samples: g.samples,
            });
        }
        for (name, h) in &self.hists {
            rows.push(MetricRow {
                name: name.clone(),
                kind: "histogram",
                value: h.mean().unwrap_or(0.0),
                p50: h.percentile(0.50).map(|v| v as f64),
                p99: h.percentile(0.99).map(|v| v as f64),
                min: h.min().map(|v| v as f64),
                max: h.max().map(|v| v as f64),
                samples: h.count(),
            });
        }
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot { rows }
    }
}

/// One metric in a [`MetricsSnapshot`].
#[derive(Debug, Clone)]
pub struct MetricRow {
    /// Metric name.
    pub name: String,
    /// `"counter"`, `"gauge"`, or `"histogram"`.
    pub kind: &'static str,
    /// Counter total, gauge last value, or histogram mean.
    pub value: f64,
    /// Histogram median.
    pub p50: Option<f64>,
    /// Histogram 99th percentile.
    pub p99: Option<f64>,
    /// Observed minimum (gauges and histograms).
    pub min: Option<f64>,
    /// Observed maximum (gauges and histograms).
    pub max: Option<f64>,
    /// Sample count (for counters, the total itself).
    pub samples: u64,
}

/// A flat, ordered view of a [`MetricsRegistry`], ready for text/CSV
/// rendering (see also `measure::report` for table output).
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// All metrics, sorted by name.
    pub rows: Vec<MetricRow>,
}

fn fmt_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

impl MetricsSnapshot {
    /// Aligned plain-text rendering.
    pub fn to_text(&self) -> String {
        if self.rows.is_empty() {
            return "(no metrics recorded)\n".to_string();
        }
        let name_w = self
            .rows
            .iter()
            .map(|r| r.name.len())
            .max()
            .unwrap_or(4)
            .max(4);
        let mut out = format!(
            "{:<name_w$}  {:<9}  {:>14}  {:>12}  {:>12}  {:>8}\n",
            "name", "kind", "value", "p50", "p99", "samples"
        );
        for r in &self.rows {
            let p50 = r.p50.map(fmt_num).unwrap_or_else(|| "-".into());
            let p99 = r.p99.map(fmt_num).unwrap_or_else(|| "-".into());
            out.push_str(&format!(
                "{:<name_w$}  {:<9}  {:>14}  {:>12}  {:>12}  {:>8}\n",
                r.name,
                r.kind,
                fmt_num(r.value),
                p50,
                p99,
                r.samples
            ));
        }
        out
    }

    /// CSV rendering with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("name,kind,value,p50,p99,min,max,samples\n");
        for r in &self.rows {
            let opt = |v: Option<f64>| v.map(fmt_num).unwrap_or_default();
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{}\n",
                r.name,
                r.kind,
                fmt_num(r.value),
                opt(r.p50),
                opt(r.p99),
                opt(r.min),
                opt(r.max),
                r.samples
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn single_sample_dominates_every_percentile() {
        let mut h = Histogram::default();
        h.record(1234);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let p = h.percentile(q).unwrap();
            assert_eq!(p, 1234, "q={q} gave {p}");
        }
        assert_eq!(h.mean(), Some(1234.0));
    }

    #[test]
    fn all_equal_samples_collapse_percentiles() {
        // Every sample identical: p50 == p99 == the value, min == max, and
        // nothing degenerates to NaN or an empty bucket walk.
        let mut h = Histogram::default();
        for _ in 0..1000 {
            h.record(48_213);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), Some(48_213));
        assert_eq!(h.max(), Some(48_213));
        let p50 = h.percentile(0.5).unwrap();
        let p99 = h.percentile(0.99).unwrap();
        assert_eq!(p50, p99, "all-equal data must have a flat tail");
        // The bucket upper bound is clamped to the observed max, so the
        // reported percentile is exact here despite log bucketing.
        assert_eq!(p50, 48_213);
        let mean = h.mean().unwrap();
        assert_eq!(mean, 48_213.0);
        assert!(mean.is_finite());
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::default();
        for v in 0..8u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), Some(0));
        assert_eq!(h.percentile(1.0), Some(7));
        // Rank 4 of 8 is the sample `3` (exact unit buckets below SUB).
        assert_eq!(h.percentile(0.5), Some(3));
    }

    #[test]
    fn percentile_error_is_bounded() {
        let mut h = Histogram::default();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for q in [0.5, 0.9, 0.99] {
            let exact = (q * 100_000.0) as u64;
            let est = h.percentile(q).unwrap();
            let rel = (est as f64 - exact as f64).abs() / exact as f64;
            assert!(
                rel < 0.13,
                "q={q}: est {est} vs exact {exact} (rel {rel:.3})"
            );
        }
    }

    #[test]
    fn overflow_bucket_holds_giant_samples() {
        let mut h = Histogram::default();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(1);
        assert_eq!(h.max(), Some(u64::MAX));
        // The percentile of the giant samples stays within the saturated
        // top bucket and never reports beyond the observed max.
        let top = h.percentile(1.0).unwrap();
        assert!(top >= u64::MAX - 1, "top {top}");
        assert_eq!(h.percentile(0.01), Some(1));
        // Top-of-range indices stay inside the table.
        assert_eq!(super::bucket_index(u64::MAX), super::BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_are_monotone() {
        let mut prev = 0;
        for idx in 0..super::BUCKETS {
            let b = super::bucket_upper_bound(idx);
            assert!(idx == 0 || b > prev, "bucket {idx}: {b} <= {prev}");
            prev = b;
        }
        // Every value maps into a bucket whose bound is >= the value.
        for v in [0u64, 1, 7, 8, 9, 100, 1023, 1 << 20, (1 << 40) + 12345] {
            assert!(
                super::bucket_upper_bound(super::bucket_index(v)) >= v,
                "v={v}"
            );
        }
    }

    #[test]
    fn registry_snapshot_is_sorted_and_complete() {
        let mut m = MetricsRegistry::default();
        m.counter_add("z.total", 2);
        m.counter_add("z.total", 3);
        m.counter_add_owned(
            format!("bytes.provider.{}", metric_segment("Google Drive")),
            100,
        );
        m.gauge_set("a.occupancy", 5.0);
        m.gauge_set("a.occupancy", 2.0);
        m.hist_record("m.latency", 10);
        m.hist_record("m.latency", 30);
        assert_eq!(m.counter("z.total"), 5);
        assert_eq!(m.gauge("a.occupancy").unwrap().last, 2.0);
        assert_eq!(m.gauge("a.occupancy").unwrap().max, 5.0);
        let snap = m.snapshot();
        let names: Vec<&str> = snap.rows.iter().map(|r| r.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert_eq!(snap.rows.len(), 4);
        let csv = snap.to_csv();
        assert!(csv.starts_with("name,kind,"));
        assert!(csv.contains("m.latency,histogram"));
        assert!(snap.to_text().contains("a.occupancy"));
        assert!(csv.contains("bytes.provider.google_drive"));
    }

    #[test]
    fn metric_name_scheme_is_enforced() {
        for good in [
            "cloudstore.throttles",
            "core.breaker.trips",
            "netsim.flow.delivered_bytes",
            "a.b_c.d9",
        ] {
            assert!(is_valid_metric_name(good), "{good} should be valid");
        }
        for bad in [
            "single",
            "",
            "a..b",
            ".a.b",
            "a.b.",
            "bytes.provider.GoogleDrive",
            "core.via UAlberta",
            "core.bytes-route",
        ] {
            assert!(!is_valid_metric_name(bad), "{bad} should be rejected");
        }
    }

    #[test]
    fn metric_segment_sanitizes_display_names() {
        assert_eq!(metric_segment("Google Drive"), "google_drive");
        assert_eq!(metric_segment("via UAlberta"), "via_ualberta");
        assert_eq!(metric_segment("via UAlberta+UMich"), "via_ualberta_umich");
        assert_eq!(metric_segment("Direct"), "direct");
        assert_eq!(metric_segment("  --  "), "unknown");
        assert_eq!(metric_segment(""), "unknown");
        assert!(is_valid_metric_name(&format!(
            "core.bytes.route.{}",
            metric_segment("via UAlberta")
        )));
    }
}
