//! Post-hoc trace analytics: critical paths, retry waterfalls, breaker
//! timelines, and top-k slowest spans.
//!
//! [`analyze`] consumes a parsed [`Trace`] (live or recorded) and
//! produces the `detour analyze` report: for every root span the
//! **critical path** (the chain of largest-duration children — where the
//! time actually went), the **retry waterfall** (every retry/throttle
//! event in time order with its backoff), the **breaker timeline**
//! (trips, cooldown closes, and skipped routes), and the top-k slowest
//! spans overall. Output is deterministic and renders as both an aligned
//! text report and canonical JSON for golden snapshots and CI artifacts.

use crate::export::json_escape;
use crate::trace::Trace;
use std::fmt::Write as _;

/// One hop on a critical path.
#[derive(Debug, Clone)]
pub struct PathStep {
    /// Span name.
    pub name: String,
    /// Category label.
    pub cat: String,
    /// Begin time, ns.
    pub start_ns: u64,
    /// Duration, ns.
    pub duration_ns: u64,
    /// Depth below the root (root = 0).
    pub depth: usize,
}

/// The critical path of one root span (session/job).
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// Steps from the root downward, following the slowest child at
    /// every level (ties break toward the earlier, then first-begun span).
    pub steps: Vec<PathStep>,
}

/// One entry of the retry waterfall.
#[derive(Debug, Clone)]
pub struct RetryStep {
    /// Event time, ns.
    pub t_ns: u64,
    /// `"chunk.retry"` or `"chunk.throttled"`.
    pub name: String,
    /// Name of the span the event happened under ("-" for roots).
    pub under: String,
    /// Retry attempt number, when recorded.
    pub attempt: Option<u64>,
    /// Backoff or throttle wait in ms, when recorded.
    pub wait_ms: Option<u64>,
}

/// One entry of the breaker timeline.
#[derive(Debug, Clone)]
pub struct BreakerStep {
    /// Event time, ns.
    pub t_ns: u64,
    /// `"trip"`, `"close"`, or `"skip"`.
    pub kind: &'static str,
    /// Breaker target id.
    pub target: String,
    /// Route involved, when recorded.
    pub route: Option<String>,
}

/// One of the top-k slowest spans.
#[derive(Debug, Clone)]
pub struct SlowSpan {
    /// Span name.
    pub name: String,
    /// Category label.
    pub cat: String,
    /// Begin time, ns.
    pub start_ns: u64,
    /// Duration, ns.
    pub duration_ns: u64,
}

/// The full `detour analyze` report.
#[derive(Debug, Clone)]
pub struct AnalyzeReport {
    /// Critical path per root span, in root begin order.
    pub sessions: Vec<CriticalPath>,
    /// Retry/throttle waterfall in time order.
    pub retries: Vec<RetryStep>,
    /// Breaker trips/closes/skips in time order.
    pub breakers: Vec<BreakerStep>,
    /// Top-k spans by duration, descending (ties toward earlier spans).
    pub slowest: Vec<SlowSpan>,
}

/// Analyze a trace; `top_k` bounds the slowest-span list.
pub fn analyze(trace: &Trace, top_k: usize) -> AnalyzeReport {
    // Children indices per span, in begin order (trace order).
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); trace.spans.len()];
    let mut roots: Vec<usize> = Vec::new();
    for (i, s) in trace.spans.iter().enumerate() {
        match s.parent {
            Some(p) if p < trace.spans.len() => children[p].push(i),
            _ => roots.push(i),
        }
    }

    let mut sessions = Vec::with_capacity(roots.len());
    for &root in &roots {
        let mut steps = Vec::new();
        let mut cur = root;
        let mut depth = 0usize;
        loop {
            let s = &trace.spans[cur];
            steps.push(PathStep {
                name: s.name.clone(),
                cat: s.cat.clone(),
                start_ns: s.start_ns,
                duration_ns: s.duration_ns(),
                depth,
            });
            // Slowest child wins; ties go to the earlier start, then the
            // earlier begin (lower index) — fully deterministic.
            let next = children[cur].iter().copied().max_by(|&a, &b| {
                let (sa, sb) = (&trace.spans[a], &trace.spans[b]);
                sa.duration_ns()
                    .cmp(&sb.duration_ns())
                    .then(sb.start_ns.cmp(&sa.start_ns))
                    .then(b.cmp(&a))
            });
            match next {
                Some(n) => {
                    cur = n;
                    depth += 1;
                }
                None => break,
            }
        }
        sessions.push(CriticalPath { steps });
    }

    let mut retries = Vec::new();
    let mut breakers = Vec::new();
    for e in &trace.events {
        match e.name.as_str() {
            "chunk.retry" | "chunk.throttled" => retries.push(RetryStep {
                t_ns: e.t_ns,
                name: e.name.clone(),
                under: e
                    .parent
                    .and_then(|p| trace.spans.get(p))
                    .map(|s| s.name.clone())
                    .unwrap_or_else(|| "-".to_string()),
                attempt: e.arg("attempt").and_then(|v| v.as_u64()),
                wait_ms: e
                    .arg("backoff_ms")
                    .or_else(|| e.arg("wait_ms"))
                    .and_then(|v| v.as_u64()),
            }),
            "breaker.trip" | "breaker.close" | "failover.breaker_skip" => {
                breakers.push(BreakerStep {
                    t_ns: e.t_ns,
                    kind: match e.name.as_str() {
                        "breaker.trip" => "trip",
                        "breaker.close" => "close",
                        _ => "skip",
                    },
                    target: e
                        .arg("target")
                        .and_then(|v| v.as_str())
                        .unwrap_or("?")
                        .to_string(),
                    route: e.arg("route").and_then(|v| v.as_str()).map(str::to_string),
                })
            }
            _ => {}
        }
    }

    let mut order: Vec<usize> = (0..trace.spans.len()).collect();
    order.sort_by(|&a, &b| {
        let (sa, sb) = (&trace.spans[a], &trace.spans[b]);
        sb.duration_ns()
            .cmp(&sa.duration_ns())
            .then(sa.start_ns.cmp(&sb.start_ns))
            .then(a.cmp(&b))
    });
    let slowest = order
        .into_iter()
        .take(top_k)
        .map(|i| {
            let s = &trace.spans[i];
            SlowSpan {
                name: s.name.clone(),
                cat: s.cat.clone(),
                start_ns: s.start_ns,
                duration_ns: s.duration_ns(),
            }
        })
        .collect();

    AnalyzeReport {
        sessions,
        retries,
        breakers,
        slowest,
    }
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

impl AnalyzeReport {
    /// Aligned human-readable report.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "critical paths ({} roots):", self.sessions.len());
        for cp in &self.sessions {
            for step in &cp.steps {
                let indent = "  ".repeat(step.depth + 1);
                let _ = writeln!(
                    out,
                    "{indent}{} [{}] +{:.1} ms, {:.1} ms",
                    step.name,
                    step.cat,
                    ms(step.start_ns),
                    ms(step.duration_ns)
                );
            }
        }
        let _ = writeln!(out, "\nretry waterfall ({} steps):", self.retries.len());
        for r in &self.retries {
            let attempt = r
                .attempt
                .map(|a| format!(" attempt {a}"))
                .unwrap_or_default();
            let wait = r
                .wait_ms
                .map(|w| format!(" wait {w} ms"))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "  +{:>9.1} ms  {:<15} under {}{}{}",
                ms(r.t_ns),
                r.name,
                r.under,
                attempt,
                wait
            );
        }
        let _ = writeln!(out, "\nbreaker timeline ({} steps):", self.breakers.len());
        for b in &self.breakers {
            let route = b
                .route
                .as_deref()
                .map(|r| format!(" route {r}"))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "  +{:>9.1} ms  {:<5} target {}{}",
                ms(b.t_ns),
                b.kind,
                b.target,
                route
            );
        }
        let _ = writeln!(out, "\nslowest spans (top {}):", self.slowest.len());
        for s in &self.slowest {
            let _ = writeln!(
                out,
                "  {:<20} [{}] +{:.1} ms, {:.1} ms",
                s.name,
                s.cat,
                ms(s.start_ns),
                ms(s.duration_ns)
            );
        }
        out
    }

    /// Canonical JSON rendering.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"sessions\":[");
        for (i, cp) in self.sessions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"steps\":[");
            for (j, step) in cp.steps.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("{\"name\":");
                json_escape(&step.name, &mut out);
                let _ = write!(
                    out,
                    ",\"cat\":\"{}\",\"start_ns\":{},\"duration_ns\":{},\"depth\":{}}}",
                    step.cat, step.start_ns, step.duration_ns, step.depth
                );
            }
            out.push_str("]}");
        }
        out.push_str("],\"retries\":[");
        for (i, r) in self.retries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"t_ns\":{},\"name\":", r.t_ns);
            json_escape(&r.name, &mut out);
            out.push_str(",\"under\":");
            json_escape(&r.under, &mut out);
            let opt = |v: Option<u64>| v.map(|x| x.to_string()).unwrap_or_else(|| "null".into());
            let _ = write!(
                out,
                ",\"attempt\":{},\"wait_ms\":{}}}",
                opt(r.attempt),
                opt(r.wait_ms)
            );
        }
        out.push_str("],\"breakers\":[");
        for (i, b) in self.breakers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"t_ns\":{},\"kind\":\"{}\",\"target\":",
                b.t_ns, b.kind
            );
            json_escape(&b.target, &mut out);
            out.push_str(",\"route\":");
            match &b.route {
                Some(r) => json_escape(r, &mut out),
                None => out.push_str("null"),
            }
            out.push('}');
        }
        out.push_str("],\"slowest\":[");
        for (i, s) in self.slowest.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json_escape(&s.name, &mut out);
            let _ = write!(
                out,
                ",\"cat\":\"{}\",\"start_ns\":{},\"duration_ns\":{}}}",
                s.cat, s.start_ns, s.duration_ns
            );
        }
        out.push_str("]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{Category, SpanId, Telemetry};
    use crate::trace::Trace;

    fn sample_trace() -> Trace {
        let mut tele = Telemetry::enabled();
        let job = tele.span_begin(0, Category::Control, "job", SpanId::NONE);
        let sess = tele.span_begin(1_000_000, Category::Session, "upload-session", job);
        let fast = tele.span_begin(2_000_000, Category::Chunk, "part", sess);
        tele.span_end(3_000_000, fast);
        let slow = tele.span_begin(3_000_000, Category::Chunk, "part", sess);
        tele.event(4_000_000, Category::Chunk, "chunk.retry", slow, |a| {
            a.set("attempt", 1u64).set("backoff_ms", 40u64);
        });
        tele.event(5_000_000, Category::Chunk, "chunk.throttled", slow, |a| {
            a.set("wait_ms", 25u64);
        });
        tele.span_end(9_000_000, slow);
        tele.event(
            9_100_000,
            Category::Control,
            "breaker.trip",
            SpanId::NONE,
            |a| {
                a.set("target", "3").set("route", "Direct");
            },
        );
        tele.event(
            9_200_000,
            Category::Control,
            "breaker.close",
            SpanId::NONE,
            |a| {
                a.set("target", "3");
            },
        );
        tele.span_end(10_000_000, sess);
        tele.span_end(10_500_000, job);
        Trace::from_recording(&tele.take().unwrap())
    }

    #[test]
    fn critical_path_follows_the_slowest_child() {
        let rep = analyze(&sample_trace(), 3);
        assert_eq!(rep.sessions.len(), 1);
        let names: Vec<&str> = rep.sessions[0]
            .steps
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(names, ["job", "upload-session", "part"]);
        // The chosen "part" is the slow one (6 ms), not the fast one (1 ms).
        assert_eq!(rep.sessions[0].steps[2].duration_ns, 6_000_000);
        assert_eq!(rep.sessions[0].steps[2].depth, 2);
    }

    #[test]
    fn waterfalls_and_timelines_are_time_ordered() {
        let rep = analyze(&sample_trace(), 3);
        assert_eq!(rep.retries.len(), 2);
        assert!(rep.retries[0].t_ns <= rep.retries[1].t_ns);
        assert_eq!(rep.retries[0].attempt, Some(1));
        assert_eq!(rep.retries[1].wait_ms, Some(25));
        assert_eq!(rep.retries[0].under, "part");
        assert_eq!(rep.breakers.len(), 2);
        assert_eq!(rep.breakers[0].kind, "trip");
        assert_eq!(rep.breakers[1].kind, "close");
        assert_eq!(rep.breakers[0].route.as_deref(), Some("Direct"));
    }

    #[test]
    fn slowest_spans_are_ranked_and_bounded() {
        let rep = analyze(&sample_trace(), 2);
        assert_eq!(rep.slowest.len(), 2);
        assert_eq!(rep.slowest[0].name, "job");
        assert!(rep.slowest[0].duration_ns >= rep.slowest[1].duration_ns);
    }

    #[test]
    fn renders_are_deterministic() {
        let a = analyze(&sample_trace(), 5);
        let b = analyze(&sample_trace(), 5);
        assert_eq!(a.to_text(), b.to_text());
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.to_text().contains("critical paths"));
        assert!(a.to_json().starts_with("{\"sessions\":["));
    }
}
