//! Exporters: deterministic JSONL, Chrome trace-event JSON (Perfetto),
//! and a plain-text span tree.
//!
//! All output is a pure function of the [`Recording`]: iteration orders
//! are explicit (time, then sequence number), floats print via Rust's
//! shortest-roundtrip formatter, and no wall-clock or environment state is
//! consulted — two runs with the same seed produce byte-identical files.

use crate::telemetry::{ArgValue, Recording, SpanId};
use std::fmt::Write as _;

pub(crate) fn json_escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn json_value(v: &ArgValue, out: &mut String) {
    match v {
        ArgValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        ArgValue::I64(n) => {
            let _ = write!(out, "{n}");
        }
        ArgValue::F64(f) => {
            if f.is_finite() {
                let _ = write!(out, "{f}");
            } else {
                out.push_str("null");
            }
        }
        ArgValue::Str(s) => json_escape(s, out),
        ArgValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
    }
}

fn json_args(args: &[(&'static str, ArgValue)], out: &mut String) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_escape(k, out);
        out.push(':');
        json_value(v, out);
    }
    out.push('}');
}

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum LineKind {
    SpanBegin,
    SpanEnd,
    Event,
}

/// The deterministic JSONL event log: one JSON object per line, in
/// simulated-time order (sequence numbers break ties), interleaving
/// `span_begin` / `span_end` / `event` records.
pub fn jsonl_log(rec: &Recording) -> String {
    // (t, seq, kind, index) — seq for begins/events is the record's own;
    // span ends don't carry one, so they sort by time then after
    // same-instant begins/events via the kind discriminant and span id.
    let mut lines: Vec<(u64, u64, LineKind, usize)> = Vec::new();
    for (i, s) in rec.spans.iter().enumerate() {
        lines.push((s.start_ns, s.begin_seq, LineKind::SpanBegin, i));
        if let Some(end) = s.end_ns {
            lines.push((end, u64::MAX, LineKind::SpanEnd, i));
        }
    }
    for (i, e) in rec.events.iter().enumerate() {
        lines.push((e.t_ns, e.seq, LineKind::Event, i));
    }
    lines.sort_by_key(|&(t, seq, kind, idx)| (t, seq, kind, idx));

    let mut out = String::new();
    for (_, _, kind, idx) in lines {
        match kind {
            LineKind::SpanBegin => {
                let s = &rec.spans[idx];
                let _ = write!(
                    out,
                    "{{\"type\":\"span_begin\",\"id\":{},\"parent\":{},\"t_ns\":{},\"cat\":\"{}\",\"name\":",
                    s.id.0,
                    s.parent.0,
                    s.start_ns,
                    s.cat.label()
                );
                json_escape(s.name, &mut out);
                if !s.args.is_empty() {
                    out.push_str(",\"args\":");
                    json_args(&s.args, &mut out);
                }
                out.push_str("}\n");
            }
            LineKind::SpanEnd => {
                let s = &rec.spans[idx];
                let _ = writeln!(
                    out,
                    "{{\"type\":\"span_end\",\"id\":{},\"t_ns\":{},\"dur_ns\":{}}}",
                    s.id.0,
                    s.end_ns.unwrap_or(s.start_ns),
                    s.duration_ns()
                );
            }
            LineKind::Event => {
                let e = &rec.events[idx];
                let _ = write!(
                    out,
                    "{{\"type\":\"event\",\"parent\":{},\"t_ns\":{},\"cat\":\"{}\",\"name\":",
                    e.parent.0,
                    e.t_ns,
                    e.cat.label()
                );
                json_escape(e.name, &mut out);
                if !e.args.is_empty() {
                    out.push_str(",\"args\":");
                    json_args(&e.args, &mut out);
                }
                out.push_str("}\n");
            }
        }
    }
    out
}

/// Assign each span a virtual thread ("lane") such that a span shares its
/// parent's lane whenever the parent is the lane's innermost open span —
/// giving real flame-stack nesting (session → chunk → RPC → flow) in the
/// Chrome/Perfetto timeline — and otherwise opens the lowest free lane.
fn assign_lanes(rec: &Recording) -> Vec<u64> {
    #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    enum Edge {
        End,
        Begin,
    }
    // (t, edge, seq, span index): ends sort before begins at equal times so
    // a back-to-back span can reuse the lane its predecessor just left.
    let mut edges: Vec<(u64, Edge, u64, usize)> = Vec::new();
    for (i, s) in rec.spans.iter().enumerate() {
        edges.push((s.start_ns, Edge::Begin, s.begin_seq, i));
        edges.push((s.end_ns.unwrap_or(u64::MAX), Edge::End, s.begin_seq, i));
    }
    edges.sort();

    let mut lanes: Vec<u64> = vec![0; rec.spans.len()];
    let mut stacks: Vec<Vec<usize>> = Vec::new(); // per-lane open-span stacks
    for (_, edge, _, i) in edges {
        match edge {
            Edge::Begin => {
                let parent = rec.spans[i].parent;
                let parent_idx = parent.0.checked_sub(1).map(|p| p as usize);
                let lane = parent_idx
                    .and_then(|p| {
                        let lane = lanes[p] as usize;
                        (stacks.get(lane).and_then(|s| s.last()) == Some(&p)).then_some(lane)
                    })
                    .unwrap_or_else(|| match stacks.iter().position(|s| s.is_empty()) {
                        Some(free) => free,
                        None => {
                            stacks.push(Vec::new());
                            stacks.len() - 1
                        }
                    });
                stacks[lane].push(i);
                lanes[i] = lane as u64;
            }
            Edge::End => {
                let lane = lanes[i] as usize;
                if let Some(pos) = stacks[lane].iter().rposition(|&s| s == i) {
                    stacks[lane].remove(pos);
                }
            }
        }
    }
    lanes
}

/// Chrome trace-event JSON (the `{"traceEvents":[...]}` object form),
/// loadable in Perfetto / `chrome://tracing`. Spans become complete (`X`)
/// events on flame-stacked virtual threads; instant events become `i`
/// events on their parent's lane; metrics appear as process metadata.
pub fn chrome_trace_json(rec: &Recording) -> String {
    let lanes = assign_lanes(rec);
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let push_sep = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
    };

    push_sep(&mut out, &mut first);
    out.push_str(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"simulated upload pipeline\"}}",
    );
    let max_lane = lanes.iter().copied().max().unwrap_or(0);
    for lane in 0..=max_lane {
        push_sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"lane {}\"}}}}",
            lane, lane
        );
    }

    // Deterministic order: spans by (start, begin_seq), then events.
    let mut span_order: Vec<usize> = (0..rec.spans.len()).collect();
    span_order.sort_by_key(|&i| (rec.spans[i].start_ns, rec.spans[i].begin_seq));
    for i in span_order {
        let s = &rec.spans[i];
        push_sep(&mut out, &mut first);
        let ts_us = s.start_ns as f64 / 1000.0;
        let dur_us = s.duration_ns() as f64 / 1000.0;
        let _ = write!(
            out,
            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{ts_us},\"dur\":{dur_us},\"cat\":\"{}\",\"name\":",
            lanes[i],
            s.cat.label()
        );
        json_escape(s.name, &mut out);
        out.push_str(",\"args\":");
        let mut args = s.args.clone();
        args.push(("span_id", ArgValue::U64(s.id.0)));
        if s.parent.is_some() {
            args.push(("parent_span", ArgValue::U64(s.parent.0)));
        }
        json_args(&args, &mut out);
        out.push('}');
    }
    for e in &rec.events {
        push_sep(&mut out, &mut first);
        let lane = e
            .parent
            .0
            .checked_sub(1)
            .and_then(|p| lanes.get(p as usize))
            .copied()
            .unwrap_or(0);
        let ts_us = e.t_ns as f64 / 1000.0;
        let _ = write!(
            out,
            "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{lane},\"ts\":{ts_us},\"cat\":\"{}\",\"name\":",
            e.cat.label()
        );
        json_escape(e.name, &mut out);
        if !e.args.is_empty() {
            out.push_str(",\"args\":");
            json_args(&e.args, &mut out);
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

/// Plain-text span tree with durations — the quick human-readable view
/// (`detour trace` prints this).
pub fn span_tree_text(rec: &Recording) -> String {
    let mut out = String::new();
    let mut roots: Vec<&crate::telemetry::SpanRecord> =
        rec.spans.iter().filter(|s| !s.parent.is_some()).collect();
    roots.sort_by_key(|s| (s.start_ns, s.begin_seq));
    for root in roots {
        tree_walk(rec, root.id, 0, &mut out);
    }
    out
}

fn tree_walk(rec: &Recording, id: SpanId, depth: usize, out: &mut String) {
    let Some(s) = rec.span(id) else {
        return;
    };
    let indent = "  ".repeat(depth);
    let dur_ms = s.duration_ns() as f64 / 1e6;
    let start_ms = s.start_ns as f64 / 1e6;
    let _ = writeln!(
        out,
        "{indent}{} [{}] +{start_ms:.1} ms, {dur_ms:.1} ms",
        s.name,
        s.cat.label()
    );
    let mut children = rec.children(id);
    children.sort_by_key(|c| (c.start_ns, c.begin_seq));
    for c in children {
        tree_walk(rec, c.id, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{Category, SpanId, Telemetry};

    fn sample_recording() -> Recording {
        let mut tele = Telemetry::enabled();
        let session =
            tele.span_begin_with(0, Category::Session, "upload-session", SpanId::NONE, |a| {
                a.set("bytes", 1000u64).set("provider", "GoogleDrive");
            });
        let chunk = tele.span_begin(1_000_000, Category::Chunk, "part", session);
        let rpc = tele.span_begin(1_100_000, Category::Rpc, "rpc.part", chunk);
        let flow = tele.span_begin(1_200_000, Category::Flow, "flow", rpc);
        tele.event(1_500_000, Category::Chunk, "chunk.retry", chunk, |a| {
            a.set("attempt", 1u64).set("note", "5xx \"transient\"");
        });
        tele.span_end(2_000_000, flow);
        tele.span_end(2_100_000, rpc);
        tele.span_end(2_200_000, chunk);
        // A second chunk overlapping nothing, reusing the freed lane space.
        let chunk2 = tele.span_begin(2_300_000, Category::Chunk, "part", session);
        tele.span_end(2_400_000, chunk2);
        tele.span_end(3_000_000, session);
        tele.take().unwrap()
    }

    #[test]
    fn jsonl_is_deterministic_and_ordered() {
        let a = jsonl_log(&sample_recording());
        let b = jsonl_log(&sample_recording());
        assert_eq!(a, b);
        let lines: Vec<&str> = a.lines().collect();
        assert!(lines[0].contains("\"type\":\"span_begin\""));
        assert!(lines[0].contains("\"name\":\"upload-session\""));
        // Timestamps never decrease down the file.
        let mut last_t = 0u64;
        for line in &lines {
            let t = line
                .split("\"t_ns\":")
                .nth(1)
                .and_then(|rest| rest.split([',', '}']).next())
                .and_then(|v| v.parse::<u64>().ok())
                .expect("every line carries t_ns");
            assert!(t >= last_t, "out of order: {line}");
            last_t = t;
        }
        // Escaped quotes survive.
        assert!(a.contains("5xx \\\"transient\\\""));
    }

    #[test]
    fn chrome_trace_nests_the_pipeline_on_one_lane() {
        let rec = sample_recording();
        let lanes = assign_lanes(&rec);
        // session, chunk, rpc, flow all stack on lane 0.
        assert_eq!(&lanes[..4], &[0, 0, 0, 0]);
        // chunk2 begins after chunk1 ended: nests under the session again.
        assert_eq!(lanes[4], 0);
        let json = chrome_trace_json(&rec);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"parent_span\":1"));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), rec.spans.len());
    }

    #[test]
    fn overlapping_siblings_get_distinct_lanes() {
        let mut tele = Telemetry::enabled();
        let root = tele.span_begin(0, Category::Session, "s", SpanId::NONE);
        let a = tele.span_begin(10, Category::Chunk, "a", root);
        let b = tele.span_begin(20, Category::Chunk, "b", root);
        tele.span_end(30, a);
        tele.span_end(40, b);
        tele.span_end(50, root);
        let rec = tele.take().unwrap();
        let lanes = assign_lanes(&rec);
        // First child stacks on the root's lane; the overlapping sibling
        // must move to its own lane.
        assert_eq!(lanes[0], 0);
        assert_eq!(lanes[1], 0);
        assert_ne!(lanes[2], 0);
    }

    #[test]
    fn span_tree_renders_hierarchy() {
        let text = span_tree_text(&sample_recording());
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("upload-session [session]"));
        assert!(lines[1].starts_with("  part [chunk]"));
        assert!(lines[2].starts_with("    rpc.part [rpc]"));
        assert!(lines[3].starts_with("      flow [flow]"));
    }
}
