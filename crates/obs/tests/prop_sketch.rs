//! Property tests for the aggregation plane: sketch merge is a
//! commutative monoid bit-identical to single-stream ingestion, and
//! window flushing is a pure function of its input sequence.

use obs::window::{WindowSet, WindowValue};
use obs::QuantileSketch;
use proptest::prelude::*;

fn ingest(values: &[u64]) -> QuantileSketch {
    let mut s = QuantileSketch::new();
    for &v in values {
        s.record(v);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any partitioning of a stream into shards, merged in any rotation,
    /// equals ingesting the whole stream into one sketch — including
    /// every bucket count, min/max, and exact sum (full `Eq`).
    #[test]
    fn merge_equals_single_stream_for_any_partition(
        values in prop::collection::vec(0u64..u64::MAX, 0..400),
        chunk in 1usize..97,
        rotate in 0usize..8,
    ) {
        let single = ingest(&values);
        let shards: Vec<QuantileSketch> =
            values.chunks(chunk).map(ingest).collect();
        let mut merged = QuantileSketch::new();
        let n = shards.len().max(1);
        for i in 0..shards.len() {
            merged.merge(&shards[(i + rotate) % n]);
        }
        prop_assert_eq!(&merged, &single);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q), single.quantile(q));
        }
    }

    /// `merge_all` over any permutation of per-shard sketches equals the
    /// single-stream sketch — the completion-order-independence guarantee
    /// the sharded executor's telemetry reduction leans on.
    #[test]
    fn merge_all_is_permutation_invariant(
        values in prop::collection::vec(0u64..u64::MAX, 0..300),
        chunk in 1usize..61,
        swap in (0usize..16, 0usize..16),
    ) {
        let single = ingest(&values);
        let mut shards: Vec<QuantileSketch> =
            values.chunks(chunk).map(ingest).collect();
        let in_order = QuantileSketch::merge_all(shards.iter());
        prop_assert_eq!(&in_order, &single);
        // Permute "completion order" and merge again: identical bytes.
        if shards.len() >= 2 {
            let (i, j) = (swap.0 % shards.len(), swap.1 % shards.len());
            shards.swap(i, j);
            shards.reverse();
        }
        let permuted = QuantileSketch::merge_all(shards.iter());
        prop_assert_eq!(&permuted, &single);
    }

    /// Merge is associative and commutative under full structural
    /// equality: (a ∪ b) ∪ c == a ∪ (b ∪ c) and a ∪ b == b ∪ a.
    #[test]
    fn merge_is_associative_and_commutative(
        a in prop::collection::vec(0u64..1 << 48, 0..120),
        b in prop::collection::vec(0u64..1 << 48, 0..120),
        c in prop::collection::vec(0u64..1 << 48, 0..120),
    ) {
        let (sa, sb, sc) = (ingest(&a), ingest(&b), ingest(&c));

        let mut ab_c = sa.clone();
        ab_c.merge(&sb);
        ab_c.merge(&sc);

        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut a_bc = sa.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);
    }

    /// Quantile estimates stay within the advertised relative error
    /// bound (1/128 above 64, exact below) against the true order
    /// statistic of the ingested stream.
    #[test]
    fn quantile_error_bound_holds(
        mut values in prop::collection::vec(1u64..1 << 40, 1..300),
        qi in 0usize..5,
    ) {
        let q = [0.01, 0.25, 0.5, 0.9, 0.99][qi];
        let s = ingest(&values);
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let exact = values[rank - 1];
        let est = s.quantile(q).unwrap();
        if exact < 64 {
            prop_assert_eq!(est, exact);
        } else {
            let err = (est as f64 - exact as f64).abs() / exact as f64;
            prop_assert!(err <= 1.0 / 128.0 + 1e-12, "q={} est={} exact={}", q, est, exact);
        }
    }

    /// The same (time, series, value, watermark) input sequence always
    /// yields the same flush sequence, and every record lands in the
    /// window containing its timestamp.
    #[test]
    fn window_flushes_are_deterministic(
        ops in prop::collection::vec(
            (0u64..4_000, 0usize..3, 1u64..1_000, any::<bool>()),
            1..120,
        ),
        width in 100u64..1_500,
    ) {
        const NAMES: [&str; 3] = ["w.alpha", "w.beta", "w.gamma"];
        let run = || {
            let mut ws = WindowSet::new(width);
            let mut clock = 0u64;
            for &(dt, series, value, watermark) in &ops {
                clock += dt; // sim time is monotone
                if series == 0 {
                    ws.count(clock, NAMES[0], value);
                } else {
                    ws.record(clock, NAMES[series], value);
                }
                if watermark {
                    ws.advance_watermark(clock);
                }
            }
            ws.flush_all();
            ws.take_flushes()
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(&a, &b);
        for f in &a {
            prop_assert_eq!(f.end_ns - f.start_ns, width);
            prop_assert_eq!(f.start_ns % width, 0);
            match &f.value {
                WindowValue::Count(c) => prop_assert!(*c > 0),
                WindowValue::Sketch(s) => prop_assert!(!s.is_empty()),
            }
        }
    }
}
