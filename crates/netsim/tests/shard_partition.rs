//! Property tests for the component partitioner behind the sharded
//! executor: the incremental [`ComponentTracker`] must agree with the
//! from-scratch BFS reference on every reachable state, merge/split events
//! must rebalance the partition correctly, and the union of the shard flow
//! sets must be exactly the live-flow set under random churn — both for the
//! tracker and for [`FlowCore::components`], the allocator-side census.

use netsim::flow::FlowCore;
use netsim::shard::{reference_components, ComponentTracker};
use proptest::prelude::*;

/// One step of random churn over the coupling graph.
#[derive(Debug, Clone)]
enum Op {
    /// Insert a fresh flow crossing the given resources (indices mod R).
    Insert(Vec<u32>),
    /// Remove the i-th oldest live flow (index mod live count).
    Remove(usize),
}

// The vendored proptest has no `prop_oneof`; a discriminant field picks
// the variant instead (same scheme as alloc_differential.rs).
fn op_strategy(resources: u32) -> impl Strategy<Value = Op> {
    (
        0u8..5,
        proptest::collection::vec(0..resources, 0..4),
        0usize..64,
    )
        .prop_map(|(which, rs, i)| {
            if which < 3 {
                Op::Insert(rs)
            } else {
                Op::Remove(i)
            }
        })
}

/// Drive the tracker and a plain model through the same op sequence;
/// returns the model (live flows with their resource lists) for reference
/// checks.
fn apply_ops(tracker: &mut ComponentTracker, resources: u32, ops: &[Op]) -> Vec<(u64, Vec<u32>)> {
    let mut live: Vec<(u64, Vec<u32>)> = Vec::new();
    let mut next_id = 0u64;
    for op in ops {
        match op {
            Op::Insert(rs) => {
                let mut rs: Vec<u32> = rs.iter().map(|r| r % resources).collect();
                rs.sort_unstable();
                rs.dedup();
                tracker.insert_flow(next_id, &rs);
                live.push((next_id, rs));
                next_id += 1;
            }
            Op::Remove(i) => {
                if !live.is_empty() {
                    let (id, _) = live.remove(i % live.len());
                    assert!(tracker.remove_flow(id));
                }
            }
        }
    }
    live
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The incremental partition equals the BFS reference after any churn
    /// sequence, and the union of the shard flow sets is exactly the
    /// live-flow set.
    #[test]
    fn tracker_matches_bfs_reference_under_churn(
        resources in 1u32..12,
        ops in proptest::collection::vec(op_strategy(12), 0..80),
    ) {
        let mut tracker = ComponentTracker::new(resources as usize);
        let live = apply_ops(&mut tracker, resources, &ops);

        let got = tracker.components();
        let expected = reference_components(resources as usize, &live);
        prop_assert_eq!(&got, &expected);

        // Union of the shard flow sets == live-flow set, no overlaps.
        let mut union: Vec<u64> = got.iter().flatten().copied().collect();
        union.sort_unstable();
        let mut want: Vec<u64> = live.iter().map(|(id, _)| *id).collect();
        want.sort_unstable();
        prop_assert_eq!(union, want);
        prop_assert_eq!(tracker.flow_count(), live.len());
    }

    /// Checking the partition after *every* op (not just at the end)
    /// exercises the lazy rebuild on each split and the union path on each
    /// merge.
    #[test]
    fn tracker_matches_reference_at_every_step(
        resources in 1u32..8,
        ops in proptest::collection::vec(op_strategy(8), 1..40),
    ) {
        let mut tracker = ComponentTracker::new(resources as usize);
        let mut live: Vec<(u64, Vec<u32>)> = Vec::new();
        let mut next_id = 0u64;
        for op in &ops {
            match op {
                Op::Insert(rs) => {
                    let mut rs: Vec<u32> = rs.iter().map(|r| r % resources).collect();
                    rs.sort_unstable();
                    rs.dedup();
                    tracker.insert_flow(next_id, &rs);
                    live.push((next_id, rs));
                    next_id += 1;
                }
                Op::Remove(i) => {
                    if !live.is_empty() {
                        let (id, _) = live.remove(i % live.len());
                        tracker.remove_flow(id);
                    }
                }
            }
            prop_assert_eq!(
                tracker.components(),
                reference_components(resources as usize, &live)
            );
        }
    }

    /// The allocator-side census agrees with the tracker fed the same
    /// insert/remove stream: [`FlowCore::components`] is the same partition
    /// in the same canonical order.
    #[test]
    fn flowcore_census_agrees_with_tracker(
        resources in 1u32..10,
        ops in proptest::collection::vec(op_strategy(10), 0..60),
    ) {
        let caps = vec![1e9; resources as usize];
        let mut core = FlowCore::new(caps);
        let mut tracker = ComponentTracker::new(resources as usize);
        let mut live: Vec<u64> = Vec::new();
        let mut next_id = 0u64;
        for op in &ops {
            match op {
                Op::Insert(rs) => {
                    let mut rs: Vec<u32> = rs.iter().map(|r| r % resources).collect();
                    rs.sort_unstable();
                    rs.dedup();
                    core.insert(next_id, next_id, &rs, f64::INFINITY, 1.0);
                    tracker.insert_flow(next_id, &rs);
                    live.push(next_id);
                    next_id += 1;
                }
                Op::Remove(i) => {
                    if !live.is_empty() {
                        let id = live.remove(i % live.len());
                        core.remove(id);
                        tracker.remove_flow(id);
                    }
                }
            }
        }
        prop_assert_eq!(core.components(), tracker.components());
        let census: usize = core.components().iter().map(Vec::len).sum();
        prop_assert_eq!(census, core.len(), "census covers every active flow");
    }
}

/// Deterministic merge/split walk: growing a chain merges components one
/// by one; removing the couplers splits them back, with the counters
/// recording each barrier-worthy event.
#[test]
fn merge_and_split_rebalance_a_chain() {
    let n = 6;
    let mut t = ComponentTracker::new(n);
    // One single-resource flow per resource: n singleton components.
    for r in 0..n as u32 {
        assert!(!t.insert_flow(r as u64, &[r]));
    }
    assert_eq!(t.component_count(), n);
    // Couple them pairwise into a chain; every coupler merges exactly once.
    for r in 0..(n - 1) as u32 {
        assert!(t.insert_flow(100 + r as u64, &[r, r + 1]));
        assert_eq!(t.component_count(), n - 1 - r as usize);
    }
    assert_eq!(t.merges(), (n - 1) as u64);
    // Remove the couplers in reverse; each removal splits one component off.
    for r in (0..(n - 1) as u32).rev() {
        assert!(t.remove_flow(100 + r as u64));
        assert_eq!(t.component_count(), n - r as usize);
    }
    assert_eq!(t.rebuilds(), (n - 1) as u64);
    assert_eq!(t.component_count(), n);
}
