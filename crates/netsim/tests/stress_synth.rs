//! Stress and conservation tests on generated WANs: many concurrent
//! transfers across random transit–stub topologies.

use netsim::engine::{Ctx, Event, Process, Sim, Value};
use netsim::flow::{FlowClass, FlowSpec};
use netsim::synth::SynthWan;
use netsim::time::SimTime;
use netsim::topology::NodeId;
use netsim::units::MB;
use proptest::prelude::*;

/// Starts `pairs` simultaneous transfers and finishes with the last
/// completion time.
struct ManyFlows {
    pairs: Vec<(NodeId, NodeId, u64)>,
    done: usize,
}

impl Process for ManyFlows {
    fn poll(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Started => {
                for &(src, dst, bytes) in &self.pairs {
                    ctx.start_flow(FlowSpec::new(src, dst, bytes, FlowClass::Commodity))
                        .expect("connected WAN");
                }
            }
            Event::FlowCompleted { .. } => {
                self.done += 1;
                if self.done == self.pairs.len() {
                    ctx.finish(Value::Time(ctx.now()));
                }
            }
            Event::FlowFailed { error, .. } => ctx.finish(Value::Error(error)),
            _ => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Byte conservation: everything started is delivered, regardless of
    /// topology shape or concurrency, and the engine's counters agree.
    #[test]
    fn conservation_under_load(
        seed in 0u64..1000,
        n_pairs in 2usize..24,
        mb in 1u64..8,
    ) {
        let world = SynthWan { seed, ..SynthWan::default() }.build();
        let mut rng_idx = seed as usize;
        let mut next = || {
            rng_idx = rng_idx.wrapping_mul(6364136223846793005).wrapping_add(1);
            (rng_idx >> 33) % world.hosts.len()
        };
        let pairs: Vec<(NodeId, NodeId, u64)> = (0..n_pairs)
            .map(|_| {
                let a = next();
                let mut b = next();
                if b == a {
                    b = (b + 1) % world.hosts.len();
                }
                (world.hosts[a], world.hosts[b], mb * MB)
            })
            .collect();
        let expected: u64 = pairs.iter().map(|p| p.2).sum();
        let mut sim = Sim::new(world.topo, seed);
        let v = sim.run_process(Box::new(ManyFlows { pairs, done: 0 })).unwrap();
        prop_assert!(matches!(v, Value::Time(_)), "flows failed: {:?}", v);
        let stats = sim.stats();
        prop_assert_eq!(stats.bytes_delivered, expected);
        prop_assert_eq!(stats.flows_completed, n_pairs as u64);
    }

    /// Aggregate goodput never exceeds what the narrowest layer could
    /// carry: each flow is individually bounded by its access links.
    #[test]
    fn per_flow_rate_bounded_by_access(seed in 0u64..200, mb in 2u64..10) {
        let world = SynthWan { seed, access_mbps: (5.0, 20.0), ..SynthWan::default() }.build();
        let src = world.hosts[0];
        let dst = world.hosts[world.hosts.len() - 1];
        let mut sim = Sim::new(world.topo, seed);
        let report = sim
            .run_transfer(netsim::engine::TransferRequest::new(src, dst, mb * MB))
            .unwrap();
        let goodput_mbps = report.throughput().mbps();
        prop_assert!(goodput_mbps <= 20.0 + 1e-6, "goodput {} above max access", goodput_mbps);
        // Sanity: it moved at a nonzero rate.
        prop_assert!(goodput_mbps > 0.1, "goodput {} suspiciously low", goodput_mbps);
    }

    /// Large WANs with load still replay identically per seed.
    #[test]
    fn determinism_at_scale(seed in 0u64..100) {
        let run = || {
            let world = SynthWan { seed, hosts: 40, ..SynthWan::default() }.build();
            let pairs: Vec<(NodeId, NodeId, u64)> = (0..10)
                .map(|i| (world.hosts[i], world.hosts[39 - i], 2 * MB))
                .collect();
            let mut sim = Sim::new(world.topo, seed);
            match sim.run_process(Box::new(ManyFlows { pairs, done: 0 })).unwrap() {
                Value::Time(t) => t,
                other => panic!("{other:?}"),
            }
        };
        prop_assert_eq!(run(), run());
    }
}

#[test]
fn big_wan_many_flows_smoke() {
    let world = SynthWan {
        transit: 12,
        stubs: 48,
        hosts: 120,
        seed: 5,
        ..SynthWan::default()
    }
    .build();
    let pairs: Vec<(NodeId, NodeId, u64)> = (0..60)
        .map(|i| (world.hosts[i], world.hosts[119 - i], 4 * MB))
        .collect();
    let mut sim = Sim::new(world.topo, 5);
    let v = sim
        .run_process(Box::new(ManyFlows { pairs, done: 0 }))
        .unwrap();
    let t = v.expect_time();
    assert!(t > SimTime::ZERO);
    assert_eq!(sim.stats().flows_completed, 60);
    // The allocator ran many times without blowing the event budget.
    assert!(
        sim.stats().events < 100_000,
        "event blowup: {:?}",
        sim.stats()
    );
}
