//! Differential property tests for the incremental allocator.
//!
//! Random sequences of flow arrivals/departures and capacity changes are
//! applied to [`FlowCore`] (incremental, component-scoped recompute) while
//! an independent reference allocation — a fresh [`max_min_allocate`] over
//! the full surviving state — is recomputed after every operation. The two
//! must agree within 1e-9 relative; a Reference-mode [`FlowCore`] driven by
//! the same operations must agree *bitwise* (the engine's digest parity
//! between allocator modes rests on this).
//!
//! Also here: the single-pass capped-flow freeze is property-tested against
//! a copy of the previous one-at-a-time (argmin per round) algorithm, and
//! the degenerate empty-resource branch is pinned to [`MAX_FLOW_RATE`].

use netsim::flow::{max_min_allocate, AllocEntry, AllocMode, FlowCore, MAX_FLOW_RATE};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum OpSpec {
    Insert {
        resources: Vec<u32>,
        cap: f64,
        weight: f64,
    },
    Remove {
        pick: usize,
    },
    SetCap {
        resource: u32,
        capacity: f64,
    },
}

/// Strategy: resource capacities plus a random operation sequence.
fn op_sequence() -> impl Strategy<Value = (Vec<f64>, Vec<OpSpec>)> {
    let caps = prop::collection::vec(1.0f64..1000.0, 1..8);
    caps.prop_flat_map(|caps| {
        let n = caps.len();
        // The vendored proptest has no `prop_oneof`; a discriminant field
        // picks the variant (4:2:1 insert/remove/set-capacity).
        let op = (
            0u8..7,
            (
                // Empty resource sets allowed: exercises the degenerate branch.
                prop::collection::btree_set(0..n as u32, 0..=n),
                prop::option::of(0.5f64..500.0),
                0.1f64..8.0,
            ),
            (0usize..16, 0..n as u32, 1.0f64..1000.0),
        )
            .prop_map(
                |(kind, (resources, cap, weight), (pick, resource, capacity))| match kind {
                    0..=3 => OpSpec::Insert {
                        resources: resources.into_iter().collect(),
                        cap: cap.unwrap_or(f64::INFINITY),
                        weight,
                    },
                    4..=5 => OpSpec::Remove { pick },
                    _ => OpSpec::SetCap { resource, capacity },
                },
            );
        (Just(caps), prop::collection::vec(op, 1..40))
    })
}

proptest! {
    /// After every operation the incremental allocator matches a fresh
    /// full-recompute reference within 1e-9 relative, and a Reference-mode
    /// FlowCore driven identically matches bitwise.
    #[test]
    fn incremental_matches_reference((caps, ops) in op_sequence()) {
        let mut inc = FlowCore::new(caps.clone());
        let mut refc = FlowCore::new(caps.clone());
        refc.set_mode(AllocMode::Reference);
        let mut capacities = caps.clone();
        let mut entries: HashMap<u64, AllocEntry> = HashMap::new();
        let mut live: Vec<u64> = Vec::new();
        let mut next_id = 1u64;
        for op in &ops {
            match op {
                OpSpec::Insert { resources, cap, weight } => {
                    let id = next_id;
                    next_id += 1;
                    inc.insert(id, id, resources, *cap, *weight);
                    refc.insert(id, id, resources, *cap, *weight);
                    entries.insert(id, AllocEntry {
                        resources: resources.clone(),
                        cap: *cap,
                        weight: *weight,
                    });
                    live.push(id);
                }
                OpSpec::Remove { pick } => {
                    if live.is_empty() {
                        continue;
                    }
                    let id = live.remove(pick % live.len());
                    prop_assert!(inc.remove(id));
                    prop_assert!(refc.remove(id));
                    entries.remove(&id);
                }
                OpSpec::SetCap { resource, capacity } => {
                    inc.set_capacity(*resource, *capacity);
                    refc.set_capacity(*resource, *capacity);
                    capacities[*resource as usize] = *capacity;
                }
            }
            // Independent reference: full recompute over the live set.
            let flows: Vec<AllocEntry> =
                live.iter().map(|id| entries[id].clone()).collect();
            let want = max_min_allocate(&capacities, &flows);
            for (id, want) in live.iter().zip(&want) {
                let got = inc.rate(*id).expect("live flow has a rate");
                prop_assert!(
                    (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                    "flow {} diverged: incremental {} vs reference {}",
                    id, got, want
                );
                // Mode parity is stronger: bit-identical.
                let got_ref = refc.rate(*id).expect("live flow has a rate");
                prop_assert!(
                    got.to_bits() == got_ref.to_bits(),
                    "flow {} mode divergence: incremental {} vs reference-mode {}",
                    id, got, got_ref
                );
            }
            // Change lists must agree too (the engine schedules completion
            // events from them).
            prop_assert_eq!(inc.changes().len(), refc.changes().len());
            for (a, b) in inc.changes().iter().zip(refc.changes()) {
                prop_assert_eq!(a.id, b.id);
                prop_assert_eq!(a.token, b.token);
                prop_assert!(a.rate.to_bits() == b.rate.to_bits());
            }
        }
    }

    /// The single-pass capped-flow freeze produces the same allocation as
    /// the previous one-at-a-time (argmin per round) algorithm.
    #[test]
    fn single_pass_capped_freeze_unchanged((caps, flows) in legacy_problem()) {
        let new = max_min_allocate(&caps, &flows);
        let old = max_min_allocate_one_at_a_time(&caps, &flows);
        for (j, (a, b)) in new.iter().zip(&old).enumerate() {
            prop_assert!(
                (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                "flow {} changed: single-pass {} vs one-at-a-time {}",
                j, a, b
            );
        }
    }
}

/// Strategy matching prop_invariants' allocation problems (non-empty
/// resource sets, frequent finite caps — the TCP-capped common case).
fn legacy_problem() -> impl Strategy<Value = (Vec<f64>, Vec<AllocEntry>)> {
    let caps = prop::collection::vec(1.0f64..1000.0, 1..8);
    caps.prop_flat_map(|caps| {
        let n = caps.len();
        let flow = (
            prop::collection::btree_set(0..n as u32, 1..=n),
            prop::option::of(0.5f64..500.0),
            0.1f64..8.0,
        )
            .prop_map(|(resources, cap, weight)| AllocEntry {
                resources: resources.into_iter().collect(),
                cap: cap.unwrap_or(f64::INFINITY),
                weight,
            });
        (Just(caps), prop::collection::vec(flow, 1..16))
    })
}

/// The pre-single-pass allocator, kept verbatim as the equivalence oracle:
/// each round freezes at most *one* capped flow (the argmin of cap/weight).
fn max_min_allocate_one_at_a_time(capacities: &[f64], flows: &[AllocEntry]) -> Vec<f64> {
    let nf = flows.len();
    let mut rates = vec![0.0_f64; nf];
    if nf == 0 {
        return rates;
    }
    let mut frozen = vec![false; nf];
    let mut remaining: Vec<f64> = capacities.to_vec();
    let mut load = vec![0.0_f64; capacities.len()];
    for f in flows {
        for &r in &f.resources {
            load[r as usize] += f.weight;
        }
    }
    let freeze = |j: usize,
                  rate: f64,
                  rates: &mut [f64],
                  frozen: &mut [bool],
                  remaining: &mut [f64],
                  load: &mut [f64]| {
        rates[j] = rate;
        frozen[j] = true;
        for &r in &flows[j].resources {
            remaining[r as usize] -= rate;
            load[r as usize] -= flows[j].weight;
        }
    };
    let mut unfrozen = nf;
    while unfrozen > 0 {
        let mut unit_share = f64::INFINITY;
        for (r, &rem) in remaining.iter().enumerate() {
            if load[r] > 1e-12 {
                unit_share = unit_share.min(rem.max(0.0) / load[r]);
            }
        }
        let mut capped: Option<usize> = None;
        let mut min_unit_cap = unit_share;
        for (j, f) in flows.iter().enumerate() {
            if !frozen[j] && f.cap / f.weight < min_unit_cap {
                min_unit_cap = f.cap / f.weight;
                capped = Some(j);
            }
        }
        if let Some(j) = capped {
            freeze(
                j,
                flows[j].cap,
                &mut rates,
                &mut frozen,
                &mut remaining,
                &mut load,
            );
            unfrozen -= 1;
            continue;
        }
        if !unit_share.is_finite() {
            for j in 0..nf {
                if !frozen[j] {
                    rates[j] = flows[j].cap.min(MAX_FLOW_RATE);
                    frozen[j] = true;
                }
            }
            break;
        }
        let mut froze_any = false;
        for r in 0..remaining.len() {
            if load[r] <= 1e-12 {
                continue;
            }
            let share = remaining[r].max(0.0) / load[r];
            if share <= unit_share * (1.0 + 1e-12) {
                let on_r: Vec<usize> = flows
                    .iter()
                    .enumerate()
                    .filter(|(j, f)| !frozen[*j] && f.resources.contains(&(r as u32)))
                    .map(|(j, _)| j)
                    .collect();
                for j in on_r {
                    if !frozen[j] {
                        let rate = unit_share * flows[j].weight;
                        freeze(j, rate, &mut rates, &mut frozen, &mut remaining, &mut load);
                        unfrozen -= 1;
                        froze_any = true;
                    }
                }
            }
        }
        if !froze_any {
            break;
        }
    }
    rates
}

/// Regression (satellite fix): an *uncapped* flow crossing no loaded
/// resource used to be allocated `f64::INFINITY`; it must now clamp to the
/// finite engine ceiling. A capped empty-resource flow still gets its cap.
#[test]
fn empty_resource_flow_rate_is_finite() {
    let flows = [
        AllocEntry::new(vec![], f64::INFINITY),
        AllocEntry::new(vec![], 42.0),
    ];
    let rates = max_min_allocate(&[], &flows);
    assert_eq!(rates[0], MAX_FLOW_RATE);
    assert!(rates[0].is_finite());
    assert_eq!(rates[1], 42.0);

    let mut core = FlowCore::new(vec![]);
    core.insert(1, 1, &[], f64::INFINITY, 1.0);
    core.insert(2, 2, &[], 7.5, 1.0);
    assert_eq!(core.rate(1), Some(MAX_FLOW_RATE));
    assert_eq!(core.rate(2), Some(7.5));
}

/// Many TCP-capped flows on one link: the case the single-pass freeze
/// de-quadratizes. All are cap-bound; capacity is amply sufficient.
#[test]
fn many_capped_flows_single_link() {
    let flows: Vec<AllocEntry> = (0..100)
        .map(|i| AllocEntry::new(vec![0], 1.0 + i as f64 * 0.01))
        .collect();
    let rates = max_min_allocate(&[1000.0], &flows);
    for (f, r) in flows.iter().zip(&rates) {
        assert!(
            (r - f.cap).abs() < 1e-9,
            "capped flow got {r}, cap {}",
            f.cap
        );
    }
}
