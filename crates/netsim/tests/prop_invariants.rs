//! Property-based tests for the simulator's core invariants.

use netsim::flow::{max_min_allocate, AllocEntry};
use netsim::prelude::*;
use proptest::prelude::*;

const EPS: f64 = 1e-6;

/// Strategy: a random allocation problem with up to 8 resources and 12 flows.
fn alloc_problem() -> impl Strategy<Value = (Vec<f64>, Vec<AllocEntry>)> {
    let caps = prop::collection::vec(1.0f64..1000.0, 1..8);
    caps.prop_flat_map(|caps| {
        let n = caps.len();
        let flow = (
            prop::collection::btree_set(0..n as u32, 1..=n),
            prop::option::of(0.5f64..500.0),
            0.1f64..8.0,
        )
            .prop_map(|(resources, cap, weight)| AllocEntry {
                resources: resources.into_iter().collect(),
                cap: cap.unwrap_or(f64::INFINITY),
                weight,
            });
        (Just(caps), prop::collection::vec(flow, 1..12))
    })
}

proptest! {
    /// No resource is ever oversubscribed and no flow exceeds its cap.
    #[test]
    fn allocator_feasibility((caps, flows) in alloc_problem()) {
        let rates = max_min_allocate(&caps, &flows);
        prop_assert_eq!(rates.len(), flows.len());
        for (r, &cap) in caps.iter().enumerate() {
            let used: f64 = flows
                .iter()
                .zip(&rates)
                .filter(|(f, _)| f.resources.contains(&(r as u32)))
                .map(|(_, &rate)| rate)
                .sum();
            prop_assert!(used <= cap + EPS, "resource {} oversubscribed: {} > {}", r, used, cap);
        }
        for (f, &rate) in flows.iter().zip(&rates) {
            prop_assert!(rate <= f.cap + EPS);
            prop_assert!(rate >= 0.0);
            prop_assert!(rate.is_finite());
        }
    }

    /// Every flow is *bottlenecked*: it either runs at its own cap, or it
    /// crosses at least one saturated resource. (This is the defining
    /// property of max-min fairness together with feasibility.)
    #[test]
    fn allocator_bottleneck_property((caps, flows) in alloc_problem()) {
        let rates = max_min_allocate(&caps, &flows);
        let used: Vec<f64> = (0..caps.len())
            .map(|r| {
                flows
                    .iter()
                    .zip(&rates)
                    .filter(|(f, _)| f.resources.contains(&(r as u32)))
                    .map(|(_, &rate)| rate)
                    .sum()
            })
            .collect();
        for (f, &rate) in flows.iter().zip(&rates) {
            let at_cap = rate >= f.cap - EPS;
            let crosses_saturated = f
                .resources
                .iter()
                .any(|&r| used[r as usize] >= caps[r as usize] - 1e-3);
            prop_assert!(
                at_cap || crosses_saturated,
                "flow at {} is neither capped ({}) nor bottlenecked",
                rate,
                f.cap
            );
        }
    }

    /// Max-min dominance: raising one flow's rate by a meaningful amount
    /// must violate feasibility unless some other flow with an equal or
    /// smaller rate gives way. We verify the weaker, checkable form: the
    /// allocation is invariant under flow permutation (symmetry).
    #[test]
    fn allocator_permutation_symmetry((caps, flows) in alloc_problem()) {
        let rates = max_min_allocate(&caps, &flows);
        let mut reversed: Vec<AllocEntry> = flows.clone();
        reversed.reverse();
        let mut rr = max_min_allocate(&caps, &reversed);
        rr.reverse();
        for (a, b) in rates.iter().zip(&rr) {
            prop_assert!((a - b).abs() < 1e-6, "order-dependent allocation: {} vs {}", a, b);
        }
    }
}

/// Strategy: a random connected "string of pearls" topology.
fn string_topology(n_hosts: usize) -> (Topology, Vec<NodeId>) {
    let mut b = TopologyBuilder::new();
    let mut ids = Vec::new();
    for i in 0..n_hosts {
        let lat = 30.0 + (i as f64) * 2.0;
        ids.push(b.host(&format!("h{i}"), GeoPoint::new(lat, -100.0)));
    }
    for w in ids.windows(2) {
        b.duplex(
            w[0],
            w[1],
            LinkParams::new(Bandwidth::from_mbps(50.0), SimTime::from_millis(3)),
        );
    }
    (b.build(), ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Transfers over random sizes always complete, and larger transfers
    /// never finish faster than smaller ones on the same idle path.
    #[test]
    fn transfer_time_monotone_in_size(small in 1u64..=50, extra in 1u64..=50, hops in 2usize..6) {
        let (topo, ids) = string_topology(hops);
        let src = ids[0];
        let dst = *ids.last().unwrap();
        let t_small = Sim::new(topo.clone(), 1)
            .run_transfer(TransferRequest::new(src, dst, small * MB))
            .unwrap()
            .elapsed;
        let t_big = Sim::new(topo, 1)
            .run_transfer(TransferRequest::new(src, dst, (small + extra) * MB))
            .unwrap()
            .elapsed;
        prop_assert!(t_big > t_small, "size monotonicity violated: {} vs {}", t_small, t_big);
    }

    /// Simulated time for a transfer is at least the fluid lower bound
    /// (bytes / bottleneck) plus the one-way propagation delay.
    #[test]
    fn transfer_respects_physics(mb in 1u64..=80, hops in 2usize..6) {
        let (topo, ids) = string_topology(hops);
        let src = ids[0];
        let dst = *ids.last().unwrap();
        let one_way = SimTime::from_millis(3) * (hops as u64 - 1);
        let fluid = Bandwidth::from_mbps(50.0).time_for(mb * MB);
        let lower = fluid + one_way;
        let t = Sim::new(topo, 7)
            .run_transfer(TransferRequest::new(src, dst, mb * MB))
            .unwrap()
            .elapsed;
        prop_assert!(t >= lower, "faster than physics: {} < {}", t, lower);
        // And within 2x of the bound on an idle path (slow start, etc.).
        prop_assert!(t < lower * 2 + SimTime::from_secs(1), "unreasonably slow: {}", t);
    }

    /// Identical seeds give identical results; different seeds may differ
    /// but must still satisfy the physics bound (checked above).
    #[test]
    fn determinism(seed in 0u64..1000, mb in 1u64..=20) {
        let (topo, ids) = string_topology(3);
        let run = |s| {
            Sim::new(topo.clone(), s)
                .run_transfer(TransferRequest::new(ids[0], ids[2], mb * MB))
                .unwrap()
                .elapsed
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
