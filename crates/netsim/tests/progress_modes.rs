//! Lazy vs eager progress accounting must be observationally identical.
//!
//! [`ProgressMode::Lazy`] (the default) materializes flow progress only at
//! rate changes, drains, and audit reads; [`ProgressMode::Eager`] re-runs
//! the legacy per-event sweep as a shadow oracle and asserts it agrees.
//! Both modes must produce bit-identical engine-visible state: the same
//! drain event times, the same per-flow rate timelines, the same byte
//! ledgers, and the same final state digest. These properties drive random
//! WAN workloads — staggered starts, shared bottlenecks, mid-flight link
//! capacity changes — through both modes and compare everything bitwise.

use netsim::engine::{Ctx, Event, FlowId, Process, ProgressMode, Sim, Value};
use netsim::flow::{FlowClass, FlowSpec};
use netsim::synth::SynthWan;
use netsim::time::SimTime;
use netsim::topology::NodeId;
use netsim::units::{Bandwidth, MB};
use proptest::prelude::*;

/// Starts transfer `i` at `i * stagger`, so flows join and leave while
/// others are mid-flight (each boundary reallocates shared links).
struct StaggeredFlows {
    pairs: Vec<(NodeId, NodeId, u64)>,
    stagger: SimTime,
    started: usize,
    done: usize,
}

impl Process for StaggeredFlows {
    fn poll(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Started | Event::Timer { .. } => {
                let (src, dst, bytes) = self.pairs[self.started];
                ctx.start_flow(FlowSpec::new(src, dst, bytes, FlowClass::Commodity))
                    .expect("connected WAN");
                self.started += 1;
                if self.started < self.pairs.len() {
                    ctx.set_timer(self.stagger, 0);
                }
            }
            Event::FlowCompleted { .. } => {
                self.done += 1;
                if self.done == self.pairs.len() {
                    ctx.finish(Value::Time(ctx.now()));
                }
            }
            Event::FlowFailed { error, .. } => ctx.finish(Value::Error(error)),
            _ => {}
        }
    }
}

/// Everything observable about one execution, with floats as bit patterns
/// so comparison is exact rather than approximate.
#[derive(Debug, PartialEq, Eq)]
struct Observed {
    state_digest: u64,
    events: u64,
    flows_completed: u64,
    bytes_delivered: u64,
    reallocations: u64,
    finish: SimTime,
    /// Per-flow rate timelines: `(time_ns, rate_bits)` change points. The
    /// final `0.0` entry is the drain event; equal traces mean equal drain
    /// times, not merely equal totals.
    traces: Vec<Vec<(u64, u64)>>,
}

fn run_world(seed: u64, n_pairs: usize, mb: u64, mode: ProgressMode) -> Observed {
    let world = SynthWan {
        seed,
        ..SynthWan::default()
    }
    .build();
    let n_hosts = world.hosts.len();
    let pairs: Vec<(NodeId, NodeId, u64)> = (0..n_pairs)
        .map(|i| {
            let a = (seed as usize + i * 7) % n_hosts;
            let mut b = (seed as usize / 3 + i * 13) % n_hosts;
            if b == a {
                b = (b + 1) % n_hosts;
            }
            (world.hosts[a], world.hosts[b], mb * MB)
        })
        .collect();
    let n = pairs.len();

    let mut sim = Sim::new(world.topo, seed);
    sim.set_progress_mode(mode);
    sim.enable_flow_tracing();
    // Mid-flight bottleneck dynamics: shrink then restore a couple of
    // links while transfers are in progress, forcing rate changes that do
    // not coincide with flow boundaries.
    let n_links = sim.core().topology().links().len();
    for k in 0..n_links.min(4) {
        let at = SimTime::from_millis(150 + 40 * k as u64);
        let cap = Bandwidth::from_mbps(if k % 2 == 0 { 3.0 } else { 40.0 });
        sim.schedule_capacity_change(netsim::topology::LinkId(k as u32), at, cap);
    }
    let v = sim
        .run_process(Box::new(StaggeredFlows {
            pairs,
            stagger: SimTime::from_millis(25),
            started: 0,
            done: 0,
        }))
        .unwrap();
    let finish = match v {
        Value::Time(t) => t,
        other => panic!("transfers failed: {other:?}"),
    };

    let stats = sim.stats();
    // Flow ids are assigned in start order from 1, identically in both
    // runs; pull every started flow's recorded timeline.
    let traces = (1..=n as u64)
        .filter_map(|id| sim.flow_trace(FlowId(id)))
        .map(|t| {
            t.points
                .iter()
                .map(|&(at, rate)| (at.as_nanos(), rate.to_bits()))
                .collect()
        })
        .collect();
    Observed {
        state_digest: sim.state_digest(),
        events: stats.events,
        flows_completed: stats.flows_completed,
        bytes_delivered: stats.bytes_delivered,
        reallocations: stats.reallocations,
        finish,
        traces,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The eager shadow sweep asserts agreement internally (panicking on
    /// divergence); externally, both modes must be bit-identical.
    #[test]
    fn lazy_and_eager_executions_are_bit_identical(
        seed in 0u64..500,
        n_pairs in 2usize..16,
        mb in 1u64..6,
    ) {
        let lazy = run_world(seed, n_pairs, mb, ProgressMode::Lazy);
        let eager = run_world(seed, n_pairs, mb, ProgressMode::Eager);
        prop_assert_eq!(&lazy, &eager);
        // The workload must actually have exercised mid-flight rate
        // changes, or the comparison proves nothing.
        prop_assert!(lazy.reallocations > n_pairs as u64);
        prop_assert_eq!(lazy.flows_completed, n_pairs as u64);
    }
}

/// Deterministic spot check that the traces really carry drain times: the
/// last change point of every completed flow is a zero rate.
#[test]
fn traces_end_with_drain_points_in_both_modes() {
    for mode in [ProgressMode::Lazy, ProgressMode::Eager] {
        let obs = run_world(11, 6, 2, mode);
        assert_eq!(obs.traces.len(), 6);
        for t in &obs.traces {
            let &(at, rate_bits) = t.last().expect("non-empty trace");
            assert_eq!(rate_bits, 0f64.to_bits(), "trace must end drained");
            assert!(at <= obs.finish.as_nanos());
        }
    }
}
