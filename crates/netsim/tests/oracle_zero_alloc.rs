//! Proves the route oracle's warm-query guarantee: once a source's
//! shortest-path tree is built, `path_into`/`links_into`/`cost`/`k_detours`
//! perform zero heap allocation (beyond caller buffers, which we pre-grow).
//!
//! Lives in its own test binary because the counting `#[global_allocator]`
//! is process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use netsim::oracle::RouteOracle;
use netsim::synth::SynthGlobe;
use netsim::topology::{LinkId, NodeId};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static A: Counting = Counting;

fn assert_warm_queries_allocate_nothing(globe: SynthGlobe, queries: usize) {
    let world = globe.build();
    let topo = &world.topo;
    let hosts = &world.hosts;
    let mut oracle = RouteOracle::new();

    // Deterministic query mix over a handful of sources so the tree cache
    // stays small but queries still fan out across the globe.
    let sources: Vec<NodeId> = hosts.iter().step_by(hosts.len() / 4 + 1).copied().collect();
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move |m: usize| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize % m
    };

    let mut path_buf: Vec<NodeId> = Vec::with_capacity(topo.nodes().len());
    let mut link_buf: Vec<LinkId> = Vec::with_capacity(topo.nodes().len());

    // Warm: build every tree this workload will touch (forward per source,
    // reverse per k_detours destination) and let scratch reach steady state.
    for &src in &sources {
        let dst = hosts[next(hosts.len())];
        oracle.path_into(topo, src, dst, &mut path_buf).unwrap();
        let _ = oracle.k_detours(topo, src, hosts[0], 2).unwrap();
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..queries {
        let src = sources[next(sources.len())];
        let dst = hosts[next(hosts.len())];
        oracle.path_into(topo, src, dst, &mut path_buf).unwrap();
        oracle.links_into(topo, src, dst, &mut link_buf).unwrap();
        assert!(oracle.cost(topo, src, dst).is_some());
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "warm route queries allocated {} times",
        after - before
    );
}

#[test]
fn warm_queries_are_allocation_free_on_the_default_globe() {
    assert_warm_queries_allocate_nothing(SynthGlobe::default(), 2_000);
}

/// The acceptance-scale run: 100k nodes / 1M host links. Ignored by
/// default (tree builds at this scale are slow in debug); run with
/// `cargo test --release -p netsim --test oracle_zero_alloc -- --ignored`.
#[test]
#[ignore = "100k-node globe; run under --release"]
fn warm_queries_are_allocation_free_at_stress_scale() {
    assert_warm_queries_allocate_nothing(SynthGlobe::stress(7), 10_000);
}
