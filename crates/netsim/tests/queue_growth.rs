//! Regression test: event-queue occupancy stays bounded under rate churn.
//!
//! Every reallocation supersedes the pending drain event of each flow whose
//! rate changed. Superseded (stale) entries cannot be removed from the
//! binary heap in place; without compaction they would accumulate until
//! their — now meaningless — pop times arrived. With many long-lived flows
//! sharing a bottleneck and a steady churn of short flows joining and
//! leaving, that is tens of thousands of stale entries for ~100 live flows.
//!
//! The engine counters this with per-flow pending-drain tracking plus heap
//! compaction once stale entries outnumber live ones. This test drives the
//! adversarial workload and asserts the high-water mark of the queue stays
//! within a small constant factor of the live flow count, rather than
//! growing with the total number of rate changes.

use netsim::engine::{Ctx, Event, Process, Sim, Value};
use netsim::flow::{FlowClass, FlowSpec};
use netsim::geo::GeoPoint;
use netsim::time::SimTime;
use netsim::topology::{LinkParams, NodeId, TopologyBuilder};
use netsim::units::{Bandwidth, GB, KB};

/// Long-lived flows pinned on the bottleneck for the whole run. Each churn
/// boundary perturbs every one of their rates.
const LONG_FLOWS: usize = 100;

/// Short flows run back-to-back; each one causes two reallocations (join
/// and leave), each superseding ~`LONG_FLOWS` pending drains.
const CHURN_FLOWS: u32 = 300;

/// Starts the long-lived flows, then runs the churn chain serially and
/// finishes when the last short flow delivers.
struct ChurnDriver {
    src: NodeId,
    dst: NodeId,
    remaining: u32,
}

impl ChurnDriver {
    fn kick(&mut self, ctx: &mut Ctx<'_>) {
        if self.remaining == 0 {
            ctx.finish(Value::Time(ctx.now()));
            return;
        }
        self.remaining -= 1;
        ctx.start_flow(FlowSpec::new(
            self.src,
            self.dst,
            256 * KB,
            FlowClass::Background,
        ))
        .expect("connected star");
    }
}

impl Process for ChurnDriver {
    fn poll(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Started => {
                // 10 GB at a ~1.2 Mbps fair share: these never finish
                // within the run, so their drain events are superseded —
                // never popped — on every churn boundary.
                for _ in 0..LONG_FLOWS {
                    ctx.start_flow(FlowSpec::new(
                        self.src,
                        self.dst,
                        10 * GB,
                        FlowClass::Commodity,
                    ))
                    .expect("connected star");
                }
                self.kick(ctx);
            }
            // Only churn flows can complete; long flows outlive the run.
            Event::FlowCompleted { .. } => self.kick(ctx),
            Event::FlowFailed { error, .. } => ctx.finish(Value::Error(error)),
            _ => {}
        }
    }
}

#[test]
fn queue_stays_bounded_under_high_churn() {
    let mut b = TopologyBuilder::new();
    let hub = b.router("hub", GeoPoint::new(45.0, -100.0));
    let a = b.host("a", GeoPoint::new(44.0, -101.0));
    let z = b.host("z", GeoPoint::new(46.0, -99.0));
    let params = LinkParams::new(Bandwidth::from_mbps(100.0), SimTime::from_millis(2));
    b.duplex(a, hub, params);
    b.duplex(z, hub, params);

    let mut sim = Sim::new(b.build(), 42);
    let v = sim
        .run_process(Box::new(ChurnDriver {
            src: a,
            dst: z,
            remaining: CHURN_FLOWS,
        }))
        .unwrap();
    assert!(matches!(v, Value::Time(_)), "churn chain failed: {v:?}");

    let stats = sim.stats();
    assert_eq!(stats.flows_completed, CHURN_FLOWS as u64);
    assert_eq!(
        sim.live_flows(),
        LONG_FLOWS,
        "the long-lived flows must still be in flight at the end"
    );

    // ~2 reallocations per churn flow, each superseding ~LONG_FLOWS drains:
    // ≈ 60k stale entries pushed over the run. An unbounded queue would
    // peak near that number; the compacted queue must stay within a small
    // constant factor of the ~(LONG_FLOWS + 1) live flows. The slack covers
    // live entries plus up to one uncompacted batch of stale ones.
    let bound = 6 * (LONG_FLOWS as u64 + 8);
    assert!(
        stats.peak_queue <= bound,
        "peak queue {} exceeds O(live flows) bound {} (churn boundaries: {})",
        stats.peak_queue,
        bound,
        stats.reallocations
    );
    assert!(
        stats.queue_compactions >= 10,
        "expected sustained compaction activity, got {}",
        stats.queue_compactions
    );
    // The final queue holds the live flows' drains plus bounded residue.
    assert!(
        sim.queue_len() as u64 <= bound,
        "final queue length {} exceeds bound {}",
        sim.queue_len(),
        bound
    );
    // Sanity: the workload really did exercise heavy reallocation churn.
    assert!(
        stats.reallocations >= 2 * CHURN_FLOWS as u64,
        "workload too tame: {} reallocations",
        stats.reallocations
    );
}
