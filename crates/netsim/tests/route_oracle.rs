//! Differential property tests for the precomputed route oracle: on
//! randomized WAN and globe topologies every oracle answer must be
//! bit-identical to the legacy per-query Dijkstra (`netsim::routing::dijkstra`),
//! overrides must layer the same way, and detour enumeration must be
//! deterministic, distinct, and loop-free.

use netsim::oracle::RouteOracle;
use netsim::routing::{dijkstra, RouteOverride};
use netsim::synth::{SynthGlobe, SynthWan};
use netsim::topology::{NodeId, Topology};
use proptest::prelude::*;

/// Cheap deterministic pair sampler over the node set.
fn pairs(topo: &Topology, seed: u64, count: usize) -> Vec<(NodeId, NodeId)> {
    let n = topo.nodes().len() as u64;
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % n
    };
    (0..count)
        .map(|_| (NodeId(next() as u32), NodeId(next() as u32)))
        .collect()
}

/// The core differential property: for every sampled pair the oracle and
/// the reference Dijkstra agree exactly — same path when one exists, and
/// a `NoRoute` error exactly when the reference finds none. Link
/// expansions must match the topology's own adjacency walk.
fn assert_backends_agree(topo: &Topology, seed: u64, samples: usize) {
    let mut oracle = RouteOracle::new();
    for (src, dst) in pairs(topo, seed, samples) {
        let reference = dijkstra(topo, src, dst);
        match oracle.path(topo, src, dst) {
            Ok(path) => {
                assert_eq!(Some(&path), reference.as_ref(), "{src}->{dst}");
                if src == dst {
                    assert_eq!(path, vec![src]);
                }
                let links = oracle.links(topo, src, dst).unwrap();
                assert_eq!(links, topo.links_on_path(&path).unwrap());
                let walked: u64 = links.iter().map(|&l| topo.link(l).cost as u64).sum();
                assert_eq!(oracle.cost(topo, src, dst), Some(walked));
            }
            Err(e) => {
                assert!(
                    reference.is_none(),
                    "{src}->{dst}: oracle errs {e} but reference routes"
                );
                assert_eq!(oracle.cost(topo, src, dst), None);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Oracle ≡ reference Dijkstra on randomized transit–stub WANs.
    #[test]
    fn wan_oracle_matches_reference(seed in 0u64..1000) {
        let world = SynthWan { seed, ..SynthWan::default() }.build();
        assert_backends_agree(&world.topo, seed, 64);
    }

    /// Oracle ≡ reference Dijkstra on randomized multi-cloud globes.
    #[test]
    fn globe_oracle_matches_reference(seed in 0u64..1000) {
        let world = SynthGlobe { seed, ..SynthGlobe::default() }.build();
        assert_backends_agree(&world.topo, seed, 64);
    }

    /// Overrides shadow exactly one pair and leave every other pair on the
    /// canonical tree path; the override itself is returned verbatim.
    #[test]
    fn overrides_layer_over_tree_paths(seed in 0u64..1000) {
        let world = SynthWan { seed, ..SynthWan::default() }.build();
        let topo = &world.topo;
        let mut oracle = RouteOracle::new();
        let src = world.hosts[0];
        let dst = world.hosts[world.hosts.len() / 2];
        assert_ne!(src, dst, "SynthWan always places at least two hosts");

        // An alternate (non-primary) valid route makes a realistic override;
        // fall back to the primary when the map offers no detour.
        let primary = oracle.path(topo, src, dst).unwrap();
        let alt = oracle
            .k_detours(topo, src, dst, 3)
            .unwrap()
            .into_iter()
            .map(|d| d.path)
            .find(|p| *p != primary)
            .unwrap_or_else(|| primary.clone());
        oracle.add_override(RouteOverride::new(src, dst, alt.clone()));

        assert_eq!(oracle.path(topo, src, dst).unwrap(), alt);
        // The reverse pair and unrelated pairs still ride the trees.
        assert_eq!(oracle.path(topo, dst, src).unwrap(), dijkstra(topo, dst, src).unwrap());
        for (a, b) in pairs(topo, seed ^ 0xabcd, 24) {
            if (a, b) == (src, dst) {
                continue;
            }
            assert_eq!(oracle.path(topo, a, b).ok(), dijkstra(topo, a, b), "{a}->{b}");
        }
    }

    /// Detour enumeration is deterministic, returns at most `k` pairwise
    /// distinct loop-free paths with nondecreasing costs, and never
    /// re-proposes the primary path.
    #[test]
    fn k_detours_are_distinct_loop_free_deterministic(
        seed in 0u64..1000,
        k in 1usize..6,
    ) {
        let world = SynthGlobe { seed, ..SynthGlobe::default() }.build();
        let topo = &world.topo;
        let mut oracle = RouteOracle::new();
        for (src, dst) in pairs(topo, seed ^ 0x5eed, 16) {
            if src == dst || dijkstra(topo, src, dst).is_none() {
                continue;
            }
            let primary = oracle.path(topo, src, dst).unwrap();
            let detours = oracle.k_detours(topo, src, dst, k).unwrap();
            assert!(detours.len() <= k);
            // Deterministic: a second enumeration is bit-identical.
            assert_eq!(detours, oracle.k_detours(topo, src, dst, k).unwrap());
            for (i, d) in detours.iter().enumerate() {
                assert_eq!(d.path.first(), Some(&src));
                assert_eq!(d.path.last(), Some(&dst));
                assert!(d.path.contains(&d.via));
                assert_ne!(d.path, primary);
                // Loop-free: no node repeats.
                let mut seen = std::collections::HashSet::new();
                assert!(d.path.iter().all(|x| seen.insert(*x)), "{:?}", d.path);
                // Valid walk whose links sum to the reported cost.
                let links = topo.links_on_path(&d.path).unwrap();
                let cost: u64 = links.iter().map(|&l| topo.link(l).cost as u64).sum();
                assert_eq!(cost, d.cost);
                for other in &detours[i + 1..] {
                    assert_ne!(d.path, other.path);
                }
            }
            assert!(detours.windows(2).all(|w| w[0].cost <= w[1].cost));
        }
    }
}

/// Two disconnected islands: both backends must report "no route" the
/// same way, in both directions, without poisoning later queries.
#[test]
fn disconnected_islands_err_identically() {
    use netsim::geo::GeoPoint;
    use netsim::time::SimTime;
    use netsim::topology::{LinkParams, TopologyBuilder};
    use netsim::units::Bandwidth;

    let p = LinkParams::new(Bandwidth::from_mbps(10.0), SimTime::from_millis(1)).with_cost(1);
    let mut b = TopologyBuilder::new();
    let a1 = b.host("a1", GeoPoint::new(0.0, 0.0));
    let a2 = b.host("a2", GeoPoint::new(0.0, 1.0));
    let b1 = b.host("b1", GeoPoint::new(10.0, 0.0));
    let b2 = b.host("b2", GeoPoint::new(10.0, 1.0));
    b.duplex(a1, a2, p);
    b.duplex(b1, b2, p);
    let topo = b.build();

    let mut oracle = RouteOracle::new();
    for (src, dst) in [(a1, b1), (b2, a2), (a2, b2)] {
        assert!(dijkstra(&topo, src, dst).is_none());
        assert!(matches!(
            oracle.path(&topo, src, dst),
            Err(netsim::error::NetError::NoRoute { .. })
        ));
        assert!(matches!(
            oracle.k_detours(&topo, src, dst, 3),
            Err(netsim::error::NetError::NoRoute { .. })
        ));
    }
    // Intra-island queries still work after the failures above.
    assert_eq!(oracle.path(&topo, a1, a2).unwrap(), vec![a1, a2]);
    assert_eq!(
        oracle.path(&topo, b1, b2).unwrap(),
        dijkstra(&topo, b1, b2).unwrap()
    );
}
