//! Sharded-executor determinism tests: worker completion order must never
//! leak into results, full engine cells must fold bit-identically at every
//! worker count (the seeded churn stress below is also the ThreadSanitizer
//! target in CI), and the claim/store/reduce protocol is exhaustively
//! model-checked across interleavings — a loom-style schedule enumeration
//! without the dependency.

use netsim::flow::{FlowCore, RateChange};
use netsim::prelude::*;
use netsim::shard::{fold_digests, merge_rate_changes, run_shards};

/// Build a tiny two-host world and run one transfer; returns the cell's
/// event count and final engine digest. Constructed entirely on the worker
/// thread — `Sim` is not `Send` and never crosses the boundary.
fn run_cell(seed: u64, bytes: u64, delay_ms: u64) -> (u64, u64) {
    let mut b = TopologyBuilder::new();
    let a = b.host("src", GeoPoint::new(49.0, -123.0));
    let z = b.host("dst", GeoPoint::new(37.0, -122.0));
    b.duplex(
        a,
        z,
        LinkParams::new(
            Bandwidth::from_mbps(50.0),
            SimTime::from_millis(5 + delay_ms),
        ),
    );
    let mut sim = Sim::new(b.build(), seed);
    sim.run_transfer(TransferRequest::new(a, z, bytes))
        .expect("transfer completes");
    (sim.stats().events, sim.state_digest())
}

#[test]
fn cell_results_are_independent_of_completion_order() {
    // Cells with wildly different sizes finish in different wall-clock
    // orders at different worker counts; the reduced digest must not care.
    let specs: Vec<(u64, u64, u64)> = (0..6u64)
        .map(|i| (1000 + i, (6 - i) * 2 * MB, i * 3))
        .collect();
    let run = |_, (seed, bytes, delay)| run_cell(seed, bytes, delay);
    let sequential = run_shards(specs.clone(), 1, run);
    for workers in [2, 3, 4, 8] {
        let parallel = run_shards(specs.clone(), workers, run);
        assert_eq!(sequential, parallel, "{workers} workers");
        let seq_digest = fold_digests(&sequential.iter().map(|r| r.1).collect::<Vec<_>>());
        let par_digest = fold_digests(&parallel.iter().map(|r| r.1).collect::<Vec<_>>());
        assert_eq!(seq_digest, par_digest, "{workers} workers");
    }
}

/// Satellite-fix regression: the cross-shard rate-change reduction must be
/// keyed by flow id, never by slab slot assignment (which depends on each
/// shard's private insert/remove history) or by worker completion order.
#[test]
fn rate_change_reduction_ignores_slot_assignment_and_completion_order() {
    // Two shards whose allocators hold the SAME flows but with different
    // slot assignments: shard B recycles slots through an insert/remove
    // shuffle, so its slot order disagrees with its id order.
    let build = |shuffle: bool| {
        let mut core = FlowCore::new(vec![10_000.0]);
        if shuffle {
            // Occupy and free slots so ids land on different slots.
            core.insert(900, 900, &[0], f64::INFINITY, 1.0);
            core.insert(901, 901, &[0], f64::INFINITY, 1.0);
            core.remove(900);
            core.remove(901);
        }
        for id in [14u64, 3, 9] {
            core.insert(id, id, &[0], f64::INFINITY, 1.0);
        }
        // A capacity change reallocates every flow in the component.
        core.set_capacity(0, 6_000.0);
        core.take_changes()
    };
    let plain = build(false);
    let shuffled = build(true);
    // Same flows, same new rates — only slot internals differ.
    assert_eq!(plain, shuffled, "FlowCore reports changes id-sorted");

    // Completion-order permutations of a multi-shard reduction all merge
    // to the same canonical list.
    let shard_a = plain;
    let shard_b: Vec<RateChange> = vec![
        RateChange {
            id: 1,
            token: 1,
            rate: 5.0,
        },
        RateChange {
            id: 20,
            token: 20,
            rate: 7.0,
        },
    ];
    let canonical = merge_rate_changes(&[shard_a.clone(), shard_b.clone()]);
    let permuted = merge_rate_changes(&[shard_b, shard_a]);
    assert_eq!(canonical, permuted);
    let ids: Vec<u64> = canonical.iter().map(|c| c.id).collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted, "reduction is id-sorted");
}

/// Seeded multi-thread churn stress — the ThreadSanitizer target. Every
/// round launches a fresh fleet of churn-heavy cells across 4 workers and
/// compares the folded digest against the sequential execution of the same
/// specs; any data race in the executor shows up under `-Zsanitizer=thread`
/// and any determinism leak shows up as a digest mismatch right here.
#[test]
fn seeded_multithread_churn_stress_is_bit_identical() {
    let churn_cell = |seed: u64, transfers: u64| -> u64 {
        let mut b = TopologyBuilder::new();
        let a = b.host("src", GeoPoint::new(49.0, -123.0));
        let z = b.host("dst", GeoPoint::new(37.0, -122.0));
        b.duplex(
            a,
            z,
            LinkParams::new(Bandwidth::from_mbps(100.0), SimTime::from_millis(4)),
        );
        let mut sim = Sim::new(b.build(), seed);
        // Serial churn: each short transfer inserts and drains a flow, so
        // the cell's slab and queue recycle constantly.
        for i in 0..transfers {
            sim.run_transfer(TransferRequest::new(a, z, 64 * KB + i * KB))
                .expect("churn transfer completes");
        }
        sim.state_digest()
    };
    for round in 0..4u64 {
        let specs: Vec<(u64, u64)> = (0..8u64).map(|i| (round * 100 + i, 12 + i)).collect();
        let run = |_, (seed, transfers)| churn_cell(seed, transfers);
        let seq = run_shards(specs.clone(), 1, run);
        let par = run_shards(specs.clone(), 4, run);
        assert_eq!(seq, par, "round {round}");
        assert_eq!(fold_digests(&seq), fold_digests(&par), "round {round} fold");
    }
}

// ---------------------------------------------------------------------------
// Model-checked barrier protocol.
//
// A deterministic model of `run_shards`' state machine — claim a shard
// index from the shared counter, run it, store the result in that index's
// slot, join, reduce in index order — exhaustively executed under EVERY
// interleaving of worker steps. This is the loom-style check the satellite
// asks for: instead of hoping the scheduler explores bad orders, we
// enumerate all of them and prove the protocol's result is
// schedule-independent.
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct ModelState {
    /// The shared claim counter (models the AtomicUsize).
    next: usize,
    /// Per-worker: the shard it has claimed but not yet stored.
    holding: Vec<Option<usize>>,
    /// Per-worker: true once the worker observed `next >= n` and exited.
    exited: Vec<bool>,
    /// Result slots (models the per-shard mutexed Option<R>).
    slots: Vec<Option<u64>>,
}

/// The per-shard "work": any pure function of the shard index.
fn model_work(i: usize) -> u64 {
    (i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Explore every interleaving of worker steps; at every terminal state
/// (all workers exited) verify the protocol invariants and record the
/// reduced fold.
fn explore(state: ModelState, n: usize, folds: &mut Vec<u64>, schedules: &mut usize) {
    let workers = state.holding.len();
    let mut progressed = false;
    for w in 0..workers {
        if state.exited[w] {
            continue;
        }
        progressed = true;
        let mut s = state.clone();
        match s.holding[w] {
            // Step A: the worker stores its result into its shard's slot.
            Some(shard) => {
                assert!(
                    s.slots[shard].is_none(),
                    "two workers stored into shard {shard}"
                );
                s.slots[shard] = Some(model_work(shard));
                s.holding[w] = None;
            }
            // Step B: the worker claims the next index (or exits).
            None => {
                let claimed = s.next;
                s.next += 1;
                if claimed >= n {
                    s.exited[w] = true;
                } else {
                    s.holding[w] = Some(claimed);
                }
            }
        }
        explore(s, n, folds, schedules);
    }
    if !progressed {
        // Terminal: the scope join has happened. Every shard must have run
        // exactly once, and the reduce reads slots in index order.
        *schedules += 1;
        let results: Vec<u64> = state
            .slots
            .iter()
            .map(|s| s.expect("every shard ran before the join"))
            .collect();
        folds.push(fold_digests(&results));
    }
}

#[test]
fn barrier_protocol_is_schedule_independent_under_exhaustive_interleaving() {
    for (n_shards, workers) in [(1usize, 2usize), (2, 2), (3, 2), (2, 3)] {
        let mut folds = Vec::new();
        let mut schedules = 0usize;
        explore(
            ModelState {
                next: 0,
                holding: vec![None; workers],
                exited: vec![false; workers],
                slots: vec![None; n_shards],
            },
            n_shards,
            &mut folds,
            &mut schedules,
        );
        assert!(
            schedules > 1 || (n_shards == 1 && workers == 1),
            "expected multiple interleavings for {n_shards} shards / {workers} workers"
        );
        let first = folds[0];
        assert!(
            folds.iter().all(|&f| f == first),
            "fold diverged across {} schedules for {n_shards} shards / {workers} workers",
            schedules
        );
        // And the model agrees with the real executor's reduction.
        let real = run_shards((0..n_shards).collect::<Vec<_>>(), workers, |_, i| {
            model_work(i)
        });
        assert_eq!(fold_digests(&real), first);
    }
}
