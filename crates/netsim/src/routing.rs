//! Policy routing.
//!
//! Paths are shortest paths over link *costs* (not delays or capacities), so
//! scenario authors can express peering policy: a research network can be
//! made preferable to a commodity path by giving it lower cost, and a
//! destination can be pushed through a specific exchange by cost shaping.
//!
//! On top of cost-based routing sit **route overrides**: explicit node paths
//! pinned for a (source host, destination host) pair. The paper's central
//! observation — UBC's PlanetLab traffic to Google reaches `vncv1rtr2` and is
//! then handed to the `pacificwave` link, while UAlberta's traffic crosses
//! the same router but takes a different egress — is exactly such an
//! idiosyncrasy: it is not explainable by shortest-path metrics, so the
//! scenario pins it explicitly, the same way the real network pinned it by
//! BGP policy invisible to the authors.

use crate::error::{NetError, NetResult};
use crate::oracle::{DetourPath, RouteOracle};
use crate::topology::{LinkId, NodeId, Topology};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// An explicit route pinned for a source/destination pair.
#[derive(Debug, Clone)]
pub struct RouteOverride {
    /// Originating host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Full node path, beginning with `src` and ending with `dst`.
    pub path: Vec<NodeId>,
}

impl RouteOverride {
    /// Build an override, validating the endpoints.
    pub fn new(src: NodeId, dst: NodeId, path: Vec<NodeId>) -> Self {
        assert_eq!(path.first(), Some(&src), "override path must start at src");
        assert_eq!(path.last(), Some(&dst), "override path must end at dst");
        RouteOverride { src, dst, path }
    }
}

/// Which backend answers shortest-path queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingMode {
    /// The precomputed [`RouteOracle`]: per-source shortest-path trees over
    /// the CSR topology, near-O(path length) per query. The default.
    #[default]
    Oracle,
    /// Per-query [`dijkstra`], kept as a bit-identical differential
    /// reference (the routing analogue of `AllocMode::Reference`). The
    /// simcheck plane re-runs scenarios in this mode and flags any digest
    /// divergence from the oracle.
    Reference,
}

/// Computes paths over a topology: a façade over the [`RouteOracle`] (the
/// default backend) and the per-query reference Dijkstra, with route
/// overrides shared by both.
#[derive(Debug, Clone, Default)]
pub struct RoutingTable {
    mode: RoutingMode,
    oracle: RouteOracle,
    /// Reference-mode per-pair memo. Like the oracle's trees this is query
    /// history, not state, and is excluded from the audit digest.
    ref_cache: HashMap<(NodeId, NodeId), Vec<NodeId>>,
}

impl RoutingTable {
    /// Empty table (pure shortest-path routing, oracle backend).
    pub fn new() -> Self {
        Self::default()
    }

    /// Select the backend. Both modes return bit-identical paths; the
    /// reference exists so differential checks can prove that.
    pub fn set_mode(&mut self, mode: RoutingMode) {
        self.mode = mode;
    }

    /// The active backend.
    pub fn mode(&self) -> RoutingMode {
        self.mode
    }

    /// Install an override; replaces any previous override for the pair.
    pub fn add_override(&mut self, ov: RouteOverride) {
        self.oracle.add_override(ov);
    }

    /// Number of installed overrides.
    pub fn override_count(&self) -> usize {
        self.oracle.override_count()
    }

    /// The path from `src` to `dst`: the installed override if present,
    /// otherwise the canonical minimum-cost path (ties broken
    /// deterministically by smaller predecessor id at settlement).
    pub fn path(&mut self, topo: &Topology, src: NodeId, dst: NodeId) -> NetResult<Vec<NodeId>> {
        match self.mode {
            RoutingMode::Oracle => self.oracle.path(topo, src, dst),
            RoutingMode::Reference => self.reference_path(topo, src, dst),
        }
    }

    /// Non-allocating variant of [`RoutingTable::path`] on the oracle
    /// backend; the reference backend simply clones into `out`.
    pub fn path_into(
        &mut self,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        out: &mut Vec<NodeId>,
    ) -> NetResult<()> {
        match self.mode {
            RoutingMode::Oracle => self.oracle.path_into(topo, src, dst, out),
            RoutingMode::Reference => {
                let p = self.reference_path(topo, src, dst)?;
                out.clear();
                out.extend_from_slice(&p);
                Ok(())
            }
        }
    }

    /// Resolve a path into its links.
    pub fn links(&mut self, topo: &Topology, src: NodeId, dst: NodeId) -> NetResult<Vec<LinkId>> {
        match self.mode {
            RoutingMode::Oracle => self.oracle.links(topo, src, dst),
            RoutingMode::Reference => {
                let p = self.reference_path(topo, src, dst)?;
                topo.links_on_path(&p)
            }
        }
    }

    /// Up to `k` distinct loop-free alternatives to the shortest path, in
    /// deterministic (cost, via id) order. Always answered by the oracle —
    /// detour enumeration needs its forward/reverse trees either way.
    pub fn k_detours(
        &mut self,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        k: usize,
    ) -> NetResult<Vec<DetourPath>> {
        self.oracle.k_detours(topo, src, dst, k)
    }

    /// Direct access to the oracle backend.
    pub fn oracle_mut(&mut self) -> &mut RouteOracle {
        &mut self.oracle
    }

    /// Drop cached trees and memoised paths (call after mutating costs in
    /// tests). Overrides are kept.
    pub fn clear_cache(&mut self) {
        self.oracle.clear_trees();
        self.ref_cache.clear();
    }

    /// Fold the canonical routing state — overrides only, in sorted order —
    /// into an audit digest. Query caches (oracle trees, the reference
    /// memo) are deliberately excluded: they record which pairs happened to
    /// be looked up, not what the simulation state is, and folding them
    /// made two state-identical sims digest differently after a diagnostic
    /// path query. The backend mode is likewise excluded so oracle and
    /// reference executions can be compared digest-for-digest.
    pub fn digest_into(&self, d: &mut crate::audit::Digest) {
        self.oracle.digest_into(d);
    }

    fn reference_path(
        &mut self,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
    ) -> NetResult<Vec<NodeId>> {
        if !topo.contains(src) {
            return Err(NetError::UnknownNode(src));
        }
        if !topo.contains(dst) {
            return Err(NetError::UnknownNode(dst));
        }
        if src == dst {
            return Ok(vec![src]);
        }
        if let Some(p) = self.oracle.override_for(src, dst) {
            // Validate lazily so a bad override fails loudly at use.
            topo.links_on_path(p)?;
            return Ok(p.to_vec());
        }
        if let Some(p) = self.ref_cache.get(&(src, dst)) {
            return Ok(p.clone());
        }
        let p = dijkstra(topo, src, dst).ok_or(NetError::NoRoute { src, dst })?;
        self.ref_cache.insert((src, dst), p.clone());
        Ok(p)
    }
}

/// Deterministic single-pair Dijkstra over link costs, kept as the
/// differential reference for the [`RouteOracle`].
///
/// Canonical tie-break, shared bit-for-bit with the oracle's tree builds:
/// nodes settle in `(dist, node id)` heap order, and a node's predecessor is
/// the smallest-id node that settled before it and achieves its final
/// distance. Two historical bugs are worth remembering here:
///
/// * the loop used to `break` as soon as `dst` was *popped*, skipping
///   equal-cost relaxations into `dst` from nodes still in the heap, so the
///   documented smaller-predecessor rule was not fully honoured;
/// * the tie-break update was unguarded and could rewrite `prev[v]` after
///   `v` had settled, which made answers depend on query order and — with
///   zero-cost edges — could knot the predecessor chain into a cycle.
///
/// The settled-node guard fixes both: predecessors freeze at settlement,
/// and the full sweep keeps this function's answers identical to a path
/// read out of the oracle's shortest-path tree.
pub fn dijkstra(topo: &Topology, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
    let n = topo.nodes().len();
    let mut dist = vec![u64::MAX; n];
    let mut prev: Vec<Option<NodeId>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    dist[src.0 as usize] = 0;
    heap.push(Reverse((0, src.0)));

    while let Some(Reverse((d, u))) = heap.pop() {
        if settled[u as usize] {
            continue;
        }
        settled[u as usize] = true;
        for &lid in topo.outgoing(NodeId(u)) {
            let link = topo.link(lid);
            let v = link.to.0 as usize;
            let nd = d + link.cost as u64;
            if nd < dist[v] {
                dist[v] = nd;
                prev[v] = Some(NodeId(u));
                heap.push(Reverse((nd, v as u32)));
            } else if nd == dist[v] && !settled[v] && prev[v].map(|p| u < p.0).unwrap_or(false) {
                // Equal cost via a smaller predecessor; an equal-key heap
                // entry already exists, so no re-push.
                prev[v] = Some(NodeId(u));
            }
        }
    }

    if dist[dst.0 as usize] == u64::MAX {
        return None;
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = prev[cur.0 as usize]?;
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::GeoPoint;
    use crate::time::SimTime;
    use crate::topology::{LinkParams, TopologyBuilder};
    use crate::units::Bandwidth;

    fn diamond() -> (Topology, NodeId, NodeId, NodeId, NodeId) {
        // a -> {cheap: x, expensive: y} -> d
        let mut b = TopologyBuilder::new();
        let a = b.host("a", GeoPoint::new(0.0, 0.0));
        let x = b.router("x", GeoPoint::new(1.0, 0.0));
        let y = b.router("y", GeoPoint::new(-1.0, 0.0));
        let d = b.host("d", GeoPoint::new(0.0, 1.0));
        let p = |cost| {
            LinkParams::new(Bandwidth::from_mbps(10.0), SimTime::from_millis(1)).with_cost(cost)
        };
        b.duplex(a, x, p(5));
        b.duplex(x, d, p(5));
        b.duplex(a, y, p(50));
        b.duplex(y, d, p(50));
        (b.build(), a, x, y, d)
    }

    #[test]
    fn picks_min_cost_path() {
        let (t, a, x, _y, d) = diamond();
        let mut rt = RoutingTable::new();
        assert_eq!(rt.path(&t, a, d).unwrap(), vec![a, x, d]);
    }

    #[test]
    fn override_wins_over_cost() {
        let (t, a, _x, y, d) = diamond();
        let mut rt = RoutingTable::new();
        rt.add_override(RouteOverride::new(a, d, vec![a, y, d]));
        assert_eq!(rt.path(&t, a, d).unwrap(), vec![a, y, d]);
        assert_eq!(rt.override_count(), 1);
        // Other directions are unaffected.
        assert_eq!(rt.path(&t, d, a).unwrap(), vec![d, _x, a]);
    }

    #[test]
    fn broken_override_errors() {
        // a and d are not adjacent; both backends must fail loudly at use.
        for mode in [RoutingMode::Oracle, RoutingMode::Reference] {
            let (t, a, _x, _y, d) = diamond();
            let mut rt = RoutingTable::new();
            rt.set_mode(mode);
            rt.add_override(RouteOverride::new(a, d, vec![a, d]));
            assert!(matches!(
                rt.path(&t, a, d),
                Err(NetError::BrokenPath { .. })
            ));
        }
    }

    #[test]
    fn no_route_is_detected() {
        let mut b = TopologyBuilder::new();
        let a = b.host("a", GeoPoint::new(0.0, 0.0));
        let c = b.host("c", GeoPoint::new(1.0, 1.0));
        // Link only c -> a, so a cannot reach c.
        b.simplex(
            c,
            a,
            LinkParams::new(Bandwidth::from_mbps(1.0), SimTime::from_millis(1)),
        );
        let t = b.build();
        let mut rt = RoutingTable::new();
        assert_eq!(rt.path(&t, a, c), Err(NetError::NoRoute { src: a, dst: c }));
        assert!(rt.path(&t, c, a).is_ok());
    }

    #[test]
    fn self_path() {
        let (t, a, ..) = diamond();
        let mut rt = RoutingTable::new();
        assert_eq!(rt.path(&t, a, a).unwrap(), vec![a]);
    }

    #[test]
    fn unknown_node_errors() {
        let (t, a, ..) = diamond();
        let mut rt = RoutingTable::new();
        let ghost = NodeId(99);
        assert_eq!(rt.path(&t, a, ghost), Err(NetError::UnknownNode(ghost)));
    }

    #[test]
    fn cache_consistency() {
        let (t, a, x, _y, d) = diamond();
        let mut rt = RoutingTable::new();
        let p1 = rt.path(&t, a, d).unwrap();
        let p2 = rt.path(&t, a, d).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(p1, vec![a, x, d]);
        rt.clear_cache();
        assert_eq!(rt.path(&t, a, d).unwrap(), p1);
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Two equal-cost paths; the one through the smaller node id wins.
        let mut b = TopologyBuilder::new();
        let a = b.host("a", GeoPoint::new(0.0, 0.0));
        let m1 = b.router("m1", GeoPoint::new(1.0, 0.0));
        let m2 = b.router("m2", GeoPoint::new(-1.0, 0.0));
        let d = b.host("d", GeoPoint::new(0.0, 1.0));
        let p = LinkParams::new(Bandwidth::from_mbps(1.0), SimTime::from_millis(1));
        b.duplex(a, m2, p); // added first, but m2 has the larger id? No: m1 < m2 by id.
        b.duplex(m2, d, p);
        b.duplex(a, m1, p);
        b.duplex(m1, d, p);
        let t = b.build();
        let mut rt = RoutingTable::new();
        let path = rt.path(&t, a, d).unwrap();
        // Both are cost 20; determinism demands the same answer every time.
        for _ in 0..10 {
            let mut rt2 = RoutingTable::new();
            assert_eq!(rt2.path(&t, a, d).unwrap(), path);
        }
    }

    #[test]
    fn override_path_must_terminate_correctly() {
        let (_, a, x, _y, d) = diamond();
        let result = std::panic::catch_unwind(|| RouteOverride::new(a, d, vec![a, x]));
        assert!(result.is_err());
    }

    /// Regression (digest bug): the audit digest used to fold the lazily
    /// populated query cache, so two state-identical tables that had looked
    /// up different pairs digested differently. Warming any number of
    /// queries must leave the digest unchanged, in both backends.
    #[test]
    fn warming_the_cache_leaves_the_digest_unchanged() {
        for mode in [RoutingMode::Oracle, RoutingMode::Reference] {
            let (t, a, _x, y, d) = diamond();
            let mut cold = RoutingTable::new();
            let mut warm = RoutingTable::new();
            for rt in [&mut cold, &mut warm] {
                rt.set_mode(mode);
                rt.add_override(RouteOverride::new(a, d, vec![a, y, d]));
            }
            warm.path(&t, a, d).unwrap();
            warm.path(&t, d, a).unwrap();
            warm.path(&t, y, a).unwrap();
            warm.links(&t, a, y).unwrap();
            warm.k_detours(&t, a, d, 2).unwrap();
            let digest_of = |rt: &RoutingTable| {
                let mut d = crate::audit::Digest::new();
                rt.digest_into(&mut d);
                d.finish()
            };
            assert_eq!(digest_of(&cold), digest_of(&warm), "mode {mode:?}");
        }
    }

    /// The digest must also be independent of the backend mode, or the
    /// differential oracle-vs-reference executions could never agree.
    #[test]
    fn digest_is_mode_independent() {
        let (t, a, _x, y, d) = diamond();
        let mut oracle = RoutingTable::new();
        let mut reference = RoutingTable::new();
        reference.set_mode(RoutingMode::Reference);
        for rt in [&mut oracle, &mut reference] {
            rt.add_override(RouteOverride::new(a, d, vec![a, y, d]));
            rt.path(&t, a, d).unwrap();
        }
        let digest_of = |rt: &RoutingTable| {
            let mut d = crate::audit::Digest::new();
            rt.digest_into(&mut d);
            d.finish()
        };
        assert_eq!(digest_of(&oracle), digest_of(&reference));
    }

    /// Regression (tie-break bug): an equal-cost diamond whose heap order
    /// used to flip the answer. Node ids by creation order: a=0, x=1, u=2,
    /// q=3, d=4; a→q→x costs 5+5, a→u→x costs 10+0, then x→d. Both routes
    /// into x cost 10. The buggy Dijkstra settled x via q (the only
    /// predecessor at settlement — the canonical answer), then later popped
    /// u and *rewrote* `prev[x] = u` because 2 < 3, returning a-u-x-d; and
    /// its early `break` on popping d meant equal-cost relaxations into d
    /// still in the heap were silently skipped. With predecessors frozen at
    /// settlement the answer is a-q-x-d in every mode, matching the
    /// documented smaller-predecessor-at-settlement rule.
    #[test]
    fn equal_cost_diamond_is_not_flipped_by_heap_order() {
        let mut b = TopologyBuilder::new();
        let p = |cost| {
            LinkParams::new(Bandwidth::from_mbps(10.0), SimTime::from_millis(1)).with_cost(cost)
        };
        let a = b.host("a", GeoPoint::new(0.0, 0.0));
        let x = b.router("x", GeoPoint::new(1.0, 0.0));
        let u = b.router("u", GeoPoint::new(2.0, 0.0));
        let q = b.router("q", GeoPoint::new(3.0, 0.0));
        let d = b.host("d", GeoPoint::new(0.0, 1.0));
        b.simplex(a, q, p(5));
        b.simplex(q, x, p(5));
        b.simplex(a, u, p(10));
        b.simplex(u, x, p(0));
        b.simplex(x, d, p(7));
        let t = b.build();
        let want = vec![a, q, x, d];
        assert_eq!(dijkstra(&t, a, d).unwrap(), want);
        for mode in [RoutingMode::Oracle, RoutingMode::Reference] {
            let mut rt = RoutingTable::new();
            rt.set_mode(mode);
            assert_eq!(rt.path(&t, a, d).unwrap(), want, "mode {mode:?}");
        }
        // Query order must not matter either: resolving a→x first used to
        // poison later answers via the rewritten predecessor.
        let mut rt = RoutingTable::new();
        assert_eq!(rt.path(&t, a, x).unwrap(), vec![a, q, x]);
        assert_eq!(rt.path(&t, a, d).unwrap(), want);
    }

    /// Oracle and reference backends agree pairwise on the whole diamond.
    #[test]
    fn backends_agree_on_every_pair() {
        let (t, ..) = diamond();
        let mut oracle = RoutingTable::new();
        let mut reference = RoutingTable::new();
        reference.set_mode(RoutingMode::Reference);
        for s in 0..t.nodes().len() as u32 {
            for e in 0..t.nodes().len() as u32 {
                let (s, e) = (NodeId(s), NodeId(e));
                assert_eq!(oracle.path(&t, s, e), reference.path(&t, s, e));
                assert_eq!(oracle.links(&t, s, e), reference.links(&t, s, e));
            }
        }
    }
}
