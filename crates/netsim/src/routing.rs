//! Policy routing.
//!
//! Paths are shortest paths over link *costs* (not delays or capacities), so
//! scenario authors can express peering policy: a research network can be
//! made preferable to a commodity path by giving it lower cost, and a
//! destination can be pushed through a specific exchange by cost shaping.
//!
//! On top of cost-based routing sit **route overrides**: explicit node paths
//! pinned for a (source host, destination host) pair. The paper's central
//! observation — UBC's PlanetLab traffic to Google reaches `vncv1rtr2` and is
//! then handed to the `pacificwave` link, while UAlberta's traffic crosses
//! the same router but takes a different egress — is exactly such an
//! idiosyncrasy: it is not explainable by shortest-path metrics, so the
//! scenario pins it explicitly, the same way the real network pinned it by
//! BGP policy invisible to the authors.

use crate::error::{NetError, NetResult};
use crate::topology::{LinkId, NodeId, Topology};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// An explicit route pinned for a source/destination pair.
#[derive(Debug, Clone)]
pub struct RouteOverride {
    /// Originating host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Full node path, beginning with `src` and ending with `dst`.
    pub path: Vec<NodeId>,
}

impl RouteOverride {
    /// Build an override, validating the endpoints.
    pub fn new(src: NodeId, dst: NodeId, path: Vec<NodeId>) -> Self {
        assert_eq!(path.first(), Some(&src), "override path must start at src");
        assert_eq!(path.last(), Some(&dst), "override path must end at dst");
        RouteOverride { src, dst, path }
    }
}

/// Computes and caches paths over a topology.
#[derive(Debug, Clone, Default)]
pub struct RoutingTable {
    overrides: HashMap<(NodeId, NodeId), Vec<NodeId>>,
    cache: HashMap<(NodeId, NodeId), Vec<NodeId>>,
}

impl RoutingTable {
    /// Empty table (pure shortest-path routing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Install an override; replaces any previous override for the pair.
    pub fn add_override(&mut self, ov: RouteOverride) {
        self.overrides.insert((ov.src, ov.dst), ov.path);
    }

    /// Number of installed overrides.
    pub fn override_count(&self) -> usize {
        self.overrides.len()
    }

    /// The path from `src` to `dst`: the installed override if present,
    /// otherwise the minimum-cost path (ties broken deterministically by
    /// node id). Results are cached.
    pub fn path(&mut self, topo: &Topology, src: NodeId, dst: NodeId) -> NetResult<Vec<NodeId>> {
        if !topo.contains(src) {
            return Err(NetError::UnknownNode(src));
        }
        if !topo.contains(dst) {
            return Err(NetError::UnknownNode(dst));
        }
        if src == dst {
            return Ok(vec![src]);
        }
        if let Some(p) = self.overrides.get(&(src, dst)) {
            // Validate lazily so a bad override fails loudly at use.
            topo.links_on_path(p)?;
            return Ok(p.clone());
        }
        if let Some(p) = self.cache.get(&(src, dst)) {
            return Ok(p.clone());
        }
        let p = dijkstra(topo, src, dst).ok_or(NetError::NoRoute { src, dst })?;
        self.cache.insert((src, dst), p.clone());
        Ok(p)
    }

    /// Resolve a path into its links.
    pub fn links(&mut self, topo: &Topology, src: NodeId, dst: NodeId) -> NetResult<Vec<LinkId>> {
        let p = self.path(topo, src, dst)?;
        topo.links_on_path(&p)
    }

    /// Drop the shortest-path cache (call after mutating costs in tests).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Fold overrides and the path cache into an audit digest, in sorted
    /// order (hash-map iteration order is not deterministic).
    pub fn digest_into(&self, d: &mut crate::audit::Digest) {
        let mut fold = |map: &HashMap<(NodeId, NodeId), Vec<NodeId>>| {
            let mut entries: Vec<_> = map.iter().collect();
            entries.sort_unstable_by_key(|((s, t), _)| (s.0, t.0));
            d.write_u64(entries.len() as u64);
            for ((s, t), path) in entries {
                d.write_u64(s.0 as u64);
                d.write_u64(t.0 as u64);
                d.write_u64(path.len() as u64);
                for n in path {
                    d.write_u64(n.0 as u64);
                }
            }
        };
        fold(&self.overrides);
        fold(&self.cache);
    }
}

/// Deterministic Dijkstra over link costs. Ties are broken by preferring the
/// lexicographically smaller predecessor node id so that repeated runs (and
/// runs on different platforms) yield identical paths.
fn dijkstra(topo: &Topology, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
    let n = topo.nodes().len();
    let mut dist = vec![u64::MAX; n];
    let mut prev: Vec<Option<NodeId>> = vec![None; n];
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    dist[src.0 as usize] = 0;
    heap.push(Reverse((0, src.0)));

    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        if u == dst.0 {
            break;
        }
        for &lid in topo.outgoing(NodeId(u)) {
            let link = topo.link(lid);
            let v = link.to.0 as usize;
            let nd = d + link.cost as u64;
            let better =
                nd < dist[v] || (nd == dist[v] && prev[v].map(|p| u < p.0).unwrap_or(false));
            if better {
                dist[v] = nd;
                prev[v] = Some(NodeId(u));
                heap.push(Reverse((nd, v as u32)));
            }
        }
    }

    if dist[dst.0 as usize] == u64::MAX {
        return None;
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = prev[cur.0 as usize]?;
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::GeoPoint;
    use crate::time::SimTime;
    use crate::topology::{LinkParams, TopologyBuilder};
    use crate::units::Bandwidth;

    fn diamond() -> (Topology, NodeId, NodeId, NodeId, NodeId) {
        // a -> {cheap: x, expensive: y} -> d
        let mut b = TopologyBuilder::new();
        let a = b.host("a", GeoPoint::new(0.0, 0.0));
        let x = b.router("x", GeoPoint::new(1.0, 0.0));
        let y = b.router("y", GeoPoint::new(-1.0, 0.0));
        let d = b.host("d", GeoPoint::new(0.0, 1.0));
        let p = |cost| {
            LinkParams::new(Bandwidth::from_mbps(10.0), SimTime::from_millis(1)).with_cost(cost)
        };
        b.duplex(a, x, p(5));
        b.duplex(x, d, p(5));
        b.duplex(a, y, p(50));
        b.duplex(y, d, p(50));
        (b.build(), a, x, y, d)
    }

    #[test]
    fn picks_min_cost_path() {
        let (t, a, x, _y, d) = diamond();
        let mut rt = RoutingTable::new();
        assert_eq!(rt.path(&t, a, d).unwrap(), vec![a, x, d]);
    }

    #[test]
    fn override_wins_over_cost() {
        let (t, a, _x, y, d) = diamond();
        let mut rt = RoutingTable::new();
        rt.add_override(RouteOverride::new(a, d, vec![a, y, d]));
        assert_eq!(rt.path(&t, a, d).unwrap(), vec![a, y, d]);
        assert_eq!(rt.override_count(), 1);
        // Other directions are unaffected.
        assert_eq!(rt.path(&t, d, a).unwrap(), vec![d, _x, a]);
    }

    #[test]
    fn broken_override_errors() {
        let (t, a, _x, _y, d) = diamond();
        let mut rt = RoutingTable::new();
        // a and d are not adjacent.
        rt.overrides.insert((a, d), vec![a, d]);
        assert!(matches!(
            rt.path(&t, a, d),
            Err(NetError::BrokenPath { .. })
        ));
    }

    #[test]
    fn no_route_is_detected() {
        let mut b = TopologyBuilder::new();
        let a = b.host("a", GeoPoint::new(0.0, 0.0));
        let c = b.host("c", GeoPoint::new(1.0, 1.0));
        // Link only c -> a, so a cannot reach c.
        b.simplex(
            c,
            a,
            LinkParams::new(Bandwidth::from_mbps(1.0), SimTime::from_millis(1)),
        );
        let t = b.build();
        let mut rt = RoutingTable::new();
        assert_eq!(rt.path(&t, a, c), Err(NetError::NoRoute { src: a, dst: c }));
        assert!(rt.path(&t, c, a).is_ok());
    }

    #[test]
    fn self_path() {
        let (t, a, ..) = diamond();
        let mut rt = RoutingTable::new();
        assert_eq!(rt.path(&t, a, a).unwrap(), vec![a]);
    }

    #[test]
    fn unknown_node_errors() {
        let (t, a, ..) = diamond();
        let mut rt = RoutingTable::new();
        let ghost = NodeId(99);
        assert_eq!(rt.path(&t, a, ghost), Err(NetError::UnknownNode(ghost)));
    }

    #[test]
    fn cache_consistency() {
        let (t, a, x, _y, d) = diamond();
        let mut rt = RoutingTable::new();
        let p1 = rt.path(&t, a, d).unwrap();
        let p2 = rt.path(&t, a, d).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(p1, vec![a, x, d]);
        rt.clear_cache();
        assert_eq!(rt.path(&t, a, d).unwrap(), p1);
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Two equal-cost paths; the one through the smaller node id wins.
        let mut b = TopologyBuilder::new();
        let a = b.host("a", GeoPoint::new(0.0, 0.0));
        let m1 = b.router("m1", GeoPoint::new(1.0, 0.0));
        let m2 = b.router("m2", GeoPoint::new(-1.0, 0.0));
        let d = b.host("d", GeoPoint::new(0.0, 1.0));
        let p = LinkParams::new(Bandwidth::from_mbps(1.0), SimTime::from_millis(1));
        b.duplex(a, m2, p); // added first, but m2 has the larger id? No: m1 < m2 by id.
        b.duplex(m2, d, p);
        b.duplex(a, m1, p);
        b.duplex(m1, d, p);
        let t = b.build();
        let mut rt = RoutingTable::new();
        let path = rt.path(&t, a, d).unwrap();
        // Both are cost 20; determinism demands the same answer every time.
        for _ in 0..10 {
            let mut rt2 = RoutingTable::new();
            assert_eq!(rt2.path(&t, a, d).unwrap(), path);
        }
    }

    #[test]
    fn override_path_must_terminate_correctly() {
        let (_, a, x, _y, d) = diamond();
        let result = std::panic::catch_unwind(|| RouteOverride::new(a, d, vec![a, x]));
        assert!(result.is_err());
    }
}
