//! Error types for the simulator.

use crate::topology::NodeId;
use std::fmt;

/// Result alias used across the crate.
pub type NetResult<T> = Result<T, NetError>;

/// Everything that can go wrong while building or running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// No route exists between the two nodes (disconnected topology, or a
    /// firewall dropped the traffic class).
    NoRoute { src: NodeId, dst: NodeId },
    /// An explicit path was supplied but two consecutive nodes in it are not
    /// adjacent in the topology.
    BrokenPath { from: NodeId, to: NodeId },
    /// A node id referenced a node that does not exist.
    UnknownNode(NodeId),
    /// A transfer of zero bytes was requested.
    EmptyTransfer,
    /// A flow or process id was used after completion/cancellation.
    StaleHandle(&'static str),
    /// Traffic was administratively blocked by a firewall rule.
    Blocked { at: NodeId, reason: &'static str },
    /// The simulation reached its configured event budget — almost always a
    /// protocol livelock in a process implementation.
    EventBudgetExhausted { events: u64 },
    /// A transfer spent its whole retry budget on throttles and transient
    /// errors without completing (the bounded-retry analogue of an HTTP
    /// client giving up on a misbehaving endpoint).
    RetryBudgetExhausted { at: NodeId, budget: u32 },
    /// A transfer ran past its hard deadline in simulated time.
    DeadlineExceeded { at: NodeId },
    /// Every candidate route failed; carries each route's error in the
    /// order the routes were tried.
    AllRoutesFailed { errors: Vec<NetError> },
    /// The root process finished without producing a value.
    NoResult,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::NoRoute { src, dst } => write!(f, "no route from {src} to {dst}"),
            NetError::BrokenPath { from, to } => {
                write!(f, "explicit path broken: {from} is not adjacent to {to}")
            }
            NetError::UnknownNode(n) => write!(f, "unknown node {n}"),
            NetError::EmptyTransfer => write!(f, "transfer of zero bytes requested"),
            NetError::StaleHandle(what) => write!(f, "stale {what} handle"),
            NetError::Blocked { at, reason } => write!(f, "blocked at {at}: {reason}"),
            NetError::EventBudgetExhausted { events } => {
                write!(
                    f,
                    "event budget exhausted after {events} events (protocol livelock?)"
                )
            }
            NetError::RetryBudgetExhausted { at, budget } => {
                write!(f, "retry budget ({budget}) exhausted talking to {at}")
            }
            NetError::DeadlineExceeded { at } => {
                write!(f, "transfer deadline exceeded talking to {at}")
            }
            NetError::AllRoutesFailed { errors } => {
                write!(f, "all {} route(s) failed: [", errors.len())?;
                for (i, e) in errors.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
            NetError::NoResult => write!(f, "root process finished without a result"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = NetError::NoRoute {
            src: NodeId(1),
            dst: NodeId(2),
        };
        assert_eq!(e.to_string(), "no route from n1 to n2");
        let e = NetError::EventBudgetExhausted { events: 10 };
        assert!(e.to_string().contains("livelock"));
        let e = NetError::RetryBudgetExhausted {
            at: NodeId(3),
            budget: 8,
        };
        assert_eq!(e.to_string(), "retry budget (8) exhausted talking to n3");
        let e = NetError::DeadlineExceeded { at: NodeId(4) };
        assert!(e.to_string().contains("deadline"));
    }

    #[test]
    fn all_routes_failed_lists_every_error() {
        let e = NetError::AllRoutesFailed {
            errors: vec![
                NetError::Blocked {
                    at: NodeId(1),
                    reason: "firewall",
                },
                NetError::DeadlineExceeded { at: NodeId(2) },
            ],
        };
        let s = e.to_string();
        assert!(s.contains("all 2 route(s) failed"), "{s}");
        assert!(s.contains("firewall") && s.contains("deadline"), "{s}");
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&NetError::EmptyTransfer);
    }
}
