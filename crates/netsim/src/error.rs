//! Error types for the simulator.

use crate::topology::NodeId;
use std::fmt;

/// Result alias used across the crate.
pub type NetResult<T> = Result<T, NetError>;

/// Everything that can go wrong while building or running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// No route exists between the two nodes (disconnected topology, or a
    /// firewall dropped the traffic class).
    NoRoute { src: NodeId, dst: NodeId },
    /// An explicit path was supplied but two consecutive nodes in it are not
    /// adjacent in the topology.
    BrokenPath { from: NodeId, to: NodeId },
    /// A node id referenced a node that does not exist.
    UnknownNode(NodeId),
    /// A transfer of zero bytes was requested.
    EmptyTransfer,
    /// A flow or process id was used after completion/cancellation.
    StaleHandle(&'static str),
    /// Traffic was administratively blocked by a firewall rule.
    Blocked { at: NodeId, reason: &'static str },
    /// The simulation reached its configured event budget — almost always a
    /// protocol livelock in a process implementation.
    EventBudgetExhausted { events: u64 },
    /// The root process finished without producing a value.
    NoResult,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::NoRoute { src, dst } => write!(f, "no route from {src} to {dst}"),
            NetError::BrokenPath { from, to } => {
                write!(f, "explicit path broken: {from} is not adjacent to {to}")
            }
            NetError::UnknownNode(n) => write!(f, "unknown node {n}"),
            NetError::EmptyTransfer => write!(f, "transfer of zero bytes requested"),
            NetError::StaleHandle(what) => write!(f, "stale {what} handle"),
            NetError::Blocked { at, reason } => write!(f, "blocked at {at}: {reason}"),
            NetError::EventBudgetExhausted { events } => {
                write!(
                    f,
                    "event budget exhausted after {events} events (protocol livelock?)"
                )
            }
            NetError::NoResult => write!(f, "root process finished without a result"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = NetError::NoRoute {
            src: NodeId(1),
            dst: NodeId(2),
        };
        assert_eq!(e.to_string(), "no route from n1 to n2");
        let e = NetError::EventBudgetExhausted { events: 10 };
        assert!(e.to_string().contains("livelock"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&NetError::EmptyTransfer);
    }
}
